//! `lint` — static analysis and translation validation over textual IR
//! files.
//!
//! Collects `.fhe` files, runs the `F001`…`F005` lints (and, for
//! compiled-mode files, translation validation against each compiler's
//! schedule), renders rustc-style diagnostics, and optionally writes a
//! machine-readable report. See `fhe_reserve::lint` for the file modes and
//! directives.
//!
//! ```sh
//! cargo run --release --bin lint -- examples/programs tests/corpus
//! cargo run --release --bin lint -- prog.fhe --json report.json --deny error
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use fhe_reserve::lint::{collect_files, denied, lint_file, reports_json, LintRun};

struct Cli {
    paths: Vec<PathBuf>,
    run: LintRun,
    json: Option<PathBuf>,
    deny: Vec<String>,
    quiet: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut paths = Vec::new();
    let mut run = LintRun::default();
    let mut json = None;
    let mut deny = Vec::new();
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--compiler" | "-c" => {
                let value = args.next().ok_or("--compiler needs eva|hecate|reserve")?;
                run.compilers = value.split(',').map(str::to_string).collect();
                for name in &run.compilers {
                    if !matches!(name.as_str(), "eva" | "hecate" | "reserve") {
                        return Err(format!("unknown compiler `{name}` (eva|hecate|reserve)"));
                    }
                }
            }
            "--input-range" => {
                run.input_magnitude = args
                    .next()
                    .ok_or("--input-range needs a magnitude")?
                    .parse()
                    .map_err(|e| format!("bad input range: {e}"))?;
                if run.input_magnitude.is_nan() || run.input_magnitude <= 0.0 {
                    return Err("input range must be positive".into());
                }
            }
            "--json" => {
                json = Some(PathBuf::from(args.next().ok_or("--json needs a path")?));
            }
            "--deny" => {
                deny.push(args.next().ok_or("--deny needs error|warning|<code>")?);
            }
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                return Err("usage: lint [paths...] [--compiler eva,hecate,reserve] \
                            [--input-range M] [--json PATH] [--deny error|warning|CODE]... \
                            [--quiet]\n\
                            paths default to examples/programs and tests/corpus"
                    .to_string())
            }
            other if !other.starts_with('-') => paths.push(PathBuf::from(other)),
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if paths.is_empty() {
        paths = vec![
            PathBuf::from("examples/programs"),
            PathBuf::from("tests/corpus"),
        ];
    }
    Ok(Cli {
        paths,
        run,
        json,
        deny,
        quiet,
    })
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let files = match collect_files(&cli.paths) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if files.is_empty() {
        eprintln!("lint: no .fhe files under the given paths");
        return ExitCode::FAILURE;
    }

    let mut reports = Vec::new();
    let (mut total, mut denied_count, mut errors) = (0usize, 0usize, 0usize);
    for path in &files {
        let name = path.display().to_string();
        let content = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("lint: cannot read {name}: {e}");
                errors += 1;
                continue;
            }
        };
        let report = lint_file(&name, &content, &cli.run);
        if let Some(err) = &report.error {
            eprint!("{err}");
            errors += 1;
        }
        for target in &report.targets {
            if let Some(err) = &target.error {
                eprintln!("{name}@{}: {err}", target.target);
                errors += 1;
            }
            total += target.findings.len();
            denied_count += target
                .findings
                .iter()
                .filter(|f| denied(&cli.deny, f))
                .count();
            if !cli.quiet && !target.rendered.is_empty() {
                print!("{}", target.rendered);
            }
        }
        reports.push(report);
    }

    if let Some(path) = &cli.json {
        if let Err(e) = std::fs::write(path, format!("{}\n", reports_json(&reports))) {
            eprintln!("lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    eprintln!(
        "lint: {} file(s), {total} finding(s), {denied_count} denied, {errors} error(s)",
        files.len()
    );
    if errors > 0 || denied_count > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
