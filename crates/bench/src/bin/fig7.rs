//! Fig. 7: output error (log₂ of the max absolute error) of EVA, Hecate and
//! this work at waterlines 2^20 and 2^40, measured with the noise-injection
//! simulator on each benchmark's synthetic inputs.
//!
//! Expected shape (paper §8.2): errors at W=2^40 are far below W=2^20, and
//! this work's errors are at or below the baselines' because the reserve
//! analysis does not unnecessarily minimize scales.

use fhe_bench::{hecate_budget, print_table, run_eva, run_hecate, run_reserve, CliArgs};
use fhe_runtime::{simulate, NoiseModel};
use reserve_core::Mode;

fn main() {
    let args = CliArgs::parse();
    let suite = fhe_bench::selected_suite(&args);
    let model = NoiseModel::default();

    for waterline in [20u32, 40] {
        println!("Fig. 7{}: error (log2) at waterline 2^{waterline}.\n",
            if waterline == 20 { "a" } else { "b" });
        let headers = ["Benchmark", "EVA", "Hecate", "This work"];
        let mut rows = Vec::new();
        for w in &suite {
            eprintln!("simulating {} at W=2^{waterline} ...", w.name);
            // Sweeps multiply Hecate's cost by the number of points; cap the
            // exploration budget to keep the harness under a few minutes.
            let budget = hecate_budget(&args, w.program.num_ops()).min(2000);
            let recs = [
                run_eva(&w.program, waterline),
                run_hecate(&w.program, waterline, budget),
                run_reserve(&w.program, waterline, Mode::Full),
            ];
            let mut row = vec![w.name.to_string()];
            for rec in &recs {
                let run = simulate(&rec.scheduled, &w.inputs, &model)
                    .expect("schedules validate");
                row.push(format!("{:.1}", run.log2_error()));
            }
            rows.push(row);
        }
        print_table(&headers, &rows);
        println!();
    }
    println!("(lower is better; paper Fig. 7 reports this work at or below the baselines,");
    println!(" with every error dropping by ~20 log2 units from W=2^20 to W=2^40)");
}
