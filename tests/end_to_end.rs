//! End-to-end integration: every benchmark × every compiler must produce a
//! validating schedule that computes the same function as the source
//! program, and the compilers must relate the way the paper reports
//! (reserve ≈ Hecate ≲ EVA in latency).

use fhe_reserve::prelude::*;
use fhe_reserve::{baselines, runtime};

fn compile_all(
    program: &fhe_ir::Program,
    waterline: u32,
) -> (ScheduledProgram, ScheduledProgram, ScheduledProgram) {
    let params = CompileParams::new(waterline);
    let eva = baselines::eva::compile(program, &params).expect("EVA compiles").scheduled;
    let hecate_opts = baselines::HecateOptions {
        max_iterations: 300,
        patience: 300,
        seed: 11,
        max_choice: baselines::ForwardPlan::MAX_CHOICE,
    };
    let hecate = baselines::hecate::compile(program, &params, &hecate_opts)
        .expect("Hecate compiles")
        .scheduled;
    let ours = compile(program, &Options::new(waterline)).expect("reserve compiles").scheduled;
    (eva, hecate, ours)
}

#[test]
fn all_workloads_compile_and_validate_under_all_compilers() {
    for w in suite(Size::Test) {
        for waterline in [20, 40] {
            let (eva, hecate, ours) = compile_all(&w.program, waterline);
            for (name, s) in [("EVA", &eva), ("Hecate", &hecate), ("reserve", &ours)] {
                s.validate().unwrap_or_else(|e| {
                    panic!("{} W={waterline} {name}: {e:?}", w.name)
                });
            }
        }
    }
}

#[test]
fn compilation_preserves_semantics_exactly() {
    // Scale-management ops are value-identities, so the scheduled program
    // must plain-execute to exactly the source program's outputs.
    for w in suite(Size::Test) {
        let reference = runtime::plain::execute(&w.program, &w.inputs);
        let (eva, hecate, ours) = compile_all(&w.program, 30);
        for (name, s) in [("EVA", &eva), ("Hecate", &hecate), ("reserve", &ours)] {
            let got = runtime::plain::execute(&s.program, &w.inputs);
            assert_eq!(got.len(), reference.len(), "{} {name}: output arity", w.name);
            for (g, r) in got.iter().zip(&reference) {
                for (a, b) in g.iter().zip(r) {
                    assert!(
                        (a - b).abs() <= 1e-12 * b.abs().max(1.0),
                        "{} {name}: {a} vs {b}",
                        w.name
                    );
                }
            }
        }
    }
}

#[test]
fn reserve_beats_eva_latency_overall() {
    // The paper claims a 41.8% average improvement over EVA, with occasional
    // small per-point losses (§8.2 reports up to 6.5% vs Hecate). Require:
    // never more than 5% worse on any point, and clearly better on average.
    let cost = CostModel::paper_table3();
    let mut ratios = Vec::new();
    for w in suite(Size::Test) {
        for waterline in [20, 35, 45] {
            let params = CompileParams::new(waterline);
            let eva = baselines::eva::compile(&w.program, &params).unwrap();
            let ours = compile(&w.program, &Options::new(waterline)).unwrap();
            let eva_cost = runtime::estimate(&eva.scheduled, &cost).unwrap().total_us;
            let our_cost = runtime::estimate(&ours.scheduled, &cost).unwrap().total_us;
            assert!(
                our_cost <= eva_cost * 1.05,
                "{} W={waterline}: reserve {our_cost:.0}µs ≫ EVA {eva_cost:.0}µs",
                w.name
            );
            ratios.push(our_cost / eva_cost);
        }
    }
    let geomean = (ratios.iter().map(|x| x.ln()).sum::<f64>() / ratios.len() as f64).exp();
    assert!(
        geomean < 0.90,
        "reserve should be clearly faster than EVA on average, got ratio {geomean:.3}"
    );
}

#[test]
fn noise_simulation_runs_every_compiled_workload() {
    for w in suite(Size::Test) {
        let (_, _, ours) = compile_all(&w.program, 40);
        let run = simulate(&ours, &w.inputs, &NoiseModel::default())
            .unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
        assert!(
            run.max_abs_error() < 1e-3,
            "{}: noisy error {} too large at W=2^40",
            w.name,
            run.max_abs_error()
        );
    }
}

#[test]
fn ablation_ordering_holds_on_average() {
    // Fig. 8: BA ≥ RA ≥ Full in latency (geomean across the suite).
    let cost = CostModel::paper_table3();
    let mut ratios_ra = Vec::new();
    let mut ratios_full = Vec::new();
    for w in suite(Size::Test) {
        let ba = compile(&w.program, &Options::with_mode(20, Mode::Ba)).unwrap();
        let ra = compile(&w.program, &Options::with_mode(20, Mode::Ra)).unwrap();
        let full = compile(&w.program, &Options::with_mode(20, Mode::Full)).unwrap();
        let c = |s: &ScheduledProgram| runtime::estimate(s, &cost).unwrap().total_us;
        let (cb, cr, cf) = (c(&ba.scheduled), c(&ra.scheduled), c(&full.scheduled));
        ratios_ra.push(cr / cb);
        ratios_full.push(cf / cb);
        assert!(cf <= cb * 1.001, "{}: full {cf:.0} worse than BA {cb:.0}", w.name);
    }
    let geomean = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    assert!(geomean(&ratios_full) <= geomean(&ratios_ra) + 1e-9);
    assert!(geomean(&ratios_full) < 1.0, "full pipeline must help overall");
}
