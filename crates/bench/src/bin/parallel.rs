//! DAG-parallelism benchmark: validates the measured `T(k)` of the
//! parallel executor against the depgraph's prediction, per golden
//! workload, at k ∈ {1, 2, 4, 8} runners.
//!
//! ```text
//! parallel [--fast] [--json PATH] [--check-baseline PATH]
//! ```
//!
//! Method. A serial (`workers = 1`) unfused, unhoisted run measures every
//! op's wall latency (`ParReport::node_times`). Those samples calibrate a
//! per-class per-level [`CostModel`] (the same shape as Table 3), and the
//! depgraph built from that model yields the *prediction* `t_of_k(k)`.
//! The *measured* `T(k)` replays the actual per-node latencies through a
//! greedy critical-path list schedule with `k` workers over the same DAG
//! — virtual time, so the number is honest on any host, including the
//! single-core CI container (`"mode": "virtual"` in the JSON; real
//! wall-clock walk times are reported alongside for every `k` the host
//! has cores for). The two series differ only where per-op latencies
//! deviate from their class/level means, so
//!
//! ```text
//! span ≤ T(k) ≤ 1.15 × predicted(k) + 40µs     for every workload and k
//! ```
//!
//! is the validation gate: it fails if the depgraph's edges miss a
//! dependence (replay would beat the span) or the cost model loses
//! contact with the measured kernels (replay would blow the 1.15 cap).
//! The additive 40µs term is the virtual clock's noise floor (see
//! [`NOISE_FLOOR_US`]); it matters only on the sub-millisecond workloads.
//!
//! A second series runs fusion + rotation hoisting on, measuring the
//! end-to-end op-phase speedup at 4 workers over the serial unfused
//! baseline — `--check-baseline BENCH_parallel.json` requires ≥ 1.5× on
//! at least two workloads and no >20% regression of the total fused
//! `T(4)` against the committed record (the CI `parallel-smoke` gate).

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use fhe_bench::json::Json;
use fhe_bench::print_table;
use fhe_ir::depgraph::DepGraph;
use fhe_ir::pipeline::ScaleCompiler;
use fhe_ir::{CompileParams, CostModel, Op, ScheduledProgram};
use fhe_runtime::{execute_parallel, plain, ExecOptions, KeyPolicy, ParOptions, ParReport};
use fhe_workloads::{suite, Size, Workload};
use reserve_core::ReserveCompiler;

/// Whether every live cipher value's magnitude fits the slack between its
/// scheduled scale and its level's modulus budget (`|v|·2^scale < Q_l/2`)
/// — the condition under which the backend's decryption is guaranteed
/// accurate (the fuzz oracle's criterion, restated here because `fhe-fuzz`
/// depends on this crate).
fn schedule_fits_backend(scheduled: &ScheduledProgram, inputs: &HashMap<String, Vec<f64>>) -> bool {
    let Ok(map) = scheduled.validate() else {
        return false;
    };
    let program = &scheduled.program;
    let mut all = program.clone();
    all.set_outputs(program.ids().collect());
    let vals = plain::execute(&all, inputs);
    let rescale = f64::from(scheduled.params.rescale_bits);
    let live = fhe_ir::analysis::live(program);
    for (id, slots) in program.ids().zip(&vals) {
        if !live[id.index()] || !program.is_cipher(id) {
            continue;
        }
        if let Op::Upscale(_, delta) = program.op(id) {
            let factor = 2f64.powf(delta.to_f64());
            if factor < 2f64.powi(53) && (factor.round() - factor).abs() / factor > 1e-8 {
                return false;
            }
        }
        let mag = slots.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if mag == 0.0 {
            continue;
        }
        let scale = map.scale_bits(id).to_f64();
        let budget = f64::from(map.level(id)) * rescale;
        if mag.log2() + scale > budget - 1.0 {
            return false;
        }
    }
    true
}

/// Runner counts the acceptance sweep covers.
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Measured-vs-predicted cap per workload per width.
const RATIO_CAP: f64 = 1.15;
/// Additive noise floor (µs) subtracted from the measured replay before
/// the ratio gate. Per-node latencies carry O(µs) one-sided noise that
/// min-over-reps cannot remove when the spike repeats within a process
/// (allocator/ASLR layout); at high k the replay is a sum over the
/// ~dozen critical-path nodes, so the virtual clock has an absolute
/// uncertainty of a few tens of µs regardless of workload size. 40µs is
/// ~30% of the smallest workload's span and < 0.6% of every other
/// workload's T(8), so the floor only desensitizes the gate where the
/// signal is genuinely below the measurement noise.
const NOISE_FLOOR_US: f64 = 40.0;
/// Required op-phase speedup at 4 workers…
const SPEEDUP_FLOOR: f64 = 1.5;
/// …on at least this many golden workloads.
const SPEEDUP_WORKLOADS: usize = 2;

struct Args {
    fast: bool,
    json: Option<PathBuf>,
    check_baseline: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        fast: false,
        json: None,
        check_baseline: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        let value = |iter: &mut dyn Iterator<Item = String>, flag: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("{flag} requires an argument");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--fast" => args.fast = true,
            "--json" => args.json = Some(value(&mut iter, "--json").into()),
            "--check-baseline" => {
                args.check_baseline = Some(value(&mut iter, "--check-baseline").into())
            }
            other => {
                eprintln!(
                    "unknown flag `{other}` (supported: --fast, --json <path>, \
                     --check-baseline <path>)"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Compiles a workload with the smallest waterline/output-reserve pair
/// whose schedule fits the backend's modulus budget.
fn compile_fitting(w: &Workload) -> ScheduledProgram {
    for waterline_bits in [30u32, 35, 40] {
        for reserve_bits in [2u32, 4, 6, 8] {
            let mut params = CompileParams::new(waterline_bits);
            params.output_reserve_bits = reserve_bits;
            let Ok(compiled) = ReserveCompiler::full().compile(&w.program, &params) else {
                continue;
            };
            if schedule_fits_backend(&compiled.scheduled, &w.inputs) {
                return compiled.scheduled;
            }
        }
    }
    panic!("{}: no waterline/reserve makes the schedule fit", w.name);
}

fn run(
    scheduled: &ScheduledProgram,
    inputs: &HashMap<String, Vec<f64>>,
    workers: usize,
    fusion: bool,
    hoisting: bool,
) -> ParReport {
    let options = ParOptions {
        exec: ExecOptions {
            poly_degree: scheduled.program.slots() * 2,
            seed: 0xDA6,
            threads: 1,
            // Eager keys: lazy generation would charge first-use keygen
            // to whichever rotate node touches a step first, skewing that
            // node far above its class mean.
            keys: KeyPolicy::EagerProgram,
            rotation_hoisting: hoisting,
        },
        workers,
        fusion,
    };
    let report = execute_parallel(scheduled, inputs, &options)
        .unwrap_or_else(|e| panic!("{}: {e:?}", scheduled.program.name()));
    assert!(
        report.max_abs_error() < 1e-1,
        "{}: error {} at {workers} workers",
        scheduled.program.name(),
        report.max_abs_error()
    );
    report
}

/// Per-node measured latencies (µs), indexed like `graph.nodes()`, taking
/// each node's *minimum* across repetitions (same seed → identical
/// computation, so the min is the node's deterministic compute floor —
/// robust against one-sided scheduler/allocator spikes that a mean keeps
/// a share of). Nodes the walk never times (plain ops, inputs — executed
/// in the serial prologue) cost zero, matching the cost model.
fn node_costs(graph: &DepGraph, reports: &[ParReport]) -> Vec<f64> {
    let mut costs = vec![f64::INFINITY; graph.nodes().len()];
    for report in reports {
        for (id, d) in &report.node_times {
            if let Some(i) = graph.node(*id) {
                costs[i] = costs[i].min(d.as_secs_f64() * 1e6);
            }
        }
    }
    for c in &mut costs {
        if !c.is_finite() {
            *c = 0.0;
        }
    }
    costs
}

/// Calibrates a [`CostModel`] from the serial run's per-node latencies:
/// each class's row holds the mean measured µs per level, with unsampled
/// levels filled by linear interpolation between the nearest sampled
/// neighbours (clamped at the ends). Classes the program never executes
/// keep the paper's Table 3 row — their nodes do not exist in the graph.
fn calibrate(scheduled: &ScheduledProgram, graph: &DepGraph, costs: &[f64]) -> CostModel {
    let program = &scheduled.program;
    let map = scheduled.validate().expect("schedule validates");
    let mut samples: HashMap<(usize, u32), (f64, usize)> = HashMap::new();
    let mut class_of: HashMap<usize, fhe_ir::OpClass> = HashMap::new();
    for (node, &us) in graph.nodes().iter().zip(costs) {
        let (Some(class), Some(level)) =
            (node.class, CostModel::charge_level(program, node.id, &map))
        else {
            continue;
        };
        let e = samples.entry((class as usize, level)).or_insert((0.0, 0));
        e.0 += us;
        e.1 += 1;
        class_of.insert(class as usize, class);
    }
    let mut rows = Vec::new();
    for (&ci, &class) in &class_of {
        let mut levels: Vec<(u32, f64)> = samples
            .iter()
            .filter(|((c, _), _)| *c == ci)
            .map(|((_, l), (sum, n))| (*l, sum / *n as f64))
            .collect();
        levels.sort_by_key(|&(l, _)| l);
        let max_level = levels.last().expect("class has samples").0.max(2);
        let mut row = Vec::with_capacity(max_level as usize);
        for l in 1..=max_level {
            let at = levels.partition_point(|&(sl, _)| sl < l);
            let v = match (at.checked_sub(1).map(|i| levels[i]), levels.get(at)) {
                (_, Some(&(sl, sv))) if sl == l => sv,
                (None, Some(&(_, sv))) => sv, // below the first sample
                (Some((_, pv)), None) => pv,  // above the last sample
                (Some((pl, pv)), Some(&(sl, sv))) => {
                    let t = (l - pl) as f64 / (sl - pl) as f64;
                    pv * (1.0 - t) + sv * t
                }
                (None, None) => unreachable!("levels is nonempty"),
            };
            row.push(v);
        }
        rows.push((class, row));
    }
    CostModel::from_rows(rows)
}

/// Greedy critical-path list schedule of the DAG with `k` workers and the
/// given per-node costs (µs) — the same algorithm as
/// [`DepGraph::t_of_k`], parameterized by measured costs instead of the
/// model's. With `k = nodes` it degenerates to the span.
fn replay(graph: &DepGraph, costs: &[f64], k: usize) -> f64 {
    let n = graph.nodes().len();
    if n == 0 {
        return 0.0;
    }
    let k = k.max(1);
    let mut bottom = vec![0.0f64; n];
    for i in (0..n).rev() {
        let below = graph
            .succs(i)
            .iter()
            .map(|&(s, _)| bottom[s])
            .fold(0.0, f64::max);
        bottom[i] = below + costs[i];
    }
    let mut indeg: Vec<usize> = (0..n).map(|i| graph.preds(i).len()).collect();
    let mut ready_time = vec![0.0f64; n];
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut workers = vec![0.0f64; k.min(n)];
    let mut makespan = 0.0f64;
    for _ in 0..n {
        let (w, &wt) = workers
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("k >= 1");
        let pick = ready
            .iter()
            .enumerate()
            .min_by(|&(_, &a), &(_, &b)| {
                let (ra, rb) = (ready_time[a].max(wt), ready_time[b].max(wt));
                ra.total_cmp(&rb)
                    .then(bottom[b].total_cmp(&bottom[a]))
                    .then(a.cmp(&b))
            })
            .map(|(slot, _)| slot)
            .expect("ready nonempty while nodes remain");
        let node = ready.swap_remove(pick);
        let start = ready_time[node].max(wt);
        let fin = start + costs[node];
        workers[w] = fin;
        makespan = makespan.max(fin);
        for &(s, _) in graph.succs(node) {
            ready_time[s] = ready_time[s].max(fin);
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }
    makespan
}

struct WorkloadResult {
    name: &'static str,
    slots: usize,
    nodes: usize,
    span_us: f64,
    predicted: Vec<f64>,
    measured: Vec<f64>,
    fused_t: Vec<f64>,
    wall_us: Vec<Option<f64>>,
    speedup_at_4: f64,
    max_ratio: f64,
    fused_pairs: usize,
    hoisted_groups: usize,
    safety_obligations: usize,
}

fn series_json(t: &[f64]) -> Json {
    Json::Array(
        WORKER_SWEEP
            .iter()
            .zip(t)
            .map(|(&k, &t_us)| Json::obj([("k", Json::from(k)), ("t_us", Json::from(t_us))]))
            .collect(),
    )
}

fn workload_json(r: &WorkloadResult) -> Json {
    Json::obj([
        ("workload", Json::from(r.name)),
        ("slots", Json::from(r.slots)),
        ("dag_nodes", Json::from(r.nodes)),
        ("span_us", Json::from(r.span_us)),
        ("predicted", series_json(&r.predicted)),
        ("measured", series_json(&r.measured)),
        ("fused", series_json(&r.fused_t)),
        (
            "wall",
            Json::Array(
                WORKER_SWEEP
                    .iter()
                    .zip(&r.wall_us)
                    .map(|(&k, w)| {
                        Json::obj([
                            ("k", Json::from(k)),
                            ("t_us", w.map_or(Json::Null, Json::from)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("speedup_at_4", Json::from(r.speedup_at_4)),
        ("max_ratio", Json::from(r.max_ratio)),
        ("fused_pairs", Json::from(r.fused_pairs)),
        ("hoisted_groups", Json::from(r.hoisted_groups)),
        ("safety_obligations", Json::from(r.safety_obligations)),
    ])
}

/// Pulls `"key":<number>` out of a flat JSON record (the committed
/// baseline) without a full parser.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = &text[at..];
    let end = rest
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn bench_workload(w: &Workload, cores: usize) -> WorkloadResult {
    let scheduled = compile_fitting(w);
    let map = scheduled.validate().expect("schedule validates");

    // Serial unfused, unhoisted runs: latency samples per DAG node,
    // minimum across repetitions (the deterministic compute floor) to
    // suppress one-sided timer/allocator/scheduler spikes — a single
    // inflated critical-path node moves the replayed T(k) by its full
    // delta but the class-mean prediction by only delta/bucket-size, so
    // the ratio gate is as noise-sensitive as the noisiest path node.
    const REPS: usize = 5;
    let baselines: Vec<ParReport> = (0..REPS)
        .map(|_| run(&scheduled, &w.inputs, 1, false, false))
        .collect();
    let probe = DepGraph::build(&scheduled, &map, &CostModel::paper_table3(), false);
    let costs = node_costs(&probe, &baselines);
    let model = calibrate(&scheduled, &probe, &costs);
    let graph = DepGraph::build(&scheduled, &map, &model, false);
    let span_us = replay(&graph, &costs, graph.nodes().len());

    // Fused + hoisted runs: per-node latencies with the mul·relin·rescale
    // kernel charged at the mul and hoist groups at their leader.
    let fused_runs: Vec<ParReport> = (0..REPS)
        .map(|_| run(&scheduled, &w.inputs, 1, true, true))
        .collect();
    let fused_run = &fused_runs[0];
    let graph_h = DepGraph::build(&scheduled, &map, &model, true);
    let costs_f = node_costs(&graph_h, &fused_runs);

    let mut predicted = Vec::new();
    let mut measured = Vec::new();
    let mut fused_t = Vec::new();
    let mut wall_us = Vec::new();
    for &k in &WORKER_SWEEP {
        predicted.push(graph.t_of_k(k));
        measured.push(replay(&graph, &costs, k));
        fused_t.push(replay(&graph_h, &costs_f, k));
        // Real wall-clock walk, only meaningful when the host has the
        // cores (k = 1 re-runs serially; skip to keep the bench fast).
        wall_us.push((k > 1 && cores >= k).then(|| {
            run(&scheduled, &w.inputs, k, true, true)
                .walk_time
                .as_secs_f64()
                * 1e6
        }));
    }
    let speedup_at_4 = measured[0] / fused_t[2];
    // Ratio of the measured replay above the virtual-clock noise floor
    // to the prediction — the quantity both the inline gate and the
    // `--check-baseline` gate cap at `RATIO_CAP`.
    let ratio = |m: f64, p: f64| (m - NOISE_FLOOR_US).max(0.0) / p;
    let max_ratio = measured
        .iter()
        .zip(&predicted)
        .map(|(&m, &p)| ratio(m, p))
        .fold(0.0, f64::max);
    for (i, (&m, &p)) in measured.iter().zip(&predicted).enumerate() {
        assert!(
            span_us <= m * (1.0 + 1e-9),
            "{}: replay T({}) = {m:.1}µs beats the span {span_us:.1}µs — \
             the DAG is missing a dependence",
            w.name,
            WORKER_SWEEP[i],
        );
        assert!(
            ratio(m, p) <= RATIO_CAP,
            "{}: measured T({}) = {m:.1}µs exceeds {RATIO_CAP}x the \
             predicted {p:.1}µs (+{NOISE_FLOOR_US}µs noise floor) — the \
             cost model lost contact with the kernels",
            w.name,
            WORKER_SWEEP[i],
        );
    }
    WorkloadResult {
        name: w.name,
        slots: w.program.slots(),
        nodes: graph.nodes().len(),
        span_us,
        predicted,
        measured,
        fused_t,
        wall_us,
        speedup_at_4,
        max_ratio,
        fused_pairs: fused_run.fused,
        hoisted_groups: fused_run.hoisted_groups,
        safety_obligations: fused_run.safety_obligations,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let size = if args.fast { Size::Test } else { Size::Paper };
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let results: Vec<WorkloadResult> = suite(size)
        .iter()
        .map(|w| bench_workload(w, cores))
        .collect();

    print_table(
        &[
            "workload",
            "nodes",
            "span ms",
            "T(1) ms",
            "T(4) meas",
            "T(4) pred",
            "T(4) fused",
            "speedup@4",
            "max ratio",
        ],
        &results
            .iter()
            .map(|r| {
                vec![
                    r.name.to_string(),
                    format!("{}", r.nodes),
                    format!("{:.2}", r.span_us / 1e3),
                    format!("{:.2}", r.measured[0] / 1e3),
                    format!("{:.2}", r.measured[2] / 1e3),
                    format!("{:.2}", r.predicted[2] / 1e3),
                    format!("{:.2}", r.fused_t[2] / 1e3),
                    format!("{:.2}x", r.speedup_at_4),
                    format!("{:.3}", r.max_ratio),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let fast_enough = results
        .iter()
        .filter(|r| r.speedup_at_4 >= SPEEDUP_FLOOR)
        .count();
    let max_ratio_overall = results.iter().map(|r| r.max_ratio).fold(0.0, f64::max);
    let total_fused_t4_us: f64 = results.iter().map(|r| r.fused_t[2]).sum();
    eprintln!(
        "{fast_enough}/{} workloads reach {SPEEDUP_FLOOR}x at 4 workers; \
         max measured/predicted ratio {max_ratio_overall:.3} (host cores: {cores})",
        results.len()
    );

    let json = Json::obj([
        // Virtual time: T(k) replays measured per-op latencies through the
        // depgraph's list schedule, so the series is exact on any host;
        // `wall` holds real walk times for every k the host has cores for.
        ("mode", Json::from("virtual")),
        ("size", Json::from(if args.fast { "test" } else { "paper" })),
        ("host_cores", Json::from(cores)),
        (
            "workers",
            Json::Array(WORKER_SWEEP.iter().map(|&k| Json::from(k)).collect()),
        ),
        (
            "workloads",
            Json::Array(results.iter().map(workload_json).collect()),
        ),
        ("speedups_ge_floor", Json::from(fast_enough)),
        ("max_ratio_overall", Json::from(max_ratio_overall)),
        ("total_fused_t4_us", Json::from(total_fused_t4_us)),
    ]);
    if let Some(path) = &args.json {
        std::fs::write(path, format!("{json}\n"))
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }

    if let Some(baseline_path) = &args.check_baseline {
        let committed = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", baseline_path.display()));
        if fast_enough < SPEEDUP_WORKLOADS {
            eprintln!(
                "FAIL: only {fast_enough} workloads reach {SPEEDUP_FLOOR}x at 4 workers \
                 (need {SPEEDUP_WORKLOADS})"
            );
            return ExitCode::FAILURE;
        }
        if max_ratio_overall > RATIO_CAP {
            eprintln!("FAIL: measured/predicted ratio {max_ratio_overall:.3} exceeds {RATIO_CAP}");
            return ExitCode::FAILURE;
        }
        let committed_t4 =
            json_number(&committed, "total_fused_t4_us").expect("baseline has total_fused_t4_us");
        if total_fused_t4_us > committed_t4 * 1.2 {
            eprintln!(
                "FAIL: total fused T(4) {total_fused_t4_us:.0}µs regressed >20% over \
                 committed {committed_t4:.0}µs"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("baseline check passed");
    }
    ExitCode::SUCCESS
}
