//! The abstract-interpretation engine.
//!
//! An [`AbstractDomain`] assigns every SSA value an abstract value and
//! defines one transfer function per op. Because IR programs are DAGs in
//! topological order (every operand id precedes its user), a single forward
//! sweep *is* the complete analysis — there are no loops, hence no joins,
//! widening, or fixpoint iteration.

use fhe_ir::{Program, ScaleMap, ValueId};

/// Context handed to every transfer function: the program under analysis
/// and, when it is a scheduled program, the validator-derived scale map.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisCx<'a> {
    /// The program being interpreted (source or scheduled).
    pub program: &'a Program,
    /// Per-value scale/level, when analyzing a scheduled program
    /// (domains that need scales — e.g. noise — require it).
    pub scales: Option<&'a ScaleMap>,
}

impl<'a> AnalysisCx<'a> {
    /// Context for a source program (no scale information).
    pub fn source(program: &'a Program) -> Self {
        AnalysisCx {
            program,
            scales: None,
        }
    }

    /// Context for a scheduled program with its validated scale map.
    pub fn scheduled(program: &'a Program, scales: &'a ScaleMap) -> Self {
        AnalysisCx {
            program,
            scales: Some(scales),
        }
    }
}

/// A lattice domain interpreted forward over the DAG.
pub trait AbstractDomain {
    /// Abstract value attached to each SSA value.
    type Value: Clone;

    /// Computes the abstract value of `id` from its operands' values
    /// (`args` parallels `program.op(id).operands()`).
    fn transfer(&self, cx: &AnalysisCx<'_>, id: ValueId, args: &[Self::Value]) -> Self::Value;
}

/// Interprets `domain` over the whole program; returns one abstract value
/// per SSA value, indexed by [`ValueId::index`].
pub fn analyze<D: AbstractDomain>(domain: &D, cx: &AnalysisCx<'_>) -> Vec<D::Value> {
    let mut values: Vec<D::Value> = Vec::with_capacity(cx.program.num_ops());
    let mut args: Vec<D::Value> = Vec::with_capacity(2);
    for id in cx.program.ids() {
        args.clear();
        args.extend(
            cx.program
                .op(id)
                .operands()
                .map(|o| values[o.index()].clone()),
        );
        values.push(domain.transfer(cx, id, &args));
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::{Builder, Op};

    /// A toy domain: counts the ops feeding each value (including itself).
    struct OpCount;
    impl AbstractDomain for OpCount {
        type Value = usize;
        fn transfer(&self, _cx: &AnalysisCx<'_>, _id: ValueId, args: &[usize]) -> usize {
            1 + args.iter().sum::<usize>()
        }
    }

    #[test]
    fn forward_sweep_visits_in_topological_order() {
        let b = Builder::new("t", 4);
        let x = b.input("x");
        let p = b.finish(vec![x.clone() * x]);
        let counts = analyze(&OpCount, &AnalysisCx::source(&p));
        assert_eq!(counts, vec![1, 3]); // input, mul(input, input)
        assert!(matches!(p.op(ValueId(1)), Op::Mul(..)));
    }
}
