//! Translation validation: prove a compiler's scheduled program equals its
//! source modulo inserted scale management.
//!
//! Every compiler in the workspace first runs the shared cleanup pipeline
//! (deterministic CSE/DCE/folding to fixpoint), then inserts
//! `rescale`/`modswitch`/`upscale` ops — which are message-transparent by
//! the semantics of Table 2. So a schedule is a correct translation iff
//! stripping scale-management ops yields a DAG structurally equal to
//! `cleanup(source)`. [`validate`] checks this by bisimulation from the
//! outputs: each scheduled value is matched to a cleaned-source value with
//! the same op, equal immediate attributes (input name, constant bits,
//! rotation offset), and recursively matched operands, memoized so shared
//! subgraphs are visited once and a value can never match two different
//! source values.

use std::collections::HashMap;
use std::fmt;

use fhe_ir::{passes, Op, Program, ScheduledProgram, ValueId};

/// Evidence of a successful validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TvReport {
    /// Distinct scheduled values matched to source values.
    pub matched: usize,
    /// Scale-management ops stripped while following operands.
    pub scale_management_ops: usize,
}

/// The first structural mismatch found.
#[derive(Debug, Clone, PartialEq)]
pub struct TvMismatch {
    /// Scheduled-program value at the mismatch, if op-local.
    pub scheduled_op: Option<ValueId>,
    /// What differed.
    pub detail: String,
}

impl TvMismatch {
    fn program(detail: impl Into<String>) -> Self {
        TvMismatch {
            scheduled_op: None,
            detail: detail.into(),
        }
    }

    fn at(op: ValueId, detail: impl Into<String>) -> Self {
        TvMismatch {
            scheduled_op: Some(op),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for TvMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.scheduled_op {
            Some(op) => write!(f, "at {op}: {}", self.detail),
            None => f.write_str(&self.detail),
        }
    }
}

/// Follows scale-management ops down to the arithmetic value they wrap.
fn strip(program: &Program, mut id: ValueId, stripped: &mut usize) -> ValueId {
    loop {
        match program.op(id) {
            Op::Rescale(a) | Op::ModSwitch(a) | Op::Upscale(a, _) => {
                *stripped += 1;
                id = *a;
            }
            _ => return id,
        }
    }
}

/// Proves `scheduled` computes the same function as `source`, modulo
/// inserted scale management and the shared cleanup canonicalization.
///
/// # Errors
///
/// Returns the first structural mismatch — which, for the compilers in
/// this workspace, indicates a compiler bug (the fuzz oracle surfaces it
/// as a divergence).
pub fn validate(source: &Program, scheduled: &ScheduledProgram) -> Result<TvReport, TvMismatch> {
    let target = passes::cleanup(source);
    let sp = &scheduled.program;

    if sp.slots() != target.slots() {
        return Err(TvMismatch::program(format!(
            "slot count changed: {} vs source {}",
            sp.slots(),
            target.slots()
        )));
    }
    if sp.outputs().len() != target.outputs().len() {
        return Err(TvMismatch::program(format!(
            "output count changed: {} vs source {}",
            sp.outputs().len(),
            target.outputs().len()
        )));
    }

    let mut stripped = 0usize;
    // sched value -> cleaned-source value it must bisimulate.
    let mut memo: HashMap<ValueId, ValueId> = HashMap::new();
    let mut work: Vec<(ValueId, ValueId)> = sp
        .outputs()
        .iter()
        .zip(target.outputs())
        .map(|(&s, &t)| {
            (
                strip(sp, s, &mut stripped),
                strip(&target, t, &mut stripped),
            )
        })
        .collect();

    while let Some((s, t)) = work.pop() {
        match memo.get(&s) {
            Some(&prev) if prev == t => continue,
            Some(&prev) => {
                return Err(TvMismatch::at(
                    s,
                    format!("matches two source values ({prev} and {t})"),
                ));
            }
            None => {
                memo.insert(s, t);
            }
        }
        let push_operands = |work: &mut Vec<(ValueId, ValueId)>,
                             stripped: &mut usize,
                             pairs: &[(ValueId, ValueId)]| {
            for &(a, b) in pairs {
                work.push((strip(sp, a, stripped), strip(&target, b, stripped)));
            }
        };
        match (sp.op(s), target.op(t)) {
            (Op::Input { name: a }, Op::Input { name: b }) if a == b => {}
            (Op::Const { value: a }, Op::Const { value: b }) if a == b => {}
            (Op::Add(a1, a2), Op::Add(b1, b2))
            | (Op::Sub(a1, a2), Op::Sub(b1, b2))
            | (Op::Mul(a1, a2), Op::Mul(b1, b2)) => {
                push_operands(&mut work, &mut stripped, &[(*a1, *b1), (*a2, *b2)]);
            }
            (Op::Neg(a), Op::Neg(b)) => {
                push_operands(&mut work, &mut stripped, &[(*a, *b)]);
            }
            (Op::Rotate(a, ka), Op::Rotate(b, kb)) if ka == kb => {
                push_operands(&mut work, &mut stripped, &[(*a, *b)]);
            }
            (sop, top) => {
                return Err(TvMismatch::at(
                    s,
                    format!(
                        "scheduled `{}` does not bisimulate source {t} `{}`",
                        sop.mnemonic(),
                        top.mnemonic()
                    ),
                ));
            }
        }
    }

    Ok(TvReport {
        matched: memo.len(),
        scale_management_ops: stripped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::{Builder, CompileParams, Frac, InputSpec};

    fn source() -> Program {
        let b = Builder::new("tv", 8);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        b.finish(vec![q])
    }

    /// A faithful hand-made schedule: cleanup(source) plus an upscale and a
    /// rescale, inputs encoded at waterline scale.
    fn faithful_schedule() -> ScheduledProgram {
        let cleaned = passes::cleanup(&source());
        let mut p = Program::new(cleaned.name(), cleaned.slots());
        let mut map: Vec<ValueId> = Vec::new();
        for id in cleaned.ids() {
            let op = cleaned.op(id).map_operands(|o| map[o.index()]);
            map.push(p.push(op));
        }
        // Wrap the final output in upscale→rescale (net scale −20 bits).
        let out = map[cleaned.outputs()[0].index()];
        let up = p.push(Op::Upscale(out, Frac::from(40)));
        let rs = p.push(Op::Rescale(up));
        p.set_outputs(vec![rs]);
        let spec = InputSpec {
            scale_bits: Frac::from(20),
            level: 4,
        };
        ScheduledProgram {
            program: p,
            params: CompileParams::new(20),
            inputs: vec![spec, spec],
        }
    }

    #[test]
    fn faithful_schedule_validates() {
        let report = validate(&source(), &faithful_schedule()).expect("bisimulation");
        assert!(report.matched >= 7, "matched {}", report.matched);
        assert_eq!(report.scale_management_ops, 2);
    }

    #[test]
    fn wrong_rotation_offset_is_caught() {
        let b = Builder::new("r", 8);
        let x = b.input("x");
        let src = b.finish(vec![x.rotate(2)]);
        let mut p = Program::new("r", 8);
        let xi = p.push(Op::Input { name: "x".into() });
        let rot = p.push(Op::Rotate(xi, 3)); // compiler "bug": offset drifted
        p.set_outputs(vec![rot]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(20),
            inputs: vec![InputSpec {
                scale_bits: Frac::from(20),
                level: 1,
            }],
        };
        let err = validate(&src, &s).unwrap_err();
        assert!(err.detail.contains("rotate"), "{err}");
    }

    #[test]
    fn swapped_operand_consts_are_caught() {
        let b = Builder::new("c", 4);
        let x = b.input("x");
        let diff = x.clone() - b.constant(2.0);
        let src = b.finish(vec![diff]);
        let mut p = Program::new("c", 4);
        let xi = p.push(Op::Input { name: "x".into() });
        let c = p.push(Op::Const { value: 3.0.into() }); // wrong constant
        let sub = p.push(Op::Sub(xi, c));
        p.set_outputs(vec![sub]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(20),
            inputs: vec![InputSpec {
                scale_bits: Frac::from(20),
                level: 1,
            }],
        };
        let err = validate(&src, &s).unwrap_err();
        assert!(err.detail.contains("bisimulate"), "{err}");
    }

    #[test]
    fn shared_subgraphs_cannot_match_two_sources() {
        // Source: (x·x) + (y·y); schedule returns (x·x) + (x·x). The
        // second operand strips to the same mul as the first, which must
        // fail to match y·y.
        let b = Builder::new("s", 4);
        let x = b.input("x");
        let y = b.input("y");
        let src = b.finish(vec![x.clone() * x + y.clone() * y]);
        let mut p = Program::new("s", 4);
        let xi = p.push(Op::Input { name: "x".into() });
        let _yi = p.push(Op::Input { name: "y".into() });
        let xx = p.push(Op::Mul(xi, xi));
        let add = p.push(Op::Add(xx, xx));
        p.set_outputs(vec![add]);
        let spec = InputSpec {
            scale_bits: Frac::from(20),
            level: 2,
        };
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(20),
            inputs: vec![spec, spec],
        };
        assert!(validate(&src, &s).is_err());
    }
}
