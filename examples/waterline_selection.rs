//! Automatic waterline selection: pick the cheapest waterline whose static
//! error bound meets an accuracy target, then confirm the choice under real
//! encryption.
//!
//! ```sh
//! cargo run --example waterline_selection --release
//! ```

use fhe_reserve::prelude::*;
use fhe_reserve::runtime::{self, select_waterline, ErrorEstimateOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let slots = 128;
    let b = Builder::new("select", slots);
    let x = b.input("x");
    let y = b.input("y");
    let out = (x.clone() * y.clone() + x.clone().rotate(1)) * (x + y);
    let program = b.finish(vec![out]);

    let compile_at = |wl: u32| {
        let mut o = Options::new(wl);
        o.params.output_reserve_bits = 4;
        fhe_reserve::compiler::compile(&program, &o)
            .ok()
            .map(|c| c.scheduled)
    };

    // Require the worst-case output error below 2^-16.
    let target = -16.0;
    let (waterline, scheduled) = select_waterline(
        15..=55,
        compile_at,
        target,
        &ErrorEstimateOptions::default(),
    )
    .expect("some waterline meets the target");
    let est = runtime::estimate(&scheduled, &CostModel::paper_table3()).unwrap();
    println!(
        "selected waterline 2^{waterline} for target 2^{target}: \
         level {}, estimated {:.1} ms",
        scheduled.validate().unwrap().max_level(),
        est.total_us / 1000.0
    );

    // Confirm under real encryption.
    let mut inputs = std::collections::HashMap::new();
    inputs.insert(
        "x".to_string(),
        (0..slots).map(|i| (i as f64 * 0.07).sin()).collect(),
    );
    inputs.insert(
        "y".to_string(),
        (0..slots).map(|i| (i as f64 * 0.13).cos()).collect(),
    );
    let report = runtime::execute_encrypted(
        &scheduled,
        &inputs,
        &runtime::ExecOptions {
            poly_degree: 2 * slots,
            seed: 8,
            threads: 1,
            ..runtime::ExecOptions::default()
        },
    )
    .unwrap();
    println!(
        "measured encrypted error: 2^{:.1} (target 2^{target})",
        report.max_abs_error().max(f64::MIN_POSITIVE).log2()
    );
    assert!(report.max_abs_error().log2() <= target);
    Ok(())
}
