//! Backward reserve allocation (§6.2) and reserve redistribution (§6.3).
//!
//! Walking the allocation order (users before operands), each ciphertext
//! value's reserve is the maximum of its *reserve-ins* — the operand
//! reserves its users demand, derived from the typing rules of Fig. 5:
//!
//! - add/neg/rotate pass the result reserve through;
//! - cipher×plain demands `ρ + ω`;
//! - cipher×cipher splits evenly: `ρ₁ = ρ₂ = (l + ρ)/2`, `l = ⌈ρ + 2ω⌉`.
//!
//! When a multiplication's operand level `⌈ρ + 2ω⌉` exceeds its result's
//! principal level `⌈ρ + ω⌉` (a *level mismatch*, costing a rescale and a
//! level), redistribution tries to shave the overflowing fraction
//! `{ρ + 2ω}` off the result reserve by shifting budget onto sibling
//! operands of its users — free when the sibling has lower priority, bounded
//! by the sibling's allocated slack otherwise, and never allowed to change a
//! principal level.

use fhe_ir::{CompileParams, Frac, Op, Program, ValueId};

use crate::ordering::AllocationOrder;

/// A reserve demanded of a value by one consumer.
#[derive(Debug, Clone, Copy)]
struct ReserveIn {
    /// The consuming op and which of its operand slots this edge feeds
    /// (`None` for the program-output edge).
    user: Option<(ValueId, usize)>,
    /// The demanded relative reserve.
    req: Frac,
}

/// The result of reserve analysis: per-value reserves and per-edge operand
/// requirements, ready for rescale placement.
#[derive(Debug, Clone)]
pub struct ReserveSolution {
    /// Relative reserve `ρ` of each ciphertext value (`None` for plaintext
    /// values, which have no reserve).
    pub reserve: Vec<Option<Frac>>,
    /// Per op, the relative reserve demanded of each operand slot (`None`
    /// for plaintext operands or absent slots).
    pub operand_req: Vec<[Option<Frac>; 2]>,
    /// Which multiplications remain level-mismatched (need a rescale).
    pub level_mismatch: Vec<bool>,
}

impl ReserveSolution {
    /// The principal level of value `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a plaintext value.
    pub fn principal_level(&self, params: &CompileParams, id: ValueId) -> u32 {
        params.principal_level(self.reserve[id.index()].expect("cipher value"))
    }

    /// The operand level of multiplication `id` (`max(⌈ρ + 2ω⌉, 1)`).
    pub fn mul_operand_level(&self, params: &CompileParams, id: ValueId) -> u32 {
        let rho = self.reserve[id.index()].expect("cipher value");
        let l = (rho + params.omega() + params.omega()).ceil().max(1);
        l as u32
    }
}

/// One reversible mutation of the allocator state.
#[derive(Debug, Clone, Copy)]
enum Undo {
    ReserveIn {
        value: ValueId,
        idx: usize,
        old: Frac,
    },
    OperandReq {
        op: ValueId,
        slot: usize,
        old: Option<Frac>,
    },
    Reserve {
        value: ValueId,
        old: Option<Frac>,
    },
}

struct Allocator<'p> {
    program: &'p Program,
    params: CompileParams,
    redistribute: bool,
    reserve: Vec<Option<Frac>>,
    operand_req: Vec<[Option<Frac>; 2]>,
    reserve_ins: Vec<Vec<ReserveIn>>,
    allocated: Vec<bool>,
}

/// Runs reserve allocation over the given order. `redistribute` enables the
/// §6.3 pass (the paper's RA/full configurations; the BA baseline disables
/// it).
pub fn allocate(
    program: &Program,
    params: &CompileParams,
    order: &AllocationOrder,
    redistribute: bool,
) -> ReserveSolution {
    let n = program.num_ops();
    let mut alloc = Allocator {
        program,
        params: *params,
        redistribute,
        reserve: vec![None; n],
        operand_req: vec![[None, None]; n],
        reserve_ins: vec![Vec::new(); n],
        allocated: vec![false; n],
    };
    // Output edges demand the configured output reserve.
    let out_reserve = params.to_relative(Frac::from(params.output_reserve_bits));
    for &o in program.outputs() {
        if program.is_cipher(o) {
            alloc.reserve_ins[o.index()].push(ReserveIn {
                user: None,
                req: out_reserve,
            });
        }
    }
    for &v in &order.order {
        alloc.allocate_value(v);
    }
    let level_mismatch = program
        .ids()
        .map(|id| alloc.is_level_mismatch(id))
        .collect();
    ReserveSolution {
        reserve: alloc.reserve,
        operand_req: alloc.operand_req,
        level_mismatch,
    }
}

impl<'p> Allocator<'p> {
    fn omega(&self) -> Frac {
        self.params.omega()
    }

    fn max_reserve_in(&self, v: ValueId) -> Frac {
        self.reserve_ins[v.index()]
            .iter()
            .map(|r| r.req)
            .fold(Frac::ZERO, Frac::max)
    }

    fn allocate_value(&mut self, v: ValueId) {
        if self.program.is_plain(v) {
            return;
        }
        let mut rho = self.max_reserve_in(v);

        // §6.3: try to remove an avoidable level mismatch before fixing ρ.
        if self.redistribute && self.mul_mismatch_at(v, rho) {
            let delta = (rho + self.omega() + self.omega()).paper_frac();
            let target = rho - delta;
            if self.try_reduce_reserve_ins(v, target) {
                rho = target;
                debug_assert!(!self.mul_mismatch_at(v, rho));
            }
        }

        self.reserve[v.index()] = Some(rho);
        self.allocated[v.index()] = true;
        self.push_operand_requirements(v, rho);
    }

    /// Whether `v` (if a multiplication) would be level-mismatched at
    /// reserve `rho`.
    fn mul_mismatch_at(&self, v: ValueId, rho: Frac) -> bool {
        if !matches!(self.program.op(v), Op::Mul(..)) {
            return false;
        }
        let w = self.omega();
        let operand_level = (rho + w + w).ceil().max(1);
        let result_level = (rho + w).ceil().max(1);
        operand_level != result_level
    }

    fn is_level_mismatch(&self, v: ValueId) -> bool {
        match self.reserve[v.index()] {
            Some(rho) => self.mul_mismatch_at(v, rho),
            None => false,
        }
    }

    /// Derives operand requirements from the typing rules and registers the
    /// reserve-ins on the operands.
    fn push_operand_requirements(&mut self, v: ValueId, rho: Frac) {
        let p = self.program;
        let w = self.omega();
        let ops: Vec<ValueId> = p.op(v).operands().collect();
        match p.op(v) {
            Op::Input { .. } | Op::Const { .. } => {}
            Op::Rescale(_) | Op::ModSwitch(_) | Op::Upscale(..) => {
                panic!("reserve analysis expects a program without scale management ops")
            }
            Op::Add(..) | Op::Sub(..) | Op::Neg(_) | Op::Rotate(..) => {
                for (slot, &o) in ops.iter().enumerate() {
                    if p.is_cipher(o) {
                        self.add_edge(v, slot, o, rho);
                    }
                }
            }
            Op::Mul(a, b) => match (p.is_cipher(*a), p.is_cipher(*b)) {
                (true, true) => {
                    let l = Frac::from((rho + w + w).ceil().max(1));
                    let half = (l + rho) / Frac::from(2);
                    self.add_edge(v, 0, *a, half);
                    self.add_edge(v, 1, *b, half);
                }
                (true, false) => self.add_edge(v, 0, *a, rho + w),
                (false, true) => self.add_edge(v, 1, *b, rho + w),
                (false, false) => unreachable!("plain values are skipped"),
            },
        }
    }

    fn add_edge(&mut self, user: ValueId, slot: usize, operand: ValueId, req: Frac) {
        self.operand_req[user.index()][slot] = Some(req);
        self.reserve_ins[operand.index()].push(ReserveIn {
            user: Some((user, slot)),
            req,
        });
    }

    /// Attempts to lower every reserve-in of `v` to at most `target`,
    /// redistributing overflow onto sibling operands (or recursively through
    /// pass-through users). Returns `false` (with no state change) if any
    /// edge cannot be lowered.
    fn try_reduce_reserve_ins(&mut self, v: ValueId, target: Frac) -> bool {
        // Mutations are journaled and rolled back on failure (cloning the
        // whole analysis state per attempt is quadratic on LeNet-sized
        // programs).
        //
        // The inner pass walks a snapshot of `v`'s reserve-ins, but a
        // recursive shift can *re-raise* an already-lowered edge: shrinking
        // a shared user pushes its overflow onto a sibling slot, and when
        // `v` feeds that user through both slots (e.g. `mul(x, f(x))`) the
        // sibling is `v` itself. Re-checking the maximum after the pass
        // catches that; the attempt then rolls back and the mismatch stays
        // (costing a level, but keeping the solution well-typed).
        let mut journal = Vec::new();
        if self.reduce_reserve_ins_inner(v, target, &mut journal)
            && self.max_reserve_in(v) <= target
        {
            true
        } else {
            for undo in journal.into_iter().rev() {
                match undo {
                    Undo::ReserveIn { value, idx, old } => {
                        self.reserve_ins[value.index()][idx].req = old;
                    }
                    Undo::OperandReq { op, slot, old } => {
                        self.operand_req[op.index()][slot] = old;
                    }
                    Undo::Reserve { value, old } => {
                        self.reserve[value.index()] = old;
                    }
                }
            }
            false
        }
    }

    fn reduce_reserve_ins_inner(
        &mut self,
        v: ValueId,
        target: Frac,
        journal: &mut Vec<Undo>,
    ) -> bool {
        if target < Frac::ZERO {
            return false;
        }
        let entries: Vec<ReserveIn> = self.reserve_ins[v.index()].clone();
        for (i, entry) in entries.iter().enumerate() {
            if entry.req <= target {
                continue;
            }
            let delta = entry.req - target;
            let Some((user, slot)) = entry.user else {
                return false; // the program-output demand is fixed
            };
            if !self.shift_edge(user, slot, v, delta, journal) {
                return false;
            }
            journal.push(Undo::ReserveIn {
                value: v,
                idx: i,
                old: self.reserve_ins[v.index()][i].req,
            });
            self.reserve_ins[v.index()][i].req = target;
        }
        true
    }

    /// Lowers the demand of `user`'s operand `slot` (feeding `v`) by
    /// `delta`, compensating per the §6.3 rules.
    fn shift_edge(
        &mut self,
        user: ValueId,
        slot: usize,
        v: ValueId,
        delta: Frac,
        journal: &mut Vec<Undo>,
    ) -> bool {
        let p = self.program;
        let w = self.omega();
        match p.op(user).clone() {
            Op::Mul(a, b) if p.is_cipher(a) && p.is_cipher(b) => {
                if a == b {
                    return false; // squaring: both demands are one edge
                }
                let other_slot = 1 - slot;
                let sibling = if other_slot == 0 { a } else { b };
                let my_req = self.operand_req[user.index()][slot].expect("edge exists");
                let sib_req = self.operand_req[user.index()][other_slot].expect("edge exists");
                let l_user = Frac::from((my_req + w).ceil().max(1));
                let new_sib = sib_req + delta;
                // The sibling's principal level must not change (§6.3).
                if new_sib + w > l_user {
                    return false;
                }
                // A higher-priority (already allocated) sibling can only
                // absorb up to its allocated reserve.
                if self.allocated[sibling.index()] {
                    let sib_alloc = self.reserve[sibling.index()].expect("allocated cipher");
                    if new_sib > sib_alloc {
                        return false;
                    }
                }
                journal.push(Undo::OperandReq {
                    op: user,
                    slot,
                    old: self.operand_req[user.index()][slot],
                });
                self.operand_req[user.index()][slot] = Some(my_req - delta);
                journal.push(Undo::OperandReq {
                    op: user,
                    slot: other_slot,
                    old: self.operand_req[user.index()][other_slot],
                });
                self.operand_req[user.index()][other_slot] = Some(new_sib);
                self.update_reserve_in(sibling, user, other_slot, new_sib, journal);
                true
            }
            Op::Add(..) | Op::Sub(..) | Op::Neg(_) | Op::Rotate(..) => {
                // Pass-through: the user's own reserve must shrink by delta.
                let user_rho = self.reserve[user.index()].expect("user allocated");
                let new_rho = user_rho - delta;
                // The max is re-checked after the nested reduction: a shift
                // deeper in the chain can re-raise one of `user`'s edges
                // against its *old* (higher) reserve — the snapshot the
                // inner walk took no longer covers it.
                if !self.reduce_reserve_ins_inner(user, new_rho, journal)
                    || self.max_reserve_in(user) > new_rho
                {
                    return false;
                }
                journal.push(Undo::Reserve {
                    value: user,
                    old: self.reserve[user.index()],
                });
                self.reserve[user.index()] = Some(new_rho);
                // All cipher operand demands of the user drop to new_rho.
                let ops: Vec<ValueId> = p.op(user).operands().collect();
                for (s, &o) in ops.iter().enumerate() {
                    if p.is_cipher(o) {
                        journal.push(Undo::OperandReq {
                            op: user,
                            slot: s,
                            old: self.operand_req[user.index()][s],
                        });
                        self.operand_req[user.index()][s] = Some(new_rho);
                        self.update_reserve_in(o, user, s, new_rho, journal);
                    }
                }
                true
            }
            Op::Mul(..) => {
                // cipher×plain: demand is ρ_user + ω; shrink the user.
                let user_rho = self.reserve[user.index()].expect("user allocated");
                let new_rho = user_rho - delta;
                // See the pass-through branch for why the max is re-checked.
                if !self.reduce_reserve_ins_inner(user, new_rho, journal)
                    || self.max_reserve_in(user) > new_rho
                {
                    return false;
                }
                journal.push(Undo::Reserve {
                    value: user,
                    old: self.reserve[user.index()],
                });
                self.reserve[user.index()] = Some(new_rho);
                journal.push(Undo::OperandReq {
                    op: user,
                    slot,
                    old: self.operand_req[user.index()][slot],
                });
                self.operand_req[user.index()][slot] = Some(new_rho + w);
                self.update_reserve_in(v, user, slot, new_rho + w, journal);
                true
            }
            Op::Input { .. } | Op::Const { .. } => unreachable!("inputs have no operands"),
            Op::Rescale(_) | Op::ModSwitch(_) | Op::Upscale(..) => {
                unreachable!("no scale management ops during analysis")
            }
        }
    }

    fn update_reserve_in(
        &mut self,
        operand: ValueId,
        user: ValueId,
        slot: usize,
        req: Frac,
        journal: &mut Vec<Undo>,
    ) {
        for (idx, entry) in self.reserve_ins[operand.index()].iter_mut().enumerate() {
            if entry.user == Some((user, slot)) {
                journal.push(Undo::ReserveIn {
                    value: operand,
                    idx,
                    old: entry.req,
                });
                entry.req = req;
                return;
            }
        }
        unreachable!("reserve-in edge must exist");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::allocation_order;
    use fhe_ir::{Builder, CostModel};

    fn fig2a() -> (Program, [ValueId; 7]) {
        let b = Builder::new("fig2a", 8);
        let x = b.input("x");
        let y = b.input("y");
        let x2 = x.clone() * x.clone();
        let x3 = x.clone() * x2.clone();
        let y2 = y.clone() * y.clone();
        let s = y2.clone() + y.clone();
        let q = x3.clone() * s.clone();
        let ids = [x.id(), y.id(), x2.id(), x3.id(), y2.id(), s.id(), q.id()];
        (b.finish(vec![q]), ids)
    }

    fn solve(redistribute: bool) -> (Program, [ValueId; 7], ReserveSolution, CompileParams) {
        let (p, ids) = fig2a();
        let params = CompileParams::new(20);
        let order = allocation_order(&p, &params, &CostModel::paper_table3());
        let sol = allocate(&p, &params, &order, redistribute);
        (p, ids, sol, params)
    }

    fn bits(params: &CompileParams, rho: Frac) -> Frac {
        params.to_bits(rho)
    }

    #[test]
    fn allocation_without_redistribution_matches_fig3c() {
        let (_, [x, y, x2, x3, y2, s, q], sol, params) = solve(false);
        let r = |v: ValueId| bits(&params, sol.reserve[v.index()].unwrap());
        // Fig. 3c: q 0 (→ operands 30), x3 30, s 30, x2/y2 via l=2 splits.
        assert_eq!(r(q), Frac::ZERO);
        assert_eq!(r(x3), Frac::from(30));
        assert_eq!(r(s), Frac::from(30));
        // x3 mismatch at ρ=30/60: ⌈30/60+40/60⌉=2 vs ⌈50/60⌉=1.
        assert!(sol.level_mismatch[x3.index()]);
        // x3's operands each get (2·60 + 30)/2 = 75 bits.
        assert_eq!(r(x2), Frac::from(75));
        // x gets max(75 from x3, ops from x2): x2 at ρ=75/60 ⇒ l=⌈75/60+40/60⌉=2,
        // split (120+75)/2 = 97.5 bits (shown truncated as 97 in Fig. 3c).
        assert_eq!(r(x), Frac::ratio(195, 2));
        // s passes 30 through to y2 and y; y2's operand demand (120+30)/2=75
        // then makes y = max(30, 75) = 75.
        assert_eq!(r(y2), Frac::from(30));
        assert_eq!(r(y), Frac::from(75));
    }

    #[test]
    fn redistribution_matches_fig3d() {
        let (_, [x, y, x2, x3, y2, s, q], sol, params) = solve(true);
        let r = |v: ValueId| bits(&params, sol.reserve[v.index()].unwrap());
        assert_eq!(r(q), Frac::ZERO);
        // x3's mismatch is repaired: 30 → 20, shifting 10 onto s (30 → 40).
        assert_eq!(r(x3), Frac::from(20));
        assert_eq!(r(s), Frac::from(40));
        assert!(!sol.level_mismatch[x3.index()]);
        // x3 now at l=1: operands (60+20)/2 = 40 each.
        assert_eq!(r(x2), Frac::from(40));
        // x2 at ρ=40/60: l=⌈40/60+40/60⌉=2 mismatch; its redistribution
        // fails (x would need reserve 60 at level 1), so split (120+40)/2=80.
        assert!(sol.level_mismatch[x2.index()]);
        assert_eq!(r(x), Frac::from(80));
        // y2 takes 40 from s, mismatched the same way; y = max(80, 40) = 80.
        assert_eq!(r(y2), Frac::from(40));
        assert!(sol.level_mismatch[y2.index()]);
        assert_eq!(r(y), Frac::from(80));
    }

    #[test]
    fn principal_levels_follow_reserves() {
        let (_, [x, _, _, x3, _, _, q], sol, params) = solve(true);
        assert_eq!(sol.principal_level(&params, q), 1);
        assert_eq!(sol.principal_level(&params, x3), 1);
        assert_eq!(sol.principal_level(&params, x), 2);
        assert_eq!(sol.mul_operand_level(&params, q), 1);
    }

    #[test]
    fn square_cannot_redistribute() {
        // x²·c chain where the only user is a square: redistribution must
        // leave the mismatch in place rather than corrupt state.
        let b = Builder::new("sq", 4);
        let x = b.input("x");
        let x2 = x.clone() * x.clone();
        let x4 = x2.clone() * x2.clone();
        let p = b.finish(vec![x4]);
        let params = CompileParams::new(25);
        let order = allocation_order(&p, &params, &CostModel::paper_table3());
        let sol = allocate(&p, &params, &order, true);
        // Solution must still satisfy the typing rules (checked in types.rs
        // tests too); here: reserves are non-negative and defined.
        for id in p.ids() {
            if p.is_cipher(id) {
                assert!(sol.reserve[id.index()].unwrap() >= Frac::ZERO);
            }
        }
    }

    #[test]
    fn plain_mul_demands_rho_plus_omega() {
        let b = Builder::new("pm", 4);
        let x = b.input("x");
        let c = b.constant(2.0);
        let m = x.clone() * c;
        let m_id = m.id();
        let x_id = x.id();
        let p = b.finish(vec![m]);
        let params = CompileParams::new(20);
        let order = allocation_order(&p, &params, &CostModel::paper_table3());
        let sol = allocate(&p, &params, &order, true);
        assert_eq!(sol.reserve[m_id.index()].unwrap(), Frac::ZERO);
        assert_eq!(sol.reserve[x_id.index()].unwrap(), params.omega());
        assert_eq!(sol.operand_req[m_id.index()][0], Some(params.omega()));
    }

    #[test]
    fn output_reserve_is_respected() {
        let b = Builder::new("o", 4);
        let x = b.input("x");
        let y = b.input("y");
        let m = x * y;
        let m_id = m.id();
        let p = b.finish(vec![m]);
        let mut params = CompileParams::new(20);
        params.output_reserve_bits = 10;
        let order = allocation_order(&p, &params, &CostModel::paper_table3());
        let sol = allocate(&p, &params, &order, true);
        assert_eq!(
            params.to_bits(sol.reserve[m_id.index()].unwrap()),
            Frac::from(10)
        );
    }

    #[test]
    fn redistribution_diamond_stays_well_typed() {
        // Fuzzer reproducer (tests/corpus/redistribute_demand_reraise.fhe):
        // a cipher×plain chain feeding `mul(%4, f(%4))` lets a shift_edge
        // walk re-raise the demand on %4 against the snapshot reserve the
        // outer reduction already lowered, yielding a SubtypeViolation at
        // typecheck. The per-frame fixpoint guards must keep the solution
        // well-typed at every output reserve.
        for output_reserve in 0..=6 {
            let b = Builder::new("diamond", 64);
            let x = b.input("x2");
            let m2 = x * b.constant(-0.9533997746251046);
            let m4 = m2 * b.constant(1.832335992135432);
            let m6 = m4.clone() * b.constant(-0.1563696043930376);
            let q = m4 * m6;
            let p = b.finish(vec![q]);
            let mut options = crate::Options::new(35);
            options.params.output_reserve_bits = output_reserve;
            let compiled = crate::compile(&p, &options)
                .unwrap_or_else(|e| panic!("output_reserve={output_reserve}: {e}"));
            compiled
                .scheduled
                .validate()
                .unwrap_or_else(|e| panic!("output_reserve={output_reserve}: {e:?}"));
        }
    }
}
