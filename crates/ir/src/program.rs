//! SSA program representation: a DAG of RNS-CKKS operations.

use std::collections::HashMap;

use crate::op::{Op, ValueId};

/// An SSA program over encrypted vectors: the `Prg`/`F` of the paper's
/// simplified syntax (Fig. 4), without scale-management ops until a compiler
/// inserts them.
///
/// Ops are stored in topological order: every operand id is strictly smaller
/// than the id of the op using it. This invariant is enforced on insertion
/// and makes forward/backward dataflow walks trivial.
///
/// # Examples
///
/// ```
/// use fhe_ir::{Program, Op};
/// let mut p = Program::new("square", 4);
/// let x = p.push(Op::Input { name: "x".into() });
/// let x2 = p.push(Op::Mul(x, x));
/// p.set_outputs(vec![x2]);
/// assert_eq!(p.num_ops(), 2);
/// assert_eq!(p.inputs(), &[x]);
/// ```
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    slots: usize,
    ops: Vec<Op>,
    outputs: Vec<ValueId>,
    inputs: Vec<ValueId>,
    plain: Vec<bool>,
}

impl Program {
    /// Creates an empty program with the given name and SIMD slot count.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn new(name: impl Into<String>, slots: usize) -> Self {
        assert!(slots > 0, "a program must have at least one slot");
        Program {
            name: name.into(),
            slots,
            ops: Vec::new(),
            outputs: Vec::new(),
            inputs: Vec::new(),
            plain: Vec::new(),
        }
    }

    /// The program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of SIMD slots in every value.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Appends an op, returning the id of the value it defines.
    ///
    /// # Panics
    ///
    /// Panics if any operand id is out of range (violating SSA dominance).
    pub fn push(&mut self, op: Op) -> ValueId {
        let id = ValueId(self.ops.len() as u32);
        for operand in op.operands() {
            assert!(
                operand < id,
                "operand {operand} of op {} does not dominate {id}",
                op.mnemonic()
            );
        }
        let plain = match &op {
            Op::Const { .. } => true,
            Op::Input { .. } => false,
            other => other.operands().all(|o| self.plain[o.index()]),
        };
        if matches!(op, Op::Input { .. }) {
            self.inputs.push(id);
        }
        self.plain.push(plain);
        self.ops.push(op);
        id
    }

    /// Declares the program outputs (the `ret` of the paper's syntax).
    ///
    /// # Panics
    ///
    /// Panics if any output id is out of range.
    pub fn set_outputs(&mut self, outputs: Vec<ValueId>) {
        for &o in &outputs {
            assert!(o.index() < self.ops.len(), "output {o} is undefined");
        }
        self.outputs = outputs;
    }

    /// The op defining `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn op(&self, id: ValueId) -> &Op {
        &self.ops[id.index()]
    }

    /// All ops in topological (definition) order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of ops (== number of SSA values).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Ids of all values, in topological order.
    pub fn ids(&self) -> impl DoubleEndedIterator<Item = ValueId> + '_ {
        (0..self.ops.len() as u32).map(ValueId)
    }

    /// The declared outputs.
    pub fn outputs(&self) -> &[ValueId] {
        &self.outputs
    }

    /// The ciphertext inputs, in declaration order.
    pub fn inputs(&self) -> &[ValueId] {
        &self.inputs
    }

    /// Whether `id` is a plaintext value (constants and plain-only derived
    /// values); ciphertext otherwise.
    pub fn is_plain(&self, id: ValueId) -> bool {
        self.plain[id.index()]
    }

    /// Whether `id` is a ciphertext value.
    pub fn is_cipher(&self, id: ValueId) -> bool {
        !self.plain[id.index()]
    }

    /// Computes the use lists: `users()[v]` holds every op id that consumes
    /// `v` (an op using `v` twice appears twice), plus no entry for outputs.
    pub fn users(&self) -> Vec<Vec<ValueId>> {
        let mut users = vec![Vec::new(); self.ops.len()];
        for id in self.ids() {
            for operand in self.op(id).operands() {
                users[operand.index()].push(id);
            }
        }
        users
    }

    /// Counts ops by predicate.
    pub fn count_ops(&self, pred: impl Fn(&Op) -> bool) -> usize {
        self.ops.iter().filter(|op| pred(op)).count()
    }

    /// The input id with the given name, if any.
    pub fn input_named(&self, name: &str) -> Option<ValueId> {
        self.inputs.iter().copied().find(|&id| match self.op(id) {
            Op::Input { name: n } => n == name,
            _ => false,
        })
    }
}

/// Incremental rewriter that produces a new [`Program`] from an old one,
/// remapping value ids and allowing extra ops (e.g. scale management) to be
/// interleaved.
///
/// Typical pattern: walk the source in topological order, [`ProgramEditor::push`]
/// new ops as needed, and [`ProgramEditor::map_operand`]/[`ProgramEditor::set_mapping`]
/// to route uses through the freshly inserted ops.
#[derive(Debug)]
pub struct ProgramEditor<'a> {
    source: &'a Program,
    dest: Program,
    mapping: HashMap<ValueId, ValueId>,
}

impl<'a> ProgramEditor<'a> {
    /// Starts rewriting `source` into an empty program with the same name
    /// and slot count.
    pub fn new(source: &'a Program) -> Self {
        ProgramEditor {
            source,
            dest: Program::new(source.name().to_owned(), source.slots()),
            mapping: HashMap::new(),
        }
    }

    /// The program being rewritten.
    pub fn source(&self) -> &Program {
        self.source
    }

    /// The destination id currently associated with source value `old`.
    ///
    /// # Panics
    ///
    /// Panics if `old` has not been emitted or mapped yet.
    pub fn map_operand(&self, old: ValueId) -> ValueId {
        *self
            .mapping
            .get(&old)
            .unwrap_or_else(|| panic!("source value {old} has no mapping yet"))
    }

    /// Returns the mapping for `old` if one exists.
    pub fn try_map(&self, old: ValueId) -> Option<ValueId> {
        self.mapping.get(&old).copied()
    }

    /// Overrides the mapping of source value `old` to destination `new`
    /// (used to route subsequent uses through inserted scale management).
    pub fn set_mapping(&mut self, old: ValueId, new: ValueId) {
        self.mapping.insert(old, new);
    }

    /// Appends a brand-new op (already expressed in destination ids).
    pub fn push(&mut self, op: Op) -> ValueId {
        self.dest.push(op)
    }

    /// Copies the source op `old` with operands remapped through the current
    /// mapping, records `old → new`, and returns the new id.
    pub fn emit(&mut self, old: ValueId) -> ValueId {
        let op = self.source.op(old).map_operands(|o| self.map_operand(o));
        let new = self.dest.push(op);
        self.mapping.insert(old, new);
        new
    }

    /// Copies the source op `old` but with explicitly chosen destination
    /// operands, records the mapping, and returns the new id.
    pub fn emit_with(&mut self, old: ValueId, operands: &[ValueId]) -> ValueId {
        let mut it = operands.iter().copied();
        let op = self.source.op(old).map_operands(|_| {
            it.next()
                .expect("emit_with: not enough replacement operands")
        });
        assert!(
            it.next().is_none(),
            "emit_with: too many replacement operands"
        );
        let new = self.dest.push(op);
        self.mapping.insert(old, new);
        new
    }

    /// Finishes the rewrite: remaps the source outputs and returns the new
    /// program.
    ///
    /// # Panics
    ///
    /// Panics if some source output was never emitted or mapped.
    pub fn finish(mut self) -> Program {
        let outputs = self
            .source
            .outputs()
            .iter()
            .map(|&o| self.map_operand(o))
            .collect();
        self.dest.set_outputs(outputs);
        self.dest
    }

    /// Finishes with explicit outputs (already destination ids).
    pub fn finish_with_outputs(mut self, outputs: Vec<ValueId>) -> Program {
        self.dest.set_outputs(outputs);
        self.dest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::ConstValue;

    fn sample() -> Program {
        let mut p = Program::new("t", 8);
        let x = p.push(Op::Input { name: "x".into() });
        let c = p.push(Op::Const {
            value: ConstValue::Scalar(2.0),
        });
        let m = p.push(Op::Mul(x, c));
        let a = p.push(Op::Add(m, x));
        p.set_outputs(vec![a]);
        p
    }

    #[test]
    fn push_tracks_inputs_and_plainness() {
        let p = sample();
        assert_eq!(p.inputs().len(), 1);
        assert!(p.is_plain(ValueId(1)));
        assert!(p.is_cipher(ValueId(2)), "cipher × plain is cipher");
        assert!(p.is_cipher(ValueId(3)));
        assert_eq!(p.input_named("x"), Some(ValueId(0)));
        assert_eq!(p.input_named("y"), None);
    }

    #[test]
    fn plain_times_plain_is_plain() {
        let mut p = Program::new("t", 4);
        let a = p.push(Op::Const {
            value: ConstValue::Scalar(1.0),
        });
        let b = p.push(Op::Const {
            value: ConstValue::Scalar(2.0),
        });
        let m = p.push(Op::Mul(a, b));
        assert!(p.is_plain(m));
    }

    #[test]
    #[should_panic(expected = "dominate")]
    fn forward_reference_panics() {
        let mut p = Program::new("t", 4);
        p.push(Op::Neg(ValueId(5)));
    }

    #[test]
    fn users_lists_every_use() {
        let p = sample();
        let users = p.users();
        // x (id 0) is used by mul (2) and add (3).
        assert_eq!(users[0], vec![ValueId(2), ValueId(3)]);
        assert_eq!(users[2], vec![ValueId(3)]);
        assert!(users[3].is_empty());
    }

    #[test]
    fn duplicate_operand_listed_twice() {
        let mut p = Program::new("t", 4);
        let x = p.push(Op::Input { name: "x".into() });
        let sq = p.push(Op::Mul(x, x));
        p.set_outputs(vec![sq]);
        assert_eq!(p.users()[0], vec![sq, sq]);
    }

    #[test]
    fn editor_inserts_and_remaps() {
        let p = sample();
        let mut ed = ProgramEditor::new(&p);
        for id in p.ids() {
            let new = ed.emit(id);
            // Insert a rescale after the mul and route later uses through it.
            if matches!(p.op(id), Op::Mul(..)) {
                let rs = ed.push(Op::Rescale(new));
                ed.set_mapping(id, rs);
            }
        }
        let out = ed.finish();
        assert_eq!(out.num_ops(), p.num_ops() + 1);
        assert!(matches!(out.op(out.outputs()[0]), Op::Add(..)));
        let add = out.op(out.outputs()[0]);
        let ops: Vec<_> = add.operands().collect();
        assert!(matches!(out.op(ops[0]), Op::Rescale(_)));
    }

    #[test]
    #[should_panic(expected = "no mapping")]
    fn editor_unmapped_operand_panics() {
        let p = sample();
        let ed = ProgramEditor::new(&p);
        let _ = ed.map_operand(ValueId(0));
    }
}
