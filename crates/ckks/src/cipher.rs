//! Ciphertexts and (de)encryption.

use rand::Rng;

use crate::context::CkksContext;
use crate::encoding::Plaintext;
use crate::keys::{PublicKey, SecretKey};
use crate::poly::RnsPoly;

/// An RLWE ciphertext `(c0, c1)` with its CKKS metadata: decrypts to
/// `c0 + c1·s ≈ m` where `m` encodes the slot values at `scale`.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    /// Body polynomial.
    pub c0: RnsPoly,
    /// Mask polynomial.
    pub c1: RnsPoly,
    /// Active level (number of modulus limbs).
    pub level: usize,
    /// Exact current scale `m` (not a logarithm).
    pub scale: f64,
}

impl Ciphertext {
    /// log₂ of the current scale.
    pub fn scale_bits(&self) -> f64 {
        self.scale.log2()
    }
}

/// Encrypts a plaintext under the secret key (symmetric encryption).
pub fn encrypt_symmetric(
    ctx: &CkksContext,
    sk: &SecretKey,
    pt: &Plaintext,
    rng: &mut impl Rng,
) -> Ciphertext {
    let l = pt.level;
    let a = {
        let mut a = RnsPoly::uniform(ctx, ctx.max_level(), true, rng);
        a.drop_to_level(l);
        a
    };
    let mut s = sk.s.clone();
    s.drop_to_level(l);
    let mut e = RnsPoly::gaussian(ctx, l, false, rng);
    e.to_ntt(ctx);
    // c0 = −a·s + e + m.
    let mut c0 = a.mul(ctx, &s);
    c0.neg_assign(ctx);
    c0.add_assign(ctx, &e);
    c0.add_assign(ctx, &pt.poly);
    Ciphertext {
        c0,
        c1: a,
        level: l,
        scale: pt.scale,
    }
}

/// Encrypts a plaintext under the public key.
pub fn encrypt_public(
    ctx: &CkksContext,
    pk: &PublicKey,
    pt: &Plaintext,
    rng: &mut impl Rng,
) -> Ciphertext {
    let l = pt.level;
    let mut u = RnsPoly::ternary(ctx, l, false, rng);
    u.to_ntt(ctx);
    let mut e0 = RnsPoly::gaussian(ctx, l, false, rng);
    e0.to_ntt(ctx);
    let mut e1 = RnsPoly::gaussian(ctx, l, false, rng);
    e1.to_ntt(ctx);
    let mut p0 = pk.p0.clone();
    p0.drop_to_level(l);
    let mut p1 = pk.p1.clone();
    p1.drop_to_level(l);
    let mut c0 = p0.mul(ctx, &u);
    c0.add_assign(ctx, &e0);
    c0.add_assign(ctx, &pt.poly);
    let mut c1 = p1.mul(ctx, &u);
    c1.add_assign(ctx, &e1);
    Ciphertext {
        c0,
        c1,
        level: l,
        scale: pt.scale,
    }
}

/// Decrypts a ciphertext back to a plaintext (`m ≈ c0 + c1·s`).
pub fn decrypt(ctx: &CkksContext, sk: &SecretKey, ct: &Ciphertext) -> Plaintext {
    let mut s = sk.s.clone();
    s.drop_to_level(ct.level);
    let mut m = ct.c1.mul(ctx, &s);
    m.add_assign(ctx, &ct.c0);
    Plaintext {
        poly: m,
        scale: ct.scale,
        level: ct.level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{CkksContext, CkksParams};
    use crate::encoding::Encoder;
    use crate::keys::KeyGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (CkksContext, StdRng) {
        let ctx = CkksContext::new(CkksParams {
            poly_degree: 256,
            max_level: 2,
            modulus_bits: 45,
            special_bits: 46,
            error_std: 3.2,
            threads: 1,
        });
        (ctx, StdRng::seed_from_u64(42))
    }

    #[test]
    fn symmetric_roundtrip() {
        let (ctx, mut rng) = setup();
        let enc = Encoder::new(&ctx);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key();
        let values: Vec<f64> = (0..enc.slots()).map(|i| (i as f64 / 10.0).cos()).collect();
        let pt = enc.encode(&values, 2f64.powi(30), 2);
        let ct = encrypt_symmetric(&ctx, &sk, &pt, &mut rng);
        let back = enc.decode(&decrypt(&ctx, &sk, &ct));
        for (a, b) in back.iter().zip(&values) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn public_roundtrip() {
        let (ctx, mut rng) = setup();
        let enc = Encoder::new(&ctx);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key();
        let pk = kg.public_key(&mut rng);
        let values: Vec<f64> = (0..enc.slots()).map(|i| i as f64 * 0.001).collect();
        let pt = enc.encode(&values, 2f64.powi(30), 1);
        let ct = encrypt_public(&ctx, &pk, &pt, &mut rng);
        assert_eq!(ct.level, 1);
        let back = enc.decode(&decrypt(&ctx, &sk, &ct));
        for (a, b) in back.iter().zip(&values) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn wrong_key_garbles() {
        let (ctx, mut rng) = setup();
        let enc = Encoder::new(&ctx);
        let kg1 = KeyGenerator::new(&ctx, &mut rng);
        let kg2 = KeyGenerator::new(&ctx, &mut rng);
        let pt = enc.encode(&[1.0], 2f64.powi(30), 1);
        let ct = encrypt_symmetric(&ctx, &kg1.secret_key(), &pt, &mut rng);
        let back = enc.decode(&decrypt(&ctx, &kg2.secret_key(), &ct));
        assert!(
            (back[0] - 1.0).abs() > 1.0,
            "decryption with wrong key should fail"
        );
    }
}
