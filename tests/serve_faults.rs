//! Fault injection for the service layer: a panicking request (the replay
//! corpus reproducer, submitted with its input binding missing) must come
//! back as a structured [`ServeError::ExecutorPanic`], quarantine **only
//! its own session**, and leave the shared compile cache and polynomial
//! pools serving every other session — no poisoned mutexes, stable
//! [`ServeStats`].

use std::collections::HashMap;
use std::time::Duration;

use fhe_fuzz::corpus::parse_case;
use fhe_ir::text;
use fhe_runtime::{outputs_close, ExecOptions, ParOptions};
use fhe_serve::{FheServer, Request, ServeError, ServerConfig};

/// The replay-corpus reproducer driving the fault: `wrap_mul_const_chain`
/// (64 slots, a cipher·const multiply chain).
fn corpus_case() -> (String, fhe_ir::CompileParams, usize) {
    let raw = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/corpus/wrap_mul_const_chain.fhe"),
    )
    .expect("corpus case exists");
    let case = parse_case(&raw).expect("corpus case parses");
    let slots = case.program.slots();
    (text::print(&case.program), case.params, slots)
}

fn options(seed: u64, degree: usize) -> ParOptions {
    ParOptions {
        exec: ExecOptions {
            poly_degree: degree,
            seed,
            threads: 1,
            ..ExecOptions::default()
        },
        workers: 1,
        fusion: true,
    }
}

fn good_inputs(slots: usize) -> HashMap<String, Vec<f64>> {
    // Small magnitudes: the reproducer's x*2*2 chain stays within the
    // encoder's range, so the request is well-behaved.
    [(
        "x0".to_string(),
        (0..slots).map(|k| ((k % 5) as f64 - 2.0) * 0.05).collect(),
    )]
    .into_iter()
    .collect()
}

#[test]
fn panicking_request_quarantines_only_its_session() {
    let (program, params, slots) = corpus_case();
    let degree = slots * 2;
    let server = FheServer::new(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let victim = server.create_session(options(0xBAD, degree));
    let bystander = server.create_session(options(0x600D, degree));

    let request = |session, inputs| Request {
        session,
        program: program.clone(),
        params,
        compiler: "reserve".into(),
        inputs,
        deadline: None,
    };

    // Baseline: both sessions serve fine.
    let before_victim = server
        .call(request(victim, good_inputs(slots)))
        .expect("victim serves before the fault");
    let before = server
        .call(request(bystander, good_inputs(slots)))
        .expect("bystander serves");
    outputs_close(&before.outputs, &before.reference, 1e-2).expect("accurate");

    // The fault: submit the reproducer with its input binding missing.
    // The executor panics (`missing input binding`); the service must
    // catch it at the request boundary.
    let fault = server.call(request(victim, HashMap::new()));
    match fault {
        Err(ServeError::ExecutorPanic(msg)) => {
            assert!(
                msg.contains("missing input binding"),
                "panic payload surfaced verbatim, got: {msg}"
            );
        }
        other => panic!("expected ExecutorPanic, got {other:?}"),
    }

    // The victim is quarantined — rejected at submission, fast.
    match server.call(request(victim, good_inputs(slots))) {
        Err(ServeError::SessionQuarantined(id)) => assert_eq!(id, victim),
        other => panic!("expected SessionQuarantined, got {other:?}"),
    }

    // The bystander keeps serving through the same shared cache and pool
    // (proving no serve-owned mutex was poisoned), with identical bytes
    // to its pre-fault responses modulo the per-request seed.
    for _ in 0..2 {
        let after = server
            .call(request(bystander, good_inputs(slots)))
            .expect("bystander unaffected by the quarantine");
        assert!(after.cache_hit, "compile cache survived the panic");
        outputs_close(&after.outputs, &after.reference, 1e-2).expect("accurate");
    }

    // Stats are coherent: the panic and the quarantined retry are the
    // only failures, both attributed to the victim.
    // The quarantined retry was rejected at submission and never became
    // a request; 5 reached a worker.
    let stats = server.stats();
    assert_eq!(stats.requests, 5);
    assert_eq!(
        stats.failed, 1,
        "only the panicking request reached a worker"
    );
    assert_eq!(stats.cache.misses, 1);
    assert!(stats.cache.hit_rate() > 0.5);
    let victim_stats = stats.sessions.iter().find(|s| s.id == victim).unwrap();
    let bystander_stats = stats.sessions.iter().find(|s| s.id == bystander).unwrap();
    assert!(victim_stats.quarantined);
    assert_eq!(victim_stats.failures, 1);
    assert_eq!(victim_stats.requests, 2);
    assert!(!bystander_stats.quarantined);
    assert_eq!(bystander_stats.failures, 0);
    assert_eq!(bystander_stats.requests, 3);
    // The shared pool kept recycling across the fault.
    assert_eq!(stats.pools.len(), 1);
    assert!(stats.pools[0].stats.hits > 0);
    assert!(before_victim.mem.peak_bytes > 0);
    assert!(stats.p99_latency >= stats.p50_latency);
    assert!(stats.p50_latency > Duration::ZERO);
}

#[test]
fn keygen_panic_from_client_params_is_caught_at_the_boundary() {
    // `Request.params` is client-controlled. `rescale_bits = 15` passes
    // compilation (scale analysis is symbolic) but panics inside key
    // generation: `ntt_primes` asserts prime sizes in 20..=61 bits. The
    // panic happens *before* the execution phase, so this pins down that
    // the whole pipeline — not just the executor call — is wrapped in
    // `catch_unwind`: with a single worker, an uncaught unwind would kill
    // the only service thread and every later call would hang.
    let server = FheServer::new(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let victim = server.create_session(options(0x5E5, 256));
    let bystander = server.create_session(options(0xB51, 256));

    let program = {
        use fhe_ir::Builder;
        let b = Builder::new("square", 128);
        let x = b.input("x");
        let sq = x.clone() * x;
        text::print(&b.finish(vec![sq]))
    };
    let request = |session, params| Request {
        session,
        program: program.clone(),
        params,
        compiler: "reserve".into(),
        inputs: [("x".to_string(), vec![0.5; 128])].into_iter().collect(),
        deadline: None,
    };

    let bad_params = fhe_ir::CompileParams::with_rescale_bits(10, 15);
    match server.call(request(victim, bad_params)) {
        Err(ServeError::ExecutorPanic(msg)) => {
            assert!(
                msg.contains("20..=61"),
                "keygen assert surfaced verbatim, got: {msg}"
            );
        }
        other => panic!("expected ExecutorPanic, got {other:?}"),
    }
    let stats = server.stats();
    let victim_stats = stats.sessions.iter().find(|s| s.id == victim).unwrap();
    assert!(victim_stats.quarantined, "pre-execution panic quarantines");

    // The single worker survived the unwind: the bystander is served,
    // and shutdown (run again on drop) joins a live thread.
    let ok = server
        .call(request(bystander, fhe_ir::CompileParams::new(30)))
        .expect("worker survives a pre-execution panic");
    outputs_close(&ok.outputs, &ok.reference, 1e-2).expect("accurate");
    server.shutdown();
}
