//! The controlled scheduler behind `cfg(fhe_conc)` builds.
//!
//! One OS thread runs model code at a time: every shim operation is a
//! *schedule point* where the calling thread parks on a shared baton
//! (`Engine.state` + condvar) and the controller — the thread that called
//! [`crate::check`] — decides which parked thread's pending operation runs
//! next. Because only the baton holder executes model code, operations
//! apply atomically and a schedule is replayed exactly by re-issuing the
//! same sequence of choices.
//!
//! Strategies:
//! * [`Dfs`] — depth-first enumeration with a CHESS-style preemption bound
//!   and DPOR-style sleep sets (after exploring thread `t` at a node, `t`
//!   sleeps in sibling branches until a dependent operation executes; if
//!   every enabled thread sleeps the branch is pruned as redundant).
//! * [`Pct`] — seeded randomized priorities with `depth - 1` random
//!   priority-change points per execution (Burckhardt et al.), for models
//!   whose schedule space is too large to enumerate.
//!
//! Failures (assertion panics, deadlocks, lost wakeups, step-bound
//! livelocks) abort the execution: the abort flag makes every schedule
//! point panic with the zero-sized [`AbortExecution`] payload, which
//! thread wrappers catch, so all model threads terminate and the
//! controller can report the recorded trace. Model code that catches
//! unwinds (e.g. the ckks batch runner) may swallow one abort panic, but
//! its next schedule point re-raises, so threads always exit.

use std::cell::RefCell;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe, Location};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

use crate::{panic_message, Config, Failure, FailureKind, Mode, ModelOutcome, TraceStep};

pub(crate) type Tid = usize;
pub(crate) type ObjId = usize;

/// Panic payload used to unwind model threads when an execution is
/// abandoned (failure found, or branch pruned). Not a model failure.
pub(crate) struct AbortExecution;

/// A pending (or executed) schedule-point operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpKind {
    /// First schedule point of every thread (always enabled).
    Start,
    /// Explicit `yield_now` (always enabled).
    Yield,
    /// Atomic load.
    ALoad(ObjId),
    /// Atomic store.
    AStore(ObjId),
    /// Atomic read-modify-write.
    ARmw(ObjId),
    /// Mutex acquire (enabled iff free).
    Lock(ObjId),
    /// Mutex release (always enabled).
    Unlock(ObjId),
    /// RwLock shared acquire (enabled iff no writer).
    RwRead(ObjId),
    /// RwLock exclusive acquire (enabled iff no readers or writer).
    RwWrite(ObjId),
    /// RwLock shared release.
    RwUnRead(ObjId),
    /// RwLock exclusive release.
    RwUnWrite(ObjId),
    /// Condvar wait, phase 1: atomically release the mutex and join the
    /// wait queue (always enabled).
    CvRelease { cv: ObjId, m: ObjId },
    /// Condvar wait, phase 2: leave the queue and reacquire the mutex
    /// (enabled iff notified and the mutex is free).
    CvBlock { cv: ObjId, m: ObjId },
    /// `notify_one` (always enabled; FIFO).
    NotifyOne(ObjId),
    /// `notify_all` (always enabled).
    NotifyAll(ObjId),
    /// Join another model thread (enabled iff it finished).
    Join(Tid),
}

impl OpKind {
    /// The shared objects this operation touches (for dependence checks).
    fn objs(&self) -> (Option<ObjId>, Option<ObjId>) {
        match *self {
            OpKind::Start | OpKind::Yield | OpKind::Join(_) => (None, None),
            OpKind::ALoad(o)
            | OpKind::AStore(o)
            | OpKind::ARmw(o)
            | OpKind::Lock(o)
            | OpKind::Unlock(o)
            | OpKind::RwRead(o)
            | OpKind::RwWrite(o)
            | OpKind::RwUnRead(o)
            | OpKind::RwUnWrite(o)
            | OpKind::NotifyOne(o)
            | OpKind::NotifyAll(o) => (Some(o), None),
            OpKind::CvRelease { cv, m } | OpKind::CvBlock { cv, m } => (Some(cv), Some(m)),
        }
    }

    fn describe(&self) -> String {
        match *self {
            OpKind::Start => "start".into(),
            OpKind::Yield => "yield".into(),
            OpKind::ALoad(o) => format!("load a{o}"),
            OpKind::AStore(o) => format!("store a{o}"),
            OpKind::ARmw(o) => format!("rmw a{o}"),
            OpKind::Lock(o) => format!("lock m{o}"),
            OpKind::Unlock(o) => format!("unlock m{o}"),
            OpKind::RwRead(o) => format!("read-lock rw{o}"),
            OpKind::RwWrite(o) => format!("write-lock rw{o}"),
            OpKind::RwUnRead(o) => format!("read-unlock rw{o}"),
            OpKind::RwUnWrite(o) => format!("write-unlock rw{o}"),
            OpKind::CvRelease { cv, m } => format!("wait c{cv} (releases m{m})"),
            OpKind::CvBlock { cv, m } => format!("wake c{cv} (reacquires m{m})"),
            OpKind::NotifyOne(o) => format!("notify_one c{o}"),
            OpKind::NotifyAll(o) => format!("notify_all c{o}"),
            OpKind::Join(t) => format!("join t{t}"),
        }
    }
}

/// Two operations are *dependent* when reordering them can change the
/// outcome: they touch a common object and are not both atomic loads.
/// (Joins read only monotone thread status, so they commute with
/// everything.) Conservative over-approximation — extra dependence only
/// costs pruning, never soundness.
fn dependent(a: OpKind, b: OpKind) -> bool {
    if let (OpKind::ALoad(_), OpKind::ALoad(_)) = (a, b) {
        return false;
    }
    let (a0, a1) = a.objs();
    let (b0, b1) = b.objs();
    let hit = |x: Option<ObjId>, y: Option<ObjId>| x.is_some() && x == y;
    hit(a0, b0) || hit(a0, b1) || hit(a1, b0) || hit(a1, b1)
}

#[derive(Debug)]
struct CvWaiter {
    tid: Tid,
    notified: bool,
}

#[derive(Debug)]
enum ObjectState {
    Atomic,
    Mutex {
        held_by: Option<Tid>,
    },
    Rw {
        writer: Option<Tid>,
        readers: Vec<Tid>,
    },
    Condvar {
        waiters: Vec<CvWaiter>,
    },
}

/// What a shim registers an object as.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ObjKind {
    Atomic,
    Mutex,
    Rw,
    Condvar,
}

#[derive(Debug, Clone, PartialEq)]
enum ThreadStatus {
    /// Holds the baton (or was just spawned and has not parked yet).
    Running,
    /// Parked at a schedule point with this pending operation.
    Parked(OpKind),
    Finished,
}

struct ThreadRec {
    name: String,
    status: ThreadStatus,
}

struct EngineState {
    active: Option<Tid>,
    threads: Vec<ThreadRec>,
    objects: Vec<ObjectState>,
    trace: Vec<TraceStep>,
    steps: usize,
    abort: bool,
    failure: Option<Failure>,
    /// Process-unique execution stamp (drives lazy object registration in
    /// `const`-constructed shims).
    epoch: u64,
}

pub(crate) struct Engine {
    state: StdMutex<EngineState>,
    cv: StdCondvar,
    max_steps: usize,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Engine>, Tid)>> = const { RefCell::new(None) };
}

/// Process-wide execution counter: every execution of every engine gets a
/// distinct epoch, so stale object ids from earlier models never alias.
static GLOBAL_EPOCH: AtomicU64 = AtomicU64::new(1);

pub(crate) fn current_engine() -> Option<(Arc<Engine>, Tid)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn model_thread_id() -> Option<usize> {
    CURRENT.with(|c| c.borrow().as_ref().map(|(_, tid)| *tid))
}

pub(crate) fn enter_model_thread(engine: &Arc<Engine>, tid: Tid) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(engine), tid)));
}

pub(crate) fn exit_model_thread() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

impl Engine {
    fn new(max_steps: usize) -> Engine {
        Engine {
            state: StdMutex::new(EngineState {
                active: None,
                threads: Vec::new(),
                objects: Vec::new(),
                trace: Vec::new(),
                steps: 0,
                abort: false,
                failure: None,
                epoch: 0,
            }),
            cv: StdCondvar::new(),
            max_steps,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, EngineState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// Registers a fresh shared object for the current execution. Called
    /// by the baton-holding thread, so registration order is deterministic
    /// under replay.
    pub(crate) fn register_object(&self, kind: ObjKind) -> ObjId {
        let mut st = self.lock();
        let id = st.objects.len();
        st.objects.push(match kind {
            ObjKind::Atomic => ObjectState::Atomic,
            ObjKind::Mutex => ObjectState::Mutex { held_by: None },
            ObjKind::Rw => ObjectState::Rw {
                writer: None,
                readers: Vec::new(),
            },
            ObjKind::Condvar => ObjectState::Condvar {
                waiters: Vec::new(),
            },
        });
        id
    }

    /// Registers a new model thread (status `Running` until it parks, so
    /// the controller waits for it before scheduling).
    pub(crate) fn register_thread(&self, name: String) -> Tid {
        let mut st = self.lock();
        let tid = st.threads.len();
        st.threads.push(ThreadRec {
            name,
            status: ThreadStatus::Running,
        });
        tid
    }

    /// Parks at a schedule point with pending operation `op`; returns once
    /// the controller grants this thread the baton and the operation's
    /// effect has been applied. Panics with [`AbortExecution`] when the
    /// execution is being abandoned.
    pub(crate) fn schedule_point(&self, tid: Tid, op: OpKind, loc: &'static Location<'static>) {
        // An unwinding destructor may hit schedule points (a drop guard
        // that takes a lock, notifies a condvar, bumps a counter). Such a
        // thread must NEVER re-raise [`AbortExecution`]: a panic while
        // panicking is a process abort. While the execution is still live
        // it parks and gets scheduled like any other op; once the
        // execution is aborting it passes through untracked (below) — the
        // std primitives are the source of truth during teardown, and
        // every model holder releases them on its own unwind.
        let unwinding = std::thread::panicking();
        let mut st = self.lock();
        if st.abort {
            drop(st);
            if unwinding {
                return;
            }
            panic_any(AbortExecution);
        }
        st.threads[tid].status = ThreadStatus::Parked(op);
        st.active = None;
        self.cv.notify_all();
        loop {
            if st.abort {
                // Repair the park before leaving: drain() must not wait
                // on a thread that is about to unwind to completion.
                st.threads[tid].status = ThreadStatus::Running;
                drop(st);
                if unwinding {
                    return;
                }
                panic_any(AbortExecution);
            }
            if st.active == Some(tid) {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        st.threads[tid].status = ThreadStatus::Running;
        st.steps += 1;
        let thread = st.threads[tid].name.clone();
        st.trace.push(TraceStep {
            tid,
            thread,
            op: op.describe(),
            location: format!("{}:{}", loc.file(), loc.line()),
        });
        if st.steps > self.max_steps {
            if st.failure.is_none() {
                st.failure = Some(Failure {
                    kind: FailureKind::StepBoundExceeded,
                    message: format!(
                        "execution exceeded {} schedule points (suspected livelock)",
                        self.max_steps
                    ),
                    trace: st.trace.clone(),
                });
            }
            st.abort = true;
            self.cv.notify_all();
            drop(st);
            if unwinding {
                return;
            }
            panic_any(AbortExecution);
        }
        apply(&mut st, tid, op);
    }

    /// Best-effort lock-state repair used by guard drops during unwinding,
    /// where a schedule point would double-panic.
    pub(crate) fn force_release(&self, op: OpKind, tid: Tid) {
        let mut st = self.lock();
        apply(&mut st, tid, op);
    }

    /// Marks `tid` finished; a non-abort panic payload records the model
    /// failure (first failure wins) and aborts the execution.
    pub(crate) fn finish_thread(&self, tid: Tid, payload: Option<Box<dyn std::any::Any + Send>>) {
        let mut st = self.lock();
        if let Some(p) = payload {
            if !p.is::<AbortExecution>() {
                if st.failure.is_none() {
                    st.failure = Some(Failure {
                        kind: FailureKind::Panic,
                        message: format!(
                            "thread t{tid} ({}) panicked: {}",
                            st.threads[tid].name,
                            panic_message(&*p)
                        ),
                        trace: st.trace.clone(),
                    });
                }
                st.abort = true;
            }
        }
        st.threads[tid].status = ThreadStatus::Finished;
        st.active = None;
        self.cv.notify_all();
    }

    fn reset(&self) {
        let mut st = self.lock();
        st.active = None;
        st.threads.clear();
        st.objects.clear();
        st.trace.clear();
        st.steps = 0;
        st.abort = false;
        st.failure = None;
        st.epoch = GLOBAL_EPOCH.fetch_add(1, Ordering::Relaxed);
    }

    /// Waits until every model thread of the current execution has exited
    /// (used after setting the abort flag, and at normal completion).
    fn drain(&self) {
        let mut st = self.lock();
        while !st
            .threads
            .iter()
            .all(|t| t.status == ThreadStatus::Finished)
        {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }
}

fn mutex_free(st: &EngineState, m: ObjId) -> bool {
    matches!(st.objects[m], ObjectState::Mutex { held_by: None })
}

fn is_enabled(st: &EngineState, tid: Tid, op: OpKind) -> bool {
    match op {
        OpKind::Lock(m) => mutex_free(st, m),
        OpKind::CvBlock { cv, m } => {
            let notified = match &st.objects[cv] {
                ObjectState::Condvar { waiters } => waiters
                    .iter()
                    .find(|w| w.tid == tid)
                    .map(|w| w.notified)
                    .unwrap_or(false),
                _ => false,
            };
            notified && mutex_free(st, m)
        }
        OpKind::RwRead(o) => matches!(&st.objects[o], ObjectState::Rw { writer: None, .. }),
        OpKind::RwWrite(o) => {
            matches!(&st.objects[o], ObjectState::Rw { writer: None, readers } if readers.is_empty())
        }
        OpKind::Join(t) => st.threads[t].status == ThreadStatus::Finished,
        _ => true,
    }
}

fn apply(st: &mut EngineState, tid: Tid, op: OpKind) {
    match op {
        OpKind::Lock(m) => {
            if let ObjectState::Mutex { held_by } = &mut st.objects[m] {
                *held_by = Some(tid);
            }
        }
        OpKind::Unlock(m) => {
            if let ObjectState::Mutex { held_by } = &mut st.objects[m] {
                *held_by = None;
            }
        }
        OpKind::CvRelease { cv, m } => {
            if let ObjectState::Mutex { held_by } = &mut st.objects[m] {
                *held_by = None;
            }
            if let ObjectState::Condvar { waiters } = &mut st.objects[cv] {
                waiters.push(CvWaiter {
                    tid,
                    notified: false,
                });
            }
        }
        OpKind::CvBlock { cv, m } => {
            if let ObjectState::Condvar { waiters } = &mut st.objects[cv] {
                waiters.retain(|w| w.tid != tid);
            }
            if let ObjectState::Mutex { held_by } = &mut st.objects[m] {
                *held_by = Some(tid);
            }
        }
        OpKind::NotifyOne(cv) => {
            if let ObjectState::Condvar { waiters } = &mut st.objects[cv] {
                if let Some(w) = waiters.iter_mut().find(|w| !w.notified) {
                    w.notified = true;
                }
            }
        }
        OpKind::NotifyAll(cv) => {
            if let ObjectState::Condvar { waiters } = &mut st.objects[cv] {
                for w in waiters.iter_mut() {
                    w.notified = true;
                }
            }
        }
        OpKind::RwRead(o) => {
            if let ObjectState::Rw { readers, .. } = &mut st.objects[o] {
                readers.push(tid);
            }
        }
        OpKind::RwUnRead(o) => {
            if let ObjectState::Rw { readers, .. } = &mut st.objects[o] {
                if let Some(pos) = readers.iter().position(|r| *r == tid) {
                    readers.remove(pos);
                }
            }
        }
        OpKind::RwWrite(o) => {
            if let ObjectState::Rw { writer, .. } = &mut st.objects[o] {
                *writer = Some(tid);
            }
        }
        OpKind::RwUnWrite(o) => {
            if let ObjectState::Rw { writer, .. } = &mut st.objects[o] {
                *writer = None;
            }
        }
        _ => {}
    }
}

enum Choice {
    Run(Tid),
    Prune,
}

trait Strategy {
    /// Picks among the enabled parked threads (with their pending ops).
    fn choose(&mut self, enabled: &[(Tid, OpKind)]) -> Choice;
    /// Observes the chosen operation (sleep-set wakeups, PCT bookkeeping).
    fn on_chosen(&mut self, tid: Tid, op: OpKind);
    /// Advances to the next execution; `false` ends exploration.
    /// `pruned` reports whether the finished execution was cut short by a
    /// sleep-set prune.
    fn next_execution(&mut self, pruned: bool) -> bool;
    fn executions(&self) -> u64;
    fn pruned(&self) -> u64;
    fn complete(&self) -> bool;
}

// ---------------------------------------------------------------------
// Bounded-exhaustive DFS with sleep sets
// ---------------------------------------------------------------------

struct Frame {
    chosen: Tid,
    chosen_op: OpKind,
    untried: Vec<Tid>,
    /// Sleep set at entry to this node: inherited sleepers plus siblings
    /// already explored from here.
    slept: Vec<(Tid, OpKind)>,
    /// `chosen` was swapped in by backtracking; its pending op is filled
    /// in when the replay reaches this node again.
    fresh: bool,
}

struct Dfs {
    stack: Vec<Frame>,
    depth: usize,
    bound: Option<usize>,
    max_execs: u64,
    execs: u64,
    pruned_count: u64,
    complete_flag: bool,
    cur_sleep: Vec<(Tid, OpKind)>,
    preemptions: usize,
    prev: Option<Tid>,
}

impl Dfs {
    fn new(max_execs: u64, bound: Option<usize>) -> Dfs {
        Dfs {
            stack: Vec::new(),
            depth: 0,
            bound,
            max_execs,
            execs: 0,
            pruned_count: 0,
            complete_flag: false,
            cur_sleep: Vec::new(),
            preemptions: 0,
            prev: None,
        }
    }
}

impl Strategy for Dfs {
    fn choose(&mut self, enabled: &[(Tid, OpKind)]) -> Choice {
        let d = self.depth;
        let chosen = if d < self.stack.len() {
            // Replay of the committed prefix.
            let frame = &mut self.stack[d];
            self.cur_sleep = frame.slept.clone();
            if frame.fresh {
                frame.chosen_op = enabled
                    .iter()
                    .find(|(t, _)| *t == frame.chosen)
                    .expect("deterministic replay: backtracked choice still enabled")
                    .1;
                frame.fresh = false;
            }
            frame.chosen
        } else {
            // Frontier: pick among enabled threads not in the sleep set.
            let mut cands: Vec<(Tid, OpKind)> = enabled
                .iter()
                .filter(|(t, _)| !self.cur_sleep.iter().any(|(s, _)| s == t))
                .copied()
                .collect();
            if cands.is_empty() {
                // Every enabled thread sleeps: any continuation reorders
                // only independent operations of an explored schedule.
                return Choice::Prune;
            }
            if let Some(bound) = self.bound {
                if self.preemptions >= bound {
                    if let Some(p) = self.prev {
                        if let Some(&pc) = cands.iter().find(|(t, _)| *t == p) {
                            cands = vec![pc];
                        }
                    }
                }
            }
            // Continue the previously running thread first (cheapest trace
            // to read), then ascending tid.
            cands.sort_by_key(|(t, _)| (Some(*t) != self.prev, *t));
            let (chosen, chosen_op) = cands[0];
            let untried: Vec<Tid> = cands[1..].iter().map(|(t, _)| *t).rev().collect();
            self.stack.push(Frame {
                chosen,
                chosen_op,
                untried,
                slept: self.cur_sleep.clone(),
                fresh: false,
            });
            chosen
        };
        self.depth += 1;
        if let Some(p) = self.prev {
            if p != chosen && enabled.iter().any(|(t, _)| *t == p) {
                self.preemptions += 1;
            }
        }
        Choice::Run(chosen)
    }

    fn on_chosen(&mut self, tid: Tid, op: OpKind) {
        self.cur_sleep.retain(|(_, sop)| !dependent(*sop, op));
        self.prev = Some(tid);
    }

    fn next_execution(&mut self, pruned: bool) -> bool {
        if pruned {
            self.pruned_count += 1;
        } else {
            self.execs += 1;
        }
        if self.execs >= self.max_execs {
            return false;
        }
        loop {
            let Some(top) = self.stack.last_mut() else {
                self.complete_flag = true;
                return false;
            };
            if let Some(next) = top.untried.pop() {
                top.slept.push((top.chosen, top.chosen_op));
                top.chosen = next;
                top.fresh = true;
                break;
            }
            self.stack.pop();
        }
        self.depth = 0;
        self.cur_sleep.clear();
        self.preemptions = 0;
        self.prev = None;
        true
    }

    fn executions(&self) -> u64 {
        self.execs
    }
    fn pruned(&self) -> u64 {
        self.pruned_count
    }
    fn complete(&self) -> bool {
        self.complete_flag
    }
}

// ---------------------------------------------------------------------
// PCT (probabilistic concurrency testing)
// ---------------------------------------------------------------------

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Pct {
    base_seed: u64,
    total: u64,
    done: u64,
    depth: usize,
    rng: u64,
    priorities: Vec<Option<i64>>,
    change_points: Vec<usize>,
    next_low: i64,
    step: usize,
    est_len: usize,
}

impl Pct {
    fn new(seed: u64, executions: u64, depth: usize) -> Pct {
        let mut pct = Pct {
            base_seed: seed,
            total: executions.max(1),
            done: 0,
            depth: depth.max(1),
            rng: 0,
            priorities: Vec::new(),
            change_points: Vec::new(),
            next_low: -1,
            step: 0,
            // Start small so change points land inside short executions;
            // `next_execution` grows this to the longest run seen.
            est_len: 16,
        };
        pct.seed_execution();
        pct
    }

    fn seed_execution(&mut self) {
        self.rng = self
            .base_seed
            .wrapping_add(self.done)
            .wrapping_mul(0x2545_F491_4F6C_DD1D);
        self.priorities.clear();
        self.next_low = -1;
        self.step = 0;
        self.change_points = (0..self.depth.saturating_sub(1))
            .map(|_| 1 + (splitmix64(&mut self.rng) as usize) % self.est_len)
            .collect();
    }

    fn priority(&mut self, tid: Tid) -> i64 {
        if tid >= self.priorities.len() {
            self.priorities.resize(tid + 1, None);
        }
        if self.priorities[tid].is_none() {
            // Positive random base priorities; change points demote below
            // zero, so demoted threads stay demoted.
            self.priorities[tid] = Some((splitmix64(&mut self.rng) >> 1) as i64);
        }
        self.priorities[tid].unwrap()
    }
}

impl Strategy for Pct {
    fn choose(&mut self, enabled: &[(Tid, OpKind)]) -> Choice {
        self.step += 1;
        if self.change_points.contains(&self.step) {
            // Demote the current front-runner among enabled threads.
            if let Some(&(top, _)) = enabled.iter().max_by_key(|(t, _)| (self.priority(*t), *t)) {
                self.next_low -= 1;
                self.priorities[top] = Some(self.next_low);
            }
        }
        let chosen = enabled
            .iter()
            .max_by_key(|(t, _)| (self.priority(*t), *t))
            .expect("choose called with a non-empty enabled set")
            .0;
        Choice::Run(chosen)
    }

    fn on_chosen(&mut self, _tid: Tid, _op: OpKind) {}

    fn next_execution(&mut self, _pruned: bool) -> bool {
        self.done += 1;
        self.est_len = self.est_len.max(self.step);
        if self.done >= self.total {
            return false;
        }
        self.seed_execution();
        true
    }

    fn executions(&self) -> u64 {
        self.done
    }
    fn pruned(&self) -> u64 {
        0
    }
    fn complete(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------

#[derive(PartialEq)]
enum ExecResult {
    AllFinished,
    Pruned,
    Failed,
}

fn run_execution(engine: &Arc<Engine>, strategy: &mut dyn Strategy) -> ExecResult {
    loop {
        let mut st = engine.lock();
        while st.active.is_some() || st.threads.iter().any(|t| t.status == ThreadStatus::Running) {
            st = engine.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        if st.failure.is_some() {
            st.abort = true;
            engine.cv.notify_all();
            drop(st);
            engine.drain();
            return ExecResult::Failed;
        }
        if st
            .threads
            .iter()
            .all(|t| t.status == ThreadStatus::Finished)
        {
            return ExecResult::AllFinished;
        }
        let parked: Vec<(Tid, OpKind)> = st
            .threads
            .iter()
            .enumerate()
            .filter_map(|(tid, t)| match t.status {
                ThreadStatus::Parked(op) => Some((tid, op)),
                _ => None,
            })
            .collect();
        let enabled: Vec<(Tid, OpKind)> = parked
            .iter()
            .filter(|(tid, op)| is_enabled(&st, *tid, *op))
            .copied()
            .collect();
        if enabled.is_empty() {
            let lost_wakeup = parked
                .iter()
                .all(|(_, op)| matches!(op, OpKind::CvBlock { .. }));
            let mut message = String::from("no runnable thread; blocked: ");
            for (i, (tid, op)) in parked.iter().enumerate() {
                if i > 0 {
                    message.push_str(", ");
                }
                message.push_str(&format!(
                    "t{tid} ({}) at `{}`",
                    st.threads[*tid].name,
                    op.describe()
                ));
            }
            st.failure = Some(Failure {
                kind: FailureKind::Deadlock { lost_wakeup },
                message,
                trace: st.trace.clone(),
            });
            st.abort = true;
            engine.cv.notify_all();
            drop(st);
            engine.drain();
            return ExecResult::Failed;
        }
        match strategy.choose(&enabled) {
            Choice::Run(tid) => {
                let op = enabled
                    .iter()
                    .find(|(t, _)| *t == tid)
                    .expect("strategy picked an enabled thread")
                    .1;
                strategy.on_chosen(tid, op);
                st.active = Some(tid);
                engine.cv.notify_all();
            }
            Choice::Prune => {
                st.abort = true;
                engine.cv.notify_all();
                drop(st);
                engine.drain();
                return ExecResult::Pruned;
            }
        }
    }
}

fn spawn_root(engine: &Arc<Engine>, f: Arc<dyn Fn() + Send + Sync>) {
    let tid = engine.register_thread("main".to_string());
    debug_assert_eq!(tid, 0);
    let engine = Arc::clone(engine);
    std::thread::Builder::new()
        .name("fhe-conc-model".to_string())
        .spawn(move || {
            enter_model_thread(&engine, tid);
            let result = catch_unwind(AssertUnwindSafe(|| {
                engine.schedule_point(tid, OpKind::Start, Location::caller());
                f();
            }));
            engine.finish_thread(tid, result.err());
            exit_model_thread();
        })
        .expect("spawn model root thread");
}

/// Silences the default panic hook for the [`AbortExecution`] control-flow
/// panics the scheduler raises on every pruned/aborted execution — outside
/// libtest's output capture (e.g. the `conc_smoke` binary) each would
/// otherwise print a full "thread panicked" report. Real model panics
/// still reach the previous hook untouched. Installed once per process;
/// never uninstalled, so concurrent `check` calls are safe.
fn silence_abort_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<AbortExecution>() {
                return;
            }
            previous(info);
        }));
    });
}

pub(crate) fn check_model(
    name: &str,
    config: &Config,
    f: Arc<dyn Fn() + Send + Sync>,
) -> ModelOutcome {
    silence_abort_panics();
    let engine = Arc::new(Engine::new(config.max_steps));
    let mut strategy: Box<dyn Strategy> = match config.mode {
        Mode::Exhaustive {
            max_executions,
            preemption_bound,
        } => Box::new(Dfs::new(max_executions.max(1), preemption_bound)),
        Mode::Pct {
            seed,
            executions,
            depth,
        } => Box::new(Pct::new(seed, executions, depth)),
    };
    loop {
        engine.reset();
        spawn_root(&engine, Arc::clone(&f));
        let result = run_execution(&engine, &mut *strategy);
        if result == ExecResult::Failed {
            let failure = engine.lock().failure.clone();
            return ModelOutcome {
                name: name.to_string(),
                executions: strategy.executions() + 1,
                pruned: strategy.pruned(),
                complete: false,
                failure,
            };
        }
        if !strategy.next_execution(result == ExecResult::Pruned) {
            break;
        }
    }
    ModelOutcome {
        name: name.to_string(),
        executions: strategy.executions(),
        pruned: strategy.pruned(),
        complete: strategy.complete(),
        failure: None,
    }
}
