//! Latency cost model for RNS-CKKS operations (Table 3 of the paper).
//!
//! Latency depends on the op kind and the level of its operands. The default
//! model is seeded with the paper's measurements (SEAL 3.6 on an i7-8700,
//! `N = 2^15`, `R = 2^60`, µs); [`CostModel::from_rows`] lets callers
//! recalibrate from their own measurements (e.g. of the `fhe-ckks` backend).
//!
//! Levels may be fractional (the §6.1 ordering heuristic estimates levels
//! like `5/3`); costs are linearly interpolated between integer levels and
//! linearly extrapolated beyond the table using the last segment's slope.

use crate::op::{Op, ValueId};
use crate::program::Program;
use crate::schedule::ScaleMap;
use crate::Frac;

/// Operation classes with distinct latency profiles (rows of Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// `modswitch` on a ciphertext.
    ModSwitch,
    /// cipher + plain (also cipher − plain and negation).
    AddPlain,
    /// cipher + cipher / cipher − cipher.
    AddCipher,
    /// cipher × plain (also `upscale`, which multiplies by an encoded
    /// identity).
    MulPlain,
    /// `rescale` on a ciphertext.
    Rescale,
    /// Slot rotation of a ciphertext (includes the Galois key switch).
    Rotate,
    /// cipher × cipher (includes relinearization).
    MulCipher,
}

impl OpClass {
    /// All classes, in Table 3's (roughly ascending-cost) order.
    pub const ALL: [OpClass; 7] = [
        OpClass::ModSwitch,
        OpClass::AddPlain,
        OpClass::AddCipher,
        OpClass::MulPlain,
        OpClass::Rescale,
        OpClass::Rotate,
        OpClass::MulCipher,
    ];

    /// Human-readable name matching the paper's Table 3 rows.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::ModSwitch => "modswitch (cipher)",
            OpClass::AddPlain => "cipher + plain",
            OpClass::AddCipher => "cipher + cipher",
            OpClass::MulPlain => "cipher x plain",
            OpClass::Rescale => "rescale (cipher)",
            OpClass::Rotate => "rotate (cipher)",
            OpClass::MulCipher => "cipher x cipher",
        }
    }
}

/// Latency model: per-class latencies (µs) at levels `1..=N`.
#[derive(Debug, Clone)]
pub struct CostModel {
    rows: [Vec<f64>; 7],
}

const fn class_index(class: OpClass) -> usize {
    match class {
        OpClass::ModSwitch => 0,
        OpClass::AddPlain => 1,
        OpClass::AddCipher => 2,
        OpClass::MulPlain => 3,
        OpClass::Rescale => 4,
        OpClass::Rotate => 5,
        OpClass::MulCipher => 6,
    }
}

impl CostModel {
    /// The paper's Table 3 (µs, levels 1–5).
    pub fn paper_table3() -> Self {
        CostModel {
            rows: [
                vec![48.0, 86.0, 156.0, 208.0, 286.0],
                vec![50.0, 98.0, 153.0, 209.0, 269.0],
                vec![85.0, 204.0, 250.0, 339.0, 421.0],
                vec![211.0, 421.0, 642.0, 853.0, 1120.0],
                vec![1926.0, 3119.0, 4525.0, 5706.0, 6901.0],
                vec![3828.0, 7966.0, 13584.0, 20933.0, 28832.0],
                vec![4363.0, 9172.0, 15658.0, 23517.0, 33974.0],
            ],
        }
    }

    /// Builds a model from measured per-level latencies. Each row must hold
    /// at least two entries (levels 1 and 2) so extrapolation is defined.
    ///
    /// # Panics
    ///
    /// Panics if any provided row has fewer than two entries.
    pub fn from_rows(rows: impl IntoIterator<Item = (OpClass, Vec<f64>)>) -> Self {
        let mut model = Self::paper_table3();
        for (class, row) in rows {
            assert!(row.len() >= 2, "cost row for {:?} needs >= 2 levels", class);
            model.rows[class_index(class)] = row;
        }
        model
    }

    /// Latency (µs) of `class` at integer `level` (≥ 1), extrapolating
    /// linearly beyond the table.
    pub fn at_level(&self, class: OpClass, level: u32) -> f64 {
        self.at_fractional_level(class, level.max(1) as f64)
    }

    /// Latency (µs) at a possibly fractional level (used by the §6.1
    /// ordering estimator). Levels below 1 are clamped to 1.
    pub fn at_fractional_level(&self, class: OpClass, level: f64) -> f64 {
        let row = &self.rows[class_index(class)];
        let level = level.max(1.0);
        let max_idx = row.len() - 1; // index of the last tabulated level
        let pos = level - 1.0; // 0-based position in the row
        if pos >= max_idx as f64 {
            // Extrapolate with the last segment's slope.
            let slope = row[max_idx] - row[max_idx - 1];
            return row[max_idx] + slope * (pos - max_idx as f64);
        }
        let lo = pos.floor() as usize;
        let t = pos - lo as f64;
        row[lo] * (1.0 - t) + row[lo + 1] * t
    }

    /// Latency (µs) at a [`Frac`] level.
    pub fn at_frac_level(&self, class: OpClass, level: Frac) -> f64 {
        self.at_fractional_level(class, level.to_f64())
    }

    /// The op class of value `id` in `program`, or `None` for zero-cost ops
    /// (inputs, constants, and plaintext-only arithmetic, which is folded
    /// offline).
    pub fn classify(program: &Program, id: ValueId) -> Option<OpClass> {
        if program.is_plain(id) {
            return None;
        }
        Some(match program.op(id) {
            Op::Input { .. } | Op::Const { .. } => return None,
            Op::Add(a, b) | Op::Sub(a, b) => {
                if program.is_cipher(*a) && program.is_cipher(*b) {
                    OpClass::AddCipher
                } else {
                    OpClass::AddPlain
                }
            }
            Op::Mul(a, b) => {
                if program.is_cipher(*a) && program.is_cipher(*b) {
                    OpClass::MulCipher
                } else {
                    OpClass::MulPlain
                }
            }
            Op::Neg(_) => OpClass::AddPlain,
            Op::Rotate(..) => OpClass::Rotate,
            Op::Rescale(_) => OpClass::Rescale,
            Op::ModSwitch(_) => OpClass::ModSwitch,
            Op::Upscale(..) => OpClass::MulPlain,
        })
    }

    /// The level an op is charged at: arithmetic executes at its operand
    /// level (== result level); `rescale`/`modswitch` are charged at their
    /// *result* level, matching the paper's Fig. 2 cost accounting (a
    /// level-2→1 rescale is charged as a "Lv. 1 Rescale").
    pub fn charge_level(_program: &Program, id: ValueId, scales: &ScaleMap) -> Option<u32> {
        scales.try_level(id)
    }

    /// Latency (µs) of op `id` under the derived `scales`.
    pub fn op_cost(&self, program: &Program, id: ValueId, scales: &ScaleMap) -> f64 {
        match (
            Self::classify(program, id),
            Self::charge_level(program, id, scales),
        ) {
            (Some(class), Some(level)) => self.at_level(class, level),
            _ => 0.0,
        }
    }

    /// Total latency (µs) of every *live* op of the program under the
    /// derived `scales`. Dead ops are not charged (compilers run DCE).
    pub fn program_cost(&self, program: &Program, scales: &ScaleMap) -> f64 {
        let live = crate::analysis::live(program);
        program
            .ids()
            .filter(|id| live[id.index()])
            .map(|id| self.op_cost(program, id, scales))
            .sum()
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_table3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::params::CompileParams;
    use crate::schedule::{InputSpec, ScheduledProgram};

    #[test]
    fn table3_values() {
        let m = CostModel::paper_table3();
        assert_eq!(m.at_level(OpClass::MulCipher, 1), 4363.0);
        assert_eq!(m.at_level(OpClass::MulCipher, 5), 33974.0);
        assert_eq!(m.at_level(OpClass::Rescale, 2), 3119.0);
        assert_eq!(m.at_level(OpClass::Rotate, 3), 13584.0);
    }

    #[test]
    fn interpolation_matches_paper_example() {
        // §6.1: cost of x³ at level 1+2/3: 44·(1/3) + 92·(2/3) = 76 (in
        // hundreds of µs): 4363/3·1 + ... ⇒ ≈ 7569 µs.
        let m = CostModel::paper_table3();
        let c = m.at_fractional_level(OpClass::MulCipher, 1.0 + 2.0 / 3.0);
        let expect = 4363.0 * (1.0 / 3.0) + 9172.0 * (2.0 / 3.0);
        assert!((c - expect).abs() < 1e-9);
        assert!((expect / 100.0 - 76.0).abs() < 1.0);
    }

    #[test]
    fn extrapolation_is_linear_beyond_table() {
        let m = CostModel::paper_table3();
        let l5 = m.at_level(OpClass::MulCipher, 5);
        let l6 = m.at_level(OpClass::MulCipher, 6);
        let l7 = m.at_level(OpClass::MulCipher, 7);
        let slope = 33974.0 - 23517.0;
        assert_eq!(l6 - l5, slope);
        assert_eq!(l7 - l6, slope);
        assert!(m.at_level(OpClass::Rescale, 11) > m.at_level(OpClass::Rescale, 10));
    }

    #[test]
    fn clamps_below_level_one() {
        let m = CostModel::paper_table3();
        assert_eq!(m.at_fractional_level(OpClass::Rotate, 0.2), 3828.0);
        assert_eq!(m.at_level(OpClass::Rotate, 0), 3828.0);
    }

    #[test]
    fn from_rows_overrides() {
        let m = CostModel::from_rows([(OpClass::Rotate, vec![10.0, 20.0])]);
        assert_eq!(m.at_level(OpClass::Rotate, 2), 20.0);
        assert_eq!(m.at_level(OpClass::Rotate, 4), 40.0);
        // Other rows keep the paper values.
        assert_eq!(m.at_level(OpClass::MulCipher, 1), 4363.0);
    }

    #[test]
    fn program_cost_charges_rescale_at_result_level() {
        let params = CompileParams::new(20);
        let mut p = Program::new("c", 4);
        let x = p.push(Op::Input { name: "x".into() });
        let m2 = p.push(Op::Mul(x, x));
        let r = p.push(Op::Rescale(m2));
        p.set_outputs(vec![r]);
        let s = ScheduledProgram {
            program: p,
            params,
            inputs: vec![InputSpec {
                scale_bits: Frac::from(40),
                level: 2,
            }],
        };
        let map = s.validate().unwrap();
        let m = CostModel::paper_table3();
        // mul at level 2 (9172) + rescale charged at result level 1 (1926).
        assert_eq!(m.program_cost(&s.program, &map), 9172.0 + 1926.0);
    }

    #[test]
    fn plain_ops_cost_nothing() {
        let params = CompileParams::new(20);
        let mut p = Program::new("c", 4);
        let a = p.push(Op::Const { value: 1.0.into() });
        let b = p.push(Op::Const { value: 2.0.into() });
        let ab = p.push(Op::Mul(a, b));
        let x = p.push(Op::Input { name: "x".into() });
        let m = p.push(Op::Mul(x, ab));
        p.set_outputs(vec![m]);
        let s = ScheduledProgram {
            program: p,
            params,
            inputs: vec![InputSpec {
                scale_bits: Frac::from(20),
                level: 1,
            }],
        };
        let map = s.validate().unwrap();
        let cm = CostModel::paper_table3();
        // Only the cipher×plain mul is charged.
        assert_eq!(cm.program_cost(&s.program, &map), 211.0);
    }
}
