//! Key material: secret/public keys, relinearization and Galois keys.
//!
//! Key switching follows the special-prime RNS construction: for each chain
//! limb `j`, the switching key encrypts `T_j · t(X)` over the extended
//! modulus `Q·P`, where `T_j ≡ P·δ_{ij} (mod q_i)` and `T_j ≡ 0 (mod P)`.
//! Decomposing a polynomial into its RNS residues, multiplying by the key
//! components, and dividing by `P` then yields an encryption of `d·t` with
//! only additive noise `≈ Σ_j q_j·e_j / P`.

use rand::{Rng, SeedableRng};

use crate::context::CkksContext;
use crate::poly::RnsPoly;

/// The secret key `s` (ternary), stored over the full basis `Q·P`, NTT.
#[derive(Debug, Clone)]
pub struct SecretKey {
    pub(crate) s: RnsPoly,
}

impl SecretKey {
    /// Heap bytes held by the key polynomial.
    pub fn byte_size(&self) -> usize {
        self.s.byte_size()
    }
}

/// A public encryption key `(p0, p1) = (−a·s − e, a)` over `Q` (no `P`).
#[derive(Debug, Clone)]
pub struct PublicKey {
    pub(crate) p0: RnsPoly,
    pub(crate) p1: RnsPoly,
}

/// One key-switching key: per chain limb `j`, a pair over `Q·P` with
/// `k0_j + k1_j·s = T_j·t + e_j`.
#[derive(Debug, Clone, PartialEq)]
pub struct KswKey {
    pub(crate) k0: Vec<RnsPoly>,
    pub(crate) k1: Vec<RnsPoly>,
}

impl KswKey {
    /// Heap bytes held by the key polynomials
    /// (`2 · L` digits × `L+1` limbs × `N` × 8).
    pub fn byte_size(&self) -> usize {
        self.k0.iter().chain(&self.k1).map(RnsPoly::byte_size).sum()
    }
}

/// Relinearization key: switches `s²` back to `s` after multiplication.
#[derive(Debug, Clone)]
pub struct RelinKey(pub(crate) KswKey);

impl RelinKey {
    /// Heap bytes held by the key polynomials.
    pub fn byte_size(&self) -> usize {
        self.0.byte_size()
    }
}

/// Galois keys: per Galois element `g`, switches `s(X^g)` back to `s`.
#[derive(Debug, Clone, Default)]
pub struct GaloisKeys {
    pub(crate) keys: std::collections::HashMap<usize, KswKey>,
}

impl GaloisKeys {
    /// The key for Galois element `g`, if generated.
    pub fn get(&self, g: usize) -> Option<&KswKey> {
        self.keys.get(&g)
    }

    /// Galois elements covered by this key set.
    pub fn elements(&self) -> impl Iterator<Item = usize> + '_ {
        self.keys.keys().copied()
    }

    /// Heap bytes held across all keys in the set.
    pub fn byte_size(&self) -> usize {
        self.keys.values().map(KswKey::byte_size).sum()
    }
}

/// The Galois element realizing a rotation of the slot vector by `steps`
/// (positive = towards lower slot indices), i.e. `5^steps mod 2N`.
pub fn rotation_to_galois(ctx: &CkksContext, steps: i64) -> usize {
    let n2 = 2 * ctx.degree();
    let slots = ctx.slots() as i64;
    let k = steps.rem_euclid(slots) as usize;
    let mut g = 1usize;
    for _ in 0..k {
        g = (g * 5) % n2;
    }
    g
}

/// Generates all key material for a context.
#[derive(Debug)]
pub struct KeyGenerator<'c> {
    ctx: &'c CkksContext,
    sk: SecretKey,
}

impl<'c> KeyGenerator<'c> {
    /// Samples a fresh ternary secret key.
    pub fn new(ctx: &'c CkksContext, rng: &mut impl Rng) -> Self {
        let mut s = RnsPoly::ternary(ctx, ctx.max_level(), true, rng);
        s.to_ntt(ctx);
        KeyGenerator {
            ctx,
            sk: SecretKey { s },
        }
    }

    /// The secret key (needed for decryption).
    pub fn secret_key(&self) -> SecretKey {
        self.sk.clone()
    }

    /// Generates the public encryption key.
    pub fn public_key(&self, rng: &mut impl Rng) -> PublicKey {
        let ctx = self.ctx;
        let l = ctx.max_level();
        let a = {
            let mut a = RnsPoly::uniform(ctx, l, true, rng);
            a.drop_to_level(l); // public key lives over Q only
            a
        };
        let mut e = RnsPoly::gaussian(ctx, l, false, rng);
        e.to_ntt(ctx);
        let mut s_q = self.sk.s.clone();
        s_q.drop_to_level(l);
        // p0 = −a·s − e.
        let mut p0 = a.mul(ctx, &s_q);
        p0.neg_assign(ctx);
        p0.sub_assign(ctx, &e);
        PublicKey { p0, p1: a }
    }

    /// Builds a key-switching key from source secret `t` to the main secret
    /// `s` (both over `Q·P`, NTT).
    fn ksw_key(&self, t: &RnsPoly, rng: &mut impl Rng) -> KswKey {
        generate_ksw(self.ctx, &self.sk.s, t, rng)
    }

    /// Generates the relinearization key (switches `s²` to `s`).
    pub fn relin_key(&self, rng: &mut impl Rng) -> RelinKey {
        let s2 = self.sk.s.mul(self.ctx, &self.sk.s);
        RelinKey(self.ksw_key(&s2, rng))
    }

    /// Generates Galois keys for the given slot-rotation steps.
    pub fn galois_keys(
        &self,
        steps: impl IntoIterator<Item = i64>,
        rng: &mut impl Rng,
    ) -> GaloisKeys {
        let mut keys = std::collections::HashMap::new();
        let mut rng = rng;
        for step in steps {
            let g = rotation_to_galois(self.ctx, step);
            if g == 1 || keys.contains_key(&g) {
                continue;
            }
            // Key switches s(X^g) to s.
            let mut sg = self.sk.s.clone();
            sg.automorphism(self.ctx, g);
            keys.insert(g, self.ksw_key(&sg, &mut rng));
        }
        GaloisKeys { keys }
    }
}

impl<'c> KeyGenerator<'c> {
    /// Generates the complex-conjugation key (Galois element `2N − 1`)
    /// alongside keys for the given rotation steps.
    pub fn galois_keys_with_conjugation(
        &self,
        steps: impl IntoIterator<Item = i64>,
        rng: &mut impl Rng,
    ) -> GaloisKeys {
        let mut keys = self.galois_keys(steps, rng);
        let g = 2 * self.ctx.degree() - 1;
        keys.keys.entry(g).or_insert_with(|| {
            let mut sg = self.sk.s.clone();
            sg.automorphism(self.ctx, g);
            self.ksw_key(&sg, rng)
        });
        keys
    }
}

/// Builds a key-switching key from source secret `t` to main secret `s`
/// (both over `Q·P`, NTT) — shared by [`KeyGenerator`] and the lazy
/// [`KeyCache`].
fn generate_ksw(ctx: &CkksContext, s: &RnsPoly, t: &RnsPoly, rng: &mut impl Rng) -> KswKey {
    let l = ctx.max_level();
    let p = ctx.special().value();
    let mut k0 = Vec::with_capacity(l);
    let mut k1 = Vec::with_capacity(l);
    for j in 0..l {
        let a = RnsPoly::uniform(ctx, l, true, rng);
        let mut e = RnsPoly::gaussian(ctx, l, true, rng);
        e.to_ntt(ctx);
        // body = −a·s + e + T_j·t, where T_j has residue (P mod q_j) on
        // limb j and 0 elsewhere (including the special limb).
        let mut body = a.mul(ctx, s);
        body.neg_assign(ctx);
        body.add_assign(ctx, &e);
        let tj = {
            let qj = ctx.moduli()[j];
            let factor = qj.reduce(p);
            let factor_shoup = qj.shoup(factor);
            // Zero on all limbs except j, where it is (P mod q_j)·t.
            let mut tj = RnsPoly::zero(ctx, l, true, true);
            for (dst, &src) in tj.limb_mut(j).iter_mut().zip(t.limb(j)) {
                *dst = qj.mul_shoup(src, factor, factor_shoup);
            }
            tj
        };
        body.add_assign(ctx, &tj);
        k0.push(body);
        k1.push(a);
    }
    KswKey { k0, k1 }
}

/// SplitMix64 finalizer — decorrelates the per-element key-generation seeds
/// derived from (cache seed, Galois element).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Counters describing a [`KeyCache`]'s traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeyCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that generated a key on demand.
    pub misses: u64,
    /// Keys evicted to stay under the byte budget.
    pub evictions: u64,
    /// Bytes of key material currently cached (excluding the secret-key
    /// handle the cache holds to regenerate keys).
    pub bytes: usize,
    /// High-water mark of [`KeyCacheStats::bytes`].
    pub peak_bytes: usize,
}

struct CacheEntry {
    key: KswKey,
    /// Monotonic last-use tick for LRU eviction.
    tick: u64,
}

/// Lazy Galois-key store: generates each key on first use from a retained
/// secret-key handle and keeps it in an LRU cache under an optional byte
/// budget.
///
/// Per-element generation is seeded by `(seed, g)` independently of access
/// order, so an evicted key regenerates bit-identically — execution results
/// do not depend on the budget. Interior mutability lets a shared
/// [`crate::Evaluator`] populate the cache through `&self`.
pub struct KeyCache {
    sk: SecretKey,
    seed: u64,
    budget: Option<usize>,
    inner: std::sync::Mutex<CacheInner>,
}

struct CacheInner {
    entries: std::collections::HashMap<usize, CacheEntry>,
    tick: u64,
    stats: KeyCacheStats,
}

impl std::fmt::Debug for KeyCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyCache")
            .field("seed", &self.seed)
            .field("budget", &self.budget)
            .field("stats", &self.stats())
            .finish()
    }
}

impl KeyCache {
    /// A cache that generates keys on demand for `sk`'s context, evicting
    /// least-recently-used keys once cached bytes exceed `budget_bytes`
    /// (`None` = unbounded). The most recently requested key is never
    /// evicted, so a budget smaller than one key still works (by
    /// regenerating on every rotation).
    pub fn new(sk: SecretKey, seed: u64, budget_bytes: Option<usize>) -> Self {
        KeyCache {
            sk,
            seed,
            budget: budget_bytes,
            inner: std::sync::Mutex::new(CacheInner {
                entries: std::collections::HashMap::new(),
                tick: 0,
                stats: KeyCacheStats::default(),
            }),
        }
    }

    /// The configured byte budget (`None` = unbounded).
    pub fn budget_bytes(&self) -> Option<usize> {
        self.budget
    }

    /// Heap bytes of the retained secret-key handle.
    pub fn secret_key_bytes(&self) -> usize {
        self.sk.byte_size()
    }

    /// A snapshot of the cache's counters.
    pub fn stats(&self) -> KeyCacheStats {
        self.inner.lock().expect("key cache lock").stats
    }

    /// Whether a key for Galois element `g` is currently cached (does not
    /// touch LRU order).
    pub fn contains(&self, g: usize) -> bool {
        self.inner
            .lock()
            .expect("key cache lock")
            .entries
            .contains_key(&g)
    }

    /// The cached Galois elements, least recently used first.
    pub fn cached_elements(&self) -> Vec<usize> {
        let inner = self.inner.lock().expect("key cache lock");
        let mut els: Vec<(u64, usize)> = inner.entries.iter().map(|(&g, e)| (e.tick, g)).collect();
        els.sort_unstable();
        els.into_iter().map(|(_, g)| g).collect()
    }

    /// Runs `f` with the key for Galois element `g`, generating (and
    /// caching) it on first use. Never fails: any odd element can be
    /// derived from the secret-key handle.
    pub fn with_key<R>(&self, ctx: &CkksContext, g: usize, f: impl FnOnce(&KswKey) -> R) -> R {
        let mut inner = self.inner.lock().expect("key cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.entries.get_mut(&g) {
            entry.tick = tick;
            inner.stats.hits += 1;
            // Mutex-guarded borrow: run `f` under the lock.
            let entry = inner.entries.get(&g).expect("just updated");
            return f(&entry.key);
        }
        inner.stats.misses += 1;
        // Order-independent derivation: the same (seed, g) always produces
        // the same key, so eviction and regeneration are bit-transparent.
        let mut rng = rand::rngs::StdRng::seed_from_u64(splitmix64(self.seed ^ g as u64));
        let mut sg = self.sk.s.clone();
        sg.automorphism(ctx, g);
        let key = generate_ksw(ctx, &self.sk.s, &sg, &mut rng);
        inner.stats.bytes += key.byte_size();
        inner.entries.insert(g, CacheEntry { key, tick });
        if let Some(budget) = self.budget {
            while inner.stats.bytes > budget && inner.entries.len() > 1 {
                let victim = inner
                    .entries
                    .iter()
                    .filter(|(&el, _)| el != g)
                    .min_by_key(|(_, e)| e.tick)
                    .map(|(&el, _)| el)
                    .expect("len > 1 leaves a victim");
                let evicted = inner.entries.remove(&victim).expect("victim present");
                inner.stats.bytes -= evicted.key.byte_size();
                inner.stats.evictions += 1;
            }
        }
        inner.stats.peak_bytes = inner.stats.peak_bytes.max(inner.stats.bytes);
        let entry = inner.entries.get(&g).expect("just inserted");
        f(&entry.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{CkksContext, CkksParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> CkksContext {
        CkksContext::new(CkksParams {
            poly_degree: 64,
            max_level: 2,
            modulus_bits: 45,
            special_bits: 46,
            error_std: 3.2,
            threads: 1,
        })
    }

    #[test]
    fn rotation_galois_elements() {
        let ctx = ctx();
        assert_eq!(rotation_to_galois(&ctx, 0), 1);
        assert_eq!(rotation_to_galois(&ctx, 1), 5);
        assert_eq!(rotation_to_galois(&ctx, 2), 25);
        // Negative steps wrap modulo slot count.
        let slots = ctx.slots() as i64;
        assert_eq!(
            rotation_to_galois(&ctx, -1),
            rotation_to_galois(&ctx, slots - 1)
        );
    }

    #[test]
    fn public_key_is_pseudo_encryption_of_zero() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(7);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let pk = kg.public_key(&mut rng);
        // p0 + p1·s = −e: small.
        let mut s = kg.secret_key().s;
        s.drop_to_level(ctx.max_level());
        let mut acc = pk.p1.mul(&ctx, &s);
        acc.add_assign(&ctx, &pk.p0);
        acc.to_coeff(&ctx);
        let m = ctx.moduli()[0];
        for &c in acc.limb(0) {
            assert!(
                m.center(c).abs() < 64,
                "pk noise too large: {}",
                m.center(c)
            );
        }
    }

    #[test]
    fn key_cache_generates_on_demand_and_counts_bytes() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(21);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let cache = KeyCache::new(kg.secret_key(), 0xFEED, None);
        let one_key = 2 * ctx.max_level() * (ctx.max_level() + 1) * ctx.degree() * 8;
        assert_eq!(cache.stats().bytes, 0);
        let g = rotation_to_galois(&ctx, 1);
        cache.with_key(&ctx, g, |_| ());
        cache.with_key(&ctx, g, |_| ());
        let s = cache.stats();
        assert_eq!((s.misses, s.hits, s.evictions), (1, 1, 0));
        assert_eq!(s.bytes, one_key, "one cached key's bytes");
        assert_eq!(s.peak_bytes, one_key);
        assert!(cache.contains(g));
    }

    #[test]
    fn key_cache_evicts_least_recently_used_within_budget() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(22);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let one_key = 2 * ctx.max_level() * (ctx.max_level() + 1) * ctx.degree() * 8;
        let cache = KeyCache::new(kg.secret_key(), 0xFEED, Some(2 * one_key));
        let g = |k: i64| rotation_to_galois(&ctx, k);
        cache.with_key(&ctx, g(1), |_| ());
        cache.with_key(&ctx, g(2), |_| ());
        assert_eq!(cache.cached_elements(), vec![g(1), g(2)]);
        // Third key exceeds the budget: g(1) is the LRU victim.
        cache.with_key(&ctx, g(3), |_| ());
        assert_eq!(cache.cached_elements(), vec![g(2), g(3)]);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().bytes, 2 * one_key);
        // Touching g(2) promotes it, so the next insert evicts g(3).
        cache.with_key(&ctx, g(2), |_| ());
        cache.with_key(&ctx, g(1), |_| ());
        assert_eq!(cache.cached_elements(), vec![g(2), g(1)]);
        assert_eq!(cache.stats().peak_bytes, 2 * one_key);
    }

    #[test]
    fn key_cache_regenerates_evicted_keys_bit_identically() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(23);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let one_key = 2 * ctx.max_level() * (ctx.max_level() + 1) * ctx.degree() * 8;
        // Budget below one key: every rotation regenerates, results must
        // not depend on the churn.
        let cache = KeyCache::new(kg.secret_key(), 0xFEED, Some(one_key / 2));
        let g = rotation_to_galois(&ctx, 1);
        let first = cache.with_key(&ctx, g, KswKey::clone);
        cache.with_key(&ctx, rotation_to_galois(&ctx, 2), |_| ());
        assert!(!cache.contains(g), "tiny budget keeps only the newest key");
        let again = cache.with_key(&ctx, g, KswKey::clone);
        assert_eq!(first, again, "per-element seeding is order-independent");
    }

    #[test]
    fn galois_keys_skip_identity_and_dedup() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(8);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let gk = kg.galois_keys([0i64, 1, 1, 2], &mut rng);
        let mut els: Vec<usize> = gk.elements().collect();
        els.sort_unstable();
        assert_eq!(els, vec![5, 25]);
        assert!(gk.get(5).is_some());
        assert!(gk.get(1).is_none());
    }
}
