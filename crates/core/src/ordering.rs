//! Allocation ordering (§6.1): decide the order in which the backward
//! reserve analysis visits values, prioritizing heavy operations so they get
//! the best level-reduction opportunities.
//!
//! The order is built by repeatedly taking the heaviest not-yet-covered
//! operation, tracing its dependence chain to the return value, and
//! appending the chain's members lowest-depth first. The final order is then
//! legalized into a reverse-topological order (users before operands) that
//! respects those priorities, which is what the backward allocation needs.

use fhe_ir::analysis::{estimated_levels, live, mult_depth};
use fhe_ir::{CompileParams, CostModel, Program, ValueId};

/// Result of the ordering phase.
#[derive(Debug, Clone)]
pub struct AllocationOrder {
    /// Values in allocation (visit) order: every user precedes its operands,
    /// higher-priority (heavier) chains first.
    pub order: Vec<ValueId>,
    /// Estimated pre-allocation cost of each value (µs), the §6.1 heuristic.
    pub estimated_cost: Vec<f64>,
}

/// Computes the §6.1 cost estimate for every value: latency of its op class
/// at the estimated level `1 + depth·ω`, interpolated from the cost table.
pub fn estimate_costs(program: &Program, params: &CompileParams, cost: &CostModel) -> Vec<f64> {
    let levels = estimated_levels(program, params);
    program
        .ids()
        .map(|id| match CostModel::classify(program, id) {
            Some(class) => cost.at_frac_level(class, levels[id.index()]),
            None => 0.0,
        })
        .collect()
}

/// Builds the allocation order for a program.
pub fn allocation_order(
    program: &Program,
    params: &CompileParams,
    cost: &CostModel,
) -> AllocationOrder {
    let n = program.num_ops();
    let estimated_cost = estimate_costs(program, params, cost);
    let depth = mult_depth(program);
    let live = live(program);
    let users = program.users();

    // Heaviest-first visit of ops; each contributes its dependence chain to
    // the return value (following the max-depth user at every step),
    // appended lowest-depth (closest to the return) first.
    let mut by_cost: Vec<ValueId> = program.ids().filter(|id| live[id.index()]).collect();
    by_cost.sort_by(|&a, &b| {
        estimated_cost[b.index()]
            .partial_cmp(&estimated_cost[a.index()])
            .expect("costs are finite")
            .then(a.cmp(&b))
    });

    let mut priority = vec![usize::MAX; n];
    let mut next_rank = 0usize;
    for &heavy in &by_cost {
        if priority[heavy.index()] != usize::MAX {
            continue; // already covered by an earlier chain
        }
        // Walk from `heavy` towards the return along max-depth users.
        let mut chain = vec![heavy];
        let mut cur = heavy;
        loop {
            let next = users[cur.index()]
                .iter()
                .copied()
                .filter(|u| live[u.index()])
                .max_by_key(|u| (depth[u.index()], std::cmp::Reverse(u.index())));
            match next {
                Some(u) => {
                    chain.push(u);
                    cur = u;
                }
                None => break,
            }
        }
        // Lowest depth first == closest to the return first.
        chain.sort_by_key(|v| depth[v.index()]);
        for v in chain {
            if priority[v.index()] == usize::MAX {
                priority[v.index()] = next_rank;
                next_rank += 1;
            }
        }
    }
    // Dead values go last (they are skipped by allocation anyway).
    for id in program.ids() {
        if priority[id.index()] == usize::MAX {
            priority[id.index()] = next_rank;
            next_rank += 1;
        }
    }

    // Legalize into a reverse-topological order honouring the priorities:
    // a value becomes ready once all its live users are emitted.
    let mut pending_users = vec![0usize; n];
    for id in program.ids() {
        if live[id.index()] {
            for op in program.op(id).operands() {
                pending_users[op.index()] += 1;
            }
        }
    }
    let mut heap = std::collections::BinaryHeap::new(); // max-heap
    let ready = |pending: &Vec<usize>, id: ValueId| pending[id.index()] == 0;
    for id in program.ids() {
        if ready(&pending_users, id) {
            heap.push((std::cmp::Reverse(priority[id.index()]), id));
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut emitted = vec![false; n];
    while let Some((_, id)) = heap.pop() {
        if emitted[id.index()] {
            continue;
        }
        emitted[id.index()] = true;
        order.push(id);
        for op in program.op(id).operands() {
            if live[id.index()] {
                pending_users[op.index()] -= 1;
            }
            if pending_users[op.index()] == 0 && !emitted[op.index()] {
                heap.push((std::cmp::Reverse(priority[op.index()]), op));
            }
        }
    }
    debug_assert_eq!(order.len(), n, "every value must be ordered");
    AllocationOrder {
        order,
        estimated_cost,
    }
}

/// A deliberately naive allocation order — plain reverse-topological by id,
/// ignoring operation weight. Used by the ordering ablation to quantify how
/// much the §6.1 cost-prioritized ordering contributes.
pub fn naive_order(program: &Program) -> AllocationOrder {
    let order: Vec<ValueId> = program.ids().rev().collect();
    AllocationOrder {
        order,
        estimated_cost: vec![0.0; program.num_ops()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::Builder;

    fn fig2a() -> (Program, [ValueId; 7]) {
        let b = Builder::new("fig2a", 8);
        let x = b.input("x");
        let y = b.input("y");
        let x2 = x.clone() * x.clone();
        let x3 = x.clone() * x2.clone();
        let y2 = y.clone() * y.clone();
        let s = y2.clone() + y.clone();
        let q = x3.clone() * s.clone();
        let ids = [x.id(), y.id(), x2.id(), x3.id(), y2.id(), s.id(), q.id()];
        (b.finish(vec![q]), ids)
    }

    #[test]
    fn cost_estimates_match_fig3a() {
        // Fig. 3a (in hundreds of µs): x2 92, x3 76, y2 76, q 60, s ~1.6.
        let (p, [x, y, x2, x3, y2, s, q]) = fig2a();
        let params = CompileParams::new(20);
        let costs = estimate_costs(&p, &params, &CostModel::paper_table3());
        let h = |id: ValueId| (costs[id.index()] / 100.0).round() as i64;
        assert_eq!(h(x2), 92);
        assert_eq!(h(x3), 76);
        assert_eq!(h(y2), 76);
        assert_eq!(h(q), 60);
        assert_eq!(h(s), 2);
        assert_eq!(h(x), 0);
        assert_eq!(h(y), 0);
    }

    #[test]
    fn order_matches_fig3b() {
        // Reserve allocation order: q → x3 → x2 → s → y2 → x → y.
        let (p, [x, y, x2, x3, y2, s, q]) = fig2a();
        let params = CompileParams::new(20);
        let ord = allocation_order(&p, &params, &CostModel::paper_table3());
        assert_eq!(ord.order, vec![q, x3, x2, s, y2, x, y]);
    }

    #[test]
    fn order_is_reverse_topological() {
        let (p, _) = fig2a();
        let params = CompileParams::new(20);
        let ord = allocation_order(&p, &params, &CostModel::paper_table3());
        let mut seen = vec![false; p.num_ops()];
        for &v in &ord.order {
            // All users must already be seen.
            for u in p.users()[v.index()].iter() {
                assert!(seen[u.index()], "user {u} of {v} not yet ordered");
            }
            seen[v.index()] = true;
        }
        assert_eq!(ord.order.len(), p.num_ops());
    }

    #[test]
    fn dead_values_ordered_last() {
        let b = Builder::new("d", 4);
        let x = b.input("x");
        let dead = x.clone().rotate(1);
        let dead_id = dead.id();
        drop(dead);
        let out = x.clone() * x;
        let p = b.finish(vec![out]);
        let params = CompileParams::new(20);
        let ord = allocation_order(&p, &params, &CostModel::paper_table3());
        assert_eq!(*ord.order.last().unwrap(), dead_id);
    }
}
