//! LeNet-5 inference under encryption: compiles the 11-depth CNN with all
//! three compilers, compares their plans, and runs a reduced instance end
//! to end under real RNS-CKKS.
//!
//! The full 16384-slot LeNet-5 takes minutes under encryption in this pure
//! Rust backend; pass `--full` to compile (not execute) the paper-sized
//! instance and print its statistics.
//!
//! ```sh
//! cargo run --example lenet_inference --release [-- --full]
//! ```

use fhe_reserve::prelude::*;
use fhe_reserve::{baselines, runtime, workloads};
use workloads::lenet::{build, lenet_inputs, LenetConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = std::env::args().any(|a| a == "--full");

    if full {
        let cfg = LenetConfig::lenet5();
        let program = build(&cfg);
        println!(
            "LeNet-5 (paper size): {} ops, depth {}",
            program.num_ops(),
            fhe_reserve::ir::analysis::circuit_depth(&program)
        );
        for waterline in [20, 40] {
            let t = std::time::Instant::now();
            let ours = fhe_reserve::compiler::compile(&program, &Options::new(waterline))?;
            println!(
                "  W=2^{waterline}: compiled in {:?} (scale mgmt {:?}), level {}, est {:.1} s",
                t.elapsed(),
                ours.report.scale_management_time,
                ours.report.max_level,
                ours.report.estimated_latency_us / 1e6
            );
        }
        return Ok(());
    }

    // Reduced LeNet: same 11-depth structure, 128 slots.
    let cfg = LenetConfig::tiny(128);
    let program = build(&cfg);
    let inputs = lenet_inputs(&cfg, 99);
    println!(
        "reduced LeNet: {} ops, depth {}",
        program.num_ops(),
        fhe_reserve::ir::analysis::circuit_depth(&program)
    );

    let params = CompileParams::new(25);
    let eva = baselines::eva::compile(&program, &params)?;
    let mut options = Options::new(25);
    options.params.output_reserve_bits = 4;
    let ours = fhe_reserve::compiler::compile(&program, &options)?;
    println!(
        "EVA:     level {:>2}, estimated {:>8.1} ms",
        eva.report.max_level,
        eva.report.estimated_latency_us / 1000.0
    );
    println!(
        "reserve: level {:>2}, estimated {:>8.1} ms ({} hoists, {:?} scale mgmt)",
        ours.report.max_level,
        ours.report.estimated_latency_us / 1000.0,
        ours.report.hoists,
        ours.report.scale_management_time
    );

    let report = runtime::execute_encrypted(
        &ours.scheduled,
        &inputs,
        &runtime::ExecOptions {
            poly_degree: 256,
            seed: 5,
            threads: 1,
            ..runtime::ExecOptions::default()
        },
    )
    .unwrap();
    println!(
        "encrypted inference: {} ops in {:?}, max error {:.3e}",
        report.ops_executed,
        report.op_time,
        report.max_abs_error()
    );
    let scores: Vec<f64> = report.outputs[0][..8].to_vec();
    println!("first 8 output scores: {scores:.3?}");
    assert!(report.max_abs_error() < 0.05);
    Ok(())
}
