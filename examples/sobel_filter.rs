//! Encrypted Sobel edge detection, comparing the three compilers.
//!
//! Builds the paper's SF benchmark on a 16×16 image, compiles it with EVA,
//! Hecate and the reserve compiler, prints their scale-management plans and
//! estimated latencies, and runs the reserve plan under real encryption.
//!
//! ```sh
//! cargo run --example sobel_filter --release
//! ```

use fhe_reserve::prelude::*;
use fhe_reserve::{baselines, runtime, workloads};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let width = 16; // 256 pixels packed in one ciphertext
    let program = workloads::image::sobel(width);
    let inputs = workloads::image::image_inputs(width, 7);
    let params = CompileParams::new(25);
    let cost = CostModel::paper_table3();

    // EVA: conservative forward analysis.
    let eva = baselines::eva::compile(&program, &params)?;
    // Hecate: exploration (bounded here for demo purposes).
    let hecate = baselines::hecate::compile(
        &program,
        &params,
        &baselines::HecateOptions {
            max_iterations: 1500,
            patience: 500,
            seed: 1,
            max_choice: baselines::ForwardPlan::MAX_CHOICE,
        },
    )?;
    // This work: reserve analysis.
    let mut options = Options::new(25);
    options.params.output_reserve_bits = 4;
    let ours = fhe_reserve::compiler::compile(&program, &options)?;

    println!("compiler   est. latency   scale mgmt time   rescale/modswitch/upscale");
    for (name, sched, us, time) in [
        (
            "EVA",
            &eva.scheduled,
            eva.report.estimated_latency_us,
            eva.report.scale_management_time,
        ),
        (
            "Hecate",
            &hecate.scheduled,
            hecate.report.estimated_latency_us,
            hecate.report.scale_management_time,
        ),
        (
            "reserve",
            &ours.scheduled,
            ours.report.estimated_latency_us,
            ours.report.scale_management_time,
        ),
    ] {
        let (rs, ms, us_ops) = sched.scale_management_counts();
        println!(
            "{name:<10} {:>9.1} ms {:>15.3?}   {rs}/{ms}/{us_ops}",
            us / 1000.0,
            time
        );
        let _ = cost.at_level(fhe_reserve::ir::OpClass::Rotate, 1);
    }
    println!(
        "hecate explored {} candidate plans; the reserve compiler none.",
        hecate.report.iterations
    );

    // Run the reserve plan under real encryption.
    let report = runtime::execute_encrypted(
        &ours.scheduled,
        &inputs,
        &runtime::ExecOptions {
            poly_degree: 2 * width * width,
            seed: 3,
            threads: 1,
            ..runtime::ExecOptions::default()
        },
    )
    .unwrap();
    println!(
        "encrypted sobel: {} ops, wall-clock {:?}, max error {:.3e}",
        report.ops_executed,
        report.op_time,
        report.max_abs_error()
    );
    // Show a few edge magnitudes.
    for i in [17, 18, 19] {
        println!(
            "pixel {i}: |∇I|² plaintext {:.5}, decrypted {:.5}",
            report.reference[0][i], report.outputs[0][i]
        );
    }
    Ok(())
}
