//! Privacy-preserving linear-regression training: two epochs of batch
//! gradient descent over encrypted samples, with the trained weights
//! decrypted at the end.
//!
//! ```sh
//! cargo run --example regression_training --release
//! ```

use fhe_reserve::prelude::*;
use fhe_reserve::{runtime, workloads};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 512; // samples, packed in one ciphertext
    let epochs = 2;
    let program = workloads::regression::linear(n, epochs);
    let inputs = workloads::regression::linear_inputs(n, 1234);
    println!(
        "linear regression: {} samples, {} epochs, {} ops, depth {}",
        n,
        epochs,
        program.num_ops(),
        fhe_reserve::ir::analysis::circuit_depth(&program)
    );

    let mut options = Options::new(35);
    options.params.output_reserve_bits = 4;
    let compiled = fhe_reserve::compiler::compile(&program, &options)?;
    println!(
        "compiled to {} ops at level {} (estimated {:.1} ms)",
        compiled.report.ops_after,
        compiled.report.max_level,
        compiled.report.estimated_latency_us / 1000.0
    );

    let report = runtime::execute_encrypted(
        &compiled.scheduled,
        &inputs,
        &runtime::ExecOptions {
            poly_degree: 2 * n,
            seed: 77,
            threads: 1,
            ..runtime::ExecOptions::default()
        },
    )
    .unwrap();

    // The data was generated from y ≈ 0.7·x + 0.2 (plus noise); two GD
    // steps with lr = 0.1 move the encrypted model towards it.
    let w = report.outputs[0][0];
    let b = report.outputs[1][0];
    println!("trained (encrypted) model: w = {w:.4}, b = {b:.4}  [truth: 0.7, 0.2]");
    println!(
        "plaintext training agrees: w = {:.4}, b = {:.4} (max error {:.2e})",
        report.reference[0][0],
        report.reference[1][0],
        report.max_abs_error()
    );
    assert!(report.max_abs_error() < 1e-2);
    assert!(w > 0.0 && b > 0.0);
    Ok(())
}
