//! Extra ablations beyond the paper's Fig. 8:
//!
//! 1. **Allocation ordering** (§6.1): the cost-prioritized order vs a naive
//!    reverse-topological order — quantifies how much prioritizing heavy
//!    chains contributes to the final plan.
//! 2. **Static error bounds**: the closed-form worst-case error estimate
//!    (an ELASM-direction extension) next to the simulated error.

use fhe_bench::{print_table, CliArgs};
use fhe_ir::pipeline::ScaleCompiler;
use fhe_ir::CompileParams;
use fhe_runtime::{estimate_error, ErrorEstimateOptions, Executor, NoiseSimExec};
use reserve_core::{OrderingStrategy, ReserveCompiler};

fn main() {
    let args = CliArgs::parse();
    let suite = fhe_bench::selected_suite(&args);
    let waterline = 20;
    let params = CompileParams::new(waterline);

    println!("Ablation A: allocation ordering (latency, ms, W = 2^{waterline}).\n");
    // Both variants are full reserve pipelines differing only in visit
    // order — driven through the same ScaleCompiler interface as the
    // paper's comparisons.
    let naive_compiler = ReserveCompiler {
        ordering: OrderingStrategy::ReverseTopological,
        ..ReserveCompiler::full()
    };
    let paper_compiler = ReserveCompiler::full();
    let headers = ["Benchmark", "Naive order", "Cost-priority (paper)", "Delta"];
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    // Include the paper's worked example: its redistribution is contended
    // (x³ and y² both want budget from s), so ordering visibly matters.
    let fig2a = {
        let b = fhe_ir::Builder::new("fig2a", 8);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        fhe_workloads::Workload {
            name: "Fig2a",
            program: b.finish(vec![q]),
            inputs: std::collections::HashMap::new(),
        }
    };
    let mut suite_a: Vec<&fhe_workloads::Workload> = vec![&fig2a];
    suite_a.extend(suite.iter());
    for w in suite_a {
        eprintln!("ordering ablation: {} ...", w.name);
        let naive = naive_compiler
            .compile(&w.program, &params)
            .expect("compiles");
        let paper = paper_compiler
            .compile(&w.program, &params)
            .expect("compiles");
        let ratio = paper.report.estimated_latency_us / naive.report.estimated_latency_us;
        ratios.push(ratio);
        rows.push(vec![
            w.name.to_string(),
            format!("{:.1}", naive.report.estimated_latency_us / 1000.0),
            format!("{:.1}", paper.report.estimated_latency_us / 1000.0),
            format!("{:+.1}%", (ratio - 1.0) * 100.0),
        ]);
    }
    print_table(&headers, &rows);
    println!(
        "geomean: cost-priority ordering changes latency by {:+.1}%",
        (fhe_bench::geomean(&ratios) - 1.0) * 100.0
    );
    println!("(§6.4: reserve analysis is locally optimal *per order*; the order");
    println!(" changes which local optimum is found, so deltas can go either way)\n");

    println!("Ablation B: static error bound vs simulated error (log2, W = 2^{waterline}).\n");
    let sim = NoiseSimExec::default();
    let headers = ["Benchmark", "Simulated", "Static bound", "Slack (bits)"];
    let mut rows = Vec::new();
    for w in &suite {
        eprintln!("error ablation: {} ...", w.name);
        let compiled = paper_compiler
            .compile(&w.program, &params)
            .expect("compiles");
        let simulated = sim
            .execute(&compiled.scheduled, &w.inputs)
            .expect("validates")
            .log2_error();
        let bound = estimate_error(&compiled.scheduled, &ErrorEstimateOptions::default())
            .expect("validates")
            .iter()
            .fold(f64::MIN_POSITIVE, |a, &b| a.max(b))
            .log2();
        rows.push(vec![
            w.name.to_string(),
            format!("{simulated:.1}"),
            format!("{bound:.1}"),
            format!("{:.1}", bound - simulated),
        ]);
    }
    print_table(&headers, &rows);
    println!("\n(the bound must sit above the simulation; small slack = tight model)");
}
