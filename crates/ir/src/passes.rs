//! Classic cleanup passes: common-subexpression and dead-code elimination.
//!
//! Both EVA and Hecate run CSE/DCE as part of compilation (§8.1); every
//! compiler in this workspace applies them before scale management so that
//! op counts and costs are comparable.

use std::collections::HashMap;

use crate::analysis::live;
use crate::op::{ConstValue, Op, ValueId};
use crate::program::{Program, ProgramEditor};

/// A hashable structural key for CSE. Floats are keyed by bit pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum OpKey {
    Const(ConstKey),
    Add(ValueId, ValueId),
    Sub(ValueId, ValueId),
    Mul(ValueId, ValueId),
    Neg(ValueId),
    Rotate(ValueId, i64),
    Rescale(ValueId),
    ModSwitch(ValueId),
    Upscale(ValueId, (i128, i128)),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ConstKey {
    Scalar(u64),
    /// Vector constants are keyed by allocation identity: structurally
    /// equal vectors behind distinct `Arc`s are not merged (hashing
    /// multi-thousand-slot weight vectors on every CSE pass would dominate
    /// compile time; missing a merge is only a missed optimization).
    Vector(usize),
}

fn const_key(value: &ConstValue) -> ConstKey {
    match value {
        ConstValue::Scalar(v) => ConstKey::Scalar(v.to_bits()),
        ConstValue::Vector(v) => ConstKey::Vector(std::sync::Arc::as_ptr(v) as usize),
    }
}

/// Eliminates syntactically identical subexpressions (commutative ops are
/// canonicalized by sorting operands). Inputs are never merged.
///
/// # Examples
///
/// ```
/// use fhe_ir::{Builder, passes};
/// let b = Builder::new("t", 4);
/// let x = b.input("x");
/// let a = x.clone() * x.clone();
/// let c = x.clone() * x.clone(); // duplicate of `a`
/// let s = a + c;
/// let p = b.finish(vec![s]);
/// let (p, changed) = passes::cse(&p);
/// assert!(changed);
/// assert_eq!(p.count_ops(|o| matches!(o, fhe_ir::Op::Mul(..))), 1);
/// ```
pub fn cse(program: &Program) -> (Program, bool) {
    let mut ed = ProgramEditor::new(program);
    let mut table: HashMap<OpKey, ValueId> = HashMap::new();
    let mut changed = false;
    for id in program.ids() {
        let mapped = program.op(id).map_operands(|o| ed.map_operand(o));
        let key = match &mapped {
            Op::Input { .. } => None,
            Op::Const { value } => Some(OpKey::Const(const_key(value))),
            Op::Add(a, b) => Some(OpKey::Add(*a.min(b), *a.max(b))),
            Op::Mul(a, b) => Some(OpKey::Mul(*a.min(b), *a.max(b))),
            Op::Sub(a, b) => Some(OpKey::Sub(*a, *b)),
            Op::Neg(a) => Some(OpKey::Neg(*a)),
            Op::Rotate(a, k) => Some(OpKey::Rotate(*a, *k)),
            Op::Rescale(a) => Some(OpKey::Rescale(*a)),
            Op::ModSwitch(a) => Some(OpKey::ModSwitch(*a)),
            Op::Upscale(a, d) => Some(OpKey::Upscale(*a, (d.numer(), d.denom()))),
        };
        match key {
            Some(key) => match table.get(&key) {
                Some(&existing) => {
                    ed.set_mapping(id, existing);
                    changed = true;
                }
                None => {
                    let new = ed.push(mapped);
                    ed.set_mapping(id, new);
                    table.insert(key, new);
                }
            },
            None => {
                let new = ed.push(mapped);
                ed.set_mapping(id, new);
            }
        }
    }
    (ed.finish(), changed)
}

/// Removes ops that cannot reach a program output.
pub fn dce(program: &Program) -> (Program, bool) {
    let live = live(program);
    if live.iter().all(|&l| l) {
        return (program.clone(), false);
    }
    let mut ed = ProgramEditor::new(program);
    for id in program.ids() {
        if live[id.index()] {
            ed.emit(id);
        }
    }
    (ed.finish(), true)
}

/// Runs canonicalization, constant folding, CSE and DCE to a fixpoint
/// (a few iterations in practice; folding is one layer per round).
pub fn cleanup(program: &Program) -> Program {
    let mut current = program.clone();
    loop {
        let (p, c0) = crate::fold::canonicalize(&current);
        let (p, c1) = crate::fold::fold_constants(&p);
        let (p, c2) = cse(&p);
        let (p, c3) = dce(&p);
        current = p;
        if !(c0 || c1 || c2 || c3) {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    #[test]
    fn cse_merges_commutative_muls() {
        let b = Builder::new("t", 4);
        let x = b.input("x");
        let y = b.input("y");
        let a = x.clone() * y.clone();
        let c = y * x; // same product, swapped operands
        let s = a + c;
        let p = b.finish(vec![s]);
        let (out, changed) = cse(&p);
        assert!(changed);
        assert_eq!(out.count_ops(|o| matches!(o, Op::Mul(..))), 1);
    }

    #[test]
    fn cse_does_not_merge_sub_operand_orders() {
        let b = Builder::new("t", 4);
        let x = b.input("x");
        let y = b.input("y");
        let a = x.clone() - y.clone();
        let c = y - x;
        let s = a * c;
        let p = b.finish(vec![s]);
        let (out, _) = cse(&p);
        assert_eq!(out.count_ops(|o| matches!(o, Op::Sub(..))), 2);
    }

    #[test]
    fn cse_merges_identical_constants_only() {
        let b = Builder::new("t", 4);
        let x = b.input("x");
        let c1 = b.constant(2.0);
        let c2 = b.constant(2.0);
        let c3 = b.constant(3.0);
        let e = (x.clone() * c1) + (x.clone() * c2) + (x * c3);
        let p = b.finish(vec![e]);
        let (out, changed) = cse(&p);
        assert!(changed);
        assert_eq!(out.count_ops(|o| matches!(o, Op::Const { .. })), 2);
        // The two x·2 products also merged.
        assert_eq!(out.count_ops(|o| matches!(o, Op::Mul(..))), 2);
    }

    #[test]
    fn cse_never_merges_inputs() {
        let b = Builder::new("t", 4);
        let x = b.input("x");
        let y = b.input("x"); // same name, still distinct ciphertexts
        let s = x + y;
        let p = b.finish(vec![s]);
        let (out, changed) = cse(&p);
        assert!(!changed);
        assert_eq!(out.inputs().len(), 2);
    }

    #[test]
    fn dce_drops_dead_rotate() {
        let b = Builder::new("t", 4);
        let x = b.input("x");
        let dead = x.clone().rotate(3);
        drop(dead);
        let out_expr = x.clone() * x;
        let p = b.finish(vec![out_expr]);
        assert_eq!(p.num_ops(), 3);
        let (out, changed) = dce(&p);
        assert!(changed);
        assert_eq!(out.num_ops(), 2);
    }

    #[test]
    fn dce_keeps_inputs_even_if_dead() {
        // Dead *non-input* ops go away; unused inputs are part of the
        // program signature... but our DCE is value-based, so an unused
        // input is dropped too. Verify current (documented) behaviour.
        let b = Builder::new("t", 4);
        let x = b.input("x");
        let _unused = b.input("y");
        let p = b.finish(vec![x]);
        let (out, changed) = dce(&p);
        assert!(changed);
        assert_eq!(out.inputs().len(), 1);
    }

    #[test]
    fn cleanup_reaches_fixpoint() {
        let b = Builder::new("t", 4);
        let x = b.input("x");
        let a = x.clone() * x.clone();
        let c = x.clone() * x.clone();
        let s = a + c;
        let p = b.finish(vec![s]);
        let out = cleanup(&p);
        // x, x·x, add
        assert_eq!(out.num_ops(), 3);
        let again = cleanup(&out);
        assert_eq!(again.num_ops(), 3);
    }
}
