//! Fig. 7: output error (log₂ of the max absolute error) of EVA, Hecate and
//! this work at waterlines 2^20 and 2^40, measured with the noise-injection
//! simulator on each benchmark's synthetic inputs.
//!
//! Expected shape (paper §8.2): errors at W=2^40 are far below W=2^20, and
//! this work's errors are at or below the baselines' because the reserve
//! analysis does not unnecessarily minimize scales.

use fhe_bench::{compile_all, hecate_budget, print_table, standard_compilers, CliArgs};
use fhe_runtime::{Executor, NoiseSimExec};

fn main() {
    let args = CliArgs::parse();
    let suite = fhe_bench::selected_suite(&args);
    let sim = NoiseSimExec::default();
    let names: Vec<String> = standard_compilers(1)
        .iter()
        .map(|c| c.name().to_string())
        .collect();

    for waterline in [20u32, 40] {
        println!(
            "Fig. 7{}: error (log2) at waterline 2^{waterline}.\n",
            if waterline == 20 { "a" } else { "b" }
        );
        let mut headers = vec!["Benchmark"];
        headers.extend(names.iter().map(String::as_str));
        let mut rows = Vec::new();
        for w in &suite {
            eprintln!("simulating {} at W=2^{waterline} ...", w.name);
            // Sweeps multiply Hecate's cost by the number of points; cap the
            // exploration budget to keep the harness under a few minutes.
            let budget = hecate_budget(&args, w.program.num_ops()).min(2000);
            let outs = compile_all(&standard_compilers(budget), &w.program, waterline);
            let mut row = vec![w.name.to_string()];
            for out in &outs {
                let run = sim
                    .execute(&out.scheduled, &w.inputs)
                    .expect("schedules validate");
                row.push(format!("{:.1}", run.log2_error()));
            }
            rows.push(row);
        }
        print_table(&headers, &rows);
        println!();
    }
    println!("(lower is better; paper Fig. 7 reports this work at or below the baselines,");
    println!(" with every error dropping by ~20 log2 units from W=2^20 to W=2^40)");
}
