//! CKKS encoding: real vectors ↔ integer polynomials via the canonical
//! embedding.
//!
//! A slot vector `v ∈ R^{N/2}` is mapped to the unique real polynomial `p`
//! of degree `< N` with `p(ζ^{5^j}) = v_j` (`ζ` a primitive 2N-th root of
//! unity), then scaled by `m` and rounded to integer coefficients. The
//! evaluation points are the odd powers of `ζ`, so evaluation is a
//! *negacyclic* DFT: twisting coefficients by `ζ^k` reduces it to a
//! standard size-`N` FFT.

use crate::bigint::CrtReconstructor;
use crate::context::CkksContext;
use crate::poly::RnsPoly;

/// Minimal complex number (kept local: only the encoder needs it).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates `re + im·i`.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }

    fn add(self, o: Complex) -> Complex {
        Complex {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }

    fn sub(self, o: Complex) -> Complex {
        Complex {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

/// In-place radix-2 FFT computing `X_t = Σ_k x_k ω^{±kt}`, `ω = e^{2πi/N}`.
/// `inverse = false` uses the `+` sign (our "evaluation" direction);
/// `inverse = true` uses the `−` sign and divides by `N`.
fn fft(x: &mut [Complex], inverse: bool) {
    let n = x.len();
    assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            x.swap(i, j);
        }
    }
    let sign = if inverse { -1.0 } else { 1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wl = Complex::new(ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = x[start + k];
                let v = x[start + k + len / 2].mul(w);
                x[start + k] = u.add(v);
                x[start + k + len / 2] = u.sub(v);
                w = w.mul(wl);
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv_n = 1.0 / n as f64;
        for v in x.iter_mut() {
            v.re *= inv_n;
            v.im *= inv_n;
        }
    }
}

/// A plaintext: an encoded polynomial with its scale and level, ready for
/// homomorphic arithmetic (NTT domain).
#[derive(Debug, Clone)]
pub struct Plaintext {
    /// The encoded polynomial.
    pub poly: RnsPoly,
    /// The encoding scale `m` (exact value, not log).
    pub scale: f64,
    /// The level the plaintext is encoded at.
    pub level: usize,
}

/// Encoder/decoder for one context.
#[derive(Debug)]
pub struct Encoder<'c> {
    ctx: &'c CkksContext,
    /// `ζ^k` for `k = 0..N` (`ζ = e^{iπ/N}`).
    twist: Vec<Complex>,
    /// Slot `j` ↦ FFT bin `t_j = (5^j mod 2N − 1)/2`.
    slot_to_bin: Vec<usize>,
}

impl<'c> Encoder<'c> {
    /// Builds the encoder tables for a context.
    pub fn new(ctx: &'c CkksContext) -> Self {
        let n = ctx.degree();
        let twist = (0..n)
            .map(|k| {
                let ang = std::f64::consts::PI * k as f64 / n as f64;
                Complex::new(ang.cos(), ang.sin())
            })
            .collect();
        let mut slot_to_bin = Vec::with_capacity(n / 2);
        let mut g = 1usize;
        for _ in 0..n / 2 {
            slot_to_bin.push((g - 1) / 2);
            g = (g * 5) % (2 * n);
        }
        Encoder {
            ctx,
            twist,
            slot_to_bin,
        }
    }

    /// Number of slots (`N/2`).
    pub fn slots(&self) -> usize {
        self.ctx.slots()
    }

    /// Encodes real slot values at the given scale and level. Shorter
    /// inputs are zero-padded.
    ///
    /// # Panics
    ///
    /// Panics if more than `N/2` values are supplied or the scale is not
    /// positive/finite.
    pub fn encode(&self, values: &[f64], scale: f64, level: usize) -> Plaintext {
        assert!(values.len() <= self.slots(), "too many slot values");
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        let n = self.ctx.degree();
        let mut spectrum = vec![Complex::default(); n];
        for (j, &bin) in self.slot_to_bin.iter().enumerate() {
            let v = Complex::new(values.get(j).copied().unwrap_or(0.0), 0.0);
            spectrum[bin] = v;
            spectrum[n - 1 - bin] = v.conj();
        }
        // Interpolate: coefficients of the twisted polynomial...
        fft(&mut spectrum, true);
        // ...then untwist: c_k = twisted_k · ζ^{-k}.
        let coeffs: Vec<f64> = spectrum
            .iter()
            .enumerate()
            .map(|(k, &t)| t.mul(self.twist[k].conj()).re * scale)
            .collect();
        let mut poly = RnsPoly::from_real_coeffs(self.ctx, level, false, &coeffs);
        poly.to_ntt(self.ctx);
        Plaintext { poly, scale, level }
    }

    /// Decodes a plaintext back to real slot values.
    ///
    /// Uses exact CRT reconstruction of every coefficient, so decoding is
    /// accurate even under deep modulus chains.
    pub fn decode(&self, pt: &Plaintext) -> Vec<f64> {
        let n = self.ctx.degree();
        let mut poly = pt.poly.clone();
        poly.to_coeff(self.ctx);
        let crt: &CrtReconstructor = self.ctx.crt(poly.level());
        let mut twisted = vec![Complex::default(); n];
        for (k, t) in twisted.iter_mut().enumerate() {
            let c = crt.centered_f64(&poly.coeff_residues(k));
            *t = self.twist[k].mul(Complex::new(c, 0.0));
        }
        fft(&mut twisted, false);
        self.slot_to_bin
            .iter()
            .map(|&bin| twisted[bin].re / pt.scale)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{CkksContext, CkksParams};

    fn ctx() -> CkksContext {
        CkksContext::new(CkksParams {
            poly_degree: 128,
            max_level: 3,
            modulus_bits: 45,
            special_bits: 46,
            error_std: 3.2,
            threads: 1,
        })
    }

    #[test]
    fn fft_roundtrip() {
        let mut x: Vec<Complex> = (0..16)
            .map(|i| Complex::new(i as f64, (i * i) as f64 * 0.1))
            .collect();
        let orig = x.clone();
        fft(&mut x, false);
        fft(&mut x, true);
        for (a, b) in x.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ctx = ctx();
        let enc = Encoder::new(&ctx);
        let values: Vec<f64> = (0..enc.slots())
            .map(|i| (i as f64 * 0.37).sin() * 3.0)
            .collect();
        let pt = enc.encode(&values, 2f64.powi(30), 2);
        let back = enc.decode(&pt);
        for (a, b) in back.iter().zip(&values) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn short_input_zero_pads() {
        let ctx = ctx();
        let enc = Encoder::new(&ctx);
        let pt = enc.encode(&[1.5, -2.5], 2f64.powi(30), 1);
        let back = enc.decode(&pt);
        assert!((back[0] - 1.5).abs() < 1e-6);
        assert!((back[1] + 2.5).abs() < 1e-6);
        assert!(back[2].abs() < 1e-6);
    }

    #[test]
    fn encoding_is_additively_homomorphic() {
        let ctx = ctx();
        let enc = Encoder::new(&ctx);
        let a: Vec<f64> = (0..enc.slots()).map(|i| i as f64 * 0.01).collect();
        let b: Vec<f64> = (0..enc.slots()).map(|i| 1.0 - i as f64 * 0.02).collect();
        let scale = 2f64.powi(30);
        let pa = enc.encode(&a, scale, 1);
        let pb = enc.encode(&b, scale, 1);
        let mut sum = pa.poly.clone();
        sum.add_assign(&ctx, &pb.poly);
        let pt = Plaintext {
            poly: sum,
            scale,
            level: 1,
        };
        let back = enc.decode(&pt);
        for (i, v) in back.iter().enumerate() {
            assert!((v - (a[i] + b[i])).abs() < 1e-6);
        }
    }

    #[test]
    fn encoding_product_multiplies_slotwise() {
        // Negacyclic poly product == slotwise product of embeddings.
        let ctx = ctx();
        let enc = Encoder::new(&ctx);
        let a: Vec<f64> = (0..enc.slots())
            .map(|i| ((i * 7 % 5) as f64) - 2.0)
            .collect();
        let b: Vec<f64> = (0..enc.slots())
            .map(|i| ((i * 3 % 4) as f64) * 0.5)
            .collect();
        let scale = 2f64.powi(25);
        let pa = enc.encode(&a, scale, 2);
        let pb = enc.encode(&b, scale, 2);
        let prod = pa.poly.mul(&ctx, &pb.poly);
        let pt = Plaintext {
            poly: prod,
            scale: scale * scale,
            level: 2,
        };
        let back = enc.decode(&pt);
        for (i, v) in back.iter().enumerate() {
            assert!(
                (v - a[i] * b[i]).abs() < 1e-4,
                "slot {i}: {v} vs {}",
                a[i] * b[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "too many")]
    fn rejects_oversized_input() {
        let ctx = ctx();
        let enc = Encoder::new(&ctx);
        let _ = enc.encode(&vec![0.0; 65], 2f64.powi(30), 1);
    }
}
