//! Shared circuit-construction helpers: packed convolutions, reductions and
//! diagonal matrix–vector products — the building blocks of the paper's
//! eight benchmarks.

use fhe_ir::{Builder, Expr};

/// Sums a list of expressions as a balanced binary tree (depth `⌈log₂ k⌉`
/// instead of `k − 1`), the natural shape for SIMD summations and the one
/// that lets rescale hoisting cascade in few rounds.
///
/// # Panics
///
/// Panics if `terms` is empty.
pub fn sum_balanced(mut terms: Vec<Expr>) -> Expr {
    assert!(!terms.is_empty(), "sum_balanced of no terms");
    while terms.len() > 1 {
        let mut next = Vec::with_capacity(terms.len().div_ceil(2));
        let mut it = terms.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(a + b),
                None => next.push(a),
            }
        }
        terms = next;
    }
    terms.pop().expect("non-empty")
}

/// Sums all `n` slots into every slot (`n` must be a power of two):
/// `log₂ n` rotate-and-add steps. The result holds `Σ x` replicated.
pub fn rotate_sum_all(expr: Expr, n: usize) -> Expr {
    assert!(
        n.is_power_of_two(),
        "rotate_sum_all needs a power-of-two width"
    );
    let mut acc = expr;
    let mut step = 1usize;
    while step < n {
        acc = acc.clone() + acc.rotate(step as i64);
        step <<= 1;
    }
    acc
}

/// Mean over all `n` slots, replicated into every slot (a rotate-sum
/// followed by a plaintext `1/n` multiply).
pub fn mean_all(b: &Builder, expr: Expr, n: usize) -> Expr {
    rotate_sum_all(expr, n) * b.constant(1.0 / n as f64)
}

/// A 2-D convolution kernel with plaintext weights, applied to an image
/// packed row-major with the given row `width` and element `dilation`
/// (lazy-strided layouts use dilation > 1). Border pixels wrap around —
/// acceptable for latency benchmarks, as in the original EVA/Hecate image
/// kernels.
pub fn conv2d(
    b: &Builder,
    image: &Expr,
    weights: &[Vec<f64>],
    width: usize,
    dilation: usize,
) -> Expr {
    let kh = weights.len();
    let kw = weights[0].len();
    let mut terms = Vec::new();
    for (dy, row) in weights.iter().enumerate() {
        assert_eq!(row.len(), kw, "ragged kernel");
        for (dx, &w) in row.iter().enumerate() {
            if w == 0.0 {
                continue; // skip structural zeros (e.g. Sobel centres)
            }
            let off = ((dy as i64 - (kh / 2) as i64) * width as i64
                + (dx as i64 - (kw / 2) as i64))
                * dilation as i64;
            let shifted = if off == 0 {
                image.clone()
            } else {
                image.rotate(off)
            };
            terms.push(shifted * b.constant(w));
        }
    }
    sum_balanced(terms)
}

/// Sums a `k×k` neighbourhood (all-ones box filter) via rotations only.
pub fn box_sum(image: &Expr, k: usize, width: usize, dilation: usize) -> Expr {
    let half = (k / 2) as i64;
    let mut terms = Vec::new();
    for dy in -half..=half {
        for dx in -half..=half {
            let off = (dy * width as i64 + dx) * dilation as i64;
            terms.push(if off == 0 {
                image.clone()
            } else {
                image.rotate(off)
            });
        }
    }
    sum_balanced(terms)
}

/// Matrix–vector product by the diagonal method: `y = Σ_d diag_d ⊙ rot(x,d)`
/// over `diagonals.len()` plaintext diagonals. This realizes a (banded)
/// fully-connected layer on a packed vector.
pub fn matvec_diagonals(b: &Builder, x: &Expr, diagonals: &[Vec<f64>]) -> Expr {
    assert!(!diagonals.is_empty(), "need at least one diagonal");
    let terms = diagonals
        .iter()
        .enumerate()
        .map(|(d, diag)| {
            let shifted = if d == 0 {
                x.clone()
            } else {
                x.rotate(d as i64)
            };
            shifted * b.constant(diag.clone())
        })
        .collect();
    sum_balanced(terms)
}

/// 2×2 average pooling on a lazily-strided layout: sums the four taps at
/// the current dilation and scales by 1/4. The output stays in place; the
/// caller doubles the dilation for the next layer.
pub fn avg_pool2(b: &Builder, x: &Expr, width: usize, dilation: usize) -> Expr {
    let d = dilation as i64;
    let w = width as i64;
    let sum = x.clone() + x.rotate(d) + x.rotate(d * w) + x.rotate(d * w + d);
    sum * b.constant(0.25)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_runtime::plain;
    use std::collections::HashMap;

    fn run(p: &fhe_ir::Program, pairs: &[(&str, Vec<f64>)]) -> Vec<Vec<f64>> {
        let inputs: HashMap<String, Vec<f64>> = pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        plain::execute(p, &inputs)
    }

    #[test]
    fn rotate_sum_all_sums_every_slot() {
        let b = Builder::new("t", 8);
        let x = b.input("x");
        let s = rotate_sum_all(x, 8);
        let p = b.finish(vec![s]);
        let out = run(&p, &[("x", (1..=8).map(|i| i as f64).collect())]);
        for &v in &out[0] {
            assert_eq!(v, 36.0);
        }
    }

    #[test]
    fn mean_all_divides() {
        let b = Builder::new("t", 4);
        let x = b.input("x");
        let m = mean_all(&b, x, 4);
        let p = b.finish(vec![m]);
        let out = run(&p, &[("x", vec![1.0, 2.0, 3.0, 6.0])]);
        assert_eq!(out[0][0], 3.0);
    }

    #[test]
    fn conv2d_identity_kernel() {
        let b = Builder::new("t", 16);
        let img = b.input("img");
        let id = vec![
            vec![0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 0.0],
        ];
        let c = conv2d(&b, &img, &id, 4, 1);
        let p = b.finish(vec![c]);
        let data: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let out = run(&p, &[("img", data.clone())]);
        assert_eq!(out[0], data);
    }

    #[test]
    fn conv2d_shift_kernel() {
        // A kernel with weight 1 at (dy=0, dx=+1) picks the right neighbour.
        let b = Builder::new("t", 16);
        let img = b.input("img");
        let k = vec![
            vec![0.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![0.0, 0.0, 0.0],
        ];
        let c = conv2d(&b, &img, &k, 4, 1);
        let p = b.finish(vec![c]);
        let data: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let out = run(&p, &[("img", data)]);
        // Interior: out[5] = img[6].
        assert_eq!(out[0][5], 6.0);
    }

    #[test]
    fn box_sum_counts_neighbours() {
        let b = Builder::new("t", 16);
        let img = b.input("img");
        let s = box_sum(&img, 3, 4, 1);
        let p = b.finish(vec![s]);
        let out = run(&p, &[("img", vec![1.0; 16])]);
        assert_eq!(out[0][5], 9.0);
    }

    #[test]
    fn matvec_single_diagonal_is_hadamard() {
        let b = Builder::new("t", 4);
        let x = b.input("x");
        let y = matvec_diagonals(&b, &x, &[vec![2.0, 3.0, 4.0, 5.0]]);
        let p = b.finish(vec![y]);
        let out = run(&p, &[("x", vec![1.0, 1.0, 1.0, 1.0])]);
        assert_eq!(out[0], vec![2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn matvec_two_diagonals() {
        // y[i] = d0[i]·x[i] + d1[i]·x[i+1].
        let b = Builder::new("t", 4);
        let x = b.input("x");
        let y = matvec_diagonals(&b, &x, &[vec![1.0; 4], vec![1.0; 4]]);
        let p = b.finish(vec![y]);
        let out = run(&p, &[("x", vec![1.0, 2.0, 3.0, 4.0])]);
        assert_eq!(out[0], vec![3.0, 5.0, 7.0, 5.0]);
    }

    #[test]
    fn avg_pool_averages_quad() {
        let b = Builder::new("t", 16);
        let x = b.input("x");
        let pool = avg_pool2(&b, &x, 4, 1);
        let p = b.finish(vec![pool]);
        let data: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let out = run(&p, &[("x", data)]);
        // Slot 0 averages slots {0, 1, 4, 5}.
        assert_eq!(out[0][0], (0.0 + 1.0 + 4.0 + 5.0) / 4.0);
    }
}
