//! Bit-exactness property suite for the DAG-parallel executor: for every
//! worker count, with fusion and rotation hoisting on, the parallel
//! backend must reproduce the serial encrypted backend's decrypted
//! outputs *byte for byte* — not merely within noise tolerance.
//!
//! This is the executable form of the executor's determinism argument:
//! key generation and input encryption consume the seeded RNG in schedule
//! order before the walk goes wide, lazily generated Galois keys come
//! from per-element RNG streams (generation order cannot matter), and
//! every homomorphic op — including the fused mul·relin·rescale kernel —
//! is a deterministic function of its operand bytes. Any nondeterminism a
//! racing runner could introduce (a stale pooled buffer, an unordered
//! free, a hoist-group member running before its leader) shows up here as
//! a bitwise divergence.
//!
//! The workspace builds offline (no proptest): deterministic seeded
//! loops, every case reproducible from its printed seed or workload name.

use fhe_fuzz::{generate, input_data, schedule_fits_backend, GenConfig, OpMix};
use fhe_reserve::prelude::*;
use fhe_reserve::runtime::{ExecOptions, ParCkksExec, ParOptions};
use fhe_reserve::workloads;

/// The widths the suite sweeps: serial walk, small, odd, and wider than
/// the golden programs' max DAG width.
const WIDTHS: [usize; 4] = [1, 2, 3, 8];

fn bits(outputs: &[Vec<f64>]) -> Vec<Vec<u64>> {
    outputs
        .iter()
        .map(|v| v.iter().map(|x| x.to_bits()).collect())
        .collect()
}

fn backend(slots: usize, seed: u64) -> ExecOptions {
    ExecOptions {
        poly_degree: slots * 2,
        seed,
        threads: 1,
        ..ExecOptions::default()
    }
}

/// Compiles a workload with the smallest output reserve whose schedule
/// fits the backend's modulus budget (Table 1's `m·x_max < Q`), mirroring
/// the fuzz oracle's magnitude handling.
fn compile_fitting(w: &workloads::Workload) -> Option<fhe_reserve::ir::ScheduledProgram> {
    for waterline_bits in [30u32, 35, 40] {
        for reserve_bits in [2u32, 4, 6, 8] {
            let mut options = Options::new(waterline_bits);
            options.params.output_reserve_bits = reserve_bits;
            let Ok(compiled) = compile(&w.program, &options) else {
                continue;
            };
            if schedule_fits_backend(&compiled.scheduled, &w.inputs) {
                return Some(compiled.scheduled);
            }
        }
    }
    None
}

#[test]
fn golden_workloads_are_bit_exact_at_every_width() {
    let mut checked = 0usize;
    for w in suite(Size::Test) {
        let Some(scheduled) = compile_fitting(&w) else {
            panic!("{}: no output reserve makes the schedule fit", w.name);
        };
        let exec = backend(w.program.slots(), 0xB17_EAC7 ^ checked as u64);
        let serial = CkksExec {
            options: exec.clone(),
        }
        .execute(&scheduled, &w.inputs)
        .unwrap_or_else(|e| panic!("{} serial: {e:?}", w.name));
        outputs_close(&serial.outputs, &serial.reference, 5e-2)
            .unwrap_or_else(|e| panic!("{} serial vs reference: {e}", w.name));
        let want = bits(&serial.outputs);
        for workers in WIDTHS {
            let par = ParCkksExec {
                options: ParOptions {
                    exec: exec.clone(),
                    workers,
                    fusion: true,
                },
            }
            .execute(&scheduled, &w.inputs)
            .unwrap_or_else(|e| panic!("{} parallel x{workers}: {e:?}", w.name));
            assert_eq!(
                bits(&par.outputs),
                want,
                "{} diverges bitwise from serial at {workers} workers",
                w.name
            );
            assert_eq!(
                par.trace.ops_executed, serial.trace.ops_executed,
                "{} op count at {workers} workers",
                w.name
            );
        }
        checked += 1;
    }
    assert_eq!(checked, 8, "all eight golden workloads must be exercised");
}

#[test]
fn rotate_heavy_fuzz_mix_is_bit_exact() {
    // Rotation-heavy programs exercise the hoist groups (shared
    // decompositions distributed across runners) and the lazy key cache
    // under concurrent lookups — the two paths where a parallel-order bug
    // would corrupt bytes silently.
    let cfg = GenConfig {
        opmix: OpMix {
            rotate: 8,
            ..OpMix::default()
        },
        max_ops: 30,
        ..GenConfig::default()
    };
    let mut checked = 0usize;
    for seed in 0..300u64 {
        if checked >= 12 {
            break;
        }
        let program = generate(seed, &cfg);
        let inputs = input_data(&program);
        let Ok(compiled) = compile(&program, &Options::new(35)) else {
            continue;
        };
        if !schedule_fits_backend(&compiled.scheduled, &inputs) {
            continue;
        }
        let exec = backend(program.slots(), 0xF0_0D ^ seed);
        let serial = fhe_reserve::runtime::execute_encrypted(&compiled.scheduled, &inputs, &exec)
            .unwrap_or_else(|e| panic!("seed {seed} serial: {e:?}"));
        let want = bits(&serial.outputs);
        for workers in [3usize, 8] {
            let par = fhe_reserve::runtime::execute_parallel(
                &compiled.scheduled,
                &inputs,
                &ParOptions {
                    exec: exec.clone(),
                    workers,
                    fusion: true,
                },
            )
            .unwrap_or_else(|e| panic!("seed {seed} parallel x{workers}: {e:?}"));
            assert_eq!(
                bits(&par.outputs),
                want,
                "seed {seed} diverges bitwise at {workers} workers"
            );
        }
        checked += 1;
    }
    assert!(checked >= 8, "only {checked} rotate-heavy programs fit");
}
