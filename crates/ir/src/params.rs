//! Compilation parameters shared by every scale-management scheme.

use crate::Frac;

/// RNS-CKKS compilation parameters (Table 1 of the paper).
///
/// All magnitudes are expressed in log₂ bits: a `rescale_bits` of 60 means
/// the rescaling factor `R = 2^60`; a `waterline_bits` of 20 means the
/// minimal admissible ciphertext scale is `W = 2^20`.
///
/// # Examples
///
/// ```
/// use fhe_ir::CompileParams;
/// let p = CompileParams::new(20);
/// assert_eq!(p.rescale_bits, 60);
/// assert_eq!(p.omega(), fhe_ir::Frac::ratio(20, 60));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompileParams {
    /// log₂ of the rescaling factor `R` (the paper uses `R = 2^60`).
    pub rescale_bits: u32,
    /// log₂ of the waterline `W`, the minimal ciphertext scale.
    pub waterline_bits: u32,
    /// Maximum level `L` supported by the encryption key. Compilation fails
    /// if a program needs more modulus than `R^L`.
    pub max_level: u32,
    /// Reserve (in bits) demanded of the program outputs, reserved for the
    /// magnitude of the encoded result (`m · x_max < Q`). The paper's worked
    /// examples use 0.
    pub output_reserve_bits: u32,
}

impl CompileParams {
    /// Parameters with the paper's defaults: `R = 2^60`, `L = 30`,
    /// zero output reserve, and the given waterline (in bits).
    ///
    /// # Panics
    ///
    /// Panics if `waterline_bits` is zero or not less than `rescale_bits`
    /// (the waterline must satisfy `W < R` so that a rescaled scale can stay
    /// above the waterline).
    pub fn new(waterline_bits: u32) -> Self {
        let p = CompileParams {
            rescale_bits: 60,
            waterline_bits,
            max_level: 30,
            output_reserve_bits: 0,
        };
        p.check();
        p
    }

    /// Same as [`CompileParams::new`] with an explicit rescaling-factor size.
    pub fn with_rescale_bits(waterline_bits: u32, rescale_bits: u32) -> Self {
        let p = CompileParams {
            rescale_bits,
            ..Self::new_unchecked(waterline_bits)
        };
        p.check();
        p
    }

    fn new_unchecked(waterline_bits: u32) -> Self {
        CompileParams {
            rescale_bits: 60,
            waterline_bits,
            max_level: 30,
            output_reserve_bits: 0,
        }
    }

    fn check(&self) {
        assert!(self.waterline_bits > 0, "waterline must be positive");
        assert!(
            self.waterline_bits < self.rescale_bits,
            "waterline ({} bits) must be smaller than the rescaling factor ({} bits)",
            self.waterline_bits,
            self.rescale_bits
        );
        assert!(self.max_level >= 1, "max_level must be at least 1");
    }

    /// Relative waterline `ω = log_R W = waterline_bits / rescale_bits`.
    pub fn omega(&self) -> Frac {
        Frac::ratio(self.waterline_bits as i128, self.rescale_bits as i128)
    }

    /// The waterline in bits, as a [`Frac`].
    pub fn waterline(&self) -> Frac {
        Frac::from(self.waterline_bits)
    }

    /// The rescaling factor size in bits, as a [`Frac`].
    pub fn rescale(&self) -> Frac {
        Frac::from(self.rescale_bits)
    }

    /// Converts a relative (log_R) quantity to bits.
    pub fn to_bits(&self, relative: Frac) -> Frac {
        relative * self.rescale()
    }

    /// Converts a bit quantity to relative (log_R) units.
    pub fn to_relative(&self, bits: Frac) -> Frac {
        bits / self.rescale()
    }

    /// The principal level of a relative reserve `ρ`: the minimal level `l`
    /// with `R^l ≥ W · r`, i.e. `l = max(⌈ω + ρ⌉, 1)` (§5.1).
    pub fn principal_level(&self, rho: Frac) -> u32 {
        let l = (self.omega() + rho).ceil();
        l.max(1) as u32
    }
}

impl Default for CompileParams {
    /// The paper's most common configuration: waterline `2^20`, `R = 2^60`.
    fn default() -> Self {
        CompileParams::new(20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omega_is_relative_waterline() {
        let p = CompileParams::new(20);
        assert_eq!(p.omega(), Frac::ratio(1, 3));
        let p = CompileParams::new(45);
        assert_eq!(p.omega(), Frac::ratio(3, 4));
    }

    #[test]
    fn principal_level_examples() {
        // §6.2 example: ρ = 0, ω = 20/60 ⇒ l = ⌈1/3⌉ = 1.
        let p = CompileParams::new(20);
        assert_eq!(p.principal_level(Frac::ZERO), 1);
        // ρ = 30/60 ⇒ ⌈30/60 + 20/60⌉ = 1; operand level ⌈ρ+2ω⌉ = 2.
        assert_eq!(p.principal_level(Frac::ratio(30, 60)), 1);
        assert_eq!((Frac::ratio(30, 60) + p.omega() + p.omega()).ceil(), 2);
        // x in Fig. 3c: reserve 97 bits ⇒ level ⌈117/60⌉ = 2.
        assert_eq!(p.principal_level(Frac::ratio(97, 60)), 2);
    }

    #[test]
    #[should_panic(expected = "waterline")]
    fn waterline_must_be_below_rescale() {
        let _ = CompileParams::with_rescale_bits(60, 60);
    }

    #[test]
    fn conversions_roundtrip() {
        let p = CompileParams::new(33);
        let bits = Frac::ratio(77, 2);
        assert_eq!(p.to_bits(p.to_relative(bits)), bits);
    }
}
