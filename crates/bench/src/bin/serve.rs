//! Service-layer benchmark: cold-compile vs warm-cache throughput and a
//! concurrent-sessions sweep on the paper's fig. 2a polynomial.
//!
//! ```text
//! serve [--fast] [--json PATH] [--check-baseline PATH]
//! ```
//!
//! Three phases:
//!
//! - `cold` — every request hits an empty compile cache **and** a fresh
//!   session (full compile + keygen + execution): the service's
//!   first-request cost. Run for both the reserve compiler and Hecate.
//! - `warm` — one warmed session issuing repeat requests: compile served
//!   from the cache, keys reused, only encryption/execution remains.
//! - `sweep` — k ∈ {1, 2, 4, 8} sessions submitting concurrently to a
//!   k-worker server: requests/sec and p50/p99 latency vs concurrency.
//!
//! The headline `warm_over_cold` ratio is measured under **Hecate**,
//! whose iterative exploration makes compilation the dominant cold cost —
//! exactly the workload a compile cache exists for. The same ratio under
//! the reserve compiler is reported alongside as the paper's contrast:
//! exploration-free compilation is so fast (~100 µs on fig. 2a) that the
//! cache barely moves its throughput.
//!
//! `--check-baseline BENCH_serve.json` re-runs and exits non-zero when
//! warm throughput falls below 5× Hecate's cold throughput, the warm
//! cache hit rate drops below 0.9, or any request fails — the CI
//! `serve-smoke` gate. Absolute times are machine-dependent and
//! deliberately not gated.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use fhe_bench::json::Json;
use fhe_bench::print_table;
use fhe_ir::{text, CompileParams};
use fhe_runtime::{ExecOptions, KeyPolicy, ParOptions};
use fhe_serve::{FheServer, Request, ServerConfig};

struct Args {
    fast: bool,
    json: Option<PathBuf>,
    check_baseline: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        fast: false,
        json: None,
        check_baseline: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        let value = |iter: &mut dyn Iterator<Item = String>, flag: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("{flag} requires an argument");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--fast" => args.fast = true,
            "--json" => args.json = Some(value(&mut iter, "--json").into()),
            "--check-baseline" => {
                args.check_baseline = Some(value(&mut iter, "--check-baseline").into())
            }
            other => {
                eprintln!(
                    "unknown flag `{other}` (supported: --fast, --json <path>, \
                     --check-baseline <path>)"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn fig2a_text(slots: usize) -> String {
    let b = fhe_ir::Builder::new("fig2a", slots);
    let x = b.input("x");
    let y = b.input("y");
    let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
    text::print(&b.finish(vec![q]))
}

fn inputs_for(slots: usize, salt: usize) -> HashMap<String, Vec<f64>> {
    let xs: Vec<f64> = (0..slots)
        .map(|k| (((k + salt) % 9) as f64 - 4.0) * 0.07)
        .collect();
    let ys: Vec<f64> = (0..slots)
        .map(|k| (((k + 2 * salt) % 5) as f64) * 0.11)
        .collect();
    [("x".to_string(), xs), ("y".to_string(), ys)]
        .into_iter()
        .collect()
}

fn session_options(slots: usize, seed: u64) -> ParOptions {
    ParOptions {
        exec: ExecOptions {
            poly_degree: slots * 2,
            seed,
            threads: 1,
            keys: KeyPolicy::Lazy { budget_bytes: None },
            rotation_hoisting: true,
        },
        workers: 1,
        fusion: true,
    }
}

fn request(session: fhe_serve::SessionId, program: &str, slots: usize, salt: usize) -> Request {
    request_via(session, program, slots, salt, "reserve")
}

fn request_via(
    session: fhe_serve::SessionId,
    program: &str,
    slots: usize,
    salt: usize,
    compiler: &str,
) -> Request {
    Request {
        session,
        program: program.to_string(),
        params: CompileParams::new(30),
        compiler: compiler.into(),
        inputs: inputs_for(slots, salt),
        deadline: None,
    }
}

struct ColdWarm {
    compiler: &'static str,
    cold_rps: f64,
    warm_rps: f64,
    warm_hit_rate: f64,
    failed: u64,
}

impl ColdWarm {
    fn ratio(&self) -> f64 {
        self.warm_rps / self.cold_rps
    }
}

/// Cold (empty cache + fresh session per request) vs warm (one warmed
/// session) throughput through one compiler.
fn cold_warm(program: &str, slots: usize, repeats: usize, compiler: &'static str) -> ColdWarm {
    let server = FheServer::new(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let t_cold = Instant::now();
    for i in 0..repeats {
        server.cache().clear();
        let session = server.create_session(session_options(slots, 0xC01D + i as u64));
        let resp = server
            .call(request_via(session, program, slots, i, compiler))
            .expect("cold request succeeds");
        assert!(!resp.cache_hit, "cache was cleared: must compile");
    }
    let cold_rps = repeats as f64 / t_cold.elapsed().as_secs_f64();

    let warm_session = server.create_session(session_options(slots, 0x3A17));
    server
        .call(request_via(warm_session, program, slots, 0, compiler))
        .expect("warmup succeeds");
    let warm_before = server.stats();
    let t_warm = Instant::now();
    for i in 0..repeats {
        let resp = server
            .call(request_via(warm_session, program, slots, i, compiler))
            .expect("warm request succeeds");
        assert!(resp.cache_hit, "warm phase must hit the compile cache");
    }
    let warm_rps = repeats as f64 / t_warm.elapsed().as_secs_f64();
    let stats = server.stats();
    ColdWarm {
        compiler,
        cold_rps,
        warm_rps,
        warm_hit_rate: (stats.cache.hits - warm_before.cache.hits) as f64 / repeats as f64,
        failed: stats.failed,
    }
}

struct SweepRow {
    sessions: usize,
    requests: u64,
    failed: u64,
    rps: f64,
    p50_us: f64,
    p99_us: f64,
    peak_bytes: u64,
    cache_hit_rate: f64,
}

/// Pulls `"key":<number>` out of a flat JSON record without a parser.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = &text[at..];
    let end = rest
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let args = parse_args();
    let (slots, repeats, per_session) = if args.fast { (128, 6, 4) } else { (512, 16, 8) };
    let program = fig2a_text(slots);
    eprintln!("fig2a, {slots} slots (N = {})", slots * 2);

    // -- cold vs warm through each compiler --------------------------------
    let phases = [
        cold_warm(&program, slots, repeats, "hecate"),
        cold_warm(&program, slots, repeats, "reserve"),
    ];
    for p in &phases {
        eprintln!(
            "{:>8}: cold {:.2} req/s, warm {:.2} req/s ({:.1}x, hit rate {:.2})",
            p.compiler,
            p.cold_rps,
            p.warm_rps,
            p.ratio(),
            p.warm_hit_rate
        );
    }
    let hecate = &phases[0];
    let reserve = &phases[1];
    let warm_over_cold = hecate.ratio();
    let warm_hit_rate = hecate.warm_hit_rate.min(reserve.warm_hit_rate);
    let failed_base = phases.iter().map(|p| p.failed).sum::<u64>();

    // -- sweep: k sessions × k workers, concurrent -------------------------
    let mut sweep = Vec::new();
    let mut sweep_failed = 0u64;
    for k in [1usize, 2, 4, 8] {
        let server = FheServer::new(ServerConfig {
            workers: k,
            queue_capacity: 4 * k * per_session,
            ..ServerConfig::default()
        });
        let sessions: Vec<_> = (0..k)
            .map(|s| server.create_session(session_options(slots, 0x5EED + s as u64)))
            .collect();
        // Warm the cache once so the sweep measures execution throughput.
        server
            .call(request(sessions[0], &program, slots, 0))
            .expect("sweep warmup succeeds");
        let t = Instant::now();
        // Per-request latencies are taken from the responses themselves
        // (exact, and excluding the warmup) rather than the server's
        // log-bucketed lifetime histogram.
        let mut latencies_us: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = sessions
                .iter()
                .enumerate()
                .map(|(s, &session)| {
                    let server = &server;
                    let program = &program;
                    scope.spawn(move || {
                        let tickets: Vec<_> = (0..per_session)
                            .map(|i| {
                                server
                                    .submit(request(session, program, slots, s * per_session + i))
                                    .expect("submits")
                            })
                            .collect();
                        tickets
                            .into_iter()
                            .map(|t| {
                                let resp = t.wait().expect("sweep request succeeds");
                                resp.latency.as_secs_f64() * 1e6
                            })
                            .collect::<Vec<f64>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let wall = t.elapsed().as_secs_f64();
        latencies_us.sort_by(f64::total_cmp);
        let quantile = |q: f64| -> f64 {
            let idx = ((q * latencies_us.len() as f64).ceil() as usize).max(1) - 1;
            latencies_us[idx.min(latencies_us.len() - 1)]
        };
        let stats = server.stats();
        sweep_failed += stats.failed;
        sweep.push(SweepRow {
            sessions: k,
            requests: (k * per_session) as u64,
            failed: stats.failed,
            rps: (k * per_session) as f64 / wall,
            p50_us: quantile(0.5),
            p99_us: quantile(0.99),
            peak_bytes: stats.peak_bytes(),
            cache_hit_rate: stats.cache.hit_rate(),
        });
    }

    print_table(
        &[
            "sessions", "req", "req/s", "p50 ms", "p99 ms", "peak MiB", "hit rate",
        ],
        &sweep
            .iter()
            .map(|r| {
                vec![
                    r.sessions.to_string(),
                    r.requests.to_string(),
                    format!("{:.2}", r.rps),
                    format!("{:.1}", r.p50_us / 1e3),
                    format!("{:.1}", r.p99_us / 1e3),
                    format!("{:.2}", r.peak_bytes as f64 / (1 << 20) as f64),
                    format!("{:.2}", r.cache_hit_rate),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let failed_total = failed_base + sweep_failed;
    let json = Json::obj([
        ("workload", Json::from("fig2a")),
        ("slots", Json::from(slots)),
        ("poly_degree", Json::from(slots * 2)),
        ("cold_requests", Json::from(repeats)),
        ("cold_rps_hecate", Json::from(hecate.cold_rps)),
        ("warm_rps_hecate", Json::from(hecate.warm_rps)),
        ("warm_over_cold", Json::from(warm_over_cold)),
        ("cold_rps_reserve", Json::from(reserve.cold_rps)),
        ("warm_rps_reserve", Json::from(reserve.warm_rps)),
        ("warm_over_cold_reserve", Json::from(reserve.ratio())),
        ("warm_cache_hit_rate", Json::from(warm_hit_rate)),
        ("failed_requests", Json::from(failed_total as usize)),
        (
            "sweep",
            Json::Array(
                sweep
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("sessions", Json::from(r.sessions)),
                            ("requests", Json::from(r.requests as usize)),
                            ("failed", Json::from(r.failed as usize)),
                            ("rps", Json::from(r.rps)),
                            ("p50_us", Json::from(r.p50_us)),
                            ("p99_us", Json::from(r.p99_us)),
                            ("peak_bytes", Json::from(r.peak_bytes as usize)),
                            ("cache_hit_rate", Json::from(r.cache_hit_rate)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Some(path) = &args.json {
        std::fs::write(path, format!("{json}\n"))
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }

    if let Some(baseline_path) = &args.check_baseline {
        let committed = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", baseline_path.display()));
        let committed_ratio =
            json_number(&committed, "warm_over_cold").expect("baseline has warm_over_cold");
        if committed_ratio < 5.0 {
            eprintln!(
                "FAIL: committed baseline ratio {committed_ratio:.2}x is below the 5x promise"
            );
            return ExitCode::FAILURE;
        }
        if warm_over_cold < 5.0 {
            eprintln!("FAIL: warm throughput {warm_over_cold:.2}x cold fell below the promised 5x");
            return ExitCode::FAILURE;
        }
        if warm_hit_rate < 0.9 {
            eprintln!("FAIL: warm cache hit rate {warm_hit_rate:.2} below 0.9");
            return ExitCode::FAILURE;
        }
        if failed_total > 0 {
            eprintln!("FAIL: {failed_total} requests failed");
            return ExitCode::FAILURE;
        }
        eprintln!("baseline check passed");
    }
    ExitCode::SUCCESS
}
