//! Latency cost model for RNS-CKKS operations (Table 3 of the paper).
//!
//! Latency depends on the op kind and the level of its operands. The default
//! model is seeded with the paper's measurements (SEAL 3.6 on an i7-8700,
//! `N = 2^15`, `R = 2^60`, µs); [`CostModel::from_rows`] lets callers
//! recalibrate from their own measurements (e.g. of the `fhe-ckks` backend).
//!
//! Levels may be fractional (the §6.1 ordering heuristic estimates levels
//! like `5/3`); costs are linearly interpolated between integer levels and
//! linearly extrapolated beyond the table using the last segment's slope.

use crate::op::{Op, ValueId};
use crate::program::Program;
use crate::schedule::ScaleMap;
use crate::Frac;

/// Operation classes with distinct latency profiles (rows of Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// `modswitch` on a ciphertext.
    ModSwitch,
    /// cipher + plain (also cipher − plain and negation).
    AddPlain,
    /// cipher + cipher / cipher − cipher.
    AddCipher,
    /// cipher × plain (also `upscale`, which multiplies by an encoded
    /// identity).
    MulPlain,
    /// `rescale` on a ciphertext.
    Rescale,
    /// Slot rotation of a ciphertext (includes the Galois key switch).
    Rotate,
    /// cipher × cipher (includes relinearization).
    MulCipher,
}

impl OpClass {
    /// All classes, in Table 3's (roughly ascending-cost) order.
    pub const ALL: [OpClass; 7] = [
        OpClass::ModSwitch,
        OpClass::AddPlain,
        OpClass::AddCipher,
        OpClass::MulPlain,
        OpClass::Rescale,
        OpClass::Rotate,
        OpClass::MulCipher,
    ];

    /// Human-readable name matching the paper's Table 3 rows.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::ModSwitch => "modswitch (cipher)",
            OpClass::AddPlain => "cipher + plain",
            OpClass::AddCipher => "cipher + cipher",
            OpClass::MulPlain => "cipher x plain",
            OpClass::Rescale => "rescale (cipher)",
            OpClass::Rotate => "rotate (cipher)",
            OpClass::MulCipher => "cipher x cipher",
        }
    }
}

/// Latency model: per-class latencies (µs) at levels `1..=N`.
#[derive(Debug, Clone)]
pub struct CostModel {
    rows: [Vec<f64>; 7],
}

const fn class_index(class: OpClass) -> usize {
    match class {
        OpClass::ModSwitch => 0,
        OpClass::AddPlain => 1,
        OpClass::AddCipher => 2,
        OpClass::MulPlain => 3,
        OpClass::Rescale => 4,
        OpClass::Rotate => 5,
        OpClass::MulCipher => 6,
    }
}

impl CostModel {
    /// The paper's Table 3 (µs, levels 1–5).
    pub fn paper_table3() -> Self {
        CostModel {
            rows: [
                vec![48.0, 86.0, 156.0, 208.0, 286.0],
                vec![50.0, 98.0, 153.0, 209.0, 269.0],
                vec![85.0, 204.0, 250.0, 339.0, 421.0],
                vec![211.0, 421.0, 642.0, 853.0, 1120.0],
                vec![1926.0, 3119.0, 4525.0, 5706.0, 6901.0],
                vec![3828.0, 7966.0, 13584.0, 20933.0, 28832.0],
                vec![4363.0, 9172.0, 15658.0, 23517.0, 33974.0],
            ],
        }
    }

    /// Builds a model from measured per-level latencies. Each row must hold
    /// at least two entries (levels 1 and 2) so extrapolation is defined.
    ///
    /// # Panics
    ///
    /// Panics if any provided row has fewer than two entries.
    pub fn from_rows(rows: impl IntoIterator<Item = (OpClass, Vec<f64>)>) -> Self {
        let mut model = Self::paper_table3();
        for (class, row) in rows {
            assert!(row.len() >= 2, "cost row for {:?} needs >= 2 levels", class);
            model.rows[class_index(class)] = row;
        }
        model
    }

    /// Builds a calibrated model from a measured-latency JSON record — the
    /// shape the `table3` bench binary writes (and `table3_measured.json`
    /// ships): an `"ops"` array of `{"op": <row name>, "latency_us":
    /// [<level-1 µs>, <level-2 µs>, …]}` objects whose `"op"` strings match
    /// [`OpClass::name`]. Rows absent from the record keep the paper's
    /// Table 3 values.
    ///
    /// # Errors
    ///
    /// Rejects malformed JSON, unknown row names, rows with fewer than two
    /// levels, and non-positive or non-finite latencies.
    pub fn from_bench_json(text: &str) -> Result<Self, String> {
        let doc = mini_json::parse(text)?;
        let ops = doc
            .get("ops")
            .and_then(mini_json::Value::as_arr)
            .ok_or_else(|| "missing \"ops\" array".to_string())?;
        let mut rows = Vec::new();
        for entry in ops {
            let name = entry
                .get("op")
                .and_then(mini_json::Value::as_str)
                .ok_or_else(|| "op entry missing \"op\" name".to_string())?;
            let class = *OpClass::ALL
                .iter()
                .find(|c| c.name() == name)
                .ok_or_else(|| format!("unknown Table 3 row {name:?}"))?;
            let lat: Vec<f64> = entry
                .get("latency_us")
                .and_then(mini_json::Value::as_arr)
                .ok_or_else(|| format!("row {name:?} missing \"latency_us\" array"))?
                .iter()
                .map(|v| {
                    v.as_num()
                        .ok_or_else(|| format!("row {name:?} has a non-numeric latency"))
                })
                .collect::<Result<_, _>>()?;
            if lat.len() < 2 {
                return Err(format!("row {name:?} needs >= 2 levels, got {}", lat.len()));
            }
            if lat.iter().any(|x| !x.is_finite() || *x <= 0.0) {
                return Err(format!("row {name:?} has a non-positive latency"));
            }
            rows.push((class, lat));
        }
        if rows.is_empty() {
            return Err("empty \"ops\" array".to_string());
        }
        Ok(Self::from_rows(rows))
    }

    /// Latency (µs) of `class` at integer `level` (≥ 1), extrapolating
    /// linearly beyond the table.
    pub fn at_level(&self, class: OpClass, level: u32) -> f64 {
        self.at_fractional_level(class, level.max(1) as f64)
    }

    /// Latency (µs) at a possibly fractional level (used by the §6.1
    /// ordering estimator). Levels below 1 are clamped to 1.
    pub fn at_fractional_level(&self, class: OpClass, level: f64) -> f64 {
        let row = &self.rows[class_index(class)];
        let level = level.max(1.0);
        let max_idx = row.len() - 1; // index of the last tabulated level
        let pos = level - 1.0; // 0-based position in the row
        if pos >= max_idx as f64 {
            // Extrapolate with the last segment's slope. Measured rows are
            // not guaranteed monotone: a decreasing last segment would
            // extrapolate through zero into negative latencies, so the
            // result is clamped at the cheapest tabulated latency.
            let slope = row[max_idx] - row[max_idx - 1];
            let cheapest = row.iter().copied().fold(f64::INFINITY, f64::min);
            return (row[max_idx] + slope * (pos - max_idx as f64)).max(cheapest);
        }
        let lo = pos.floor() as usize;
        let t = pos - lo as f64;
        row[lo] * (1.0 - t) + row[lo + 1] * t
    }

    /// Latency (µs) at a [`Frac`] level.
    pub fn at_frac_level(&self, class: OpClass, level: Frac) -> f64 {
        self.at_fractional_level(class, level.to_f64())
    }

    /// The op class of value `id` in `program`, or `None` for zero-cost ops
    /// (inputs, constants, and plaintext-only arithmetic, which is folded
    /// offline).
    pub fn classify(program: &Program, id: ValueId) -> Option<OpClass> {
        if program.is_plain(id) {
            return None;
        }
        Some(match program.op(id) {
            Op::Input { .. } | Op::Const { .. } => return None,
            Op::Add(a, b) | Op::Sub(a, b) => {
                if program.is_cipher(*a) && program.is_cipher(*b) {
                    OpClass::AddCipher
                } else {
                    OpClass::AddPlain
                }
            }
            Op::Mul(a, b) => {
                if program.is_cipher(*a) && program.is_cipher(*b) {
                    OpClass::MulCipher
                } else {
                    OpClass::MulPlain
                }
            }
            Op::Neg(_) => OpClass::AddPlain,
            Op::Rotate(..) => OpClass::Rotate,
            Op::Rescale(_) => OpClass::Rescale,
            Op::ModSwitch(_) => OpClass::ModSwitch,
            Op::Upscale(..) => OpClass::MulPlain,
        })
    }

    /// The level an op is charged at: arithmetic executes at its operand
    /// level (== result level); `rescale`/`modswitch` are charged at their
    /// *result* level, matching the paper's Fig. 2 cost accounting (a
    /// level-2→1 rescale is charged as a "Lv. 1 Rescale").
    pub fn charge_level(_program: &Program, id: ValueId, scales: &ScaleMap) -> Option<u32> {
        scales.try_level(id)
    }

    /// Latency (µs) of op `id` under the derived `scales`.
    pub fn op_cost(&self, program: &Program, id: ValueId, scales: &ScaleMap) -> f64 {
        match (
            Self::classify(program, id),
            Self::charge_level(program, id, scales),
        ) {
            (Some(class), Some(level)) => self.at_level(class, level),
            _ => 0.0,
        }
    }

    /// Total latency (µs) of every *live* op of the program under the
    /// derived `scales`. Dead ops are not charged (compilers run DCE).
    pub fn program_cost(&self, program: &Program, scales: &ScaleMap) -> f64 {
        let live = crate::analysis::live(program);
        program
            .ids()
            .filter(|id| live[id.index()])
            .map(|id| self.op_cost(program, id, scales))
            .sum()
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_table3()
    }
}

/// Minimal JSON reader for calibration records. Kept private to this crate
/// (the workspace's `fhe-bench` serializer is write-only, and `fhe-ir`
/// cannot depend on it): a recursive-descent parser covering the full JSON
/// grammar minus surrogate-pair escapes, which the bench records never
/// emit.
mod mini_json {
    pub(super) enum Value {
        Null,
        Bool(#[allow(dead_code)] bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub(super) fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub(super) fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        pub(super) fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub(super) fn as_num(&self) -> Option<f64> {
            match self {
                Value::Num(x) => Some(*x),
                _ => None,
            }
        }
    }

    pub(super) fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.at));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        at: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.at).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.at += 1;
            }
        }

        fn eat(&mut self, c: u8) -> Result<(), String> {
            if self.peek() == Some(c) {
                self.at += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at byte {}", c as char, self.at))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.lit("true", Value::Bool(true)),
                Some(b'f') => self.lit("false", Value::Bool(false)),
                Some(b'n') => self.lit("null", Value::Null),
                Some(_) => self.number(),
                None => Err("unexpected end of input".to_string()),
            }
        }

        fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.at..].starts_with(word.as_bytes()) {
                self.at += word.len();
                Ok(v)
            } else {
                Err(format!("bad literal at byte {}", self.at))
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.eat(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.at += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.eat(b':')?;
                self.skip_ws();
                fields.push((key, self.value()?));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.at += 1,
                    Some(b'}') => {
                        self.at += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.eat(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.at += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.at += 1,
                    Some(b']') => {
                        self.at += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    Some(b'"') => {
                        self.at += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.at += 1;
                        let esc = self
                            .peek()
                            .ok_or_else(|| "unterminated escape".to_string())?;
                        self.at += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.at..self.at + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .and_then(char::from_u32)
                                    .ok_or_else(|| format!("bad \\u escape at byte {}", self.at))?;
                                self.at += 4;
                                out.push(hex);
                            }
                            _ => return Err(format!("bad escape at byte {}", self.at)),
                        }
                    }
                    Some(_) => {
                        let start = self.at;
                        while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                            self.at += 1;
                        }
                        out.push_str(
                            std::str::from_utf8(&self.bytes[start..self.at])
                                .map_err(|_| "invalid UTF-8 in string".to_string())?,
                        );
                    }
                    None => return Err("unterminated string".to_string()),
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.at;
            while matches!(
                self.peek(),
                Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            ) {
                self.at += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.at])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::params::CompileParams;
    use crate::schedule::{InputSpec, ScheduledProgram};

    #[test]
    fn table3_values() {
        let m = CostModel::paper_table3();
        assert_eq!(m.at_level(OpClass::MulCipher, 1), 4363.0);
        assert_eq!(m.at_level(OpClass::MulCipher, 5), 33974.0);
        assert_eq!(m.at_level(OpClass::Rescale, 2), 3119.0);
        assert_eq!(m.at_level(OpClass::Rotate, 3), 13584.0);
    }

    #[test]
    fn interpolation_matches_paper_example() {
        // §6.1: cost of x³ at level 1+2/3: 44·(1/3) + 92·(2/3) = 76 (in
        // hundreds of µs): 4363/3·1 + ... ⇒ ≈ 7569 µs.
        let m = CostModel::paper_table3();
        let c = m.at_fractional_level(OpClass::MulCipher, 1.0 + 2.0 / 3.0);
        let expect = 4363.0 * (1.0 / 3.0) + 9172.0 * (2.0 / 3.0);
        assert!((c - expect).abs() < 1e-9);
        assert!((expect / 100.0 - 76.0).abs() < 1.0);
    }

    #[test]
    fn extrapolation_is_linear_beyond_table() {
        let m = CostModel::paper_table3();
        let l5 = m.at_level(OpClass::MulCipher, 5);
        let l6 = m.at_level(OpClass::MulCipher, 6);
        let l7 = m.at_level(OpClass::MulCipher, 7);
        let slope = 33974.0 - 23517.0;
        assert_eq!(l6 - l5, slope);
        assert_eq!(l7 - l6, slope);
        assert!(m.at_level(OpClass::Rescale, 11) > m.at_level(OpClass::Rescale, 10));
    }

    #[test]
    fn extrapolation_clamps_at_the_cheapest_row() {
        // Regression: a measured row whose last segment decreases used to
        // extrapolate through zero into negative latencies.
        let m = CostModel::from_rows([(OpClass::ModSwitch, vec![100.0, 60.0])]);
        assert_eq!(m.at_level(OpClass::ModSwitch, 2), 60.0);
        // Unclamped level 3 would be 20, level 5 would be −60.
        assert_eq!(m.at_level(OpClass::ModSwitch, 3), 60.0);
        assert_eq!(m.at_level(OpClass::ModSwitch, 5), 60.0);
        assert!(m.at_fractional_level(OpClass::ModSwitch, 7.3) > 0.0);
    }

    #[test]
    fn from_bench_json_calibrates_named_rows() {
        let text = r#"{
            "table": "table3", "poly_degree": 128, "levels": 2, "reps": 1,
            "ops": [
                {"op": "rotate (cipher)", "latency_us": [10.5, 20.25]},
                {"op": "cipher x cipher", "latency_us": [30.0, 60.0, 90.0]}
            ]
        }"#;
        let m = CostModel::from_bench_json(text).expect("parses");
        assert_eq!(m.at_level(OpClass::Rotate, 2), 20.25);
        assert_eq!(m.at_level(OpClass::MulCipher, 3), 90.0);
        // Rows absent from the record keep the paper values.
        assert_eq!(m.at_level(OpClass::Rescale, 1), 1926.0);
    }

    #[test]
    fn from_bench_json_loads_the_shipped_measurement() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../table3_measured.json");
        let text = std::fs::read_to_string(path).expect("table3_measured.json ships in the repo");
        let m = CostModel::from_bench_json(&text).expect("shipped record parses");
        for class in OpClass::ALL {
            assert!(m.at_level(class, 1) > 0.0, "{class:?} calibrated");
        }
    }

    #[test]
    fn from_bench_json_rejects_malformed_records() {
        assert!(CostModel::from_bench_json("{").is_err());
        assert!(CostModel::from_bench_json("{\"ops\": []}").is_err());
        let unknown = r#"{"ops": [{"op": "bogus row", "latency_us": [1.0, 2.0]}]}"#;
        assert!(CostModel::from_bench_json(unknown).is_err());
        let short = r#"{"ops": [{"op": "cipher + plain", "latency_us": [1.0]}]}"#;
        assert!(CostModel::from_bench_json(short).is_err());
        let negative = r#"{"ops": [{"op": "cipher + plain", "latency_us": [1.0, -2.0]}]}"#;
        assert!(CostModel::from_bench_json(negative).is_err());
    }

    #[test]
    fn clamps_below_level_one() {
        let m = CostModel::paper_table3();
        assert_eq!(m.at_fractional_level(OpClass::Rotate, 0.2), 3828.0);
        assert_eq!(m.at_level(OpClass::Rotate, 0), 3828.0);
    }

    #[test]
    fn from_rows_overrides() {
        let m = CostModel::from_rows([(OpClass::Rotate, vec![10.0, 20.0])]);
        assert_eq!(m.at_level(OpClass::Rotate, 2), 20.0);
        assert_eq!(m.at_level(OpClass::Rotate, 4), 40.0);
        // Other rows keep the paper values.
        assert_eq!(m.at_level(OpClass::MulCipher, 1), 4363.0);
    }

    #[test]
    fn program_cost_charges_rescale_at_result_level() {
        let params = CompileParams::new(20);
        let mut p = Program::new("c", 4);
        let x = p.push(Op::Input { name: "x".into() });
        let m2 = p.push(Op::Mul(x, x));
        let r = p.push(Op::Rescale(m2));
        p.set_outputs(vec![r]);
        let s = ScheduledProgram {
            program: p,
            params,
            inputs: vec![InputSpec {
                scale_bits: Frac::from(40),
                level: 2,
            }],
        };
        let map = s.validate().unwrap();
        let m = CostModel::paper_table3();
        // mul at level 2 (9172) + rescale charged at result level 1 (1926).
        assert_eq!(m.program_cost(&s.program, &map), 9172.0 + 1926.0);
    }

    #[test]
    fn plain_ops_cost_nothing() {
        let params = CompileParams::new(20);
        let mut p = Program::new("c", 4);
        let a = p.push(Op::Const { value: 1.0.into() });
        let b = p.push(Op::Const { value: 2.0.into() });
        let ab = p.push(Op::Mul(a, b));
        let x = p.push(Op::Input { name: "x".into() });
        let m = p.push(Op::Mul(x, ab));
        p.set_outputs(vec![m]);
        let s = ScheduledProgram {
            program: p,
            params,
            inputs: vec![InputSpec {
                scale_bits: Frac::from(20),
                level: 1,
            }],
        };
        let map = s.validate().unwrap();
        let cm = CostModel::paper_table3();
        // Only the cipher×plain mul is charged.
        assert_eq!(cm.program_cost(&s.program, &map), 211.0);
    }
}
