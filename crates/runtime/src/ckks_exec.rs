//! Real encrypted execution of scheduled programs on the `fhe-ckks`
//! backend, with wall-clock timing — the ground truth behind the latency
//! and error experiments.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use fhe_ckks::{
    decrypt, encrypt_symmetric, Ciphertext, CkksContext, CkksParams, Evaluator, KeyGenerator,
};
use fhe_ir::{CostModel, Op, OpClass, ScheduleError, ScheduledProgram, ValueId};

use crate::plain;

/// Options for encrypted execution.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Polynomial degree `N` of the backend. The program's slot count must
    /// equal `N/2` so rotations wrap identically.
    pub poly_degree: usize,
    /// RNG seed for key generation and encryption randomness.
    pub seed: u64,
    /// Worker threads for the backend's per-limb fan-out (see
    /// [`CkksParams::threads`]): `0` = auto-detect, `1` = serial. Results
    /// are bit-identical for every value.
    pub threads: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            poly_degree: 1 << 12,
            seed: 0xC0FFEE,
            threads: 0,
        }
    }
}

/// Result of an encrypted execution.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Decrypted program outputs.
    pub outputs: Vec<Vec<f64>>,
    /// Plaintext reference outputs.
    pub reference: Vec<Vec<f64>>,
    /// Wall-clock time spent in homomorphic operations (excludes key
    /// generation, encryption and decryption).
    pub op_time: Duration,
    /// End-to-end time including keygen/encrypt/decrypt.
    pub total_time: Duration,
    /// Number of homomorphic ops executed.
    pub ops_executed: usize,
    /// Wall time and op count per Table 3 op class (fresh encryptions are
    /// counted in [`ExecReport::ops_executed`] but have no class).
    pub per_class: Vec<(OpClass, Duration, usize)>,
}

impl ExecReport {
    /// Maximum absolute slot error vs the reference.
    pub fn max_abs_error(&self) -> f64 {
        self.outputs
            .iter()
            .zip(&self.reference)
            .flat_map(|(o, r)| o.iter().zip(r).map(|(a, b)| (a - b).abs()))
            .fold(0.0, f64::max)
    }
}

/// Executes a scheduled program under real RNS-CKKS encryption.
///
/// # Errors
///
/// Returns the schedule's validation errors if it is illegal.
///
/// # Panics
///
/// Panics if the program's slot count differs from `poly_degree / 2` or the
/// schedule's rescaling factor differs from 60 bits (the backend's chain
/// prime size is chosen to match the schedule's `R`).
pub fn execute(
    scheduled: &ScheduledProgram,
    inputs: &HashMap<String, Vec<f64>>,
    options: &ExecOptions,
) -> Result<ExecReport, Vec<ScheduleError>> {
    let map = scheduled.validate()?;
    let program = &scheduled.program;
    assert_eq!(
        program.slots(),
        options.poly_degree / 2,
        "program slots must match N/2 for rotation semantics"
    );

    let t_total = Instant::now();
    let ckks_params = CkksParams {
        poly_degree: options.poly_degree,
        max_level: map.max_level() as usize,
        modulus_bits: scheduled.params.rescale_bits,
        special_bits: scheduled.params.rescale_bits.min(60) + 1,
        error_std: 3.2,
        threads: options.threads,
    };
    let ctx = CkksContext::new(ckks_params);
    let mut rng = StdRng::seed_from_u64(options.seed);
    let kg = KeyGenerator::new(&ctx, &mut rng);
    let sk = kg.secret_key();
    let relin = kg.relin_key(&mut rng);
    let steps: Vec<i64> = program
        .ops()
        .iter()
        .filter_map(|op| match op {
            Op::Rotate(_, k) => Some(*k),
            _ => None,
        })
        .collect();
    let galois = kg.galois_keys(steps, &mut rng);
    let ev = Evaluator::new(&ctx, Some(relin), galois);

    // Plaintext sub-values are evaluated in the clear and encoded on demand.
    let slots = program.slots();
    let live = fhe_ir::analysis::live(program);
    let mut plain_vals: Vec<Option<Vec<f64>>> = vec![None; program.num_ops()];
    let mut cipher_vals: Vec<Option<Ciphertext>> = vec![None; program.num_ops()];
    let waterline = 2f64.powi(scheduled.params.waterline_bits as i32);

    // Rotations of the same ciphertext share one hoisted key-switch
    // decomposition: group them up front, compute the whole group when its
    // first member executes, and hand out the rest from a side table.
    let mut rotation_groups: HashMap<ValueId, Vec<(ValueId, i64)>> = HashMap::new();
    for id in program.ids() {
        if let Op::Rotate(a, k) = program.op(id) {
            if live[id.index()] && program.is_cipher(id) {
                rotation_groups.entry(*a).or_default().push((id, *k));
            }
        }
    }
    rotation_groups.retain(|_, group| group.len() >= 2);
    let mut hoisted_results: HashMap<ValueId, Ciphertext> = HashMap::new();

    let mut op_time = Duration::ZERO;
    let mut ops_executed = 0usize;
    let mut by_class: [(Duration, usize); OpClass::ALL.len()] =
        [(Duration::ZERO, 0); OpClass::ALL.len()];
    let mut input_iter = scheduled.inputs.iter();

    for id in program.ids() {
        if !live[id.index()] {
            if matches!(program.op(id), Op::Input { .. }) {
                let _ = input_iter.next();
            }
            continue;
        }
        if program.is_plain(id) {
            let v = match program.op(id) {
                Op::Const { value } => value.to_vec(slots),
                Op::Add(a, b) => bin(&plain_vals, *a, *b, |x, y| x + y),
                Op::Sub(a, b) => bin(&plain_vals, *a, *b, |x, y| x - y),
                Op::Mul(a, b) => bin(&plain_vals, *a, *b, |x, y| x * y),
                Op::Neg(a) => get(&plain_vals, *a).iter().map(|x| -x).collect(),
                Op::Rotate(a, k) => plain::rotate(get(&plain_vals, *a), *k),
                other => unreachable!("plain {other:?}"),
            };
            plain_vals[id.index()] = Some(v);
            continue;
        }

        let cget = |vals: &Vec<Option<Ciphertext>>, v: ValueId| -> Ciphertext {
            vals[v.index()].clone().expect("cipher operand evaluated")
        };
        let t0 = Instant::now();
        let ct = match program.op(id) {
            Op::Input { name } => {
                let spec = input_iter.next().expect("input specs match inputs");
                let data = inputs
                    .get(name)
                    .unwrap_or_else(|| panic!("missing input binding `{name}`"));
                let scale = 2f64.powf(spec.scale_bits.to_f64());
                let pt = ev.encoder().encode(data, scale, spec.level as usize);
                encrypt_symmetric(&ctx, &sk, &pt, &mut rng)
            }
            Op::Add(a, b) | Op::Sub(a, b) => {
                let sub = matches!(program.op(id), Op::Sub(..));
                match (program.is_cipher(*a), program.is_cipher(*b)) {
                    (true, true) => {
                        let ca = cget(&cipher_vals, *a);
                        let cb = cget(&cipher_vals, *b);
                        if sub {
                            ev.sub(&ca, &cb)
                        } else {
                            ev.add(&ca, &cb)
                        }
                    }
                    (true, false) => {
                        let ca = cget(&cipher_vals, *a);
                        let pv = get(&plain_vals, *b).clone();
                        let pv = if sub {
                            pv.iter().map(|x| -x).collect()
                        } else {
                            pv
                        };
                        let pt = ev.encoder().encode(&pv, ca.scale, ca.level);
                        ev.add_plain(&ca, &pt)
                    }
                    (false, true) => {
                        // plain ± cipher: a + b, or a − b = (−b) + a.
                        let cb = cget(&cipher_vals, *b);
                        let base = if sub { ev.neg(&cb) } else { cb };
                        let pt = ev
                            .encoder()
                            .encode(get(&plain_vals, *a), base.scale, base.level);
                        ev.add_plain(&base, &pt)
                    }
                    (false, false) => unreachable!(),
                }
            }
            Op::Mul(a, b) => match (program.is_cipher(*a), program.is_cipher(*b)) {
                (true, true) => {
                    let ca = cget(&cipher_vals, *a);
                    let cb = cget(&cipher_vals, *b);
                    ev.mul(&ca, &cb)
                }
                (true, false) | (false, true) => {
                    let (c, p) = if program.is_cipher(*a) {
                        (*a, *b)
                    } else {
                        (*b, *a)
                    };
                    let cc = cget(&cipher_vals, c);
                    let pt = ev
                        .encoder()
                        .encode(get(&plain_vals, p), waterline, cc.level);
                    ev.mul_plain(&cc, &pt)
                }
                (false, false) => unreachable!(),
            },
            Op::Neg(a) => ev.neg(&cget(&cipher_vals, *a)),
            Op::Rotate(a, k) => {
                if let Some(ct) = hoisted_results.remove(&id) {
                    ct
                } else if let Some(group) = rotation_groups.get(a) {
                    let ca = cget(&cipher_vals, *a);
                    let steps: Vec<i64> = group.iter().map(|&(_, s)| s).collect();
                    let outs = ev.rotate_hoisted(&ca, &steps);
                    let mut mine = None;
                    for (&(gid, _), out) in group.iter().zip(outs) {
                        if gid == id {
                            mine = Some(out);
                        } else {
                            hoisted_results.insert(gid, out);
                        }
                    }
                    mine.expect("group contains the current op")
                } else {
                    ev.rotate(&cget(&cipher_vals, *a), *k)
                }
            }
            Op::Rescale(a) => ev.rescale(&cget(&cipher_vals, *a)),
            Op::ModSwitch(a) => ev.mod_switch(&cget(&cipher_vals, *a)),
            Op::Upscale(a, delta) => ev.upscale(&cget(&cipher_vals, *a), 2f64.powf(delta.to_f64())),
            Op::Const { .. } => unreachable!("consts are plain"),
        };
        let elapsed = t0.elapsed();
        op_time += elapsed;
        ops_executed += 1;
        if let Some(class) = CostModel::classify(program, id) {
            let slot = OpClass::ALL
                .iter()
                .position(|c| *c == class)
                .expect("class in ALL");
            by_class[slot].0 += elapsed;
            by_class[slot].1 += 1;
        }
        debug_assert_eq!(
            ct.level as u32,
            map.level(id),
            "backend level tracks schedule"
        );
        cipher_vals[id.index()] = Some(ct);
    }

    let outputs = program
        .outputs()
        .iter()
        .map(|&o| {
            // Rewrites can fold an output to a public value (e.g. `x - x`);
            // a plain output has no ciphertext to decrypt.
            if program.is_plain(o) {
                return get(&plain_vals, o).clone();
            }
            let ct = cipher_vals[o.index()].clone().expect("output evaluated");
            let mut v = ev.encoder().decode(&decrypt(&ctx, &sk, &ct));
            v.truncate(slots);
            v
        })
        .collect();
    let reference = plain::execute(program, inputs);
    let per_class = OpClass::ALL
        .iter()
        .zip(by_class)
        .filter(|(_, (_, n))| *n > 0)
        .map(|(&c, (d, n))| (c, d, n))
        .collect();
    Ok(ExecReport {
        outputs,
        reference,
        op_time,
        total_time: t_total.elapsed(),
        ops_executed,
        per_class,
    })
}

fn get(vals: &[Option<Vec<f64>>], id: ValueId) -> &Vec<f64> {
    vals[id.index()].as_ref().expect("plain operand evaluated")
}

fn bin(vals: &[Option<Vec<f64>>], a: ValueId, b: ValueId, f: impl Fn(f64, f64) -> f64) -> Vec<f64> {
    get(vals, a)
        .iter()
        .zip(get(vals, b))
        .map(|(&x, &y)| f(x, y))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::Builder;
    use reserve_core::Options;

    fn inputs(pairs: &[(&str, Vec<f64>)]) -> HashMap<String, Vec<f64>> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    fn opts() -> ExecOptions {
        ExecOptions {
            poly_degree: 256,
            seed: 3,
            threads: 1,
        }
    }

    #[test]
    fn encrypted_fig2a_matches_reference() {
        let slots = 128;
        let b = Builder::new("fig2a", slots);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        let p = b.finish(vec![q]);
        let compiled = reserve_core::compile(&p, &Options::new(30)).unwrap();
        let xs: Vec<f64> = (0..slots).map(|i| ((i % 5) as f64 - 2.0) * 0.3).collect();
        let ys: Vec<f64> = (0..slots).map(|i| ((i % 7) as f64) * 0.1).collect();
        let report = execute(
            &compiled.scheduled,
            &inputs(&[("x", xs), ("y", ys)]),
            &opts(),
        )
        .unwrap();
        assert!(
            report.max_abs_error() < 1e-2,
            "encrypted error {}",
            report.max_abs_error()
        );
        assert!(report.ops_executed > 5);
        assert!(report.op_time > Duration::ZERO);
    }

    #[test]
    fn encrypted_rotation_and_plain_mul() {
        let slots = 128;
        let b = Builder::new("rotmul", slots);
        let x = b.input("x");
        let k = b.constant(vec![0.5; 128]);
        let e = x.clone().rotate(1) * k + x;
        let p = b.finish(vec![e]);
        // Slot values exceed 1, so the outputs need headroom: reserve two
        // bits of the output modulus for the value magnitude (Table 1's
        // m·x_max < Q constraint).
        let mut options = Options::new(30);
        options.params.output_reserve_bits = 2;
        let compiled = reserve_core::compile(&p, &options).unwrap();
        let xs: Vec<f64> = (0..slots).map(|i| i as f64 * 0.01).collect();
        let report = execute(&compiled.scheduled, &inputs(&[("x", xs.clone())]), &opts()).unwrap();
        let expect0 = xs[1] * 0.5 + xs[0];
        assert!((report.outputs[0][0] - expect0).abs() < 1e-2);
        assert_eq!(report.outputs[0].len(), slots);
    }

    #[test]
    fn plain_output_decodes_without_ciphertext() {
        // Fuzzer reproducer (tests/corpus/fold_plain_output.fhe): cleanup
        // folds `x - x` to a public zero, so the program's only output is
        // a plain value with no ciphertext to decrypt.
        let slots = 128;
        let b = Builder::new("fold", slots);
        let x = b.input("x");
        let z = x.clone() - x;
        let p = b.finish(vec![z]);
        let compiled = reserve_core::compile(&p, &Options::new(30)).unwrap();
        assert!(
            compiled
                .scheduled
                .program
                .outputs()
                .iter()
                .any(|&o| { compiled.scheduled.program.is_plain(o) }),
            "expected cleanup to fold the output to a plain value"
        );
        let xs: Vec<f64> = (0..slots).map(|i| i as f64 * 0.01).collect();
        let report = execute(&compiled.scheduled, &inputs(&[("x", xs)]), &opts()).unwrap();
        assert!(report.outputs[0].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn eva_schedules_also_execute() {
        let slots = 128;
        let b = Builder::new("evaexec", slots);
        let x = b.input("x");
        let y = b.input("y");
        let e = (x.clone() * y.clone() + x) * y;
        let p = b.finish(vec![e]);
        let eva = fhe_baselines::eva::compile(&p, &fhe_ir::CompileParams::new(30)).unwrap();
        let xs = vec![0.5; slots];
        let ys = vec![0.25; slots];
        let report = execute(&eva.scheduled, &inputs(&[("x", xs), ("y", ys)]), &opts()).unwrap();
        assert!(
            report.max_abs_error() < 1e-2,
            "err {}",
            report.max_abs_error()
        );
    }
}
