//! Fig. 2: the worked example `x³ · (y² + y)` at waterline 2^20 — EVA's
//! conservative plan vs the reserve analysis (step 1) vs reserve analysis +
//! rescale hoisting (step 2). Costs in hundreds of µs, as in the figure.

use fhe_bench::print_table;
use fhe_ir::pipeline::ScaleCompiler;
use fhe_ir::{Builder, CompileParams};
use reserve_core::{Mode, ReserveCompiler};

fn main() {
    let b = Builder::new("fig2a", 8);
    let x = b.input("x");
    let y = b.input("y");
    let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
    let program = b.finish(vec![q]);
    let params = CompileParams::new(20);

    println!("Fig. 2: scale management plans for x^3 * (y^2 + y), W = 2^20, R = 2^60.\n");
    // The figure's plan ladder plus Hecate, each with the paper's reported
    // cost where the figure gives one.
    let plans: Vec<(&str, Box<dyn ScaleCompiler>, &str)> = vec![
        ("EVA (Fig. 2b)", Box::new(fhe_baselines::EvaCompiler), "390"),
        (
            "Reserve analysis (Fig. 2c)",
            Box::new(ReserveCompiler::with_mode(Mode::Ra)),
            "353",
        ),
        (
            "+ rescale hoisting (Fig. 2d)",
            Box::new(ReserveCompiler::full()),
            "335",
        ),
        (
            "Hecate (exploration)",
            Box::new(fhe_baselines::HecateCompiler::with_budget(2000)),
            "-",
        ),
    ];

    let outs: Vec<_> = plans
        .iter()
        .map(|(name, c, _)| {
            c.compile(&program, &params)
                .unwrap_or_else(|e| panic!("{name}: {e}"))
        })
        .collect();

    let headers = [
        "Plan",
        "Cost (x100us)",
        "Paper",
        "Rescales",
        "Upscales",
        "Modswitches",
    ];
    let rows: Vec<Vec<String>> = plans
        .iter()
        .zip(&outs)
        .map(|((name, _, paper), out)| {
            let (rs, ms, us) = out.scheduled.scale_management_counts();
            vec![
                name.to_string(),
                format!("{:.1}", out.report.estimated_latency_us / 100.0),
                paper.to_string(),
                rs.to_string(),
                us.to_string(),
                ms.to_string(),
            ]
        })
        .collect();
    print_table(&headers, &rows);

    let (eva, ra, full) = (&outs[0].report, &outs[1].report, &outs[2].report);
    println!("\nThe reserve plan (this work):");
    println!("{}", fhe_ir::text::print(&outs[2].scheduled.program));
    println!(
        "Per-pass trace of the winning plan:\n{}",
        full.trace.summary()
    );
    assert!(
        full.estimated_latency_us < ra.estimated_latency_us
            && ra.estimated_latency_us < eva.estimated_latency_us
    );
}
