//! Benchmarks of the three compilers' scale-management passes on the small
//! benchmarks — the statistical counterpart of `table4`.
//!
//! Plain timing harness (the workspace builds offline, without criterion),
//! driving every compiler through the unified `ScaleCompiler` trait.

use std::time::Instant;

use fhe_baselines::{EvaCompiler, HecateCompiler, HecateOptions};
use fhe_ir::pipeline::ScaleCompiler;
use fhe_ir::CompileParams;
use fhe_workloads::{suite, Size};
use reserve_core::ReserveCompiler;

fn main() {
    let workloads = suite(Size::Test);
    let params = CompileParams::new(30);
    let compilers: Vec<(&str, Box<dyn ScaleCompiler>)> = vec![
        ("eva", Box::new(EvaCompiler)),
        ("reserve", Box::new(ReserveCompiler::full())),
        (
            "hecate50",
            Box::new(HecateCompiler {
                options: HecateOptions {
                    max_iterations: 50,
                    patience: 50,
                    seed: 1,
                    ..HecateOptions::default()
                },
            }),
        ),
    ];
    const WARMUP: usize = 2;
    const ITERS: usize = 10;
    for w in workloads
        .iter()
        .filter(|w| ["SF", "HCD", "LR", "MLP"].contains(&w.name))
    {
        for (label, compiler) in &compilers {
            for _ in 0..WARMUP {
                let _ = compiler.compile(&w.program, &params).unwrap();
            }
            let t0 = Instant::now();
            for _ in 0..ITERS {
                let _ = compiler.compile(&w.program, &params).unwrap();
            }
            let per_iter = t0.elapsed().as_secs_f64() / ITERS as f64;
            println!("compile/{label}/{}: {:.1} us/iter", w.name, per_iter * 1e6);
        }
    }
}
