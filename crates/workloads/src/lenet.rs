//! LeNet-5 inference (Lenet-5 on MNIST-shaped inputs, Lenet-C on
//! CIFAR-shaped inputs): the paper's deepest benchmarks, with the structure
//! `Conv - (·)² - AvgPool - Conv - (·)² - AvgPool - FC - (·)² - FC - (·)² -
//! FC` (11 multiplicative depths).
//!
//! Feature maps are packed one channel per ciphertext, row-major, with
//! *lazy striding*: pooling keeps values in place and later layers read at
//! doubled dilation — the standard packed-CKKS CNN layout. Weights are
//! seeded random (the experiments measure latency/compile time, not model
//! accuracy; see DESIGN.md substitutions).

use std::collections::HashMap;

use fhe_ir::{Builder, Expr, Program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data;
use crate::helpers::{avg_pool2, matvec_diagonals, sum_balanced};

/// Shape of a LeNet instance.
#[derive(Debug, Clone)]
pub struct LenetConfig {
    /// Ciphertext slot count.
    pub slots: usize,
    /// Feature-map grid width (images are `grid × grid`).
    pub grid: usize,
    /// Input channels (1 for MNIST, 3 for CIFAR-10).
    pub in_channels: usize,
    /// First/second convolution output channels.
    pub conv_channels: [usize; 2],
    /// Convolution kernel size.
    pub kernel: usize,
    /// Diagonal counts of the three FC layers.
    pub fc_diagonals: [usize; 3],
    /// Weight seed.
    pub seed: u64,
}

impl LenetConfig {
    /// LeNet-5 on MNIST-shaped inputs (paper's `Lenet-5`).
    pub fn lenet5() -> Self {
        LenetConfig {
            slots: 16384,
            grid: 32,
            in_channels: 1,
            conv_channels: [6, 16],
            kernel: 5,
            fc_diagonals: [16, 64, 32],
            seed: 0x1e9e7,
        }
    }

    /// LeNet-5 on CIFAR-shaped inputs (paper's `Lenet-C`): three input
    /// channels.
    pub fn lenet_cifar() -> Self {
        LenetConfig {
            in_channels: 3,
            seed: 0xC1FA5,
            ..Self::lenet5()
        }
    }

    /// A miniature instance for unit tests and encrypted execution.
    pub fn tiny(slots: usize) -> Self {
        LenetConfig {
            slots,
            grid: 8,
            in_channels: 1,
            conv_channels: [2, 2],
            kernel: 3,
            fc_diagonals: [4, 4, 4],
            seed: 7,
        }
    }
}

/// One convolution layer on per-channel ciphertexts with plaintext scalar
/// weights: `out_o = Σ_ic Σ_{dy,dx} w · rot(in_ic, offset)`. Rotations are
/// shared across output channels (CSE merges them).
fn conv_layer(
    b: &Builder,
    inputs: &[Expr],
    out_channels: usize,
    kernel: usize,
    grid: usize,
    dilation: usize,
    rng: &mut StdRng,
) -> Vec<Expr> {
    let half = (kernel / 2) as i64;
    let scale = 1.0 / (kernel * kernel * inputs.len()) as f64;
    (0..out_channels)
        .map(|_| {
            let mut terms = Vec::new();
            for input in inputs {
                for dy in -half..=half {
                    for dx in -half..=half {
                        let off = (dy * grid as i64 + dx) * dilation as i64;
                        let shifted = if off == 0 {
                            input.clone()
                        } else {
                            input.rotate(off)
                        };
                        let w = rng.gen_range(-1.0..1.0) * scale;
                        terms.push(shifted * b.constant(w));
                    }
                }
            }
            sum_balanced(terms)
        })
        .collect()
}

/// Builds a LeNet program per the configuration.
pub fn build(cfg: &LenetConfig) -> Program {
    assert!(
        cfg.grid * cfg.grid <= cfg.slots,
        "grid must fit the slot count"
    );
    let b = Builder::new(
        if cfg.in_channels == 1 {
            "lenet5"
        } else {
            "lenet_c"
        },
        cfg.slots,
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let inputs: Vec<Expr> = (0..cfg.in_channels)
        .map(|i| b.input(format!("image{i}")))
        .collect();

    // Conv1 → square → pool (dilation 1 → 2).
    let c1 = conv_layer(
        &b,
        &inputs,
        cfg.conv_channels[0],
        cfg.kernel,
        cfg.grid,
        1,
        &mut rng,
    );
    let s1: Vec<Expr> = c1.into_iter().map(|c| c.clone() * c).collect();
    let p1: Vec<Expr> = s1.iter().map(|c| avg_pool2(&b, c, cfg.grid, 1)).collect();

    // Conv2 → square → pool (dilation 2 → 4).
    let c2 = conv_layer(
        &b,
        &p1,
        cfg.conv_channels[1],
        cfg.kernel,
        cfg.grid,
        2,
        &mut rng,
    );
    let s2: Vec<Expr> = c2.into_iter().map(|c| c.clone() * c).collect();
    let p2: Vec<Expr> = s2.iter().map(|c| avg_pool2(&b, c, cfg.grid, 2)).collect();

    // FC1 sums banded matvecs over every channel, then squares.
    let h = sum_balanced(
        p2.iter()
            .map(|ch| {
                let w = data::diagonals(cfg.fc_diagonals[0], cfg.slots, rng.gen());
                matvec_diagonals(&b, ch, &w)
            })
            .collect(),
    );
    let h = h.clone() * h;

    // FC2 → square → FC3.
    let w2 = data::diagonals(cfg.fc_diagonals[1], cfg.slots, rng.gen());
    let h2 = matvec_diagonals(&b, &h, &w2);
    let h2 = h2.clone() * h2;
    let w3 = data::diagonals(cfg.fc_diagonals[2], cfg.slots, rng.gen());
    let out = matvec_diagonals(&b, &h2, &w3);
    b.finish(vec![out])
}

/// Input bindings: one synthetic image per input channel.
pub fn lenet_inputs(cfg: &LenetConfig, seed: u64) -> HashMap<String, Vec<f64>> {
    (0..cfg.in_channels)
        .map(|i| {
            (
                format!("image{i}"),
                data::image(cfg.grid * cfg.grid, seed + i as u64),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::{analysis, passes};
    use fhe_runtime::plain;

    #[test]
    fn lenet5_shape_matches_paper() {
        let p = build(&LenetConfig::lenet5());
        // Paper Table 4: Lenet-5 has 8895 ops (before its compiler's CSE);
        // ours lands in the same order of magnitude.
        assert!(
            (4000..=12000).contains(&p.num_ops()),
            "lenet5 has {} ops",
            p.num_ops()
        );
        assert_eq!(
            analysis::circuit_depth(&p),
            11,
            "paper: 11 multiplicative depths"
        );
        assert_eq!(p.slots(), 16384);
    }

    #[test]
    fn lenet_cifar_is_larger() {
        let five = build(&LenetConfig::lenet5());
        let cifar = build(&LenetConfig::lenet_cifar());
        assert!(cifar.num_ops() > five.num_ops());
        assert_eq!(analysis::circuit_depth(&cifar), 11);
        assert_eq!(cifar.inputs().len(), 3);
    }

    #[test]
    fn rotations_are_shared_after_cse() {
        let p = build(&LenetConfig::lenet5());
        let before = p.count_ops(|o| matches!(o, fhe_ir::Op::Rotate(..)));
        let (after_cse, _) = passes::cse(&p);
        let after = after_cse.count_ops(|o| matches!(o, fhe_ir::Op::Rotate(..)));
        assert!(
            after < before,
            "CSE must merge shared rotations: {after} vs {before}"
        );
    }

    #[test]
    fn tiny_lenet_executes_in_the_clear() {
        let cfg = LenetConfig::tiny(128);
        let p = build(&cfg);
        assert_eq!(analysis::circuit_depth(&p), 11);
        let out = plain::execute(&p, &lenet_inputs(&cfg, 1));
        assert_eq!(out.len(), 1);
        assert!(out[0].iter().all(|v| v.is_finite()));
        // Outputs must be bounded (weights are scaled down) so encrypted
        // execution keeps headroom.
        assert!(out[0].iter().all(|v| v.abs() < 4.0), "outputs bounded");
    }
}
