//! Rescale hoisting (§7, step 2): move rescales past additions when the
//! saved rescale outweighs running the addition one level higher.
//!
//! Placement puts rescales at the earliest legal point (right after
//! level-mismatched multiplications). When both operands of an addition are
//! single-use rescale results, the two rescales can be *hoisted* into one
//! rescale after the addition:
//!
//! ```text
//!   add(rescale(a), rescale(b))   →   rescale(add(a, b))
//! ```
//!
//! benefit = cost(rs_a) + cost(rs_b) + cost(add@l) − cost(add@l+1) − cost(rs).
//! The pass runs to a fixpoint, so hoisted rescales cascade up addition
//! trees (the paper's "destination rescale stays a candidate").

use fhe_ir::{CostModel, Op, OpClass, ProgramEditor, ScheduledProgram, ValueId};

/// Applies beneficial rescale hoists until none remain. Returns the number
/// of hoists applied.
pub fn hoist(scheduled: &mut ScheduledProgram, cost: &CostModel) -> usize {
    let mut total = 0;
    loop {
        let applied = hoist_once(scheduled, cost);
        if applied == 0 {
            return total;
        }
        total += applied;
    }
}

/// One bottom-up pass: applies all beneficial hoists, including *groups* of
/// additions that share rescaled operands (the per-unit behaviour the
/// paper's scale-management-unit grouping produces — e.g. the twelve
/// rescaled terms of a convolution collapse towards one rescale after the
/// summation tree).
fn hoist_once(scheduled: &mut ScheduledProgram, cost: &CostModel) -> usize {
    let program = &scheduled.program;
    let map = match scheduled.validate() {
        Ok(m) => m,
        Err(e) => panic!("hoisting requires a valid schedule: {e:?}"),
    };
    let users = program.users();
    let is_output: std::collections::HashSet<ValueId> = program.outputs().iter().copied().collect();

    // Step 1: candidate adds — both operands are distinct rescales with
    // matching pre-rescale states, and hoisting is locally beneficial.
    let mut candidates: std::collections::HashMap<ValueId, (ValueId, ValueId)> =
        std::collections::HashMap::new();
    for id in program.ids() {
        let (a, b) = match program.op(id) {
            Op::Add(a, b) | Op::Sub(a, b) => (*a, *b),
            _ => continue,
        };
        if a == b || is_output.contains(&a) || is_output.contains(&b) {
            continue;
        }
        let (ra, rb) = match (program.op(a), program.op(b)) {
            (Op::Rescale(ra), Op::Rescale(rb)) => (*ra, *rb),
            _ => continue,
        };
        if map.scale_bits(ra) != map.scale_bits(rb) || map.level(ra) != map.level(rb) {
            continue;
        }
        candidates.insert(id, (ra, rb));
    }

    // Step 2: a rescale may only be consumed if *every* use is a candidate
    // add; shrink the candidate set to a fixpoint.
    loop {
        let bad: Vec<ValueId> = candidates
            .keys()
            .copied()
            .filter(|&add| {
                program.op(add).operands().any(|rs| {
                    users[rs.index()]
                        .iter()
                        .any(|u| !candidates.contains_key(u))
                })
            })
            .collect();
        if bad.is_empty() {
            break;
        }
        for add in bad {
            candidates.remove(&add);
        }
    }
    if candidates.is_empty() {
        return 0;
    }

    // Step 3: group adds into components connected by shared rescales
    // (union-find — an add bridging two groups must merge them, otherwise a
    // shared rescale could be consumed by one applied component while an
    // unapplied one still references it) and keep only components whose
    // total benefit is positive.
    let mut add_list: Vec<ValueId> = candidates.keys().copied().collect();
    add_list.sort_unstable();
    let mut parent: Vec<usize> = (0..add_list.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let mut owner_of: std::collections::HashMap<ValueId, usize> = std::collections::HashMap::new(); // rescale-op -> add index owning it
    for (idx, &add) in add_list.iter().enumerate() {
        for o in program.op(add).operands() {
            match owner_of.get(&o) {
                Some(&other) => {
                    let (a, b) = (find(&mut parent, idx), find(&mut parent, other));
                    parent[a] = b;
                }
                None => {
                    owner_of.insert(o, idx);
                }
            }
        }
    }
    let mut components: std::collections::HashMap<usize, Vec<ValueId>> =
        std::collections::HashMap::new();
    for (idx, &add) in add_list.iter().enumerate() {
        let root = find(&mut parent, idx);
        components.entry(root).or_default().push(add);
    }
    let components: Vec<Vec<ValueId>> = components.into_values().collect();

    let mut consumed = vec![false; program.num_ops()];
    let mut applied: std::collections::HashMap<ValueId, (ValueId, ValueId)> =
        std::collections::HashMap::new();
    for adds in &components {
        let mut sources: std::collections::HashSet<ValueId> = std::collections::HashSet::new();
        let mut benefit = 0.0;
        for &add in adds {
            let l_low = map.level(add);
            let l_high = l_low + 1;
            let add_class = CostModel::classify(program, add).expect("cipher add");
            benefit += cost.at_level(add_class, l_low)
                - cost.at_level(add_class, l_high)
                - cost.at_level(OpClass::Rescale, l_low);
            for o in program.op(add).operands() {
                sources.insert(o);
            }
        }
        for &s in &sources {
            benefit += cost.at_level(OpClass::Rescale, map.level(s));
        }
        if benefit <= 0.0 {
            continue;
        }
        for &s in &sources {
            consumed[s.index()] = true;
        }
        for &add in adds {
            applied.insert(add, candidates[&add]);
        }
    }
    if applied.is_empty() {
        return 0;
    }

    // Step 4: rebuild, skipping consumed rescales and re-rescaling after
    // each hoisted add.
    let mut ed = ProgramEditor::new(program);
    for id in program.ids() {
        if consumed[id.index()] {
            continue; // dropped rescale
        }
        if let Some(&(ra, rb)) = applied.get(&id) {
            let na = ed.map_operand(ra);
            let nb = ed.map_operand(rb);
            let add = ed.emit_with(id, &[na, nb]);
            let rs = ed.push(Op::Rescale(add));
            ed.set_mapping(id, rs);
        } else {
            ed.emit(id);
        }
    }
    scheduled.program = ed.finish();
    applied.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::allocate;
    use crate::ordering::allocation_order;
    use crate::placement::place;
    use fhe_ir::{Builder, CompileParams, Program};

    fn schedule(program: &Program, waterline: u32) -> ScheduledProgram {
        let params = CompileParams::new(waterline);
        let order = allocation_order(program, &params, &CostModel::paper_table3());
        let sol = allocate(program, &params, &order, true);
        place(program, &params, &sol)
    }

    fn fig2a() -> Program {
        let b = Builder::new("fig2a", 8);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        b.finish(vec![q])
    }

    #[test]
    fn fig2a_hoist_merges_the_two_rescales() {
        // Fig. 3f→3g: the rescales feeding s = y² + y merge into one after
        // the addition, with benefit ≈ 18 (hundreds of µs).
        let mut s = schedule(&fig2a(), 20);
        let before = s.validate().unwrap();
        let cm = CostModel::paper_table3();
        let cost_before = cm.program_cost(&s.program, &before);
        let rescales_before = s.program.count_ops(|o| matches!(o, Op::Rescale(_)));
        let n = hoist(&mut s, &cm);
        assert_eq!(n, 1, "exactly the s-addition hoist applies");
        let after = s.validate().expect("hoisted schedule stays valid");
        let cost_after = cm.program_cost(&s.program, &after);
        let rescales_after = s.program.count_ops(|o| matches!(o, Op::Rescale(_)));
        assert_eq!(rescales_after, rescales_before - 1);
        let benefit = cost_before - cost_after;
        assert!(
            (1000.0..3000.0).contains(&benefit),
            "benefit {benefit}µs should be ≈ 1800µs (paper: 18×100µs)"
        );
    }

    #[test]
    fn hoists_cascade_up_addition_trees() {
        // Four squares summed pairwise: first-level hoists enable a
        // second-level hoist.
        let b = Builder::new("tree", 8);
        let xs: Vec<_> = (0..4).map(|i| b.input(format!("x{i}"))).collect();
        let sq: Vec<_> = xs.iter().map(|x| x.clone() * x.clone()).collect();
        let s01 = sq[0].clone() + sq[1].clone();
        let s23 = sq[2].clone() + sq[3].clone();
        let total = s01 + s23;
        let out = total.clone() * total;
        let p = b.finish(vec![out]);
        let mut s = schedule(&p, 20);
        let cm = CostModel::paper_table3();
        let n = hoist(&mut s, &cm);
        assert!(n >= 2, "expected cascading hoists, got {n}");
        s.validate().expect("cascaded schedule valid");
    }

    #[test]
    fn no_hoist_when_no_rescale_pairs() {
        let b = Builder::new("plainadd", 8);
        let x = b.input("x");
        let y = b.input("y");
        let out = x + y;
        let p = b.finish(vec![out]);
        let mut s = schedule(&p, 20);
        let cm = CostModel::paper_table3();
        assert_eq!(hoist(&mut s, &cm), 0);
        s.validate().unwrap();
    }

    #[test]
    fn multi_use_rescales_are_not_hoisted() {
        let b = Builder::new("multiuse", 8);
        let x = b.input("x");
        let y = b.input("y");
        let sx = x.clone() * x.clone();
        let sy = y.clone() * y.clone();
        // sx feeds both the add and another mul: its rescale has 2 uses.
        let s = sx.clone() + sy;
        let t = sx.clone() * s;
        let p = b.finish(vec![t]);
        let mut sched = schedule(&p, 20);
        let valid_before = sched.validate().is_ok();
        let cm = CostModel::paper_table3();
        let _ = hoist(&mut sched, &cm);
        assert!(valid_before);
        sched
            .validate()
            .expect("still valid after (possibly zero) hoists");
    }
}
