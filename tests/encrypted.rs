//! Real-encryption integration: compile benchmarks with each compiler and
//! execute them on the `fhe-ckks` backend through the unified [`Executor`]
//! interface, checking the decrypted outputs against the plaintext
//! reference via the shared [`outputs_close`] diff helper.

use fhe_reserve::prelude::*;
use fhe_reserve::runtime::ExecOptions;

fn exec() -> CkksExec {
    // 256 slots = N/2 for N = 512: matches the Size::Test LeNet slot count.
    CkksExec {
        options: ExecOptions {
            poly_degree: 256,
            seed: 99,
            threads: 1,
            ..ExecOptions::default()
        },
    }
}

fn with_output_reserve(waterline: u32, bits: u32) -> Options {
    let mut o = Options::new(waterline);
    o.params.output_reserve_bits = bits;
    o
}

#[test]
fn encrypted_sobel_matches_reference() {
    // An 8×8 image is 64 slots, so the backend degree is N = 128.
    let program = fhe_reserve::workloads::image::sobel(8);
    let ckks = CkksExec {
        options: ExecOptions {
            poly_degree: 128,
            seed: 1,
            threads: 1,
            ..ExecOptions::default()
        },
    };
    let inputs = fhe_reserve::workloads::image::image_inputs(8, 5);
    let compiled = compile(&program, &with_output_reserve(30, 4)).unwrap();
    let run = ckks.execute(&compiled.scheduled, &inputs).unwrap();
    outputs_close(&run.outputs, &run.reference, 1e-2)
        .unwrap_or_else(|e| panic!("sobel encrypted: {e}"));
}

#[test]
fn encrypted_linear_regression_trains() {
    let n = 128;
    let program = fhe_reserve::workloads::regression::linear(n, 2);
    let inputs = fhe_reserve::workloads::regression::linear_inputs(n, 21);
    let compiled = compile(&program, &with_output_reserve(35, 4)).unwrap();
    let run = exec().execute(&compiled.scheduled, &inputs).unwrap();
    outputs_close(&run.outputs, &run.reference, 1e-2)
        .unwrap_or_else(|e| panic!("regression encrypted: {e}"));
    // The decrypted weight must match the plaintext-trained weight.
    assert!((run.outputs[0][0] - run.reference[0][0]).abs() < 1e-2);
    assert!(run.reference[0][0] > 0.0, "training moved the weight");
}

#[test]
fn encrypted_execution_agrees_across_compilers() {
    // The same program compiled by EVA, Hecate, and the reserve compiler
    // must decrypt to the same values (modulo noise) — all three driven
    // through the ScaleCompiler trait, executed by the same backend.
    let n = 128;
    let program = fhe_reserve::workloads::mlp::mlp(n, 4, 3);
    let inputs = fhe_reserve::workloads::mlp::mlp_inputs(n, 3);
    // Only the reserve compiler consumes `output_reserve_bits`; EVA and
    // Hecate ignore it, so one params value serves all three.
    let mut params = CompileParams::new(30);
    params.output_reserve_bits = 2;

    let compilers: Vec<Box<dyn ScaleCompiler>> = vec![
        Box::new(EvaCompiler),
        Box::new(HecateCompiler {
            options: HecateOptions {
                max_iterations: 60,
                patience: 60,
                seed: 2,
                ..HecateOptions::default()
            },
        }),
        Box::new(ReserveCompiler::full()),
    ];
    let mut outs = Vec::new();
    for c in &compilers {
        let compiled = c.compile(&program, &params).unwrap();
        let run = exec().execute(&compiled.scheduled, &inputs).unwrap();
        outputs_close(&run.outputs, &run.reference, 1e-2)
            .unwrap_or_else(|e| panic!("{}: {e}", c.name()));
        outs.push(run.outputs);
    }
    for other in &outs[1..] {
        outputs_close(other, &outs[0], 2e-2)
            .unwrap_or_else(|e| panic!("compilers disagree under encryption: {e}"));
    }
}

#[test]
fn encrypted_tiny_lenet_runs_all_eleven_levels() {
    let cfg = fhe_reserve::workloads::lenet::LenetConfig::tiny(128);
    let program = fhe_reserve::workloads::lenet::build(&cfg);
    let inputs = fhe_reserve::workloads::lenet::lenet_inputs(&cfg, 13);
    // Depth 11 with a large waterline keeps levels deep — the heaviest
    // encrypted test in the suite.
    let compiled = compile(&program, &with_output_reserve(30, 4)).unwrap();
    let ckks = CkksExec {
        options: ExecOptions {
            poly_degree: 256,
            seed: 4,
            threads: 1,
            ..ExecOptions::default()
        },
    };
    let run = ckks.execute(&compiled.scheduled, &inputs).unwrap();
    outputs_close(&run.outputs, &run.reference, 0.05)
        .unwrap_or_else(|e| panic!("lenet encrypted: {e}"));
    assert!(run.trace.ops_executed > 100);
}
