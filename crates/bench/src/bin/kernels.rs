//! Kernel microbenchmark: the Harvey/Barrett hot paths against the exact
//! `u128 %` reference kernels they replaced (DESIGN.md § Kernel
//! optimization).
//!
//! Three groups, each reported as latency plus speedup over its baseline:
//!
//! - **modmul** — pointwise modular multiplication over a buffer: Barrett
//!   (`Modulus::mul`) and Shoup (`Modulus::mul_shoup`, constant operand)
//!   vs the `u128 %` reference.
//! - **ntt** — forward/inverse negacyclic NTT at `N = 2^12` and `2^13`
//!   over a 60-bit prime: Harvey lazy butterflies vs the exact-reduction
//!   reference transforms.
//! - **fanout** — `RnsPoly::to_ntt`/`to_coeff` over a full modulus chain,
//!   serial (`threads = 1`) vs auto-detected worker threads.
//!
//! Kernels within a group are sampled round-robin (ref, fast, ref, fast,
//! …) and scored by their per-kernel minimum, so background-load drift
//! during the run biases every variant equally instead of whichever one
//! happened to run during the spike.
//!
//! `--fast` shrinks repetitions for CI smoke runs; `--json <path>` writes
//! the measured numbers (committed as `BENCH_kernels.json` at the repo
//! root for drift tracking).

use std::time::Instant;

use fhe_bench::{json::Json, print_table, CliArgs};
use fhe_ckks::modular::Modulus;
use fhe_ckks::ntt::NttTable;
use fhe_ckks::poly::RnsPoly;
use fhe_ckks::{CkksContext, CkksParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Times every kernel in lockstep: one warmup call each, then `reps`
/// rounds visiting the kernels in order, keeping each kernel's minimum
/// (interference only ever adds time, so the minimum is the estimate of
/// the undisturbed cost).
fn time_rotation_us(reps: usize, kernels: &mut [&mut dyn FnMut()]) -> Vec<f64> {
    for k in kernels.iter_mut() {
        k();
    }
    let mut best = vec![f64::INFINITY; kernels.len()];
    for _ in 0..reps.max(1) {
        for (k, b) in kernels.iter_mut().zip(best.iter_mut()) {
            let t0 = Instant::now();
            k();
            *b = b.min(t0.elapsed().as_secs_f64() * 1e6);
        }
    }
    best
}

struct Row {
    group: &'static str,
    name: String,
    us: f64,
    baseline_us: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.baseline_us / self.us
    }
}

fn main() {
    let args = CliArgs::parse();
    let reps = if args.fast { 5 } else { 25 };
    let mut rows: Vec<Row> = Vec::new();
    let mut rng = StdRng::seed_from_u64(0xC0DE);

    // --- modmul: 2^16 pointwise products over a 60-bit prime. ---
    let q = fhe_ckks::primes::ntt_primes(60, 1 << 13, 1)[0];
    let m = Modulus::new(q);
    let len = 1usize << 16;
    let xs: Vec<u64> = (0..len).map(|_| rng.gen::<u64>() % q).collect();
    let ys: Vec<u64> = (0..len).map(|_| rng.gen::<u64>() % q).collect();
    let w = ys[0];
    let w_shoup = m.shoup(w);
    let sink: u64;
    let [reference_us, barrett_us, shoup_us] = {
        let mut sink_ref = 0u64;
        let mut sink_bar = 0u64;
        let mut sink_shp = 0u64;
        let best = time_rotation_us(
            reps,
            &mut [
                &mut || {
                    for (&a, &b) in xs.iter().zip(&ys) {
                        sink_ref = sink_ref.wrapping_add(m.mul_reference(a, b));
                    }
                },
                &mut || {
                    for (&a, &b) in xs.iter().zip(&ys) {
                        sink_bar = sink_bar.wrapping_add(m.mul(a, b));
                    }
                },
                &mut || {
                    for &a in &xs {
                        sink_shp = sink_shp.wrapping_add(m.mul_shoup(a, w, w_shoup));
                    }
                },
            ],
        );
        sink = sink_ref ^ sink_bar ^ sink_shp;
        [best[0], best[1], best[2]]
    };
    rows.push(Row {
        group: "modmul",
        name: format!("u128 % reference ({len} muls)"),
        us: reference_us,
        baseline_us: reference_us,
    });
    rows.push(Row {
        group: "modmul",
        name: "barrett".into(),
        us: barrett_us,
        baseline_us: reference_us,
    });
    rows.push(Row {
        group: "modmul",
        name: "shoup (constant operand)".into(),
        us: shoup_us,
        baseline_us: reference_us,
    });

    // --- ntt: forward/inverse at 2^12 and 2^13, 60-bit prime. ---
    for log_n in [12u32, 13] {
        let n = 1usize << log_n;
        let q = fhe_ckks::primes::ntt_primes(60, n, 1)[0];
        let m = Modulus::new(q);
        let table = NttTable::new(m, n);
        let data: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % q).collect();
        let mut fwd_ref = data.clone();
        let mut fwd_fast = data.clone();
        let mut inv_ref = data.clone();
        let mut inv_fast = data.clone();
        let best = time_rotation_us(
            reps,
            &mut [
                &mut || table.forward_reference(&mut fwd_ref),
                &mut || table.forward(&mut fwd_fast),
                &mut || table.inverse_reference(&mut inv_ref),
                &mut || table.inverse(&mut inv_fast),
            ],
        );
        let (ref_fwd, harvey_fwd, ref_inv, harvey_inv) = (best[0], best[1], best[2], best[3]);
        rows.push(Row {
            group: "ntt",
            name: format!("forward 2^{log_n} reference"),
            us: ref_fwd,
            baseline_us: ref_fwd,
        });
        rows.push(Row {
            group: "ntt",
            name: format!("forward 2^{log_n} harvey"),
            us: harvey_fwd,
            baseline_us: ref_fwd,
        });
        rows.push(Row {
            group: "ntt",
            name: format!("inverse 2^{log_n} reference"),
            us: ref_inv,
            baseline_us: ref_inv,
        });
        rows.push(Row {
            group: "ntt",
            name: format!("inverse 2^{log_n} harvey"),
            us: harvey_inv,
            baseline_us: ref_inv,
        });
    }

    // --- fanout: full-chain domain conversions, serial vs auto threads. ---
    let fanout_params = |threads: usize| CkksParams {
        poly_degree: 1 << 12,
        max_level: 6,
        modulus_bits: 50,
        special_bits: 51,
        error_std: 3.2,
        threads,
    };
    let serial_ctx = CkksContext::new(fanout_params(1));
    let auto_ctx = CkksContext::new(fanout_params(0));
    let mut p_serial = RnsPoly::uniform(&serial_ctx, 6, true, &mut rng);
    let mut p_auto = RnsPoly::uniform(&auto_ctx, 6, true, &mut rng);
    let best = time_rotation_us(
        reps,
        &mut [
            &mut || {
                p_serial.to_coeff(&serial_ctx);
                p_serial.to_ntt(&serial_ctx);
            },
            &mut || {
                p_auto.to_coeff(&auto_ctx);
                p_auto.to_ntt(&auto_ctx);
            },
        ],
    );
    let (serial_us, auto_us) = (best[0], best[1]);
    rows.push(Row {
        group: "fanout",
        name: "to_coeff+to_ntt x7 limbs, threads=1".into(),
        us: serial_us,
        baseline_us: serial_us,
    });
    rows.push(Row {
        group: "fanout",
        name: format!("to_coeff+to_ntt x7 limbs, threads={}", auto_ctx.threads()),
        us: auto_us,
        baseline_us: serial_us,
    });

    println!("Kernel microbenchmarks (best of {reps} interleaved rounds, us).\n");
    let headers = ["group", "kernel", "us", "speedup"];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.group.to_string(),
                r.name.clone(),
                format!("{:.1}", r.us),
                format!("{:.2}x", r.speedup()),
            ]
        })
        .collect();
    print_table(&headers, &table);

    let ntt_speedups: Vec<f64> = rows
        .iter()
        .filter(|r| r.group == "ntt" && r.name.contains("harvey"))
        .map(Row::speedup)
        .collect();
    let min_ntt = ntt_speedups.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    println!("\nminimum NTT speedup over u128 % reference: {min_ntt:.2}x");
    assert!(sink != 0, "benchmark sink consumed");

    args.emit_json(&Json::obj([
        ("table", Json::from("kernels")),
        ("reps", Json::from(reps)),
        (
            "rows",
            Json::Array(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("group", Json::from(r.group)),
                            ("kernel", Json::from(r.name.as_str())),
                            ("us", Json::from(r.us)),
                            ("speedup", Json::from(r.speedup())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]));
}
