//! Constant folding and algebraic canonicalization.
//!
//! Plaintext-only subgraphs can be evaluated at compile time (their values
//! are public), and a handful of algebraic identities remove ops before
//! scale management sees them. Both run inside [`passes::cleanup`]
//! (EVA/Hecate-style pre-optimization).
//!
//! [`passes::cleanup`]: crate::passes::cleanup

use crate::op::{ConstValue, Op, ValueId};
use crate::program::{Program, ProgramEditor};

fn as_const(program: &Program, id: ValueId) -> Option<&ConstValue> {
    match program.op(id) {
        Op::Const { value } => Some(value),
        _ => None,
    }
}

fn is_scalar(program: &Program, id: ValueId, v: f64) -> bool {
    matches!(as_const(program, id), Some(ConstValue::Scalar(s)) if *s == v)
}

fn binary_fold(
    a: &ConstValue,
    b: &ConstValue,
    slots: usize,
    f: impl Fn(f64, f64) -> f64,
) -> ConstValue {
    match (a, b) {
        (ConstValue::Scalar(x), ConstValue::Scalar(y)) => ConstValue::Scalar(f(*x, *y)),
        _ => ConstValue::from(
            (0..slots)
                .map(|i| f(a.at(i), b.at(i)))
                .collect::<Vec<f64>>(),
        ),
    }
}

/// Evaluates plaintext-only arithmetic at compile time, replacing it with
/// `const` ops. Returns the rewritten program and whether anything changed.
pub fn fold_constants(program: &Program) -> (Program, bool) {
    let slots = program.slots();
    let mut ed = ProgramEditor::new(program);
    let mut changed = false;
    for id in program.ids() {
        ed.emit(id);
        // Only fold plain arithmetic whose operands are (source) constants;
        // one layer folds per pass, and `cleanup` iterates to a fixpoint.
        if !ed.source().is_plain(id) {
            continue;
        }
        let src_const = |old: ValueId| -> Option<ConstValue> { as_const(program, old).cloned() };
        let folded: Option<ConstValue> = match program.op(id) {
            Op::Add(a, b) => match (src_const(*a), src_const(*b)) {
                (Some(x), Some(y)) => Some(binary_fold(&x, &y, slots, |p, q| p + q)),
                _ => None,
            },
            Op::Sub(a, b) => match (src_const(*a), src_const(*b)) {
                (Some(x), Some(y)) => Some(binary_fold(&x, &y, slots, |p, q| p - q)),
                _ => None,
            },
            Op::Mul(a, b) => match (src_const(*a), src_const(*b)) {
                (Some(x), Some(y)) => Some(binary_fold(&x, &y, slots, |p, q| p * q)),
                _ => None,
            },
            Op::Neg(a) => src_const(*a).map(|x| match x {
                ConstValue::Scalar(v) => ConstValue::Scalar(-v),
                v => ConstValue::from((0..slots).map(|i| -v.at(i)).collect::<Vec<f64>>()),
            }),
            Op::Rotate(a, k) => src_const(*a).map(|x| {
                ConstValue::from(
                    (0..slots)
                        .map(|i| x.at((i as i64 + k).rem_euclid(slots as i64) as usize))
                        .collect::<Vec<f64>>(),
                )
            }),
            _ => None,
        };
        if let Some(value) = folded {
            let c = ed.push(Op::Const { value });
            ed.set_mapping(id, c);
            changed = true;
        }
    }
    (ed.finish(), changed)
}

/// Applies algebraic identities:
///
/// - `−(−x) → x`, `rotate(x, 0) → x`, `rotate(rotate(x, a), b) → rotate(x, a+b)`
/// - `x + 0 → x`, `x − 0 → x`, `x · 1 → x`
/// - `x · 0 → 0` and `x − x → 0` (the result becomes a public constant)
pub fn canonicalize(program: &Program) -> (Program, bool) {
    let mut ed = ProgramEditor::new(program);
    let mut changed = false;
    for id in program.ids() {
        let replacement: Option<ValueId> = match program.op(id).clone() {
            Op::Neg(a) => match program.op(a) {
                Op::Neg(inner) => Some(ed.map_operand(*inner)),
                _ => None,
            },
            Op::Rotate(a, 0) => Some(ed.map_operand(a)),
            Op::Rotate(a, k) => match program.op(a) {
                Op::Rotate(inner, j) => {
                    let slots = program.slots() as i64;
                    let total = (k + j).rem_euclid(slots);
                    let base = ed.map_operand(*inner);
                    let new = if total == 0 {
                        base
                    } else {
                        ed.push(Op::Rotate(base, total))
                    };
                    Some(new)
                }
                _ => None,
            },
            Op::Add(a, b) if is_scalar(program, b, 0.0) => Some(ed.map_operand(a)),
            Op::Add(a, b) if is_scalar(program, a, 0.0) => Some(ed.map_operand(b)),
            Op::Sub(a, b) if is_scalar(program, b, 0.0) => Some(ed.map_operand(a)),
            Op::Sub(a, b) if a == b => Some(ed.push(Op::Const {
                value: ConstValue::Scalar(0.0),
            })),
            Op::Mul(a, b) if is_scalar(program, b, 1.0) => Some(ed.map_operand(a)),
            Op::Mul(a, b) if is_scalar(program, a, 1.0) => Some(ed.map_operand(b)),
            Op::Mul(a, b) if is_scalar(program, b, 0.0) || is_scalar(program, a, 0.0) => {
                Some(ed.push(Op::Const {
                    value: ConstValue::Scalar(0.0),
                }))
            }
            _ => None,
        };
        match replacement {
            Some(new) => {
                ed.set_mapping(id, new);
                changed = true;
            }
            None => {
                ed.emit(id);
            }
        }
    }
    (ed.finish(), changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    #[test]
    fn folds_plain_subgraph() {
        let b = Builder::new("f", 4);
        let x = b.input("x");
        let k = (b.constant(2.0) + b.constant(3.0)) * b.constant(vec![1.0, 2.0, 3.0, 4.0]);
        let out = x * k;
        let p = b.finish(vec![out]);
        // Folding works one layer per pass; iterate to a fixpoint.
        let (folded, changed) = fold_constants(&p);
        assert!(changed);
        let (folded, _) = fold_constants(&folded);
        // After DCE only: input, one const, one mul remain.
        let (cleaned, _) = crate::passes::dce(&folded);
        assert_eq!(cleaned.num_ops(), 3);
        let c = cleaned
            .ids()
            .find_map(|id| as_const(&cleaned, id))
            .expect("folded const");
        assert_eq!(c.at(1), 10.0);
    }

    #[test]
    fn folds_rotation_of_constant() {
        let b = Builder::new("f", 4);
        let x = b.input("x");
        let k = b.constant(vec![1.0, 2.0, 3.0, 4.0]).rotate(1);
        let out = x + k;
        let p = b.finish(vec![out]);
        let (folded, changed) = fold_constants(&p);
        assert!(changed);
        let (cleaned, _) = crate::passes::dce(&folded);
        let c = cleaned
            .ids()
            .find_map(|id| as_const(&cleaned, id))
            .expect("folded const");
        assert_eq!(c.to_vec(4), vec![2.0, 3.0, 4.0, 1.0]);
    }

    #[test]
    fn neg_neg_and_rotate_chains_cancel() {
        let b = Builder::new("c", 8);
        let x = b.input("x");
        let e = -(-(x.clone().rotate(3).rotate(5)));
        let p = b.finish(vec![e]);
        let (canon, changed) = canonicalize(&p);
        assert!(changed);
        let (canon, _) = crate::passes::dce(&canon);
        // input + one rotate(8 % 8 = 0)? 3+5=8 ≡ 0 mod slots ⇒ just input.
        assert_eq!(canon.num_ops(), 1);
    }

    #[test]
    fn identity_operands_eliminated() {
        let b = Builder::new("c", 4);
        let x = b.input("x");
        let one = b.constant(1.0);
        let zero = b.constant(0.0);
        let e = (x.clone() * one + zero.clone()) - zero;
        let p = b.finish(vec![e]);
        let (canon, changed) = canonicalize(&p);
        assert!(changed);
        let (canon, _) = crate::passes::dce(&canon);
        assert_eq!(canon.num_ops(), 1, "everything folds away to the input");
    }

    #[test]
    fn sub_self_becomes_zero_constant() {
        let b = Builder::new("c", 4);
        let x = b.input("x");
        let z = x.clone() - x.clone();
        let out = x + z;
        let p = b.finish(vec![out]);
        let (canon, _) = canonicalize(&p);
        // A second canonicalize round folds x + 0 away too.
        let (canon, _) = canonicalize(&canon);
        let (canon, _) = crate::passes::dce(&canon);
        assert_eq!(canon.num_ops(), 1);
    }

    #[test]
    fn semantics_preserved_under_cleanup() {
        // cleanup() (which now includes folding) must not change values.
        let b = Builder::new("s", 4);
        let x = b.input("x");
        let k = b.constant(2.0) * b.constant(vec![1.0, -1.0, 0.5, 0.0]);
        let e = (x.clone() + b.constant(0.0)) * k - (x.clone() - x.clone());
        let p = b.finish(vec![e]);
        let cleaned = crate::passes::cleanup(&p);
        assert!(cleaned.num_ops() < p.num_ops());
        // Spot-check structural result: exactly one cipher mul remains.
        assert_eq!(cleaned.count_ops(|o| matches!(o, Op::Mul(..))), 1);
    }
}
