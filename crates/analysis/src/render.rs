//! Rustc-style rendering of findings and parse errors against textual IR.
//!
//! ```text
//! warning[F002]: dead rescale: the result of %4 is never used
//!   --> schedule.fhe:6:3
//!    |
//!  6 |   %4 = rescale %3
//!    |   ^^^^^^^^^^^^^^^
//! ```

use std::collections::HashMap;
use std::fmt::Write;

use fhe_ir::diag::Finding;
use fhe_ir::text::ParseError;
use fhe_ir::ValueId;

/// Maps SSA values of a printed program to their defining line in the text.
#[derive(Debug, Clone)]
pub struct SourceMap {
    /// value -> (1-based line, 1-based column of the statement start,
    /// statement length in bytes).
    defs: HashMap<ValueId, (usize, usize, usize)>,
    lines: Vec<String>,
}

impl SourceMap {
    /// Scans IR text (as produced by `fhe_ir::text::print`, or hand-written
    /// in the same format) for `%N = …` definition lines.
    pub fn new(text: &str) -> Self {
        let mut defs = HashMap::new();
        let lines: Vec<String> = text.lines().map(str::to_owned).collect();
        for (i, line) in lines.iter().enumerate() {
            let trimmed = line.trim();
            let Some(rest) = trimmed.strip_prefix('%') else {
                continue;
            };
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            if digits.is_empty() || !rest[digits.len()..].trim_start().starts_with('=') {
                continue;
            }
            let Ok(n) = digits.parse::<u32>() else {
                continue;
            };
            let indent = line.len() - line.trim_start().len();
            defs.entry(ValueId(n))
                .or_insert((i + 1, indent + 1, trimmed.len()));
        }
        SourceMap { defs, lines }
    }

    /// The (line, column, length) of the statement defining `id`, if found.
    pub fn def(&self, id: ValueId) -> Option<(usize, usize, usize)> {
        self.defs.get(&id).copied()
    }
}

/// Renders one finding against the program text, rustc-style. Findings with
/// no op anchor (or an op the map cannot locate) render header-only.
pub fn render_finding(finding: &Finding, map: &SourceMap, file: &str) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{}[{}]: {}",
        finding.severity.label(),
        finding.code,
        finding.message
    )
    .unwrap();
    let loc = finding.op.and_then(|id| map.def(id));
    match loc {
        Some((line, col, len)) => render_snippet(&mut out, map, file, line, col, len),
        None => writeln!(out, "  --> {file}").unwrap(),
    }
    out
}

/// Renders a parse error with a single-caret span into the original source.
pub fn render_parse_error(err: &ParseError, source: &str, file: &str) -> String {
    let mut out = String::new();
    writeln!(out, "error: {}", err.message).unwrap();
    let lines: Vec<&str> = source.lines().collect();
    if err.line >= 1 && err.line <= lines.len() {
        let map = SourceMap {
            defs: HashMap::new(),
            lines: lines.iter().map(|l| (*l).to_owned()).collect(),
        };
        render_snippet(&mut out, &map, file, err.line, err.column, 1);
    } else {
        writeln!(out, "  --> {file}:{}:{}", err.line, err.column).unwrap();
    }
    out
}

fn render_snippet(
    out: &mut String,
    map: &SourceMap,
    file: &str,
    line: usize,
    col: usize,
    len: usize,
) {
    let text = map.lines.get(line - 1).map_or("", String::as_str);
    let gutter = line.to_string().len();
    writeln!(out, "{:gutter$}--> {file}:{line}:{col}", "  ").unwrap();
    writeln!(out, "{:gutter$} |", "").unwrap();
    writeln!(out, "{line:>gutter$} | {text}").unwrap();
    writeln!(
        out,
        "{:gutter$} | {}{}",
        "",
        " ".repeat(col - 1),
        "^".repeat(len.max(1))
    )
    .unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::diag::Severity;
    use fhe_ir::text;
    use fhe_ir::{Builder, Op};

    fn sample() -> (fhe_ir::Program, String) {
        let b = Builder::new("r", 4);
        let x = b.input("x");
        let p = b.finish(vec![x.clone() * x]);
        let t = text::print(&p);
        (p, t)
    }

    #[test]
    fn source_map_locates_definitions() {
        let (p, t) = sample();
        let map = SourceMap::new(&t);
        let (line, col, _) = map.def(p.outputs()[0]).expect("mul is mapped");
        assert_eq!(line, 3); // header, %0, %1
        assert_eq!(col, 3); // two spaces of indent
        assert!(matches!(p.op(p.outputs()[0]), Op::Mul(..)));
    }

    #[test]
    fn finding_renders_with_caret_under_the_statement() {
        let (p, t) = sample();
        let map = SourceMap::new(&t);
        let f = Finding::new("F002", Severity::Warning, "dead rescale").at(p.outputs()[0]);
        let r = render_finding(&f, &map, "demo.fhe");
        assert!(r.starts_with("warning[F002]: dead rescale\n"), "{r}");
        assert!(r.contains("--> demo.fhe:3:3"), "{r}");
        assert!(r.contains("3 |   %1 = mul %0, %0"), "{r}");
        assert!(r.contains("|   ^^^^^^^^^^^^^^^"), "{r}");
    }

    #[test]
    fn program_level_finding_renders_header_only() {
        let (_, t) = sample();
        let map = SourceMap::new(&t);
        let f = Finding::new("F005", Severity::Warning, "over-provisioned");
        let r = render_finding(&f, &map, "demo.fhe");
        assert_eq!(r, "warning[F005]: over-provisioned\n  --> demo.fhe\n");
    }

    #[test]
    fn parse_error_renders_single_caret() {
        let src = "program t(slots=4) {\n  %0 = frobnicate %0\n}\n";
        let err = text::parse(src).unwrap_err();
        let r = render_parse_error(&err, src, "bad.fhe");
        assert!(r.contains("--> bad.fhe:2:8"), "{r}");
        let caret_line = r.lines().last().unwrap();
        assert!(caret_line.ends_with('^'), "{r}");
        assert_eq!(caret_line.matches('^').count(), 1, "{r}");
    }
}
