//! # fhe-bench — harnesses reproducing every table and figure of the paper
//!
//! One binary per experiment (see DESIGN.md §5):
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `table3` | Table 3 — RNS-CKKS op latency per level (measured on `fhe-ckks`) |
//! | `table4` | Table 4 — compile time and scale-management time, EVA/Hecate/this work |
//! | `fig2`   | Fig. 2 — the worked example's cost story |
//! | `fig6`   | Fig. 6 — latency vs waterline (15–50) per benchmark per compiler |
//! | `fig7`   | Fig. 7 — output error at waterlines 2^20 and 2^40 |
//! | `fig8`   | Fig. 8 — ablation BA / RA / this work |
//!
//! Each prints the same rows/series the paper reports. Absolute numbers
//! differ from the paper's SEAL-on-i7 testbed; the *shape* (who wins, by
//! roughly what factor, where crossovers fall) is the reproduction target
//! and is recorded against the paper in EXPERIMENTS.md.

#![warn(missing_docs)]

use std::time::Duration;

use fhe_baselines::{hecate, HecateOptions};
use fhe_ir::{CompileParams, CostModel, Program, ScheduledProgram};
use fhe_workloads::{suite, Size, Workload};

/// One compiler's result on one benchmark at one waterline.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Compiler label ("EVA", "Hecate", "This work", "BA", "RA").
    pub compiler: &'static str,
    /// Estimated program latency (µs) under the paper's Table 3 model.
    pub latency_us: f64,
    /// Scale-management time.
    pub scale_management: Duration,
    /// Total compile time.
    pub compile_time: Duration,
    /// Candidate plans evaluated (Hecate's `# Iters`; 1 otherwise).
    pub iterations: usize,
    /// The schedule, for further measurement (error simulation etc.).
    pub scheduled: ScheduledProgram,
}

/// Runs EVA on a program.
pub fn run_eva(program: &Program, waterline: u32) -> RunRecord {
    let out = fhe_baselines::eva::compile(program, &CompileParams::new(waterline))
        .expect("EVA compiles the benchmarks");
    RunRecord {
        compiler: "EVA",
        latency_us: out.stats.estimated_latency_us,
        scale_management: out.stats.scale_management_time,
        compile_time: out.stats.total_time,
        iterations: out.stats.iterations,
        scheduled: out.scheduled,
    }
}

/// Runs Hecate with the given exploration budget.
pub fn run_hecate(program: &Program, waterline: u32, budget: usize) -> RunRecord {
    let opts = HecateOptions {
        max_iterations: budget,
        patience: budget / 4 + 50,
        seed: 0xCA7,
        max_choice: fhe_baselines::ForwardPlan::MAX_CHOICE,
    };
    let out = hecate::compile(program, &CompileParams::new(waterline), &opts)
        .expect("Hecate compiles the benchmarks");
    RunRecord {
        compiler: "Hecate",
        latency_us: out.stats.estimated_latency_us,
        scale_management: out.stats.scale_management_time,
        compile_time: out.stats.total_time,
        iterations: out.stats.iterations,
        scheduled: out.scheduled,
    }
}

/// Runs the reserve compiler in the given ablation mode.
pub fn run_reserve(program: &Program, waterline: u32, mode: reserve_core::Mode) -> RunRecord {
    let out = reserve_core::compile(program, &reserve_core::Options::with_mode(waterline, mode))
        .expect("the reserve compiler compiles the benchmarks");
    RunRecord {
        compiler: mode.label(),
        latency_us: out.stats.estimated_latency_us,
        scale_management: out.stats.scale_management_time,
        compile_time: out.stats.total_time,
        iterations: 1,
        scheduled: out.scheduled,
    }
}

/// The benchmark suite selected by CLI flags: `--fast` shrinks programs to
/// test size, otherwise the paper's sizes are used.
pub fn selected_suite(args: &CliArgs) -> Vec<Workload> {
    suite(if args.fast { Size::Test } else { Size::Paper })
}

/// Hecate's exploration budget given the flags (the paper's runs used
/// thousands of iterations; `--fast` caps exploration).
pub fn hecate_budget(args: &CliArgs, ops: usize) -> usize {
    if args.fast {
        100
    } else {
        // Scale with program size, bounded: mirrors the paper's Table 4
        // iteration counts (hundreds for small kernels, thousands beyond).
        (ops * 8).clamp(500, 15000)
    }
}

/// Minimal CLI parsing shared by the harness binaries.
#[derive(Debug, Clone, Default)]
pub struct CliArgs {
    /// Run reduced-size benchmarks / budgets.
    pub fast: bool,
    /// Use paper-scale CKKS parameters where applicable (`table3`).
    pub paper: bool,
}

impl CliArgs {
    /// Parses `--fast` / `--paper` from `std::env::args`.
    pub fn parse() -> Self {
        let mut args = CliArgs::default();
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--fast" => args.fast = true,
                "--paper" => args.paper = true,
                other => {
                    eprintln!("unknown flag `{other}` (supported: --fast, --paper)");
                    std::process::exit(2);
                }
            }
        }
        args
    }
}

/// Formats a duration in ms with Table 4-style precision.
pub fn fmt_ms(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms >= 1000.0 {
        format!("{:.1}E3", ms / 1000.0)
    } else if ms >= 10.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.4}")
    }
}

/// Prints an aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len().max(1) as f64).exp()
}

/// The static cost model every harness scores with.
pub fn cost_model() -> CostModel {
    CostModel::paper_table3()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn runners_produce_valid_schedules() {
        let w = &fhe_workloads::suite(Size::Test)[0];
        for rec in [
            run_eva(&w.program, 25),
            run_hecate(&w.program, 25, 30),
            run_reserve(&w.program, 25, reserve_core::Mode::Full),
        ] {
            assert!(rec.scheduled.validate().is_ok(), "{}", rec.compiler);
            assert!(rec.latency_us > 0.0);
        }
    }
}
