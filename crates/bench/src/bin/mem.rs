//! Peak-memory microbenchmark: measures the runtime's working set under
//! the four Galois-key provisioning policies on the suite's most
//! rotation-heavy workload, against the compiler's static bound.
//!
//! ```text
//! mem [--fast] [--json PATH] [--check-baseline PATH]
//! ```
//!
//! Rows:
//!
//! - `eager-pow2` — the deployment-default baseline: keys for every
//!   power-of-two step `±2^i` up front, whether the program uses them or
//!   not.
//! - `eager-program` — keys for exactly the program's rotation steps up
//!   front.
//! - `lazy` — keys generated on first use, cached without bound.
//! - `lazy-budget` — lazy with the cache capped at `--budget` keys' bytes
//!   (default 4).
//!
//! `--check-baseline BENCH_mem.json` re-runs and exits non-zero when the
//! pool hit rate is zero, the lazy-budget peak regressed more than 20%
//! over the committed record, or the headline reduction dropped below 2×
//! — the CI `mem-smoke` gate.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

use fhe_bench::json::Json;
use fhe_bench::print_table;
use fhe_ir::pipeline::ScaleCompiler;
use fhe_ir::{CompileParams, Op, Program, ScheduledProgram};
use fhe_runtime::{execute_encrypted, ExecOptions, ExecReport, KeyPolicy};
use fhe_workloads::{suite, Size};
use reserve_core::ReserveCompiler;

struct Args {
    fast: bool,
    json: Option<PathBuf>,
    check_baseline: Option<PathBuf>,
    workload: Option<String>,
    budget_keys: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        fast: false,
        json: None,
        check_baseline: None,
        workload: None,
        budget_keys: 4,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        let value = |iter: &mut dyn Iterator<Item = String>, flag: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("{flag} requires an argument");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--fast" => args.fast = true,
            "--json" => args.json = Some(value(&mut iter, "--json").into()),
            "--check-baseline" => {
                args.check_baseline = Some(value(&mut iter, "--check-baseline").into())
            }
            "--workload" => args.workload = Some(value(&mut iter, "--workload")),
            "--budget" => {
                args.budget_keys = value(&mut iter, "--budget").parse().unwrap_or_else(|_| {
                    eprintln!("--budget takes a key count");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!(
                    "unknown flag `{other}` (supported: --fast, --json <path>, \
                     --check-baseline <path>, --workload <name>, --budget <keys>)"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Distinct Galois-key classes a program rotates by (`steps % slots != 0`,
/// deduplicated by residue class).
fn distinct_steps(program: &Program) -> usize {
    let slots = program.slots() as i64;
    program
        .ops()
        .iter()
        .filter_map(|op| match op {
            Op::Rotate(_, k) if k.rem_euclid(slots) != 0 => Some(k.rem_euclid(slots)),
            _ => None,
        })
        .collect::<BTreeSet<i64>>()
        .len()
}

struct Row {
    policy: &'static str,
    report: ExecReport,
}

fn run_policy(
    scheduled: &ScheduledProgram,
    inputs: &std::collections::HashMap<String, Vec<f64>>,
    policy: &'static str,
    keys: KeyPolicy,
) -> Row {
    let options = ExecOptions {
        poly_degree: scheduled.program.slots() * 2,
        seed: 0xC0FFEE,
        threads: 1,
        keys,
        rotation_hoisting: true,
    };
    let report = execute_encrypted(scheduled, inputs, &options)
        .unwrap_or_else(|e| panic!("{policy}: {e:?}"));
    assert!(
        report.max_abs_error() < 1e-1,
        "{policy}: error {} — key policy must not change results",
        report.max_abs_error()
    );
    Row { policy, report }
}

fn row_json(row: &Row) -> Json {
    let m = &row.report.mem;
    Json::obj([
        ("policy", Json::from(row.policy)),
        ("peak_bytes", Json::from(m.peak_bytes as usize)),
        ("live_bytes_end", Json::from(m.live_bytes as usize)),
        ("key_bytes_peak", Json::from(m.key_bytes_peak as usize)),
        ("allocations", Json::from(m.allocations as usize)),
        ("pool_hit_rate", Json::from(m.pool_hit_rate())),
        ("key_hits", Json::from(m.key_hits as usize)),
        ("key_misses", Json::from(m.key_misses as usize)),
        ("key_evictions", Json::from(m.key_evictions as usize)),
        ("op_us", Json::from(row.report.op_time.as_secs_f64() * 1e6)),
        (
            "total_us",
            Json::from(row.report.total_time.as_secs_f64() * 1e6),
        ),
    ])
}

/// Pulls `"key":<number>` out of a flat JSON record (the committed
/// baseline) without a full parser.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = &text[at..];
    let end = rest
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let args = parse_args();
    let size = if args.fast { Size::Test } else { Size::Paper };
    let workload = match &args.workload {
        Some(name) => suite(size)
            .into_iter()
            .find(|w| w.name.eq_ignore_ascii_case(name))
            .unwrap_or_else(|| {
                eprintln!("no workload named `{name}` in the suite");
                std::process::exit(2);
            }),
        None => suite(size)
            .into_iter()
            .max_by_key(|w| distinct_steps(&w.program))
            .expect("suite is non-empty"),
    };
    let slots = workload.program.slots();
    let used_steps = distinct_steps(&workload.program);
    eprintln!(
        "workload {} ({slots} slots, {used_steps} distinct rotation steps)",
        workload.name
    );

    let compiled = ReserveCompiler::full()
        .compile(&workload.program, &CompileParams::new(25))
        .expect("workload compiles");
    let static_mem = compiled.report.memory.clone();

    // The deployment-default baseline: the generic power-of-two ladder in
    // both directions plus the application's own steps — provisioned up
    // front whether each key ends up used or not.
    let mut pow2 = Vec::new();
    let mut step = 1i64;
    while (step as usize) < slots {
        pow2.push(step);
        pow2.push(-step);
        step *= 2;
    }
    for op in workload.program.ops() {
        if let Op::Rotate(_, k) = op {
            pow2.push(*k);
        }
    }

    let budget_keys = args.budget_keys;
    let n = slots * 2;
    let level = compiled.report.max_level as usize;
    let one_key = 2 * level * (level + 1) * n * 8;
    let rows = [
        run_policy(
            &compiled.scheduled,
            &workload.inputs,
            "eager-pow2",
            KeyPolicy::EagerSet(pow2.clone()),
        ),
        run_policy(
            &compiled.scheduled,
            &workload.inputs,
            "eager-program",
            KeyPolicy::EagerProgram,
        ),
        run_policy(
            &compiled.scheduled,
            &workload.inputs,
            "lazy",
            KeyPolicy::Lazy { budget_bytes: None },
        ),
        run_policy(
            &compiled.scheduled,
            &workload.inputs,
            "lazy-budget",
            KeyPolicy::Lazy {
                budget_bytes: Some(budget_keys * one_key),
            },
        ),
    ];

    print_table(
        &[
            "policy", "peak MiB", "keys MiB", "hit rate", "evict", "op ms", "total ms",
        ],
        &rows
            .iter()
            .map(|r| {
                let m = &r.report.mem;
                vec![
                    r.policy.to_string(),
                    format!("{:.2}", m.peak_bytes as f64 / (1 << 20) as f64),
                    format!("{:.2}", m.key_bytes_peak as f64 / (1 << 20) as f64),
                    format!("{:.2}", m.pool_hit_rate()),
                    format!("{}", m.key_evictions),
                    format!("{:.1}", r.report.op_time.as_secs_f64() * 1e3),
                    format!("{:.1}", r.report.total_time.as_secs_f64() * 1e3),
                ]
            })
            .collect::<Vec<_>>(),
    );
    eprintln!(
        "static bound: {:.2} MiB ({} Galois keys)",
        static_mem.peak_bytes as f64 / (1 << 20) as f64,
        static_mem.galois_keys
    );

    // Invariants the whole memory subsystem promises. The static bound
    // only covers policies whose key set the model accounts for (the
    // program's own steps) — eager-pow2 deliberately over-provisions past
    // it; that gap is the point of the comparison.
    let baseline = &rows[0];
    let budgeted = &rows[3];
    for row in &rows[1..] {
        assert!(
            row.report.mem.peak_bytes <= static_mem.peak_bytes,
            "{}: measured peak {} beats static bound {}",
            row.policy,
            row.report.mem.peak_bytes,
            static_mem.peak_bytes
        );
    }
    for row in &rows {
        assert!(
            row.report.mem.pool_hit_rate() > 0.0,
            "{}: pool never hit",
            row.policy
        );
    }
    let reduction = baseline.report.mem.peak_bytes as f64 / budgeted.report.mem.peak_bytes as f64;
    let latency_ratio =
        budgeted.report.total_time.as_secs_f64() / baseline.report.total_time.as_secs_f64();
    eprintln!(
        "peak reduction lazy-budget vs eager-pow2: {reduction:.2}x (latency {latency_ratio:.2}x)"
    );

    let json = Json::obj([
        ("workload", Json::from(workload.name)),
        ("slots", Json::from(slots)),
        ("poly_degree", Json::from(n)),
        ("used_rotation_steps", Json::from(used_steps)),
        ("provisioned_pow2_steps", Json::from(pow2.len())),
        (
            "static",
            Json::obj([
                ("peak_bytes", Json::from(static_mem.peak_bytes as usize)),
                (
                    "poly_peak_bytes",
                    Json::from(static_mem.poly_peak_bytes as usize),
                ),
                ("key_bytes", Json::from(static_mem.key_bytes as usize)),
                ("galois_keys", Json::from(static_mem.galois_keys)),
            ]),
        ),
        ("rows", Json::Array(rows.iter().map(row_json).collect())),
        ("reduction_vs_eager_pow2", Json::from(reduction)),
        ("latency_ratio_vs_eager_pow2", Json::from(latency_ratio)),
        (
            "lazy_budget_peak_bytes",
            Json::from(budgeted.report.mem.peak_bytes as usize),
        ),
        (
            "pool_hit_rate",
            Json::from(budgeted.report.mem.pool_hit_rate()),
        ),
    ]);
    if let Some(path) = &args.json {
        std::fs::write(path, format!("{json}\n"))
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }

    if let Some(baseline_path) = &args.check_baseline {
        let committed = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", baseline_path.display()));
        let committed_peak = json_number(&committed, "lazy_budget_peak_bytes")
            .expect("baseline has lazy_budget_peak_bytes");
        let peak = budgeted.report.mem.peak_bytes as f64;
        if budgeted.report.mem.pool_hit_rate() <= 0.0 {
            eprintln!("FAIL: pool hit rate is zero — the arena is not recycling");
            return ExitCode::FAILURE;
        }
        if peak > committed_peak * 1.2 {
            eprintln!(
                "FAIL: lazy-budget peak {peak:.0} B regressed >20% over committed {committed_peak:.0} B"
            );
            return ExitCode::FAILURE;
        }
        if reduction < 2.0 {
            eprintln!("FAIL: peak reduction {reduction:.2}x fell below the promised 2x");
            return ExitCode::FAILURE;
        }
        eprintln!("baseline check passed");
    }
    ExitCode::SUCCESS
}
