//! A minimal, dependency-free drop-in for the subset of the `rand` crate
//! this workspace uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen`/`gen_range`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim instead (see `[patch]`-free path deps in the root
//! `Cargo.toml`). The generator is xoshiro256++ seeded via splitmix64 —
//! deterministic in the seed, statistically solid for simulation and
//! test-data generation, and explicitly **not** a cryptographic RNG. The
//! CKKS scheme in `fhe-ckks` draws its encryption randomness through this
//! interface, which is acceptable for a research reproduction but must be
//! swapped for a CSPRNG before any real deployment.
//!
//! Streams differ from the real `rand::rngs::StdRng` (ChaCha12); nothing in
//! the workspace depends on the exact stream, only on determinism per seed.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges samplable uniformly (`rng.gen_range(lo..hi)`).
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Random generators (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniform over `T`'s domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a (half-open or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + draw) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-1i64..=1);
            assert!((-1..=1).contains(&i));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
            let b = rng.gen_range(0u8..=4);
            assert!(b <= 4);
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[(rng.gen_range(-1i64..=1) + 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "samples should cover the unit interval");
    }

    #[test]
    fn reborrowed_rng_advances_the_original() {
        fn draw(rng: &mut impl Rng) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b, "the shared generator must advance");
    }
}
