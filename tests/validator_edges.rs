//! Edge-case coverage for the shared RNS-CKKS validator, the cost model,
//! and the schedule utilities — the paths the happy-path suites don't hit.

use fhe_ir::{InputSpec, Op, Program, ScheduleError, ScheduledProgram, ValueId};
use fhe_reserve::prelude::*;

fn one_input_schedule(
    build: impl FnOnce(&mut Program, ValueId) -> ValueId,
    scale_bits: i64,
    level: u32,
    params: CompileParams,
) -> ScheduledProgram {
    let mut p = Program::new("edge", 4);
    let x = p.push(Op::Input { name: "x".into() });
    let out = build(&mut p, x);
    p.set_outputs(vec![out]);
    ScheduledProgram {
        program: p,
        params,
        inputs: vec![InputSpec {
            scale_bits: Frac::from(scale_bits),
            level,
        }],
    }
}

#[test]
fn exceeds_max_level_flagged() {
    let mut params = CompileParams::new(20);
    params.max_level = 2;
    let s = one_input_schedule(|_, x| x, 30, 3, params);
    let errs = s.validate().unwrap_err();
    assert!(errs
        .iter()
        .any(|e| matches!(e, ScheduleError::ExceedsMaxLevel { level: 3, .. })));
}

#[test]
fn non_positive_upscale_flagged() {
    let params = CompileParams::new(20);
    let s = one_input_schedule(|p, x| p.push(Op::Upscale(x, Frac::from(0))), 30, 1, params);
    let errs = s.validate().unwrap_err();
    assert!(errs
        .iter()
        .any(|e| matches!(e, ScheduleError::NonPositiveUpscale { .. })));
}

#[test]
fn scale_management_on_plain_flagged() {
    let params = CompileParams::new(20);
    let mut p = Program::new("edge", 4);
    let x = p.push(Op::Input { name: "x".into() });
    let c = p.push(Op::Const { value: 1.0.into() });
    let r = p.push(Op::Rescale(c));
    let m = p.push(Op::Mul(x, r));
    p.set_outputs(vec![m]);
    let s = ScheduledProgram {
        program: p,
        params,
        inputs: vec![InputSpec {
            scale_bits: Frac::from(20),
            level: 1,
        }],
    };
    let errs = s.validate().unwrap_err();
    assert!(errs
        .iter()
        .any(|e| matches!(e, ScheduleError::ScaleManagementOnPlain { .. })));
}

#[test]
fn multiple_violations_all_reported() {
    // One schedule, three different violations.
    let params = CompileParams::new(20);
    let mut p = Program::new("edge", 4);
    let x = p.push(Op::Input { name: "x".into() }); // below waterline
    let y = p.push(Op::Input { name: "y".into() });
    let a = p.push(Op::Add(x, y)); // scale mismatch
    let r = p.push(Op::Rescale(a)); // level underflow at level 1
    p.set_outputs(vec![r]);
    let s = ScheduledProgram {
        program: p,
        params,
        inputs: vec![
            InputSpec {
                scale_bits: Frac::from(10),
                level: 1,
            },
            InputSpec {
                scale_bits: Frac::from(25),
                level: 1,
            },
        ],
    };
    let errs = s.validate().unwrap_err();
    assert!(errs.len() >= 3, "got {errs:?}");
    assert!(errs
        .iter()
        .any(|e| matches!(e, ScheduleError::BelowWaterline { .. })));
    assert!(errs
        .iter()
        .any(|e| matches!(e, ScheduleError::ScaleMismatch { .. })));
    assert!(errs
        .iter()
        .any(|e| matches!(e, ScheduleError::LevelUnderflow { .. })));
    // Errors display without panicking.
    for e in &errs {
        assert!(!e.to_string().is_empty());
    }
}

#[test]
fn mul_overflow_at_exact_boundary_is_allowed() {
    // scale == level·R is legal (reserve 0, the paper's full utilization);
    // one bit more is not.
    let params = CompileParams::new(20);
    let ok = one_input_schedule(|p, x| p.push(Op::Mul(x, x)), 30, 1, params);
    assert!(ok.validate().is_ok(), "scale 60 at level 1 is exactly Q");
    let bad = one_input_schedule(|p, x| p.push(Op::Mul(x, x)), 31, 1, params);
    let errs = bad.validate().unwrap_err();
    assert!(errs
        .iter()
        .any(|e| matches!(e, ScheduleError::Overflow { .. })));
}

#[test]
fn level_mismatch_after_one_sided_modswitch_flagged() {
    // Dropping one operand's level without the other makes the add
    // ill-typed: RNS limbs no longer line up.
    let params = CompileParams::new(20);
    let s = one_input_schedule(
        |p, x| {
            let dropped = p.push(Op::ModSwitch(x));
            p.push(Op::Add(x, dropped))
        },
        30,
        2,
        params,
    );
    let errs = s.validate().unwrap_err();
    assert!(
        errs.iter()
            .any(|e| matches!(e, ScheduleError::LevelMismatch { lhs: 2, rhs: 1, .. })),
        "got {errs:?}"
    );
}

#[test]
fn level_mismatch_between_inputs_flagged() {
    // Two inputs pinned at different levels by their specs.
    let params = CompileParams::new(20);
    let mut p = Program::new("edge", 4);
    let x = p.push(Op::Input { name: "x".into() });
    let y = p.push(Op::Input { name: "y".into() });
    let m = p.push(Op::Mul(x, y));
    p.set_outputs(vec![m]);
    let s = ScheduledProgram {
        program: p,
        params,
        inputs: vec![
            InputSpec {
                scale_bits: Frac::from(30),
                level: 3,
            },
            InputSpec {
                scale_bits: Frac::from(30),
                level: 2,
            },
        ],
    };
    let errs = s.validate().unwrap_err();
    assert!(
        errs.iter()
            .any(|e| matches!(e, ScheduleError::LevelMismatch { lhs: 3, rhs: 2, .. })),
        "got {errs:?}"
    );
}

#[test]
fn upscale_past_modulus_overflows() {
    // An otherwise-legal upscale that pushes the scale past Q = R^l must
    // report Overflow on the upscaled value, not merely fail downstream.
    let params = CompileParams::new(20);
    let s = one_input_schedule(|p, x| p.push(Op::Upscale(x, Frac::from(31))), 30, 1, params);
    let errs = s.validate().unwrap_err();
    assert!(
        errs.iter().any(|e| matches!(
            e,
            ScheduleError::Overflow { scale_bits, level: 1, .. } if *scale_bits == Frac::from(61)
        )),
        "got {errs:?}"
    );
}

#[test]
fn overflow_reports_offending_value_and_level() {
    // Deep schedule: the squaring at level 2 overflows (scale 80 > 2·60
    // fails only at level 1 — here 35+35 = 70 ≤ 120 is fine, but a second
    // squaring without rescale demands 140 > 120).
    let params = CompileParams::new(20);
    let s = one_input_schedule(
        |p, x| {
            let sq = p.push(Op::Mul(x, x));
            p.push(Op::Mul(sq, sq))
        },
        35,
        2,
        params,
    );
    let errs = s.validate().unwrap_err();
    let overflow = errs
        .iter()
        .find_map(|e| match e {
            ScheduleError::Overflow {
                op,
                scale_bits,
                level,
            } => Some((*op, *scale_bits, *level)),
            _ => None,
        })
        .unwrap_or_else(|| panic!("no Overflow in {errs:?}"));
    assert_eq!(overflow.1, Frac::from(140));
    assert_eq!(overflow.2, 2);
}

#[test]
fn modulus_level_and_counts() {
    let params = CompileParams::new(20);
    let s = one_input_schedule(
        |p, x| {
            let m = p.push(Op::Mul(x, x));
            let r = p.push(Op::Rescale(m));
            let u = p.push(Op::Upscale(r, Frac::from(5)));
            p.push(Op::ModSwitch(u))
        },
        40,
        3,
        params,
    );
    assert_eq!(s.modulus_level(), 3);
    assert_eq!(s.scale_management_counts(), (1, 1, 1));
}

#[test]
fn cost_model_charges_modswitch_and_upscale() {
    let params = CompileParams::new(20);
    let s = one_input_schedule(
        |p, x| {
            let u = p.push(Op::Upscale(x, Frac::from(10)));
            p.push(Op::ModSwitch(u))
        },
        30,
        2,
        params,
    );
    let map = s.validate().unwrap();
    let cm = CostModel::paper_table3();
    // upscale charged as cipher×plain at level 2 (421), modswitch at its
    // result level 1 (48).
    let cost = cm.program_cost(&s.program, &map);
    assert_eq!(cost, 421.0 + 48.0);
}

#[test]
fn input_named_and_editor_outputs() {
    let mut p = Program::new("edge", 4);
    let x = p.push(Op::Input {
        name: "alpha".into(),
    });
    let y = p.push(Op::Input {
        name: "beta".into(),
    });
    let s = p.push(Op::Add(x, y));
    p.set_outputs(vec![s, x]);
    assert_eq!(p.input_named("beta"), Some(y));
    // Editor finish_with_outputs overrides the output list.
    let mut ed = fhe_ir::ProgramEditor::new(&p);
    for id in p.ids() {
        ed.emit(id);
    }
    let ny = ed.map_operand(y);
    let out = ed.finish_with_outputs(vec![ny]);
    assert_eq!(out.outputs(), &[ny]);
}
