//! Std-mode (passthrough) tests: these run in the ordinary tier-1
//! `cargo test` and make sure the public entry points work without the
//! checker cfg — `model`/`check` run the closure once with real threads,
//! and the JSON report serializes.

use fhe_conc::sync::atomic::{AtomicUsize, Ordering};
use fhe_conc::sync::{thread, Arc, Condvar, Mutex, RwLock};
use fhe_conc::{check, ConcReport, Config, ModelRecord};

#[test]
fn model_runs_the_closure() {
    let outcome = check("passthrough-smoke", Config::exhaustive(), || {
        let n = Arc::new(Mutex::new(0u32));
        let cv = Arc::new(Condvar::new());
        let (n2, cv2) = (Arc::clone(&n), Arc::clone(&cv));
        let t = thread::spawn(move || {
            *n2.lock().unwrap() += 1;
            cv2.notify_all();
        });
        let mut guard = n.lock().unwrap();
        while *guard == 0 {
            guard = cv.wait(guard).unwrap();
        }
        drop(guard);
        t.join().unwrap();
    });
    assert!(outcome.passed(), "{:?}", outcome.failure);
    #[cfg(not(fhe_conc))]
    assert_eq!(outcome.executions, 1, "passthrough runs exactly once");
}

#[test]
fn check_reports_a_failing_model_without_panicking() {
    let outcome = check("passthrough-failing", Config::exhaustive(), || {
        panic!("intentional model failure");
    });
    let failure = outcome.failure.expect("failure reported");
    assert!(failure.message.contains("intentional model failure"));
}

#[test]
fn facade_types_behave_like_std() {
    // The facade must be usable as a drop-in: atomics, rwlock, yield.
    let x = AtomicUsize::new(1);
    assert_eq!(x.fetch_add(2, Ordering::SeqCst), 1);
    assert_eq!(x.fetch_max(10, Ordering::SeqCst), 3);
    assert_eq!(x.load(Ordering::SeqCst), 10);
    assert_eq!(
        x.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| Some(v + 1)),
        Ok(10)
    );
    let rw = RwLock::new(5u32);
    {
        let r1 = rw.read().unwrap();
        let r2 = rw.read().unwrap();
        assert_eq!(*r1 + *r2, 10);
    }
    *rw.write().unwrap() = 7;
    assert_eq!(*rw.read().unwrap(), 7);
    thread::yield_now();
    assert!(fhe_conc::current_thread_id() < usize::MAX);
}

#[test]
fn conc_report_serializes_to_json() {
    let report = ConcReport {
        checker_enabled: cfg!(fhe_conc),
        models: vec![
            ModelRecord {
                name: "pool-park".into(),
                mode: "exhaustive".into(),
                executions: 1234,
                pruned: 56,
                complete: true,
                passed: true,
                wall_ms: 7,
            },
            ModelRecord {
                name: "cache \"single\"-flight".into(),
                mode: "pct".into(),
                executions: 200,
                pruned: 0,
                complete: false,
                passed: false,
                wall_ms: 99,
            },
        ],
    };
    let json = report.to_json();
    assert!(json.contains("\"models_total\": 2"));
    assert!(json.contains("\"models_passed\": 1"));
    assert!(json.contains("\"interleavings_total\": 1434"));
    assert!(
        json.contains("\\\"single\\\"-flight"),
        "quotes escaped: {json}"
    );
    assert!(report.total_executions() == 1434 && !report.all_passed());
}
