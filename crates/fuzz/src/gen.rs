//! Seeded random-program generator.
//!
//! Emits valid [`Program`] SSA DAGs under a configurable op mix
//! ([`OpMix`]) with bounded multiplicative depth and bounded value
//! magnitudes, so every generated program is (a) compilable by all three
//! scale compilers under the default [`fhe_ir::CompileParams`] and (b)
//! numerically tame enough that the noise-based executors can be compared
//! against the exact reference with a meaningful tolerance.
//!
//! Generation is deterministic: the same `(seed, config)` pair always
//! produces the same program, byte for byte.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fhe_ir::{ConstValue, Op, Program, ValueId};

/// Relative weights for each generated op kind. A weight of zero disables
/// the kind entirely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpMix {
    /// cipher/plain addition
    pub add: u32,
    /// subtraction (operands may coincide, exercising `x − x` folding)
    pub sub: u32,
    /// multiplication of two existing values
    pub mul: u32,
    /// multiplication by a fresh constant (scalar or vector)
    pub mul_const: u32,
    /// cyclic rotation by an offset from [`GenConfig::rotate_offsets`]
    pub rotate: u32,
    /// negation
    pub neg: u32,
}

impl Default for OpMix {
    fn default() -> Self {
        OpMix {
            add: 4,
            sub: 2,
            mul: 3,
            mul_const: 2,
            rotate: 2,
            neg: 1,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Add,
    Sub,
    Mul,
    MulConst,
    Rotate,
    Neg,
}

impl OpMix {
    /// Parses a `key=weight` comma list, e.g. `add=4,mul=0,rotate=7`.
    /// Unspecified kinds keep their default weight; `negate` is accepted
    /// as an alias for `neg`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed entry.
    pub fn parse(spec: &str) -> Result<OpMix, String> {
        let mut mix = OpMix::default();
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("opmix entry `{entry}` is not `key=weight`"))?;
            let weight: u32 = value
                .trim()
                .parse()
                .map_err(|_| format!("opmix weight `{value}` is not a non-negative integer"))?;
            match key.trim() {
                "add" => mix.add = weight,
                "sub" => mix.sub = weight,
                "mul" => mix.mul = weight,
                "mul_const" => mix.mul_const = weight,
                "rotate" => mix.rotate = weight,
                "neg" | "negate" => mix.neg = weight,
                other => return Err(format!("unknown opmix key `{other}`")),
            }
        }
        if mix.total() == 0 {
            return Err("opmix has zero total weight".into());
        }
        Ok(mix)
    }

    fn entries(&self) -> Vec<(OpKind, u32)> {
        [
            (OpKind::Add, self.add),
            (OpKind::Sub, self.sub),
            (OpKind::Mul, self.mul),
            (OpKind::MulConst, self.mul_const),
            (OpKind::Rotate, self.rotate),
            (OpKind::Neg, self.neg),
        ]
        .into_iter()
        .filter(|&(_, w)| w > 0)
        .collect()
    }

    fn total(&self) -> u32 {
        self.add + self.sub + self.mul + self.mul_const + self.rotate + self.neg
    }
}

/// Shape and budget knobs for program generation.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Slot count of every generated program. The encrypted executor
    /// requires `poly_degree = 2 × slots`, so keep this a power of two.
    pub slots: usize,
    /// Inputs are drawn uniformly from `1..=max_inputs`.
    pub max_inputs: usize,
    /// Op count (beyond the inputs) is drawn from `min_ops..=max_ops`;
    /// a `mul_const` contributes its constant as a second op.
    pub min_ops: usize,
    /// Upper bound of the op-count range.
    pub max_ops: usize,
    /// Outputs are drawn uniformly from `1..=max_outputs` (always cipher).
    pub max_outputs: usize,
    /// Multiplicative-depth budget: no value's chain of muls (counting
    /// cipher×plain) exceeds this. Must stay well below
    /// `CompileParams::max_level` for all compilers to succeed.
    pub max_mul_depth: u32,
    /// Estimated-magnitude cap per value; ops that would exceed it are
    /// re-drawn. Keeps noise tolerances meaningful and bounds the
    /// magnitude-derived output reserve the oracle requests (values up to
    /// `2^m` need `m+1` reserve bits of the per-level budget, so the cap
    /// must stay well under `2^(rescale − waterline)`).
    pub magnitude_cap: f64,
    /// Op-kind weights.
    pub opmix: OpMix,
    /// Pool of rotation offsets (may exceed `slots` to exercise cyclic
    /// wrap-around, and may be negative).
    pub rotate_offsets: Vec<i64>,
    /// Width stress: seed the DAG with this many mutually independent
    /// rotations of the inputs, reduced by a balanced add-tree that is
    /// pinned as an output. `0` disables it. With `n > 0` the dependence
    /// DAG's `max_width` is at least about `n/2` (the tree's first rank),
    /// so sweeps exercise the depgraph analyzer's wide schedules instead
    /// of the narrow DAGs the default random growth tends to produce.
    pub width_stress: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            slots: 64,
            max_inputs: 3,
            min_ops: 4,
            max_ops: 40,
            max_outputs: 3,
            max_mul_depth: 5,
            magnitude_cap: 64.0,
            opmix: OpMix::default(),
            rotate_offsets: vec![-31, -17, -5, -3, -2, -1, 1, 2, 3, 5, 8, 16, 33, 67],
            width_stress: 0,
        }
    }
}

/// Per-value bookkeeping carried while growing the DAG: multiplicative
/// depth and an upper bound on `max |slot|` given inputs in `[-1, 1]`.
#[derive(Clone, Copy)]
struct ValueInfo {
    depth: u32,
    magnitude: f64,
}

/// One admissible generation step: the ops to append (a `mul_const` brings
/// its constant along) and the bookkeeping of the last one.
struct Step {
    ops: Vec<Op>,
    infos: Vec<ValueInfo>,
}

/// Generates one program. Deterministic in `(seed, cfg)`.
///
/// # Panics
///
/// Panics if `cfg` is degenerate (zero op-mix weight, empty rotation pool
/// while rotations are enabled, `min_ops > max_ops`, no inputs/outputs).
pub fn generate(seed: u64, cfg: &GenConfig) -> Program {
    assert!(cfg.max_inputs >= 1 && cfg.min_ops <= cfg.max_ops && cfg.max_outputs >= 1);
    let entries = cfg.opmix.entries();
    let total: u32 = entries.iter().map(|&(_, w)| w).sum();
    assert!(total > 0, "op mix must have positive total weight");
    assert!(
        cfg.opmix.rotate == 0 || !cfg.rotate_offsets.is_empty(),
        "rotations enabled with an empty offset pool"
    );

    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let n_inputs = rng.gen_range(1..=cfg.max_inputs);
    let n_ops = rng.gen_range(cfg.min_ops..=cfg.max_ops);
    let n_outputs = rng.gen_range(1..=cfg.max_outputs);

    let mut program = Program::new(format!("fuzz_{seed}"), cfg.slots);
    let mut info: Vec<ValueInfo> = Vec::new();
    for i in 0..n_inputs {
        program.push(Op::Input {
            name: format!("x{i}"),
        });
        info.push(ValueInfo {
            depth: 0,
            magnitude: 1.0,
        });
    }

    // Width stress: a rank of independent rotations spread over the
    // inputs, folded by a balanced add-tree whose root is pinned as an
    // output below, keeping the whole wide rank live.
    let mut width_root = None;
    if cfg.width_stress > 0 {
        let mut rank: Vec<ValueId> = Vec::with_capacity(cfg.width_stress);
        for j in 0..cfg.width_stress {
            let a = ValueId((j % n_inputs) as u32);
            let id = program.push(Op::Rotate(a, j as i64 + 1));
            info.push(info[a.index()]);
            rank.push(id);
        }
        while rank.len() > 1 {
            let mut next = Vec::with_capacity(rank.len().div_ceil(2));
            for pair in rank.chunks(2) {
                if let [a, b] = *pair {
                    let id = program.push(Op::Add(a, b));
                    let (ia, ib) = (info[a.index()], info[b.index()]);
                    info.push(ValueInfo {
                        depth: ia.depth.max(ib.depth),
                        magnitude: ia.magnitude + ib.magnitude,
                    });
                    next.push(id);
                } else {
                    next.push(pair[0]);
                }
            }
            rank = next;
        }
        width_root = Some(rank[0]);
    }

    for _ in 0..n_ops {
        let mut placed = false;
        for _attempt in 0..16 {
            let kind = pick_weighted(&mut rng, &entries, total);
            if let Some(step) = propose(&mut rng, &info, cfg, kind) {
                for (op, vi) in step.ops.into_iter().zip(step.infos) {
                    program.push(op);
                    info.push(vi);
                }
                placed = true;
                break;
            }
        }
        if !placed {
            // Every draw was over budget 16 times in a row: negation is
            // always depth- and magnitude-neutral.
            let a = pick_value(&mut rng, info.len());
            let vi = info[a.index()];
            program.push(Op::Neg(a));
            info.push(vi);
        }
    }

    // Outputs: cipher values only (the encrypted backend decrypts them),
    // biased towards late (deep) values so the whole DAG tends to stay
    // live.
    let cipher: Vec<ValueId> = program.ids().filter(|&id| program.is_cipher(id)).collect();
    let mut outputs: Vec<ValueId> = Vec::new();
    let mut guard = 0;
    while outputs.len() < n_outputs && guard < 64 {
        guard += 1;
        let a = rng.gen_range(0..cipher.len());
        let b = rng.gen_range(0..cipher.len());
        let id = cipher[a.max(b)];
        if !outputs.contains(&id) {
            outputs.push(id);
        }
    }
    if outputs.is_empty() {
        outputs.push(*cipher.last().expect("inputs are cipher"));
    }
    if let Some(root) = width_root {
        if !outputs.contains(&root) {
            outputs.push(root);
        }
    }
    program.set_outputs(outputs);
    program
}

fn pick_weighted(rng: &mut StdRng, entries: &[(OpKind, u32)], total: u32) -> OpKind {
    let mut t = rng.gen_range(0..total);
    for &(kind, w) in entries {
        if t < w {
            return kind;
        }
        t -= w;
    }
    unreachable!("weights sum to total")
}

/// Uniform over existing values with a mild bias towards recent ones.
fn pick_value(rng: &mut StdRng, len: usize) -> ValueId {
    let a = rng.gen_range(0..len);
    let b = rng.gen_range(0..len);
    ValueId(a.max(b) as u32)
}

fn propose(rng: &mut StdRng, info: &[ValueInfo], cfg: &GenConfig, kind: OpKind) -> Option<Step> {
    let len = info.len();
    let one = |op: Op, depth: u32, magnitude: f64| -> Option<Step> {
        (depth <= cfg.max_mul_depth && magnitude.is_finite() && magnitude <= cfg.magnitude_cap)
            .then(|| Step {
                ops: vec![op],
                infos: vec![ValueInfo { depth, magnitude }],
            })
    };
    match kind {
        OpKind::Add | OpKind::Sub => {
            let a = pick_value(rng, len);
            let b = pick_value(rng, len);
            let depth = info[a.index()].depth.max(info[b.index()].depth);
            let magnitude = info[a.index()].magnitude + info[b.index()].magnitude;
            let op = if kind == OpKind::Add {
                Op::Add(a, b)
            } else {
                Op::Sub(a, b)
            };
            one(op, depth, magnitude)
        }
        OpKind::Mul => {
            let a = pick_value(rng, len);
            let b = pick_value(rng, len);
            let depth = info[a.index()].depth.max(info[b.index()].depth) + 1;
            let magnitude = info[a.index()].magnitude * info[b.index()].magnitude;
            one(Op::Mul(a, b), depth, magnitude)
        }
        OpKind::MulConst => {
            let a = pick_value(rng, len);
            let (value, const_mag) = random_const(rng, cfg.slots);
            let depth = info[a.index()].depth + 1;
            let magnitude = info[a.index()].magnitude * const_mag;
            if depth > cfg.max_mul_depth || !magnitude.is_finite() || magnitude > cfg.magnitude_cap
            {
                return None;
            }
            let c = ValueId(len as u32);
            Some(Step {
                ops: vec![Op::Const { value }, Op::Mul(a, c)],
                infos: vec![
                    ValueInfo {
                        depth: 0,
                        magnitude: const_mag,
                    },
                    ValueInfo { depth, magnitude },
                ],
            })
        }
        OpKind::Rotate => {
            let a = pick_value(rng, len);
            let k = cfg.rotate_offsets[rng.gen_range(0..cfg.rotate_offsets.len())];
            one(
                Op::Rotate(a, k),
                info[a.index()].depth,
                info[a.index()].magnitude,
            )
        }
        OpKind::Neg => {
            let a = pick_value(rng, len);
            one(Op::Neg(a), info[a.index()].depth, info[a.index()].magnitude)
        }
    }
}

/// A random constant: scalar or (possibly short, zero-padded) vector with
/// entries in `[-2, 2]`, salted with exact special values (0, ±1, ±½, 2)
/// that trigger the algebraic-identity folds.
fn random_const(rng: &mut StdRng, slots: usize) -> (ConstValue, f64) {
    const SPECIALS: [f64; 6] = [0.0, 1.0, -1.0, 0.5, 2.0, -0.5];
    fn draw(rng: &mut StdRng) -> f64 {
        if rng.gen_range(0..10) < 3 {
            SPECIALS[rng.gen_range(0..SPECIALS.len())]
        } else {
            rng.gen_range(-2.0..2.0)
        }
    }
    if rng.gen_range(0..10) < 6 {
        let v = draw(rng);
        (ConstValue::Scalar(v), v.abs())
    } else {
        let len = if rng.gen_range(0..2) == 0 {
            slots
        } else {
            rng.gen_range(1..=slots)
        };
        let vals: Vec<f64> = (0..len).map(|_| draw(rng)).collect();
        let magnitude = vals.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        (ConstValue::from(vals), magnitude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = generate(42, &cfg);
        let b = generate(42, &cfg);
        assert_eq!(a.num_ops(), b.num_ops());
        for id in a.ids() {
            assert_eq!(a.op(id), b.op(id));
        }
        assert_eq!(a.outputs(), b.outputs());
    }

    #[test]
    fn respects_shape_budgets() {
        let cfg = GenConfig::default();
        for seed in 0..50 {
            let p = generate(seed, &cfg);
            assert!(p.num_ops() >= cfg.min_ops);
            assert!(p.num_ops() <= cfg.max_inputs + 2 * cfg.max_ops);
            assert!(!p.outputs().is_empty() && p.outputs().len() <= cfg.max_outputs);
            for &o in p.outputs() {
                assert!(p.is_cipher(o), "outputs must be cipher");
            }
            // `mult_depth` is 1-based (§6.1), the generator budget 0-based.
            let depth = fhe_ir::analysis::mult_depth(&p)
                .into_iter()
                .max()
                .unwrap_or(1);
            assert!(depth <= cfg.max_mul_depth + 1, "depth {depth} over budget");
        }
    }

    #[test]
    fn opmix_parsing() {
        let mix = OpMix::parse("add=7,negate=0,mul_const=1").unwrap();
        assert_eq!(mix.add, 7);
        assert_eq!(mix.neg, 0);
        assert_eq!(mix.mul_const, 1);
        assert_eq!(mix.sub, OpMix::default().sub);
        assert!(OpMix::parse("bogus=1").is_err());
        assert!(OpMix::parse("add").is_err());
        assert!(OpMix::parse("add=0,sub=0,mul=0,mul_const=0,rotate=0,neg=0").is_err());
    }

    #[test]
    fn width_stress_yields_wide_live_dags() {
        use fhe_ir::ScaleCompiler;
        let cfg = GenConfig {
            width_stress: 24,
            ..GenConfig::default()
        };
        for seed in 0..5 {
            let p = generate(seed, &cfg);
            let live = fhe_ir::analysis::live(&p);
            let live_rotations = p
                .ids()
                .filter(|&id| live[id.index()] && matches!(p.op(id), Op::Rotate(..)))
                .count();
            assert!(live_rotations >= 24, "seed {seed}: {live_rotations}");
        }
        // The compiled schedule's dependence DAG is wide, not just the
        // source: this is what the sweep relies on to exercise
        // `max_width > 8`.
        let p = generate(0, &cfg);
        let compiled = reserve_core::ReserveCompiler::full()
            .compile(&p, &fhe_ir::CompileParams::new(35))
            .expect("compiles");
        assert!(
            compiled.report.parallelism.max_width > 8,
            "width {}",
            compiled.report.parallelism.max_width
        );
    }

    #[test]
    fn zero_weight_disables_kind() {
        let cfg = GenConfig {
            opmix: OpMix::parse("rotate=0,mul=0,mul_const=0").unwrap(),
            ..GenConfig::default()
        };
        for seed in 0..20 {
            let p = generate(seed, &cfg);
            assert_eq!(
                p.count_ops(|op| matches!(op, Op::Rotate(..) | Op::Mul(..))),
                0
            );
        }
    }
}
