//! Quickstart: write an FHE program, compile it with the reserve compiler,
//! and run it three ways — in the clear, on the noise simulator, and under
//! real RNS-CKKS encryption.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use std::collections::HashMap;

use fhe_reserve::prelude::*;
use fhe_reserve::runtime;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write the paper's running example x³·(y² + y) with plain operators.
    //    128 slots = one ciphertext holds 128 values (SIMD).
    let slots = 128;
    let b = Builder::new("quickstart", slots);
    let x = b.input("x");
    let y = b.input("y");
    let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
    let program = b.finish(vec![q]);
    println!(
        "source program:\n{}",
        fhe_reserve::ir::text::print(&program)
    );

    // 2. Compile: the reserve analysis assigns scales/levels and inserts all
    //    rescale/modswitch/upscale operations.
    let mut options = Options::new(30); // waterline 2^30
    options.params.output_reserve_bits = 4; // headroom for outputs up to 2^4
    let compiled = fhe_reserve::compiler::compile(&program, &options)?;
    println!(
        "compiled program:\n{}",
        fhe_reserve::ir::text::print(&compiled.scheduled.program)
    );
    println!(
        "scale management took {:?}; estimated latency {:.1} ms at level {}",
        compiled.report.scale_management_time,
        compiled.report.estimated_latency_us / 1000.0,
        compiled.report.max_level
    );

    // 3. Bind inputs.
    let mut inputs = HashMap::new();
    inputs.insert(
        "x".to_string(),
        (0..slots).map(|i| (i as f64 * 0.1).sin()).collect(),
    );
    inputs.insert(
        "y".to_string(),
        (0..slots).map(|i| (i as f64 * 0.05).cos()).collect(),
    );

    // 4a. Reference run in the clear.
    let reference = runtime::plain::execute(&compiled.scheduled.program, &inputs);

    // 4b. Noise simulation (fast, models CKKS noise).
    let sim = runtime::simulate(&compiled.scheduled, &inputs, &NoiseModel::default()).unwrap();
    println!("noise-simulated max error: {:.3e}", sim.max_abs_error());

    // 4c. Real encrypted execution (N = 256 so N/2 slots match the program).
    let report = runtime::execute_encrypted(
        &compiled.scheduled,
        &inputs,
        &runtime::ExecOptions {
            poly_degree: 2 * slots,
            seed: 42,
            threads: 1,
            ..runtime::ExecOptions::default()
        },
    )
    .unwrap();
    println!(
        "encrypted run: {} homomorphic ops in {:?} (total {:?}), max error {:.3e}",
        report.ops_executed,
        report.op_time,
        report.total_time,
        report.max_abs_error()
    );
    println!(
        "slot 3: plaintext {:.6}, decrypted {:.6}",
        reference[0][3], report.outputs[0][3]
    );
    assert!(report.max_abs_error() < 1e-2);
    Ok(())
}
