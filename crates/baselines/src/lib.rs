//! # fhe-baselines — the EVA and Hecate scale-management baselines
//!
//! Re-implementations of the two compilers the Reserve paper evaluates
//! against:
//!
//! - [`eva`]: conservative forward waterline scale analysis (PLDI'20);
//! - [`hecate`]: exploration-based scale management with hill climbing
//!   (CGO'22).
//!
//! Both share the [`forward`] legalizer and emit [`fhe_ir::ScheduledProgram`]s
//! checked by the same validator as the reserve compiler, so latency, error
//! and compile-time comparisons are apples-to-apples. Both run on the
//! workspace-wide instrumented pass pipeline ([`fhe_ir::pipeline`]) and are
//! exposed behind the [`ScaleCompiler`] trait as [`EvaCompiler`] and
//! [`HecateCompiler`], reporting the same [`CompileReport`] as the reserve
//! compiler.
//!
//! # Example
//!
//! ```
//! use fhe_ir::{Builder, CompileParams};
//! let b = Builder::new("t", 64);
//! let x = b.input("x");
//! let p = b.finish(vec![x.clone() * x]);
//! let eva = fhe_baselines::eva::compile(&p, &CompileParams::new(20))?;
//! assert!(eva.scheduled.validate().is_ok());
//! assert_eq!(eva.report.compiler, "EVA");
//! # Ok::<(), fhe_baselines::CompileError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod eva;
pub mod forward;
pub mod hecate;

pub use eva::EvaCompiler;
pub use fhe_ir::pipeline::{CompileError, CompileReport, Compiled, ScaleCompiler};
pub use forward::{legalize, ForwardPlan, LegalizeError};
pub use hecate::{HecateCompiler, HecateOptions};
