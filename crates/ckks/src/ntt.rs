//! Negacyclic number-theoretic transform over `Z_q[X]/(X^N + 1)`.
//!
//! Standard iterative Cooley–Tukey (forward, bit-reversed output) and
//! Gentleman–Sande (inverse) butterflies with the 2N-th root-of-unity twist
//! folded into the twiddle factors, so polynomial multiplication modulo
//! `X^N + 1` is pointwise in the transform domain.
//!
//! The hot kernels are Harvey butterflies: every twiddle carries a Shoup
//! precomputed quotient, products are two word multiplications, and values
//! stay *lazily* reduced — in `[0, 4q)` through the forward stages and
//! `[0, 2q)` through the inverse stages — with a single normalization pass
//! at the end (`q < 2^62` guarantees 64-bit headroom; see DESIGN.md
//! § Kernel optimization). [`NttTable::forward_reference`] /
//! [`NttTable::inverse_reference`] keep the original exact-reduction
//! `u128 %` kernels as the oracle for property tests and the `kernels`
//! bench baseline.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use crate::modular::Modulus;

/// Precomputed NTT tables for one prime and one power-of-two degree.
#[derive(Debug, Clone)]
pub struct NttTable {
    modulus: Modulus,
    n: usize,
    /// ψ^bitrev(i) for the forward transform (ψ a primitive 2N-th root).
    fwd_twiddles: Vec<u64>,
    /// Shoup companions of `fwd_twiddles`.
    fwd_shoup: Vec<u64>,
    /// ψ^{-bitrev(i)} for the inverse transform.
    inv_twiddles: Vec<u64>,
    /// Shoup companions of `inv_twiddles`.
    inv_shoup: Vec<u64>,
    /// N^{-1} mod q.
    n_inv: u64,
    /// Shoup companion of `n_inv`.
    n_inv_shoup: u64,
    /// ψ^{-bitrev(1)} · N^{-1}: the last inverse stage's twiddle with the
    /// `1/N` normalization folded in, so the inverse needs no separate
    /// normalization pass.
    inv_last_tw: u64,
    /// Shoup companion of `inv_last_tw`.
    inv_last_tw_shoup: u64,
}

fn bit_reverse(i: usize, log_n: u32) -> usize {
    i.reverse_bits() >> (usize::BITS - log_n)
}

/// Finds a primitive `order`-th root of unity modulo `q` by trial scan
/// (requires `order | q − 1`).
fn primitive_root_uncached(m: Modulus, order: u64) -> u64 {
    let q = m.value();
    assert_eq!((q - 1) % order, 0, "order must divide q-1");
    let cofactor = (q - 1) / order;
    // Try small candidates; g^cofactor is an order-th root, primitive iff
    // its (order/2)-th power is not 1.
    for g in 2..q {
        let root = m.pow(g, cofactor);
        if m.pow(root, order / 2) != 1 {
            return root;
        }
    }
    unreachable!("no primitive root found (q not prime?)");
}

/// Found generators per `(q, order)`. The trial scan costs two full `pow`
/// calls per candidate; contexts for long modulus chains (and tests, which
/// rebuild contexts constantly) hit the same primes repeatedly, so the
/// result is memoized process-wide.
static ROOT_CACHE: OnceLock<Mutex<HashMap<(u64, u64), u64>>> = OnceLock::new();

/// Cached front-end of [`primitive_root_uncached`].
fn primitive_root(m: Modulus, order: u64) -> u64 {
    let cache = ROOT_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (m.value(), order);
    if let Some(&root) = cache.lock().expect("root cache lock").get(&key) {
        return root;
    }
    let root = primitive_root_uncached(m, order);
    cache.lock().expect("root cache lock").insert(key, root);
    root
}

impl NttTable {
    /// Builds tables for degree `n` (a power of two ≥ 2) and prime `q ≡ 1
    /// (mod 2n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or `q` is not NTT-friendly.
    pub fn new(modulus: Modulus, n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "degree must be a power of two >= 2"
        );
        let log_n = n.trailing_zeros();
        let q = modulus.value();
        assert_eq!((q - 1) % (2 * n as u64), 0, "q must be 1 mod 2N");
        let psi = primitive_root(modulus, 2 * n as u64);
        let psi_inv = modulus.inv(psi);
        let mut fwd = vec![0u64; n];
        let mut inv = vec![0u64; n];
        let mut pow_f = 1u64;
        let mut pow_i = 1u64;
        let mut powers_f = vec![0u64; n];
        let mut powers_i = vec![0u64; n];
        for i in 0..n {
            powers_f[i] = pow_f;
            powers_i[i] = pow_i;
            pow_f = modulus.mul(pow_f, psi);
            pow_i = modulus.mul(pow_i, psi_inv);
        }
        for i in 0..n {
            let r = bit_reverse(i, log_n);
            fwd[i] = powers_f[r];
            inv[i] = powers_i[r];
        }
        let fwd_shoup = fwd.iter().map(|&w| modulus.shoup(w)).collect();
        let inv_shoup = inv.iter().map(|&w| modulus.shoup(w)).collect();
        let n_inv = modulus.inv(n as u64);
        let n_inv_shoup = modulus.shoup(n_inv);
        let inv_last_tw = modulus.mul(inv[1], n_inv);
        let inv_last_tw_shoup = modulus.shoup(inv_last_tw);
        NttTable {
            modulus,
            n,
            fwd_twiddles: fwd,
            fwd_shoup,
            inv_twiddles: inv,
            inv_shoup,
            n_inv,
            n_inv_shoup,
            inv_last_tw,
            inv_last_tw_shoup,
        }
    }

    /// The polynomial degree `N`.
    pub fn degree(&self) -> usize {
        self.n
    }

    /// The prime modulus.
    pub fn modulus(&self) -> Modulus {
        self.modulus
    }

    /// In-place forward negacyclic NTT (natural input order → transform
    /// domain). Input residues must be `< q`; output residues are `< q`.
    ///
    /// Harvey butterflies: intermediate values live in `[0, 4q)` and are
    /// normalized once after the last stage.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        let m = self.modulus;
        let q = m.value();
        let two_q = 2 * q;
        let mut t = self.n;
        let mut stage = 1usize;
        while stage < self.n {
            t >>= 1;
            let tw = self.fwd_twiddles[stage..2 * stage].iter();
            let tws = self.fwd_shoup[stage..2 * stage].iter();
            for ((block, &w), &ws) in a.chunks_exact_mut(2 * t).zip(tw).zip(tws) {
                let (lo, hi) = block.split_at_mut(t);
                for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                    // u ∈ [0, 4q) on entry; fold to [0, 2q).
                    let mut u = *x;
                    if u >= two_q {
                        u -= two_q;
                    }
                    // v ∈ [0, 2q) for any 64-bit input.
                    let v = m.mul_shoup_lazy(*y, w, ws);
                    *x = u + v;
                    *y = u + two_q - v;
                }
            }
            stage <<= 1;
        }
        for x in a.iter_mut() {
            let mut v = *x;
            if v >= two_q {
                v -= two_q;
            }
            if v >= q {
                v -= q;
            }
            *x = v;
        }
    }

    /// In-place inverse negacyclic NTT (transform domain → natural order),
    /// including the `1/N` normalization. Input residues must be `< q`;
    /// output residues are `< q`.
    ///
    /// Harvey butterflies: intermediate values live in `[0, 2q)`; the `1/N`
    /// normalization is folded into the last stage's butterflies (both
    /// output branches multiply there, so scaling the twiddle by `N^{-1}`
    /// costs half a multiply per element instead of a separate full pass).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        let m = self.modulus;
        let two_q = 2 * m.value();
        let mut t = 1usize;
        let mut stage = self.n >> 1;
        while stage > 1 {
            let tw = self.inv_twiddles[stage..2 * stage].iter();
            let tws = self.inv_shoup[stage..2 * stage].iter();
            for ((block, &w), &ws) in a.chunks_exact_mut(2 * t).zip(tw).zip(tws) {
                let (lo, hi) = block.split_at_mut(t);
                for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                    // u, v ∈ [0, 2q).
                    let u = *x;
                    let v = *y;
                    let mut s = u + v;
                    if s >= two_q {
                        s -= two_q;
                    }
                    *x = s;
                    *y = m.mul_shoup_lazy(u + two_q - v, w, ws);
                }
            }
            t <<= 1;
            stage >>= 1;
        }
        // Last stage (single twiddle): scale both branches by N^{-1} and
        // normalize into [0, q). u + v < 4q and q < 2^62, so the lazy sums
        // stay inside 64 bits.
        let (w, ws) = (self.inv_last_tw, self.inv_last_tw_shoup);
        let (lo, hi) = a.split_at_mut(t);
        for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
            let u = *x;
            let v = *y;
            *x = m.mul_shoup(u + v, self.n_inv, self.n_inv_shoup);
            *y = m.mul_shoup(u + two_q - v, w, ws);
        }
    }

    /// The forward transform with exact (`u128 %`) reduction at every
    /// butterfly — the pre-optimization kernel, kept as the correctness
    /// oracle for the Harvey path and the `kernels` bench baseline.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N`.
    pub fn forward_reference(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        let m = self.modulus;
        let mut t = self.n;
        let mut stage = 1usize;
        while stage < self.n {
            t >>= 1;
            for i in 0..stage {
                let w = self.fwd_twiddles[stage + i];
                let base = 2 * i * t;
                for j in base..base + t {
                    let u = a[j];
                    let v = m.mul_reference(a[j + t], w);
                    a[j] = m.add(u, v);
                    a[j + t] = m.sub(u, v);
                }
            }
            stage <<= 1;
        }
    }

    /// The inverse transform with exact (`u128 %`) reduction at every
    /// butterfly — counterpart of [`NttTable::forward_reference`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N`.
    pub fn inverse_reference(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        let m = self.modulus;
        let mut t = 1usize;
        let mut stage = self.n >> 1;
        while stage >= 1 {
            let mut base = 0usize;
            for i in 0..stage {
                let w = self.inv_twiddles[stage + i];
                for j in base..base + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = m.add(u, v);
                    a[j + t] = m.mul_reference(m.sub(u, v), w);
                }
                base += 2 * t;
            }
            t <<= 1;
            stage >>= 1;
        }
        for x in a.iter_mut() {
            *x = m.mul_reference(*x, self.n_inv);
        }
    }
}

/// Schoolbook negacyclic multiplication, used as the test oracle.
#[cfg(test)]
pub fn negacyclic_mul_naive(m: Modulus, a: &[u64], b: &[u64]) -> Vec<u64> {
    let n = a.len();
    let mut out = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let prod = m.mul(ai, bj);
            let k = i + j;
            if k < n {
                out[k] = m.add(out[k], prod);
            } else {
                out[k - n] = m.sub(out[k - n], prod);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize) -> NttTable {
        let q = crate::primes::ntt_primes(55, n, 1)[0];
        NttTable::new(Modulus::new(q), n)
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let t = table(64);
        let m = t.modulus();
        let mut a: Vec<u64> = (0..64u64).map(|i| m.reduce(i * i + 7)).collect();
        let orig = a.clone();
        t.forward(&mut a);
        assert_ne!(a, orig, "transform must change the data");
        t.inverse(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn pointwise_matches_naive_negacyclic() {
        let t = table(32);
        let m = t.modulus();
        let a: Vec<u64> = (0..32u64).map(|i| m.reduce(i + 1)).collect();
        let b: Vec<u64> = (0..32u64).map(|i| m.reduce(3 * i + 2)).collect();
        let expect = negacyclic_mul_naive(m, &a, &b);
        let mut fa = a.clone();
        let mut fb = b.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        let mut fc: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| m.mul(x, y)).collect();
        t.inverse(&mut fc);
        assert_eq!(fc, expect);
    }

    #[test]
    fn x_times_x_pow_n_minus_1_wraps_negatively() {
        // X · X^(N−1) = X^N ≡ −1 (mod X^N + 1).
        let n = 16;
        let t = table(n);
        let m = t.modulus();
        let mut a = vec![0u64; n];
        a[1] = 1; // X
        let mut b = vec![0u64; n];
        b[n - 1] = 1; // X^(N−1)
        t.forward(&mut a);
        t.forward(&mut b);
        let mut c: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| m.mul(x, y)).collect();
        t.inverse(&mut c);
        let mut expect = vec![0u64; n];
        expect[0] = m.neg(1);
        assert_eq!(c, expect);
    }

    #[test]
    fn large_degree_roundtrip() {
        let t = table(1 << 12);
        let m = t.modulus();
        let mut a: Vec<u64> = (0..(1u64 << 12))
            .map(|i| m.reduce(i.wrapping_mul(0x9E3779B97F4A7C15)))
            .collect();
        let orig = a.clone();
        t.forward(&mut a);
        t.inverse(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn harvey_matches_reference_kernels() {
        let t = table(256);
        let m = t.modulus();
        let mut a: Vec<u64> = (0..256u64)
            .map(|i| m.reduce(i.wrapping_mul(0xD1B54A32D192ED03)))
            .collect();
        let mut b = a.clone();
        t.forward(&mut a);
        t.forward_reference(&mut b);
        assert_eq!(a, b, "forward");
        t.inverse(&mut a);
        t.inverse_reference(&mut b);
        assert_eq!(a, b, "inverse");
    }

    #[test]
    fn primitive_root_cache_agrees_with_uncached() {
        let q = crate::primes::ntt_primes(50, 1 << 6, 1)[0];
        let m = Modulus::new(q);
        let order = 2 * (1 << 6) as u64;
        let direct = primitive_root_uncached(m, order);
        // First call populates the cache, second hits it; both must agree
        // with the direct scan.
        assert_eq!(primitive_root(m, order), direct);
        assert_eq!(primitive_root(m, order), direct);
    }
}
