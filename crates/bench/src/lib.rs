//! # fhe-bench — harnesses reproducing every table and figure of the paper
//!
//! One binary per experiment (see DESIGN.md §5):
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `table3` | Table 3 — RNS-CKKS op latency per level (measured on `fhe-ckks`) |
//! | `table4` | Table 4 — compile time and scale-management time, EVA/Hecate/this work |
//! | `fig2`   | Fig. 2 — the worked example's cost story |
//! | `fig6`   | Fig. 6 — latency vs waterline (15–50) per benchmark per compiler |
//! | `fig7`   | Fig. 7 — output error at waterlines 2^20 and 2^40 |
//! | `fig8`   | Fig. 8 — ablation BA / RA / this work |
//!
//! Each prints the same rows/series the paper reports. Absolute numbers
//! differ from the paper's SEAL-on-i7 testbed; the *shape* (who wins, by
//! roughly what factor, where crossovers fall) is the reproduction target
//! and is recorded against the paper in EXPERIMENTS.md.
//!
//! Every harness drives the compilers through the workspace-wide
//! [`ScaleCompiler`] trait — the binaries iterate `&[&dyn ScaleCompiler]`
//! and never dispatch on a concrete compiler, so adding a scale-management
//! strategy to the comparison is one [`standard_compilers`] entry.
//! `fig6`/`fig8`/`table3`/`table4` additionally accept `--json <path>` and
//! emit their [`CompileReport`]/trace fields machine-readably ([`json`]).

#![warn(missing_docs)]

pub mod json;

use std::time::Duration;

use fhe_baselines::{EvaCompiler, HecateCompiler, HecateOptions};
use fhe_ir::pipeline::{CompileReport, Compiled, ScaleCompiler};
use fhe_ir::{CompileParams, CostModel, Program};
use fhe_workloads::{suite, Size, Workload};
use reserve_core::{Mode, ReserveCompiler};

use crate::json::Json;

/// The paper's three-way comparison — EVA, Hecate (with the given
/// exploration budget), and this work — in table order. By convention EVA
/// is first and this work last; harness summaries rely on that.
pub fn standard_compilers(hecate_budget: usize) -> Vec<Box<dyn ScaleCompiler>> {
    vec![
        Box::new(EvaCompiler),
        Box::new(HecateCompiler {
            options: HecateOptions {
                max_iterations: hecate_budget,
                patience: hecate_budget / 4 + 50,
                seed: 0xCA7,
                ..HecateOptions::default()
            },
        }),
        Box::new(ReserveCompiler::full()),
    ]
}

/// Fig. 8's ablation ladder: BA, RA, this work — in the paper's order
/// (the first entry is the normalization baseline).
pub fn ablation_compilers() -> Vec<Box<dyn ScaleCompiler>> {
    Mode::ALL
        .iter()
        .map(|&m| Box::new(ReserveCompiler::with_mode(m)) as Box<dyn ScaleCompiler>)
        .collect()
}

/// Compiles `program` at `waterline` with every compiler, in order.
///
/// # Panics
///
/// Panics if any compiler fails — the harness workloads are all expected
/// to compile.
pub fn compile_all(
    compilers: &[Box<dyn ScaleCompiler>],
    program: &Program,
    waterline: u32,
) -> Vec<Compiled> {
    let params = CompileParams::new(waterline);
    compilers
        .iter()
        .map(|c| {
            c.compile(program, &params)
                .unwrap_or_else(|e| panic!("{} compiles the benchmarks: {e}", c.name()))
        })
        .collect()
}

/// The benchmark suite selected by CLI flags: `--fast` shrinks programs to
/// test size, otherwise the paper's sizes are used.
pub fn selected_suite(args: &CliArgs) -> Vec<Workload> {
    suite(if args.fast { Size::Test } else { Size::Paper })
}

/// Hecate's exploration budget given the flags (the paper's runs used
/// thousands of iterations; `--fast` caps exploration).
pub fn hecate_budget(args: &CliArgs, ops: usize) -> usize {
    if args.fast {
        100
    } else {
        // Scale with program size, bounded: mirrors the paper's Table 4
        // iteration counts (hundreds for small kernels, thousands beyond).
        (ops * 8).clamp(500, 15000)
    }
}

/// Minimal CLI parsing shared by the harness binaries.
#[derive(Debug, Clone, Default)]
pub struct CliArgs {
    /// Run reduced-size benchmarks / budgets.
    pub fast: bool,
    /// Use paper-scale CKKS parameters where applicable (`table3`).
    pub paper: bool,
    /// Also write the results as JSON to this path.
    pub json: Option<std::path::PathBuf>,
}

impl CliArgs {
    /// Parses `--fast` / `--paper` / `--json <path>` from `std::env::args`.
    pub fn parse() -> Self {
        let mut args = CliArgs::default();
        let mut iter = std::env::args().skip(1);
        while let Some(a) = iter.next() {
            match a.as_str() {
                "--fast" => args.fast = true,
                "--paper" => args.paper = true,
                "--json" => match iter.next() {
                    Some(path) => args.json = Some(path.into()),
                    None => {
                        eprintln!("--json requires a path argument");
                        std::process::exit(2);
                    }
                },
                other => {
                    eprintln!("unknown flag `{other}` (supported: --fast, --paper, --json <path>)");
                    std::process::exit(2);
                }
            }
        }
        args
    }

    /// Writes `value` to the `--json` path, if one was given.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn emit_json(&self, value: &Json) {
        if let Some(path) = &self.json {
            std::fs::write(path, format!("{value}\n"))
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            eprintln!("wrote {}", path.display());
        }
    }
}

/// A [`CompileReport`]'s lint findings and translation-validation verdict
/// as a compact table cell: `"clean ✓"`, `"2 warn ✓"`, `"1 err ✗"`, …
pub fn diagnostics_cell(report: &CompileReport) -> String {
    let errors = report
        .findings
        .iter()
        .filter(|f| f.severity >= fhe_ir::diag::Severity::Error)
        .count();
    let warnings = report.findings.len() - errors;
    let lints = match (errors, warnings) {
        (0, 0) => "clean".to_string(),
        (0, w) => format!("{w} warn"),
        (e, 0) => format!("{e} err"),
        (e, w) => format!("{e} err {w} warn"),
    };
    let tv = match report.translation_validated {
        Some(true) => "✓",
        Some(false) => "✗",
        None => "-",
    };
    format!("{lints} {tv}")
}

/// A [`CompileReport`] as a JSON object, including the per-pass trace
/// (wall times in µs; level `null` before scheduling), the lint findings,
/// and the translation-validation verdict.
pub fn report_json(report: &CompileReport) -> Json {
    let trace: Vec<Json> = report
        .trace
        .passes
        .iter()
        .map(|p| {
            Json::obj([
                ("pass", Json::from(p.name.as_str())),
                ("kind", Json::from(p.kind.label())),
                ("wall_us", Json::from(p.wall.as_secs_f64() * 1e6)),
                ("ops_before", Json::from(p.ops_before)),
                ("ops_after", Json::from(p.ops_after)),
                (
                    "max_level_before",
                    p.max_level_before.map_or(Json::Null, Json::from),
                ),
                (
                    "max_level_after",
                    p.max_level_after.map_or(Json::Null, Json::from),
                ),
                (
                    "notes",
                    Json::Array(p.notes.iter().map(|n| Json::from(n.as_str())).collect()),
                ),
            ])
        })
        .collect();
    Json::obj([
        ("compiler", Json::from(report.compiler.as_str())),
        (
            "scale_management_us",
            Json::from(report.scale_management_time.as_secs_f64() * 1e6),
        ),
        (
            "total_us",
            Json::from(report.total_time.as_secs_f64() * 1e6),
        ),
        ("iterations", Json::from(report.iterations)),
        ("ops_before", Json::from(report.ops_before)),
        ("ops_after", Json::from(report.ops_after)),
        ("hoists", Json::from(report.hoists)),
        (
            "estimated_latency_us",
            Json::from(report.estimated_latency_us),
        ),
        ("max_level", Json::from(report.max_level)),
        (
            "memory",
            Json::obj([
                ("peak_bytes", Json::from(report.memory.peak_bytes as usize)),
                (
                    "poly_peak_bytes",
                    Json::from(report.memory.poly_peak_bytes as usize),
                ),
                ("key_bytes", Json::from(report.memory.key_bytes as usize)),
                ("galois_keys", Json::from(report.memory.galois_keys)),
            ]),
        ),
        (
            "parallelism",
            Json::obj([
                ("work_us", Json::from(report.parallelism.work_us)),
                ("span_us", Json::from(report.parallelism.span_us)),
                ("max_width", Json::from(report.parallelism.max_width)),
                (
                    "t_of_k",
                    Json::Array(
                        report
                            .parallelism
                            .t_of_k
                            .iter()
                            .map(|&(k, t)| {
                                Json::obj([("k", Json::from(k)), ("t_us", Json::from(t))])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "findings",
            Json::Array(
                report
                    .findings
                    .iter()
                    .map(|f| {
                        Json::obj([
                            ("code", Json::from(f.code)),
                            ("severity", Json::from(f.severity.label())),
                            ("message", Json::from(f.message.as_str())),
                            ("op", f.op.map_or(Json::Null, |o| Json::from(o.index()))),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "translation_validated",
            report.translation_validated.map_or(Json::Null, Json::Bool),
        ),
        ("trace", Json::Array(trace)),
    ])
}

/// Formats a duration in ms with Table 4-style precision.
pub fn fmt_ms(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms >= 1000.0 {
        format!("{:.1}E3", ms / 1000.0)
    } else if ms >= 10.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.4}")
    }
}

/// Prints an aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len().max(1) as f64).exp()
}

/// The static cost model every harness scores with.
pub fn cost_model() -> CostModel {
    CostModel::paper_table3()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn standard_compilers_produce_valid_schedules() {
        let w = &fhe_workloads::suite(Size::Test)[0];
        let compilers = standard_compilers(30);
        assert_eq!(compilers[0].name(), "EVA");
        assert_eq!(compilers.last().unwrap().name(), "This work");
        for out in compile_all(&compilers, &w.program, 25) {
            assert!(out.scheduled.validate().is_ok(), "{}", out.report.compiler);
            assert!(out.report.estimated_latency_us > 0.0);
        }
    }

    #[test]
    fn ablation_ladder_is_ba_first() {
        let names: Vec<String> = ablation_compilers()
            .iter()
            .map(|c| c.name().to_string())
            .collect();
        assert_eq!(names, ["BA", "RA", "This work"]);
    }

    #[test]
    fn report_json_round_trips_key_fields() {
        let w = &fhe_workloads::suite(Size::Test)[0];
        let out = compile_all(&standard_compilers(30), &w.program, 25);
        let j = format!("{}", report_json(&out[2].report));
        assert!(j.contains("\"compiler\":\"This work\""));
        assert!(j.contains("\"pass\":\"hoist\""));
        assert!(j.contains("\"max_level\":"));
        assert!(j.contains("\"translation_validated\":true"), "{j}");
        assert!(j.contains("\"findings\":"), "{j}");
        assert!(j.contains("\"memory\":{\"peak_bytes\":"), "{j}");
        let mem = &out[2].report.memory;
        assert!(mem.peak_bytes >= mem.poly_peak_bytes + mem.key_bytes);
        assert!(mem.peak_bytes > 0);
        assert!(j.contains("\"parallelism\":{\"work_us\":"), "{j}");
        let par = &out[2].report.parallelism;
        assert!(par.span_us <= par.work_us + 1e-9);
        assert!(par.max_width >= 1);
    }

    #[test]
    fn diagnostics_cell_reports_tv_and_findings() {
        let w = &fhe_workloads::suite(Size::Test)[0];
        let out = compile_all(&standard_compilers(30), &w.program, 25);
        for o in &out {
            let cell = diagnostics_cell(&o.report);
            assert!(cell.ends_with('✓'), "{}: {cell}", o.report.compiler);
        }
    }
}
