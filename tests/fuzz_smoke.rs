//! Bounded differential-fuzz run plus replay of the committed reproducer
//! corpus. The corpus under `tests/corpus/` holds the shrunk program for
//! every bug the fuzzer has found (each `// fuzz-detail` names the fix);
//! replaying them through the full oracle keeps those bugs fixed. The
//! random sweep is small enough for `cargo test` — the CI `fuzz-smoke`
//! job runs the wider sweep through the `fuzz` binary.

use std::path::Path;

use fhe_fuzz::{load_dir, run_seed, GenConfig, OracleConfig};

/// Every committed reproducer must replay clean: same program, same
/// parameters, same derived inputs as at discovery time.
#[test]
fn corpus_replays_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let cases = load_dir(&dir).expect("corpus parses");
    assert!(
        cases.len() >= 6,
        "expected the committed corpus, found {} case(s) in {}",
        cases.len(),
        dir.display()
    );
    let mut failures = Vec::new();
    for case in &cases {
        let cfg = OracleConfig {
            params: case.params,
            ..OracleConfig::default()
        };
        let divs = fhe_fuzz::check_program(&case.program, &cfg);
        for d in &divs {
            failures.push(format!(
                "{}: [{}] {}",
                case.path.as_ref().unwrap().display(),
                d.label(),
                d.detail
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "corpus regressions:\n{}",
        failures.join("\n")
    );
}

/// A short random sweep with the default generator and oracle — the
/// every-commit version of the CI fuzz job. 40 seeds keeps this under a
/// few seconds while still exercising every compiler × executor pair,
/// the metamorphic checks and the textual round-trip.
#[test]
fn bounded_random_sweep_is_clean() {
    let gen_cfg = GenConfig::default();
    let oracle_cfg = OracleConfig::default();
    let mut divergent = Vec::new();
    for seed in 0..40 {
        let result = run_seed(seed, &gen_cfg, &oracle_cfg);
        if !result.divergences.is_empty() {
            let labels: Vec<String> = result.divergences.iter().map(|d| d.label()).collect();
            divergent.push(format!("seed {seed}: {}", labels.join(", ")));
        }
    }
    assert!(
        divergent.is_empty(),
        "divergent seeds:\n{}",
        divergent.join("\n")
    );
}
