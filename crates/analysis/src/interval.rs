//! Slot-magnitude intervals: one `[lo, hi]` per SSA value covering every
//! slot of that value.
//!
//! Soundness relies on IEEE-754 rounding being *monotone*: if every slot of
//! `a` lies in `[a.lo, a.hi]` and every slot of `b` in `[b.lo, b.hi]`, then
//! the rounded result `fl(a ∘ b)` computed by the plain executor is bounded
//! by the rounded endpoint combinations computed here — so the interval of
//! every value *dominates* every concrete slot the executor can produce
//! (the fuzz oracle asserts exactly this on every encrypted run).
//!
//! Scale-management ops are message-transparent (they change the ciphertext
//! representation, not the encoded message), so they are identities in this
//! domain; `rotate` permutes slots and is likewise magnitude-preserving.

use std::collections::HashMap;

use fhe_ir::{ConstValue, Op, ValueId};

use crate::domain::{AbstractDomain, AnalysisCx};

/// A closed interval `[lo, hi]` bounding every slot of a value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl Interval {
    /// The interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` (NaN bounds are rejected by the same check).
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "malformed interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// The symmetric interval `[-m, m]`.
    pub fn symmetric(m: f64) -> Self {
        Interval::new(-m.abs(), m.abs())
    }

    /// The magnitude bound `max(|lo|, |hi|)` — the `m` of `m·x_max < Q`.
    pub fn magnitude(&self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// Smallest interval containing both.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Interval addition.
    pub fn add(&self, o: &Interval) -> Interval {
        Interval {
            lo: self.lo + o.lo,
            hi: self.hi + o.hi,
        }
    }

    /// Interval subtraction. Note `x − x` over `[a, b]` yields
    /// `[a − b, b − a]`, *not* `[0, 0]`: the domain is non-relational, so
    /// syntactic cancellation must stay conservative.
    pub fn sub(&self, o: &Interval) -> Interval {
        Interval {
            lo: self.lo - o.hi,
            hi: self.hi - o.lo,
        }
    }

    /// Interval negation.
    pub fn neg(&self) -> Interval {
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }

    /// Interval multiplication (max/min over the four endpoint products).
    pub fn mul(&self, o: &Interval) -> Interval {
        let p = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        Interval {
            lo: p.iter().copied().fold(f64::INFINITY, f64::min),
            hi: p.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// The interval of a plaintext constant in a program with `slots`
    /// slots. Vectors shorter than the slot count are zero-padded at
    /// execution, so the hull includes `0` for them.
    pub fn of_const(value: &ConstValue, slots: usize) -> Interval {
        match value {
            ConstValue::Scalar(v) => Interval::point(*v),
            ConstValue::Vector(v) => {
                let mut iv = if v.is_empty() || v.len() < slots {
                    Interval::point(0.0)
                } else {
                    Interval::point(v[0])
                };
                for &x in v.iter().take(slots) {
                    iv = iv.hull(&Interval::point(x));
                }
                iv
            }
        }
    }
}

/// The interval domain: forward slot-magnitude analysis under assumed input
/// ranges.
#[derive(Debug, Clone)]
pub struct IntervalDomain {
    /// Range assumed for inputs not named in `inputs`. The default is
    /// `[-1, 1]`, matching the normalized inputs of the paper's workloads
    /// and the fuzzer's input generator.
    pub default_input: Interval,
    /// Per-input overrides, keyed by input name.
    pub inputs: HashMap<String, Interval>,
}

impl Default for IntervalDomain {
    fn default() -> Self {
        IntervalDomain {
            default_input: Interval::symmetric(1.0),
            inputs: HashMap::new(),
        }
    }
}

impl IntervalDomain {
    /// A domain assuming every input lies in `[-m, m]`.
    pub fn with_input_magnitude(m: f64) -> Self {
        IntervalDomain {
            default_input: Interval::symmetric(m),
            inputs: HashMap::new(),
        }
    }
}

impl AbstractDomain for IntervalDomain {
    type Value = Interval;

    fn transfer(&self, cx: &AnalysisCx<'_>, id: ValueId, args: &[Interval]) -> Interval {
        match cx.program.op(id) {
            Op::Input { name } => *self.inputs.get(name).unwrap_or(&self.default_input),
            Op::Const { value } => Interval::of_const(value, cx.program.slots()),
            Op::Add(..) => args[0].add(&args[1]),
            Op::Sub(..) => args[0].sub(&args[1]),
            Op::Mul(..) => args[0].mul(&args[1]),
            Op::Neg(_) => args[0].neg(),
            // Rotation permutes slots; the per-value interval already
            // covers all slots. Scale management is message-transparent.
            Op::Rotate(..) | Op::Rescale(_) | Op::ModSwitch(_) | Op::Upscale(..) => args[0],
        }
    }
}

/// The output-reserve bits (Table 1's `⌈log₂(1+m)⌉ + 1`) a program needs
/// under this domain's input assumptions: the interval analogue of the fuzz
/// oracle's measured-magnitude derivation, but a static upper bound.
pub fn required_output_reserve_bits(program: &fhe_ir::Program, domain: &IntervalDomain) -> u32 {
    let intervals = crate::domain::analyze(domain, &AnalysisCx::source(program));
    let live = fhe_ir::analysis::live(program);
    let magnitude = program
        .ids()
        .filter(|id| live[id.index()])
        .map(|id| intervals[id.index()].magnitude())
        .fold(0.0f64, f64::max);
    if !magnitude.is_finite() {
        return u32::MAX;
    }
    (1.0 + magnitude).log2().ceil() as u32 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::analyze;
    use fhe_ir::Builder;

    fn intervals_of(p: &fhe_ir::Program) -> Vec<Interval> {
        analyze(&IntervalDomain::default(), &AnalysisCx::source(p))
    }

    #[test]
    fn negate_flips_asymmetric_interval() {
        let b = Builder::new("t", 4);
        let x = b.input("x");
        let shifted = x + b.constant(0.75); // [-0.25, 1.75]
        let p = b.finish(vec![-shifted]);
        let iv = intervals_of(&p);
        let out = iv[p.outputs()[0].index()];
        assert_eq!((out.lo, out.hi), (-1.75, 0.25));
    }

    #[test]
    fn mul_by_negative_constant_flips_bounds() {
        let b = Builder::new("t", 4);
        let x = b.input("x");
        let pos = x * b.constant(0.5) + b.constant(0.5); // [0, 1]
        let out = pos * b.constant(-3.0);
        let p = b.finish(vec![out]);
        let iv = intervals_of(&p);
        let out = iv[p.outputs()[0].index()];
        assert_eq!((out.lo, out.hi), (-3.0, 0.0));
    }

    #[test]
    fn rotate_preserves_magnitude() {
        let b = Builder::new("t", 8);
        let x = b.input("x");
        let scaled = x * b.constant(2.0); // [-2, 2]
        let p = b.finish(vec![scaled.rotate(-3)]);
        let iv = intervals_of(&p);
        let rot = iv[p.outputs()[0].index()];
        assert_eq!((rot.lo, rot.hi), (-2.0, 2.0));
        assert_eq!(rot.magnitude(), 2.0);
    }

    #[test]
    fn x_minus_x_does_not_collapse_to_zero() {
        // The domain is non-relational: x − x over [-1, 1] must stay
        // [-2, 2]. (Cleanup folds syntactic x − x away before compilation,
        // but the analysis must not assume that has happened.)
        let b = Builder::new("t", 4);
        let x = b.input("x");
        let p = b.finish(vec![x.clone() - x]);
        let iv = intervals_of(&p);
        let out = iv[p.outputs()[0].index()];
        assert_eq!((out.lo, out.hi), (-2.0, 2.0));
        assert!(out.magnitude() > 0.0);
    }

    #[test]
    fn short_vector_consts_include_zero_padding() {
        let b = Builder::new("t", 8);
        let c = b.constant(vec![2.0, 3.0]); // slots 2..8 are zero
        let x = b.input("x");
        let p = b.finish(vec![x * c]);
        let iv = intervals_of(&p);
        let cv = iv[0]; // the constant is pushed first
        assert!(matches!(p.op(fhe_ir::ValueId(0)), fhe_ir::Op::Const { .. }));
        assert_eq!((cv.lo, cv.hi), (0.0, 3.0));
    }

    #[test]
    fn growth_through_a_product_chain() {
        let b = Builder::new("t", 4);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        let p = b.finish(vec![q]);
        let iv = intervals_of(&p);
        let out = iv[p.outputs()[0].index()];
        // |x³| ≤ 1, |y² + y| ≤ 2 ⇒ |q| ≤ 2.
        assert_eq!(out.magnitude(), 2.0);
    }

    #[test]
    fn reserve_derivation_matches_magnitude() {
        let b = Builder::new("t", 4);
        let x = b.input("x");
        let big = x * b.constant(100.0);
        let p = b.finish(vec![big]);
        // magnitude 100 ⇒ ⌈log₂ 101⌉ + 1 = 8.
        assert_eq!(
            required_output_reserve_bits(&p, &IntervalDomain::default()),
            8
        );
    }
}
