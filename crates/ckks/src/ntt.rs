//! Negacyclic number-theoretic transform over `Z_q[X]/(X^N + 1)`.
//!
//! Standard iterative Cooley–Tukey (forward, bit-reversed output) and
//! Gentleman–Sande (inverse) butterflies with the 2N-th root-of-unity twist
//! folded into the twiddle factors, so polynomial multiplication modulo
//! `X^N + 1` is pointwise in the transform domain.

use crate::modular::Modulus;

/// Precomputed NTT tables for one prime and one power-of-two degree.
#[derive(Debug, Clone)]
pub struct NttTable {
    modulus: Modulus,
    n: usize,
    /// ψ^bitrev(i) for the forward transform (ψ a primitive 2N-th root).
    fwd_twiddles: Vec<u64>,
    /// ψ^{-bitrev(i)} for the inverse transform.
    inv_twiddles: Vec<u64>,
    /// N^{-1} mod q.
    n_inv: u64,
}

fn bit_reverse(i: usize, log_n: u32) -> usize {
    i.reverse_bits() >> (usize::BITS - log_n)
}

/// Finds a primitive `order`-th root of unity modulo `q`
/// (requires `order | q − 1`).
fn primitive_root(m: Modulus, order: u64) -> u64 {
    let q = m.value();
    assert_eq!((q - 1) % order, 0, "order must divide q-1");
    let cofactor = (q - 1) / order;
    // Try small candidates; g^cofactor is an order-th root, primitive iff
    // its (order/2)-th power is not 1.
    for g in 2..q {
        let root = m.pow(g, cofactor);
        if m.pow(root, order / 2) != 1 {
            return root;
        }
    }
    unreachable!("no primitive root found (q not prime?)");
}

impl NttTable {
    /// Builds tables for degree `n` (a power of two ≥ 2) and prime `q ≡ 1
    /// (mod 2n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or `q` is not NTT-friendly.
    pub fn new(modulus: Modulus, n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "degree must be a power of two >= 2"
        );
        let log_n = n.trailing_zeros();
        let q = modulus.value();
        assert_eq!((q - 1) % (2 * n as u64), 0, "q must be 1 mod 2N");
        let psi = primitive_root(modulus, 2 * n as u64);
        let psi_inv = modulus.inv(psi);
        let mut fwd = vec![0u64; n];
        let mut inv = vec![0u64; n];
        let mut pow_f = 1u64;
        let mut pow_i = 1u64;
        let mut powers_f = vec![0u64; n];
        let mut powers_i = vec![0u64; n];
        for i in 0..n {
            powers_f[i] = pow_f;
            powers_i[i] = pow_i;
            pow_f = modulus.mul(pow_f, psi);
            pow_i = modulus.mul(pow_i, psi_inv);
        }
        for i in 0..n {
            let r = bit_reverse(i, log_n);
            fwd[i] = powers_f[r];
            inv[i] = powers_i[r];
        }
        let n_inv = modulus.inv(n as u64);
        NttTable {
            modulus,
            n,
            fwd_twiddles: fwd,
            inv_twiddles: inv,
            n_inv,
        }
    }

    /// The polynomial degree `N`.
    pub fn degree(&self) -> usize {
        self.n
    }

    /// The prime modulus.
    pub fn modulus(&self) -> Modulus {
        self.modulus
    }

    /// In-place forward negacyclic NTT (natural input order → transform
    /// domain).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        let m = self.modulus;
        let mut t = self.n;
        let mut stage = 1usize;
        while stage < self.n {
            t >>= 1;
            for i in 0..stage {
                let w = self.fwd_twiddles[stage + i];
                let base = 2 * i * t;
                for j in base..base + t {
                    let u = a[j];
                    let v = m.mul(a[j + t], w);
                    a[j] = m.add(u, v);
                    a[j + t] = m.sub(u, v);
                }
            }
            stage <<= 1;
        }
    }

    /// In-place inverse negacyclic NTT (transform domain → natural order),
    /// including the `1/N` normalization.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        let m = self.modulus;
        let mut t = 1usize;
        let mut stage = self.n >> 1;
        while stage >= 1 {
            let mut base = 0usize;
            for i in 0..stage {
                let w = self.inv_twiddles[stage + i];
                for j in base..base + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = m.add(u, v);
                    a[j + t] = m.mul(m.sub(u, v), w);
                }
                base += 2 * t;
            }
            t <<= 1;
            stage >>= 1;
        }
        for x in a.iter_mut() {
            *x = m.mul(*x, self.n_inv);
        }
    }
}

/// Schoolbook negacyclic multiplication, used as the test oracle.
#[cfg(test)]
pub fn negacyclic_mul_naive(m: Modulus, a: &[u64], b: &[u64]) -> Vec<u64> {
    let n = a.len();
    let mut out = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let prod = m.mul(ai, bj);
            let k = i + j;
            if k < n {
                out[k] = m.add(out[k], prod);
            } else {
                out[k - n] = m.sub(out[k - n], prod);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize) -> NttTable {
        let q = crate::primes::ntt_primes(55, n, 1)[0];
        NttTable::new(Modulus::new(q), n)
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let t = table(64);
        let m = t.modulus();
        let mut a: Vec<u64> = (0..64u64).map(|i| m.reduce(i * i + 7)).collect();
        let orig = a.clone();
        t.forward(&mut a);
        assert_ne!(a, orig, "transform must change the data");
        t.inverse(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn pointwise_matches_naive_negacyclic() {
        let t = table(32);
        let m = t.modulus();
        let a: Vec<u64> = (0..32u64).map(|i| m.reduce(i + 1)).collect();
        let b: Vec<u64> = (0..32u64).map(|i| m.reduce(3 * i + 2)).collect();
        let expect = negacyclic_mul_naive(m, &a, &b);
        let mut fa = a.clone();
        let mut fb = b.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        let mut fc: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| m.mul(x, y)).collect();
        t.inverse(&mut fc);
        assert_eq!(fc, expect);
    }

    #[test]
    fn x_times_x_pow_n_minus_1_wraps_negatively() {
        // X · X^(N−1) = X^N ≡ −1 (mod X^N + 1).
        let n = 16;
        let t = table(n);
        let m = t.modulus();
        let mut a = vec![0u64; n];
        a[1] = 1; // X
        let mut b = vec![0u64; n];
        b[n - 1] = 1; // X^(N−1)
        t.forward(&mut a);
        t.forward(&mut b);
        let mut c: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| m.mul(x, y)).collect();
        t.inverse(&mut c);
        let mut expect = vec![0u64; n];
        expect[0] = m.neg(1);
        assert_eq!(c, expect);
    }

    #[test]
    fn large_degree_roundtrip() {
        let t = table(1 << 12);
        let m = t.modulus();
        let mut a: Vec<u64> = (0..(1u64 << 12))
            .map(|i| m.reduce(i.wrapping_mul(0x9E3779B97F4A7C15)))
            .collect();
        let orig = a.clone();
        t.forward(&mut a);
        t.inverse(&mut a);
        assert_eq!(a, orig);
    }
}
