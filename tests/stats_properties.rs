//! Property tests for the serve layer's log₂-bucket latency histogram and
//! determinism tests for the cost-model → `T(k)` analysis pipeline.
//!
//! The histogram trades exactness for O(1) memory: quantiles are reported
//! as the geometric midpoint of the bucket holding the target rank. The
//! properties pinned here are the ones regression gating relies on:
//! quantiles are monotone in `q`, and every reported quantile lands in
//! the same log₂ bucket (±1 for float rounding at bucket edges) as the
//! exact order-statistic it approximates.
//!
//! The determinism tests pin that `CostModel::from_bench_json` and the
//! depgraph `T(k)` profile are pure functions of their inputs — bitwise
//! identical no matter how many threads concurrently recompute them —
//! so `fhe-serve` can cache and share `CompileReport`s across sessions
//! without cross-request nondeterminism.

use std::time::Duration;

use fhe_ir::depgraph::DepGraph;
use fhe_ir::{CompileParams, CostModel, OpClass, ScaleCompiler};
use fhe_serve::LatencyHistogram;
use reserve_core::ReserveCompiler;

// ---------------------------------------------------------------------
// Histogram properties
// ---------------------------------------------------------------------

/// SplitMix64: tiny deterministic generator so the property runs on the
/// same sample sets everywhere.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The histogram's bucket function, mirrored from `LatencyHistogram::record`.
fn bucket_of(us: u64) -> u32 {
    (64 - us.leading_zeros()).min(63)
}

/// Exact order-statistic reference: the `⌈q·n⌉`-th smallest sample.
fn exact_quantile_us(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = ((q.clamp(0.0, 1.0) * n).ceil() as usize).max(1);
    sorted[rank - 1]
}

#[test]
fn quantiles_are_monotone_and_within_one_bucket_of_exact() {
    // Several deterministic sample distributions: uniform-in-log-space
    // (exercises every bucket width), narrow clusters, and a heavy tail.
    let cases: [(u64, usize, u64); 4] = [
        // (seed, samples, max magnitude in µs)
        (0xA11CE, 500, 1 << 40),
        (0xB0B, 1_000, 1 << 20),
        (0xCAFE, 257, 1 << 10),
        (0xD00D, 64, 1 << 52),
    ];
    for (seed, n, max_us) in cases {
        let mut state = seed;
        let mut samples: Vec<u64> = (0..n)
            .map(|_| {
                // Log-uniform: pick a magnitude, then a value at it, so
                // small and large buckets are both populated.
                let bits = splitmix64(&mut state);
                let shift = (bits >> 58) % 53; // magnitude 2^0 .. 2^52
                (splitmix64(&mut state) % (1u64 << shift).max(1)).min(max_us)
            })
            .collect();
        let h = LatencyHistogram::new();
        for &us in &samples {
            h.record(Duration::from_micros(us));
        }
        samples.sort_unstable();
        assert_eq!(h.count(), n as u64);
        assert_eq!(h.max(), Duration::from_micros(*samples.last().unwrap()));

        let mut prev = Duration::ZERO;
        for step in 0..=100 {
            let q = step as f64 / 100.0;
            let got = h.quantile(q);
            // Monotone: a higher quantile never reports a lower latency.
            assert!(
                got >= prev,
                "seed {seed:#x}: quantile({q}) = {got:?} < quantile({}) = {prev:?}",
                (step - 1) as f64 / 100.0
            );
            prev = got;
            // Accuracy: the reported midpoint lives in the same log₂
            // bucket as the exact order statistic (±1 bucket of slack for
            // float rounding when a midpoint converts back to micros at a
            // bucket edge) — i.e. within the documented 2× error bound.
            let exact = exact_quantile_us(&samples, q);
            let got_us = got.as_micros().min(u128::from(u64::MAX)) as u64;
            let (be, bg) = (bucket_of(exact), bucket_of(got_us));
            assert!(
                be.abs_diff(bg) <= 1,
                "seed {seed:#x}: quantile({q}) bucket {bg} vs exact {exact}µs bucket {be}"
            );
        }

        // p50 and p99 specifically — the two the server publishes.
        assert!(h.quantile(0.5) <= h.quantile(0.99));
        assert!(h.quantile(0.99) <= Duration::from_micros(2 * samples.last().unwrap() + 1));
        // Mean lies within the sample range.
        let mean_us = h.mean().as_micros() as u64;
        assert!(mean_us >= samples[0] && mean_us <= *samples.last().unwrap());
    }
}

#[test]
fn all_mass_in_one_bucket_reports_that_bucket_for_every_quantile() {
    let h = LatencyHistogram::new();
    for _ in 0..100 {
        h.record(Duration::from_micros(300)); // bucket [256, 512)
    }
    for step in 1..=100 {
        let q = step as f64 / 100.0;
        let us = h.quantile(q).as_micros() as u64;
        assert!(
            (256..512).contains(&us),
            "quantile({q}) = {us}µs escaped the only populated bucket"
        );
    }
}

// ---------------------------------------------------------------------
// CostModel + T(k) determinism across thread counts
// ---------------------------------------------------------------------

/// A measured-latency record in the `table3` bench binary's shape, with
/// deliberately non-table values so a silent fallback to the paper's
/// Table 3 would be caught by the bitwise comparison below.
const BENCH_JSON: &str = r#"{
  "ops": [
    {"op": "modswitch (cipher)", "latency_us": [51.5, 90.25, 160.0, 215.0, 290.0]},
    {"op": "cipher x cipher",    "latency_us": [4000.0, 8200.0, 14000.0, 21500.0]},
    {"op": "rotate (cipher)",    "latency_us": [4500.0, 9400.0, 16000.0]}
  ]
}"#;

/// A program with genuine width so `T(k)` has more than one entry: four
/// independent products reduced by a tree of additions.
fn wide_program() -> fhe_ir::Program {
    let b = fhe_ir::Builder::new("tk-determinism", 8);
    let xs: Vec<_> = (0..8).map(|i| b.input(format!("x{i}"))).collect();
    let p0 = xs[0].clone() * xs[1].clone();
    let p1 = xs[2].clone() * xs[3].clone();
    let p2 = xs[4].clone() * xs[5].clone();
    let p3 = xs[6].clone() * xs[7].clone();
    let out = (p0 + p1) * (p2 + p3);
    b.finish(vec![out])
}

fn estimate_once(model: &CostModel) -> fhe_ir::depgraph::ParallelismEstimate {
    let compiled = ReserveCompiler::full()
        .compile(&wide_program(), &CompileParams::new(30))
        .expect("compiles");
    let map = compiled.scheduled.validate().expect("validates");
    DepGraph::build(&compiled.scheduled, &map, model, false).estimate()
}

#[test]
fn bench_json_model_and_t_of_k_are_deterministic_across_thread_counts() {
    let model = CostModel::from_bench_json(BENCH_JSON).expect("parses");

    // The parsed model is a pure function of the JSON: bitwise identical
    // on a reparse, including the linear extrapolation past the table.
    let reparsed = CostModel::from_bench_json(BENCH_JSON).expect("parses");
    for class in OpClass::ALL {
        for level in 1..=12u32 {
            assert_eq!(
                model.at_level(class, level).to_bits(),
                reparsed.at_level(class, level).to_bits(),
                "{class:?} level {level} differs across parses"
            );
        }
    }
    // The custom rows really took effect (no silent Table 3 fallback).
    assert_eq!(model.at_level(OpClass::ModSwitch, 1), 51.5);

    // T(k) is a pure static analysis: recomputing it concurrently from
    // 1, 2 and 4 threads yields the same profile, bit for bit, as the
    // main thread's — no hidden dependence on runtime parallelism.
    let baseline = estimate_once(&model);
    assert!(
        baseline.max_width >= 2,
        "workload must expose parallelism, got width {}",
        baseline.max_width
    );
    assert!(baseline.t_of_k.len() >= 2, "profile has multiple widths");
    for threads in [1usize, 2, 4] {
        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| s.spawn(|| estimate_once(&model)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for est in results {
            assert_eq!(
                est, baseline,
                "estimate differs when recomputed under {threads} threads"
            );
            for (&(k, t), &(bk, bt)) in est.t_of_k.iter().zip(baseline.t_of_k.iter()) {
                assert_eq!(
                    (k, t.to_bits()),
                    (bk, bt.to_bits()),
                    "T({k}) not bitwise equal"
                );
            }
        }
    }
}
