//! # fhe-baselines — the EVA and Hecate scale-management baselines
//!
//! Re-implementations of the two compilers the Reserve paper evaluates
//! against:
//!
//! - [`eva`]: conservative forward waterline scale analysis (PLDI'20);
//! - [`hecate`]: exploration-based scale management with hill climbing
//!   (CGO'22).
//!
//! Both share the [`forward`] legalizer and emit [`fhe_ir::ScheduledProgram`]s
//! checked by the same validator as the reserve compiler, so latency, error
//! and compile-time comparisons are apples-to-apples.
//!
//! # Example
//!
//! ```
//! use fhe_ir::{Builder, CompileParams};
//! let b = Builder::new("t", 64);
//! let x = b.input("x");
//! let p = b.finish(vec![x.clone() * x]);
//! let eva = fhe_baselines::eva::compile(&p, &CompileParams::new(20))?;
//! assert!(eva.scheduled.validate().is_ok());
//! # Ok::<(), fhe_baselines::LegalizeError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod eva;
pub mod forward;
pub mod hecate;

use std::time::Duration;

pub use forward::{legalize, ForwardPlan, LegalizeError};
pub use hecate::HecateOptions;

/// Output of a baseline compiler.
#[derive(Debug, Clone)]
pub struct BaselineCompiled {
    /// The scheduled program (validates by construction).
    pub scheduled: fhe_ir::ScheduledProgram,
    /// Compilation statistics.
    pub stats: BaselineStats,
}

/// Timing statistics for a baseline compilation (Table 4's columns).
#[derive(Debug, Clone)]
pub struct BaselineStats {
    /// Time spent in scale management proper.
    pub scale_management_time: Duration,
    /// End-to-end compile time (cleanup + scale management + validation).
    pub total_time: Duration,
    /// Candidate plans evaluated (1 for EVA; Table 4's `# Iters` for
    /// Hecate).
    pub iterations: usize,
    /// Statically estimated latency of the result (µs).
    pub estimated_latency_us: f64,
    /// Modulus level required of fresh encryptions.
    pub max_level: u32,
}
