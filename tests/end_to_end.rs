//! End-to-end integration: every benchmark × every compiler must produce a
//! validating schedule that computes the same function as the source
//! program, and the compilers must relate the way the paper reports
//! (reserve ≈ Hecate ≲ EVA in latency).
//!
//! All compilers are driven through the unified [`ScaleCompiler`] trait and
//! all executions through the [`Executor`] trait + the shared
//! [`outputs_close`] diff helper — no per-compiler or per-backend dispatch.

use fhe_reserve::prelude::*;
use fhe_reserve::runtime;

/// The paper's three compilers behind one interface (fixed Hecate budget
/// for determinism).
fn compilers() -> Vec<Box<dyn ScaleCompiler>> {
    vec![
        Box::new(EvaCompiler),
        Box::new(HecateCompiler {
            options: HecateOptions {
                max_iterations: 300,
                patience: 300,
                seed: 11,
                ..HecateOptions::default()
            },
        }),
        Box::new(ReserveCompiler::full()),
    ]
}

fn compile_all(program: &Program, waterline: u32) -> Vec<(String, ScheduledProgram)> {
    let params = CompileParams::new(waterline);
    compilers()
        .iter()
        .map(|c| {
            let compiled = c
                .compile(program, &params)
                .unwrap_or_else(|e| panic!("{} failed to compile: {e}", c.name()));
            (c.name().to_string(), compiled.scheduled)
        })
        .collect()
}

#[test]
fn all_workloads_compile_and_validate_under_all_compilers() {
    for w in suite(Size::Test) {
        for waterline in [20, 40] {
            for (name, s) in compile_all(&w.program, waterline) {
                s.validate()
                    .unwrap_or_else(|e| panic!("{} W={waterline} {name}: {e:?}", w.name));
            }
        }
    }
}

#[test]
fn compilation_preserves_semantics_exactly() {
    // Scale-management ops are value-identities, so the scheduled program
    // must plain-execute to exactly the source program's outputs.
    for w in suite(Size::Test) {
        let reference = runtime::plain::execute(&w.program, &w.inputs);
        for (name, s) in compile_all(&w.program, 30) {
            let run = PlainExec.execute(&s, &w.inputs).expect("validates");
            outputs_close(&run.outputs, &reference, 1e-9)
                .unwrap_or_else(|e| panic!("{} {name}: {e}", w.name));
        }
    }
}

#[test]
fn reserve_beats_eva_latency_overall() {
    // The paper claims a 41.8% average improvement over EVA, with occasional
    // small per-point losses (§8.2 reports up to 6.5% vs Hecate). Require:
    // never more than 5% worse on any point, and clearly better on average.
    let eva = EvaCompiler;
    let ours = ReserveCompiler::full();
    let mut ratios = Vec::new();
    for w in suite(Size::Test) {
        for waterline in [20, 35, 45] {
            let params = CompileParams::new(waterline);
            let eva_cost = eva
                .compile(&w.program, &params)
                .unwrap()
                .report
                .estimated_latency_us;
            let our_cost = ours
                .compile(&w.program, &params)
                .unwrap()
                .report
                .estimated_latency_us;
            assert!(
                our_cost <= eva_cost * 1.05,
                "{} W={waterline}: reserve {our_cost:.0}µs ≫ EVA {eva_cost:.0}µs",
                w.name
            );
            ratios.push(our_cost / eva_cost);
        }
    }
    let geomean = (ratios.iter().map(|x| x.ln()).sum::<f64>() / ratios.len() as f64).exp();
    assert!(
        geomean < 0.90,
        "reserve should be clearly faster than EVA on average, got ratio {geomean:.3}"
    );
}

#[test]
fn noise_simulation_runs_every_compiled_workload() {
    let sim = NoiseSimExec::default();
    for w in suite(Size::Test) {
        let (_, ours) = compile_all(&w.program, 40).pop().expect("reserve is last");
        let run = sim
            .execute(&ours, &w.inputs)
            .unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
        assert!(
            run.max_abs_error() < 1e-3,
            "{}: noisy error {} too large at W=2^40",
            w.name,
            run.max_abs_error()
        );
    }
}

#[test]
fn ablation_ordering_holds_on_average() {
    // Fig. 8: BA ≥ RA ≥ Full in latency (geomean across the suite).
    let params = CompileParams::new(20);
    let modes: Vec<ReserveCompiler> = Mode::ALL
        .iter()
        .map(|&m| ReserveCompiler::with_mode(m))
        .collect();
    let mut ratios_ra = Vec::new();
    let mut ratios_full = Vec::new();
    for w in suite(Size::Test) {
        let cost: Vec<f64> = modes
            .iter()
            .map(|c| {
                c.compile(&w.program, &params)
                    .unwrap()
                    .report
                    .estimated_latency_us
            })
            .collect();
        let (cb, cr, cf) = (cost[0], cost[1], cost[2]);
        ratios_ra.push(cr / cb);
        ratios_full.push(cf / cb);
        assert!(
            cf <= cb * 1.001,
            "{}: full {cf:.0} worse than BA {cb:.0}",
            w.name
        );
    }
    let geomean = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    assert!(geomean(&ratios_full) <= geomean(&ratios_ra) + 1e-9);
    assert!(
        geomean(&ratios_full) < 1.0,
        "full pipeline must help overall"
    );
}
