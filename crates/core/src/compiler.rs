//! The reserve compiler driver: cleanup → ordering → reserve allocation →
//! type checking → placement → hoisting, with the paper's BA / RA / full
//! ablation modes (§8.3).
//!
//! The driver is a [`PassManager`] pipeline (see [`fhe_ir::pipeline`]):
//! each phase is a [`Pass`] and the per-phase timing that used to be
//! hand-rolled `Instant` bookkeeping now falls out of the recorded
//! [`PipelineTrace`]. [`ReserveCompiler`] exposes the whole thing behind
//! the workspace-wide [`ScaleCompiler`] trait.

use std::time::Instant;

use fhe_analysis::{DepGraphPass, LintPass, TranslationValidatePass};
use fhe_ir::pipeline::{
    finish_compiled, CleanupPass, CompileError, CompileReport, Compiled as UnifiedCompiled, Pass,
    PassCx, PassError, PassIr, PassKind, PassManager, PipelineTrace, ScaleCompiler,
};
use fhe_ir::{CompileParams, CostModel, Program, ScheduledProgram};

use crate::alloc::{allocate, ReserveSolution};
use crate::hoist::hoist;
use crate::ordering::{allocation_order, naive_order, AllocationOrder};
use crate::placement::place;
use crate::types;

/// Ablation configuration (Fig. 8 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Backward analysis only: no redistribution, no hoisting.
    Ba,
    /// Reserve allocation with redistribution, no hoisting.
    Ra,
    /// The full pipeline: redistribution + rescale hoisting ("this work").
    Full,
}

impl Mode {
    /// All modes, in the paper's Fig. 8 order.
    pub const ALL: [Mode; 3] = [Mode::Ba, Mode::Ra, Mode::Full];

    /// The paper's label for this configuration.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Ba => "BA",
            Mode::Ra => "RA",
            Mode::Full => "This work",
        }
    }

    fn redistribute(self) -> bool {
        !matches!(self, Mode::Ba)
    }

    fn hoist(self) -> bool {
        matches!(self, Mode::Full)
    }
}

/// How the backward analysis orders its visits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingStrategy {
    /// The paper's §6.1 ordering: heavy dependence chains first.
    CostPriority,
    /// Plain reverse-topological order (ablation baseline).
    ReverseTopological,
}

/// Latency-vs-working-set preference, recorded in the compile report's
/// static memory estimate and honored by the encrypted runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkingSet {
    /// Favor latency: the runtime may hoist rotation groups, sharing one
    /// key-switch decomposition at the cost of holding every group output
    /// live at once (default).
    #[default]
    Latency,
    /// Favor a compact working set: rotation hoisting is disabled, so the
    /// static peak (and the runtime's measured peak) stays lower.
    Compact,
}

impl WorkingSet {
    /// Whether rotation-group hoisting is permitted under this preference.
    pub fn hoist_rotations(self) -> bool {
        matches!(self, WorkingSet::Latency)
    }
}

/// Options for [`compile`].
#[derive(Debug, Clone)]
pub struct Options {
    /// RNS-CKKS compilation parameters (waterline, `R`, max level).
    pub params: CompileParams,
    /// Latency model used for ordering and hoisting decisions.
    pub cost_model: CostModel,
    /// Ablation mode.
    pub mode: Mode,
    /// Run CSE/DCE before scale management (both baselines do).
    pub cleanup: bool,
    /// Allocation-order strategy (ablation of §6.1).
    pub ordering: OrderingStrategy,
    /// Latency-vs-working-set preference for the memory model.
    pub working_set: WorkingSet,
}

impl Options {
    /// Full-pipeline options at the given waterline (in bits).
    pub fn new(waterline_bits: u32) -> Self {
        Options {
            params: CompileParams::new(waterline_bits),
            cost_model: CostModel::paper_table3(),
            mode: Mode::Full,
            cleanup: true,
            ordering: OrderingStrategy::CostPriority,
            working_set: WorkingSet::default(),
        }
    }

    /// Same, with an explicit ablation mode.
    pub fn with_mode(waterline_bits: u32, mode: Mode) -> Self {
        Options {
            mode,
            ..Self::new(waterline_bits)
        }
    }
}

/// Output of the reserve compiler: the unified artifact plus the certified
/// reserve solution for inspection and tests.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The scheduled program (validates by construction).
    pub scheduled: ScheduledProgram,
    /// The certified reserve solution (for inspection/tests).
    pub solution: ReserveSolution,
    /// Compilation statistics, uniform across the workspace's compilers.
    pub report: CompileReport,
}

impl From<Compiled> for UnifiedCompiled {
    fn from(c: Compiled) -> Self {
        UnifiedCompiled {
            scheduled: c.scheduled,
            report: c.report,
        }
    }
}

/// §6.1 visit ordering: computes the [`AllocationOrder`] artifact.
#[derive(Debug, Clone, Copy)]
struct OrderPass {
    strategy: OrderingStrategy,
}

impl Pass for OrderPass {
    fn name(&self) -> &str {
        "order"
    }

    fn run(&mut self, ir: PassIr, cx: &mut PassCx) -> Result<PassIr, PassError> {
        let order = match self.strategy {
            OrderingStrategy::CostPriority => {
                allocation_order(ir.program(), &cx.params, &cx.cost_model)
            }
            OrderingStrategy::ReverseTopological => naive_order(ir.program()),
        };
        cx.put(order);
        Ok(ir)
    }
}

/// Backward reserve allocation (§6), optionally with redistribution (§6.2).
#[derive(Debug, Clone, Copy)]
struct AllocPass {
    redistribute: bool,
}

impl Pass for AllocPass {
    fn name(&self) -> &str {
        "alloc"
    }

    fn run(&mut self, ir: PassIr, cx: &mut PassCx) -> Result<PassIr, PassError> {
        let order = cx
            .take::<AllocationOrder>()
            .ok_or_else(|| PassError::new("alloc", "order pass did not run"))?;
        let solution = allocate(ir.program(), &cx.params, &order, self.redistribute);
        cx.add_iterations(1);
        cx.put(solution);
        Ok(ir)
    }
}

/// §7 type checking of the reserve solution against the program.
#[derive(Debug, Clone, Copy)]
struct TypeCheckPass;

impl Pass for TypeCheckPass {
    fn name(&self) -> &str {
        "typecheck"
    }

    fn kind(&self) -> PassKind {
        PassKind::Check
    }

    fn run(&mut self, ir: PassIr, cx: &mut PassCx) -> Result<PassIr, PassError> {
        let solution = cx
            .get::<ReserveSolution>()
            .ok_or_else(|| PassError::new("typecheck", "alloc pass did not run"))?;
        let errs = types::check(ir.program(), &cx.params, solution);
        if !errs.is_empty() {
            return Err(PassError::with_diagnostics("typecheck", &errs));
        }
        Ok(ir)
    }
}

/// Materializes the certified solution as explicit scale-management ops.
#[derive(Debug, Clone, Copy)]
struct PlacePass;

impl Pass for PlacePass {
    fn name(&self) -> &str {
        "place"
    }

    fn run(&mut self, ir: PassIr, cx: &mut PassCx) -> Result<PassIr, PassError> {
        let program = ir.try_source("place")?;
        let solution = cx
            .get::<ReserveSolution>()
            .ok_or_else(|| PassError::new("place", "alloc pass did not run"))?;
        Ok(PassIr::Scheduled(place(&program, &cx.params, solution)))
    }
}

/// §6.3 rescale hoisting over the scheduled program.
#[derive(Debug, Clone, Copy)]
struct HoistPass;

impl Pass for HoistPass {
    fn name(&self) -> &str {
        "hoist"
    }

    fn run(&mut self, ir: PassIr, cx: &mut PassCx) -> Result<PassIr, PassError> {
        let mut scheduled = ir.try_scheduled("hoist")?;
        let n = hoist(&mut scheduled, &cx.cost_model);
        cx.hoists += n;
        cx.note(format!("{n} rescale(s) hoisted"));
        Ok(PassIr::Scheduled(scheduled))
    }
}

/// Builds the reserve pipeline for `options` (without running it).
fn pipeline_for(options: &Options) -> PassManager {
    let mut pm = PassManager::new();
    if options.cleanup {
        pm = pm.with(CleanupPass);
    }
    pm = pm
        .with(OrderPass {
            strategy: options.ordering,
        })
        .with(AllocPass {
            redistribute: options.mode.redistribute(),
        })
        .with(TypeCheckPass)
        .with(PlacePass);
    if options.mode.hoist() {
        pm = pm.with(HoistPass);
    }
    pm
}

/// Op count entering scale management (i.e. after cleanup, if it ran).
fn ops_entering_scale_management(trace: &PipelineTrace, fallback: usize) -> usize {
    trace.pass("order").map_or(fallback, |r| r.ops_before)
}

/// Compiles a program with the reserve pipeline.
///
/// # Errors
///
/// Fails in pass `"typecheck"` when the program cannot be typed under the
/// given parameters (most commonly: multiplicative depth needs more than
/// `params.max_level` levels).
pub fn compile(program: &Program, options: &Options) -> Result<Compiled, CompileError> {
    let label = options.mode.label();
    let t_total = Instant::now();
    let mut cx = PassCx::new(options.params, options.cost_model.clone());
    cx.put(fhe_ir::MemoryModelConfig {
        hoist_rotations: options.working_set.hoist_rotations(),
    });
    let (ir, trace) = pipeline_for(options)
        .with(DepGraphPass)
        .with(LintPass::default())
        .with(TranslationValidatePass::new(program.clone()))
        .run(PassIr::Source(program.clone()), &mut cx)
        .map_err(|e| CompileError::in_compiler(label, e))?;
    let scheduled = ir
        .try_scheduled("finish")
        .map_err(|e| CompileError::in_compiler(label, e))?;
    let solution = cx
        .take::<ReserveSolution>()
        .expect("alloc pass leaves its solution in the context");
    let ops_before = ops_entering_scale_management(&trace, program.num_ops());
    let unified = finish_compiled(label, scheduled, trace, &cx, t_total.elapsed(), ops_before)?;
    Ok(Compiled {
        scheduled: unified.scheduled,
        solution,
        report: unified.report,
    })
}

/// The reserve compiler behind the workspace-wide [`ScaleCompiler`] trait.
///
/// Holds everything but the [`CompileParams`], which arrive per call so one
/// configured compiler can serve a waterline sweep.
#[derive(Debug, Clone)]
pub struct ReserveCompiler {
    /// Ablation mode (drives the reported name: "BA" / "RA" / "This work").
    pub mode: Mode,
    /// Latency model used for ordering and hoisting decisions.
    pub cost_model: CostModel,
    /// Run CSE/DCE before scale management.
    pub cleanup: bool,
    /// Allocation-order strategy.
    pub ordering: OrderingStrategy,
    /// Latency-vs-working-set preference for the memory model.
    pub working_set: WorkingSet,
}

impl ReserveCompiler {
    /// The full pipeline ("This work").
    pub fn full() -> Self {
        Self::with_mode(Mode::Full)
    }

    /// A specific ablation mode with paper-default settings.
    pub fn with_mode(mode: Mode) -> Self {
        ReserveCompiler {
            mode,
            cost_model: CostModel::paper_table3(),
            cleanup: true,
            ordering: OrderingStrategy::CostPriority,
            working_set: WorkingSet::default(),
        }
    }

    fn options(&self, params: &CompileParams) -> Options {
        Options {
            params: *params,
            cost_model: self.cost_model.clone(),
            mode: self.mode,
            cleanup: self.cleanup,
            ordering: self.ordering,
            working_set: self.working_set,
        }
    }
}

impl ScaleCompiler for ReserveCompiler {
    fn name(&self) -> &str {
        self.mode.label()
    }

    fn compile(
        &self,
        program: &Program,
        params: &CompileParams,
    ) -> Result<UnifiedCompiled, CompileError> {
        compile(program, &self.options(params)).map(UnifiedCompiled::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::Builder;

    fn fig2a() -> Program {
        let b = Builder::new("fig2a", 8);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        b.finish(vec![q])
    }

    #[test]
    fn full_pipeline_reproduces_fig2_ordering() {
        // EVA's plan costs 390 (hundreds of µs); the paper's step-1 plan 353
        // and step-2 plan 335. Our full pipeline must land in that band.
        let p = fig2a();
        let full = compile(&p, &Options::new(20)).unwrap();
        let ra = compile(&p, &Options::with_mode(20, Mode::Ra)).unwrap();
        let ba = compile(&p, &Options::with_mode(20, Mode::Ba)).unwrap();
        let f = full.report.estimated_latency_us / 100.0;
        let r = ra.report.estimated_latency_us / 100.0;
        let bb = ba.report.estimated_latency_us / 100.0;
        assert!(f < r, "hoisting must help on Fig. 2a: {f} vs {r}");
        assert!(r <= bb, "redistribution must not hurt: {r} vs {bb}");
        assert!((300.0..380.0).contains(&f), "full cost {f} should be ≈335");
        assert!((330.0..400.0).contains(&r), "RA cost {r} should be ≈353");
    }

    #[test]
    fn modes_all_validate() {
        let p = fig2a();
        for mode in Mode::ALL {
            for wl in [15, 25, 35, 45] {
                let out = compile(&p, &Options::with_mode(wl, mode)).unwrap();
                assert!(out.scheduled.validate().is_ok());
                assert!(out.report.max_level >= 1);
            }
        }
    }

    #[test]
    fn depth_beyond_max_level_errors() {
        let b = Builder::new("deep", 4);
        let x = b.input("x");
        let mut acc = x;
        for _ in 0..8 {
            acc = acc.clone() * acc;
        }
        let p = b.finish(vec![acc]);
        let mut options = Options::new(50);
        options.params.max_level = 3;
        let err = compile(&p, &options).unwrap_err();
        assert_eq!(err.error.pass, "typecheck");
        assert!(!err.error.diagnostics.is_empty());
    }

    #[test]
    fn cleanup_shrinks_duplicate_work() {
        let b = Builder::new("dup", 8);
        let x = b.input("x");
        let a = x.clone() * x.clone();
        let c = x.clone() * x.clone();
        let out = a + c;
        let p = b.finish(vec![out]);
        let compiled = compile(&p, &Options::new(20)).unwrap();
        // One mul survives CSE; with x, add, and any scale management the
        // total stays small.
        assert!(compiled.report.ops_before < p.num_ops());
    }

    #[test]
    fn report_times_and_trace_are_populated() {
        let p = fig2a();
        let out = compile(&p, &Options::new(20)).unwrap();
        assert!(out.report.total_time >= out.report.scale_management_time);
        assert!(out.report.estimated_latency_us > 0.0);
        let names: Vec<&str> = out
            .report
            .trace
            .passes
            .iter()
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(
            names,
            [
                "cleanup",
                "order",
                "alloc",
                "typecheck",
                "place",
                "hoist",
                "depgraph",
                "lint",
                "translation-validate"
            ]
        );
        assert_eq!(out.report.translation_validated, Some(true));
        let place = out.report.trace.pass("place").unwrap();
        assert!(
            place.ops_after > place.ops_before,
            "placement inserts SM ops"
        );
        assert!(place.max_level_before.is_none() && place.max_level_after.is_some());
        assert_eq!(
            out.report.hoists,
            out.report
                .trace
                .pass("hoist")
                .map(|_| out.report.hoists)
                .unwrap()
        );
    }

    #[test]
    fn trait_object_compile_matches_direct_call() {
        let p = fig2a();
        let params = CompileParams::new(20);
        let direct = compile(&p, &Options::new(20)).unwrap();
        let compilers: Vec<Box<dyn ScaleCompiler>> = vec![Box::new(ReserveCompiler::full())];
        for c in &compilers {
            let via_trait = c.compile(&p, &params).unwrap();
            assert_eq!(via_trait.report.compiler, "This work");
            assert_eq!(
                via_trait.report.estimated_latency_us,
                direct.report.estimated_latency_us
            );
            assert_eq!(
                via_trait.scheduled.program.num_ops(),
                direct.scheduled.program.num_ops()
            );
        }
    }
}

#[cfg(test)]
mod ordering_ablation_tests {
    use super::*;
    use fhe_ir::Builder;

    #[test]
    fn naive_ordering_compiles_and_validates() {
        let b = Builder::new("t", 8);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        let p = b.finish(vec![q]);
        let mut options = Options::new(20);
        options.ordering = OrderingStrategy::ReverseTopological;
        let out = compile(&p, &options).unwrap();
        assert!(out.scheduled.validate().is_ok());
        // Both orderings produce locally-optimal (but possibly different)
        // plans; each must beat EVA's 390 on this example.
        assert!(out.report.estimated_latency_us < 39000.0);
    }

    #[test]
    fn multi_output_programs_compile() {
        let b = Builder::new("multi", 8);
        let x = b.input("x");
        let y = b.input("y");
        let a = x.clone() * y.clone();
        let c = x.clone() + y;
        let deep = a.clone() * a.clone() * x;
        let p = b.finish(vec![a, c, deep]);
        for mode in Mode::ALL {
            let out = compile(&p, &Options::with_mode(25, mode)).unwrap();
            let map = out.scheduled.validate().unwrap();
            assert_eq!(out.scheduled.program.outputs().len(), 3);
            // Every output keeps at least the configured output reserve.
            for &o in out.scheduled.program.outputs() {
                let reserve =
                    fhe_ir::Frac::from(map.level(o)) * fhe_ir::Frac::from(60) - map.scale_bits(o);
                assert!(reserve >= fhe_ir::Frac::ZERO);
            }
        }
    }

    #[test]
    fn no_cleanup_option_respected() {
        let b = Builder::new("dup", 8);
        let x = b.input("x");
        let a = x.clone() * x.clone();
        let c = x.clone() * x.clone();
        let out_expr = a + c;
        let p = b.finish(vec![out_expr]);
        let mut options = Options::new(20);
        options.cleanup = false;
        let out = compile(&p, &options).unwrap();
        // Duplicate squares survive without CSE.
        assert!(out.report.ops_before == p.num_ops());
        out.scheduled.validate().unwrap();
    }
}
