//! A recycling arena for RNS limb buffers.
//!
//! Every limb of every [`crate::poly::RnsPoly`] is a `Vec<u64>` of length
//! `N`, so one uniform free list serves polynomials at every level: a
//! checkout for a level-`l` polynomial takes `l` (+1 with the special
//! limb) buffers, and recycling a polynomial returns them. Buffers are
//! ordinary `Vec`s — checkout/return is pure accounting, so a pooled
//! polynomial that escapes (e.g. into a caller-held ciphertext) simply
//! drops normally and only the pool's live-byte counter stays high until
//! the owner recycles it.
//!
//! The pool is built for concurrent traffic: the op-level DAG executor
//! checks polynomials out from every pool worker at once, on top of the
//! per-digit key-switch fan-out. The free list is sharded (each thread
//! has a home shard, falling back to its siblings when empty) so
//! checkouts don't serialize on one lock, and every counter is an atomic
//! whose value stays *exact* under contention — hit-rate and peak-byte
//! metering feed the memory model, so approximate counters would poison
//! the calibration. Peak tracking relies on the post-increment value of
//! `live_bytes`: the thread whose increment produces the high-water mark
//! observes that exact value and publishes it with `fetch_max`.

//! All counters and shard locks come from the [`fhe_conc::sync`] facade,
//! so checker builds (`--cfg fhe_conc`) can exhaustively interleave
//! concurrent `take_raw`/`put` traffic and prove the exactness claims
//! above (`tests/conc_models.rs`).

#[cfg(not(fhe_conc))]
use std::cell::Cell;

#[cfg(not(fhe_conc))]
use fhe_conc::sync::atomic::AtomicUsize;
use fhe_conc::sync::atomic::{AtomicU64, Ordering};
use fhe_conc::sync::Mutex;

/// Number of free-list shards. A small power of two: enough to spread
/// the handful of pool workers, cheap to scan when a home shard is dry.
const SHARDS: usize = 8;

/// Hands each thread a home shard, round-robin across all threads that
/// ever touch a pool.
///
/// Checker builds derive the shard from the deterministic model thread id
/// instead: thread-local round-robin state would leak across executions
/// (model OS threads are fresh each run while the static counter is not),
/// making shard placement — and thus the explored state space —
/// non-reproducible.
#[cfg(not(fhe_conc))]
fn home_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HOME: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    HOME.with(|h| {
        if h.get() == usize::MAX {
            h.set(NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS);
        }
        h.get()
    })
}

#[cfg(fhe_conc)]
fn home_shard() -> usize {
    fhe_conc::current_thread_id() % SHARDS
}

/// Counters describing a [`PolyPool`]'s traffic. Byte figures cover only
/// pool-managed buffers (checked-out or adopted); key material and encoder
/// scratch are accounted separately by the runtime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served from the free list.
    pub hits: u64,
    /// Checkouts that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers returned to the free list.
    pub returns: u64,
    /// Foreign buffers adopted into the live accounting (e.g. fresh
    /// encryptions produced outside the pool).
    pub adopted: u64,
    /// Bytes currently checked out (live polynomials).
    pub live_bytes: u64,
    /// High-water mark of [`PoolStats::live_bytes`].
    pub peak_bytes: u64,
    /// Bytes currently parked on the free list.
    pub free_bytes: u64,
}

impl PoolStats {
    /// Fraction of checkouts served from the free list (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The atomic twins of [`PoolStats`]; every update is exact (no sampled
/// or racy-read-modify-write counters).
#[derive(Debug, Default)]
struct StatCells {
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    adopted: AtomicU64,
    live_bytes: AtomicU64,
    peak_bytes: AtomicU64,
    free_bytes: AtomicU64,
}

/// A sharded free list of `N`-length limb buffers shared by one evaluator
/// (see the module docs for the accounting and concurrency model).
#[derive(Debug)]
pub struct PolyPool {
    degree: usize,
    shards: Vec<Mutex<Vec<Vec<u64>>>>,
    stats: StatCells,
}

impl PolyPool {
    /// An empty pool for limb buffers of length `degree`.
    pub fn new(degree: usize) -> Self {
        PolyPool {
            degree,
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            stats: StatCells::default(),
        }
    }

    /// The limb length this pool recycles.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Checks out `count` zeroed limb buffers.
    pub fn take_zeroed(&self, count: usize) -> Vec<Vec<u64>> {
        let mut limbs = self.take_raw(count);
        for limb in &mut limbs {
            limb.fill(0);
        }
        limbs
    }

    /// Checks out `count` limb buffers with unspecified contents — for
    /// callers that overwrite every slot (clones, automorphism targets).
    pub fn take_raw(&self, count: usize) -> Vec<Vec<u64>> {
        let limb_bytes = (self.degree * 8) as u64;
        let mut limbs = Vec::with_capacity(count);
        let home = home_shard();
        // Drain the home shard first, then siblings; no lock is held
        // across shards, so concurrent checkouts interleave freely.
        for i in 0..self.shards.len() {
            if limbs.len() == count {
                break;
            }
            let mut shard = self.shards[(home + i) % self.shards.len()]
                .lock()
                .expect("pool shard lock");
            while limbs.len() < count {
                match shard.pop() {
                    Some(buf) => limbs.push(buf),
                    None => break,
                }
            }
        }
        let reused = limbs.len() as u64;
        let fresh = count as u64 - reused;
        self.stats.hits.fetch_add(reused, Ordering::Relaxed);
        self.stats
            .free_bytes
            .fetch_sub(reused * limb_bytes, Ordering::Relaxed);
        self.stats.misses.fetch_add(fresh, Ordering::Relaxed);
        let live = self
            .stats
            .live_bytes
            .fetch_add(count as u64 * limb_bytes, Ordering::Relaxed)
            + count as u64 * limb_bytes;
        self.stats.peak_bytes.fetch_max(live, Ordering::Relaxed);
        for _ in 0..fresh {
            limbs.push(vec![0u64; self.degree]);
        }
        limbs
    }

    /// Returns limb buffers to the free list. Buffers whose length differs
    /// from the pool's degree are dropped (never resized in place).
    pub fn put(&self, limbs: impl IntoIterator<Item = Vec<u64>>) {
        let limb_bytes = (self.degree * 8) as u64;
        let mut kept = Vec::new();
        let mut total = 0u64;
        for limb in limbs {
            total += 1;
            if limb.len() == self.degree {
                kept.push(limb);
            }
        }
        if total == 0 {
            return;
        }
        let returned = kept.len() as u64;
        // Live bytes saturate rather than wrap if a caller returns more
        // than it checked out or adopted (mirrors the serial accounting).
        let _ = self
            .stats
            .live_bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(total * limb_bytes))
            });
        self.stats.returns.fetch_add(returned, Ordering::Relaxed);
        self.stats
            .free_bytes
            .fetch_add(returned * limb_bytes, Ordering::Relaxed);
        if !kept.is_empty() {
            self.shards[home_shard()]
                .lock()
                .expect("pool shard lock")
                .append(&mut kept);
        }
    }

    /// Registers `limbs` buffers created outside the pool (e.g. a fresh
    /// encryption) as live, so that recycling them later balances the
    /// accounting and peak bytes cover all polynomial memory.
    pub fn adopt(&self, limbs: usize) {
        let bytes = (limbs * self.degree * 8) as u64;
        self.stats
            .adopted
            .fetch_add(limbs as u64, Ordering::Relaxed);
        let live = self.stats.live_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.stats.peak_bytes.fetch_max(live, Ordering::Relaxed);
    }

    /// Total buffers currently parked across all shards. Scans every
    /// shard lock, so (like [`PolyPool::stats`]) the sum is only
    /// meaningful at quiescence; exposed for the model-checker suite,
    /// which proves `parked_buffers * limb_bytes == free_bytes` there.
    #[doc(hidden)]
    pub fn parked_buffers(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("pool shard lock").len())
            .sum()
    }

    /// A snapshot of the pool's counters. Each counter is individually
    /// exact; under concurrent traffic the fields are read one at a time,
    /// so cross-field invariants are only guaranteed at quiescence.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            returns: self.stats.returns.load(Ordering::Relaxed),
            adopted: self.stats.adopted.load(Ordering::Relaxed),
            live_bytes: self.stats.live_bytes.load(Ordering::Relaxed),
            peak_bytes: self.stats.peak_bytes.load(Ordering::Relaxed),
            free_bytes: self.stats.free_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_miss_then_hit() {
        let pool = PolyPool::new(8);
        let a = pool.take_zeroed(3);
        assert_eq!(a.len(), 3);
        let s = pool.stats();
        assert_eq!(s.misses, 3);
        assert_eq!(s.hits, 0);
        assert_eq!(s.live_bytes, 3 * 64);
        pool.put(a);
        let s = pool.stats();
        assert_eq!(s.returns, 3);
        assert_eq!(s.live_bytes, 0);
        assert_eq!(s.free_bytes, 3 * 64);
        let b = pool.take_zeroed(2);
        let s = pool.stats();
        assert_eq!(s.hits, 2, "reuse must come from the free list");
        assert_eq!(s.misses, 3);
        assert!(b.iter().all(|l| l.iter().all(|&x| x == 0)));
    }

    #[test]
    fn zeroed_checkout_clears_recycled_contents() {
        let pool = PolyPool::new(4);
        let mut a = pool.take_zeroed(1);
        a[0][2] = 99;
        pool.put(a);
        let b = pool.take_zeroed(1);
        assert_eq!(b[0], vec![0u64; 4]);
    }

    #[test]
    fn peak_tracks_high_water_and_adoption() {
        let pool = PolyPool::new(8);
        let a = pool.take_zeroed(2);
        pool.adopt(3);
        assert_eq!(pool.stats().live_bytes, 5 * 64);
        assert_eq!(pool.stats().peak_bytes, 5 * 64);
        pool.put(a);
        // Adopted bytes stay live until their buffers are put back.
        assert_eq!(pool.stats().live_bytes, 3 * 64);
        assert_eq!(pool.stats().peak_bytes, 5 * 64);
        assert_eq!(pool.stats().adopted, 3);
    }

    #[test]
    fn wrong_length_buffers_are_dropped_not_pooled() {
        let pool = PolyPool::new(8);
        pool.adopt(1);
        pool.put([vec![0u64; 4]]);
        let s = pool.stats();
        assert_eq!(s.returns, 0);
        assert_eq!(s.free_bytes, 0);
        assert_eq!(s.live_bytes, 0, "live accounting still balanced");
    }

    #[test]
    fn hit_rate_reflects_traffic() {
        let pool = PolyPool::new(8);
        assert_eq!(pool.stats().hit_rate(), 0.0);
        let a = pool.take_zeroed(1);
        pool.put(a);
        let _b = pool.take_zeroed(1);
        assert!((pool.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sibling_shards_are_drained_when_the_home_shard_is_dry() {
        let pool = PolyPool::new(8);
        // Park buffers from this thread (one home shard), then demand more
        // than any single shard batch from a different home shard.
        let a = pool.take_zeroed(5);
        pool.put(a);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let b = pool.take_raw(5);
                assert_eq!(b.len(), 5);
                assert_eq!(pool.stats().hits, 5, "all five reused across shards");
                pool.put(b);
            });
        });
    }

    #[test]
    fn contended_counters_stay_exact() {
        const THREADS: usize = 8;
        const ROUNDS: usize = 200;
        let pool = PolyPool::new(32);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let pool = &pool;
                scope.spawn(move || {
                    for r in 0..ROUNDS {
                        let take = 1 + (t + r) % 4;
                        let bufs = pool.take_zeroed(take);
                        assert_eq!(bufs.len(), take);
                        pool.put(bufs);
                    }
                });
            }
        });
        let s = pool.stats();
        let checkouts: u64 = (0..THREADS)
            .flat_map(|t| (0..ROUNDS).map(move |r| (1 + (t + r) % 4) as u64))
            .sum();
        assert_eq!(s.hits + s.misses, checkouts, "every checkout counted once");
        assert_eq!(s.returns, checkouts, "every buffer returned exactly once");
        assert_eq!(s.live_bytes, 0, "balanced take/put leaves nothing live");
        assert_eq!(
            s.free_bytes,
            (s.returns - s.hits) * 32 * 8,
            "parked bytes equal net returns"
        );
        assert!(
            s.peak_bytes >= 4 * 32 * 8,
            "peak saw at least one full take"
        );
        assert!(
            s.peak_bytes <= checkouts * 32 * 8,
            "peak never exceeds total traffic"
        );
    }
}
