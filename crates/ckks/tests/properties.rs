//! Property-style tests of the RNS-CKKS scheme: homomorphism laws over
//! random data, round-trips, and noise growth sanity.
//!
//! The workspace builds offline (no proptest), so each property runs as a
//! deterministic seeded loop: every case is reproducible from its printed
//! case index.

use fhe_ckks::{
    decrypt, encrypt_public, encrypt_symmetric, CkksContext, CkksParams, Encoder, Evaluator,
    GaloisKeys, KeyGenerator,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ctx() -> CkksContext {
    CkksContext::new(CkksParams {
        poly_degree: 128,
        max_level: 3,
        modulus_bits: 45,
        special_bits: 46,
        error_std: 3.2,
    })
}

fn random_values(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(-4.0f64..4.0)).collect()
}

#[test]
fn encode_decode_roundtrip() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0xE0DE ^ case);
        let values = random_values(&mut rng, 64);
        let level = rng.gen_range(1usize..3);
        let ctx = ctx();
        let enc = Encoder::new(&ctx);
        let pt = enc.encode(&values, 2f64.powi(30), level);
        let back = enc.decode(&pt);
        for (a, b) in back.iter().zip(&values) {
            assert!((a - b).abs() < 1e-6, "case {case}: {a} vs {b}");
        }
    }
}

#[test]
fn homomorphic_add_mul() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0xADD3 ^ case);
        let xs = random_values(&mut rng, 64);
        let ys = random_values(&mut rng, 64);
        let ctx = ctx();
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key();
        let relin = kg.relin_key(&mut rng);
        let ev = Evaluator::new(&ctx, Some(relin), GaloisKeys::default());
        let scale = 2f64.powi(40);
        let ca = encrypt_symmetric(&ctx, &sk, &ev.encoder().encode(&xs, scale, 2), &mut rng);
        let cb = encrypt_symmetric(&ctx, &sk, &ev.encoder().encode(&ys, scale, 2), &mut rng);

        let sum = ev.encoder().decode(&decrypt(&ctx, &sk, &ev.add(&ca, &cb)));
        let prod = ev
            .encoder()
            .decode(&decrypt(&ctx, &sk, &ev.rescale(&ev.mul(&ca, &cb))));
        for i in 0..64 {
            assert!(
                (sum[i] - (xs[i] + ys[i])).abs() < 1e-3,
                "case {case}: add slot {i}"
            );
            assert!(
                (prod[i] - xs[i] * ys[i]).abs() < 1e-2,
                "case {case}: mul slot {i}: {} vs {}",
                prod[i],
                xs[i] * ys[i]
            );
        }
    }
}

#[test]
fn rotation_composes() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0x207A7E ^ case);
        let xs = random_values(&mut rng, 64);
        let k1 = rng.gen_range(0i64..8);
        let k2 = rng.gen_range(0i64..8);
        let ctx = ctx();
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key();
        let gk = kg.galois_keys([k1, k2, k1 + k2], &mut rng);
        let ev = Evaluator::new(&ctx, None, gk);
        let ca = encrypt_symmetric(
            &ctx,
            &sk,
            &ev.encoder().encode(&xs, 2f64.powi(35), 1),
            &mut rng,
        );
        // rotate(rotate(x, k1), k2) == rotate(x, k1 + k2)
        let double = ev.rotate(&ev.rotate(&ca, k1), k2);
        let single = ev.rotate(&ca, k1 + k2);
        let d = ev.encoder().decode(&decrypt(&ctx, &sk, &double));
        let s = ev.encoder().decode(&decrypt(&ctx, &sk, &single));
        for i in 0..16 {
            assert!(
                (d[i] - s[i]).abs() < 1e-1,
                "case {case}: slot {i}: {} vs {}",
                d[i],
                s[i]
            );
        }
    }
}

#[test]
fn public_and_symmetric_agree() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0x9B ^ case);
        let xs = random_values(&mut rng, 32);
        let ctx = ctx();
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key();
        let pk = kg.public_key(&mut rng);
        let enc = Encoder::new(&ctx);
        let pt = enc.encode(&xs, 2f64.powi(35), 1);
        let c_sym = encrypt_symmetric(&ctx, &sk, &pt, &mut rng);
        let c_pub = encrypt_public(&ctx, &pk, &pt, &mut rng);
        let d_sym = enc.decode(&decrypt(&ctx, &sk, &c_sym));
        let d_pub = enc.decode(&decrypt(&ctx, &sk, &c_pub));
        for i in 0..32 {
            assert!(
                (d_sym[i] - xs[i]).abs() < 1e-3,
                "case {case}: symmetric slot {i}"
            );
            assert!(
                (d_pub[i] - xs[i]).abs() < 1e-2,
                "case {case}: public slot {i}"
            );
        }
    }
}

#[test]
fn serialization_roundtrip_random() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0x5E21 ^ case);
        let xs = random_values(&mut rng, 48);
        let ctx = ctx();
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key();
        let enc = Encoder::new(&ctx);
        let pt = enc.encode(&xs, 2f64.powi(33), 2);
        let ct = encrypt_symmetric(&ctx, &sk, &pt, &mut rng);
        let blob = fhe_ckks::serialize::ciphertext_to_bytes(&ctx, &ct);
        let back = fhe_ckks::serialize::ciphertext_from_bytes(&ctx, &blob).unwrap();
        let d = enc.decode(&decrypt(&ctx, &sk, &back));
        for i in 0..48 {
            assert!((d[i] - xs[i]).abs() < 1e-3, "case {case}: slot {i}");
        }
    }
}

#[test]
fn modswitch_preserves_values() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0x305 ^ case);
        let xs = random_values(&mut rng, 32);
        let ctx = ctx();
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key();
        let ev = Evaluator::new(&ctx, None, GaloisKeys::default());
        let ca = encrypt_symmetric(
            &ctx,
            &sk,
            &ev.encoder().encode(&xs, 2f64.powi(35), 3),
            &mut rng,
        );
        let dropped = ev.mod_switch(&ev.mod_switch(&ca));
        assert_eq!(dropped.level, 1, "case {case}");
        let d = ev.encoder().decode(&decrypt(&ctx, &sk, &dropped));
        for i in 0..32 {
            assert!((d[i] - xs[i]).abs() < 1e-3, "case {case}: slot {i}");
        }
    }
}
