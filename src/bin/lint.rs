//! `lint` — static analysis and translation validation over textual IR
//! files.
//!
//! Collects `.fhe` files, runs the `F001`…`F008` lints (and, for
//! compiled-mode files, translation validation against each compiler's
//! schedule), renders rustc-style diagnostics, and optionally writes a
//! machine-readable report. See `fhe_reserve::lint` for the file modes and
//! directives.
//!
//! A `depgraph` mode profiles each schedule's dependence DAG instead of
//! linting it: work, critical path (span), asymptotic parallelism and
//! maximum achievable width under a cost model — the paper's Table 3 by
//! default, or a measured `table3 --json` profile via `--profile`.
//! `--dot DIR` additionally writes one Graphviz file per schedule (or
//! `--dot -` streams them to stdout).
//!
//! ```sh
//! cargo run --release --bin lint -- examples/programs tests/corpus
//! cargo run --release --bin lint -- prog.fhe --json report.json --deny error
//! cargo run --release --bin lint -- --explain F007
//! cargo run --release --bin lint -- depgraph prog.fhe --profile table3.json --dot out/
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use fhe_ir::CostModel;
use fhe_reserve::lint::{collect_files, denied, depgraph_file, lint_file, reports_json, LintRun};

enum Mode {
    Lint,
    DepGraph,
}

struct Cli {
    mode: Mode,
    paths: Vec<PathBuf>,
    run: LintRun,
    json: Option<PathBuf>,
    deny: Vec<String>,
    quiet: bool,
    explain: Vec<String>,
    profile: Option<PathBuf>,
    dot: Option<PathBuf>,
}

const USAGE: &str = "usage: lint [depgraph] [paths...] [--compiler eva,hecate,reserve] \
                     [--input-range M] [--json PATH] [--deny error|warning|CODE]... \
                     [--explain CODE]... [--profile TABLE3_JSON] [--dot DIR|-] [--quiet]\n\
                     paths default to examples/programs and tests/corpus;\n\
                     `depgraph` profiles work/span/width instead of linting";

fn parse_args() -> Result<Cli, String> {
    let mut mode = Mode::Lint;
    let mut paths = Vec::new();
    let mut run = LintRun::default();
    let mut json = None;
    let mut deny = Vec::new();
    let mut quiet = false;
    let mut explain = Vec::new();
    let mut profile = None;
    let mut dot = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "depgraph" if paths.is_empty() && matches!(mode, Mode::Lint) => mode = Mode::DepGraph,
            "--compiler" | "-c" => {
                let value = args.next().ok_or("--compiler needs eva|hecate|reserve")?;
                run.compilers = value.split(',').map(str::to_string).collect();
                for name in &run.compilers {
                    if !matches!(name.as_str(), "eva" | "hecate" | "reserve") {
                        return Err(format!("unknown compiler `{name}` (eva|hecate|reserve)"));
                    }
                }
            }
            "--input-range" => {
                run.input_magnitude = args
                    .next()
                    .ok_or("--input-range needs a magnitude")?
                    .parse()
                    .map_err(|e| format!("bad input range: {e}"))?;
                if run.input_magnitude.is_nan() || run.input_magnitude <= 0.0 {
                    return Err("input range must be positive".into());
                }
            }
            "--json" => {
                json = Some(PathBuf::from(args.next().ok_or("--json needs a path")?));
            }
            "--deny" => {
                deny.push(args.next().ok_or("--deny needs error|warning|<code>")?);
            }
            "--explain" => {
                explain.push(args.next().ok_or("--explain needs a lint code")?);
            }
            "--profile" => {
                profile = Some(PathBuf::from(
                    args.next().ok_or("--profile needs a table3 json path")?,
                ));
            }
            "--dot" => {
                dot = Some(PathBuf::from(
                    args.next().ok_or("--dot needs a directory (or `-`)")?,
                ));
            }
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if !other.starts_with('-') => paths.push(PathBuf::from(other)),
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if paths.is_empty() {
        paths = vec![
            PathBuf::from("examples/programs"),
            PathBuf::from("tests/corpus"),
        ];
    }
    Ok(Cli {
        mode,
        paths,
        run,
        json,
        deny,
        quiet,
        explain,
        profile,
        dot,
    })
}

/// Prints the registry entry of every `--explain` code; exits non-zero on
/// an unknown code.
fn run_explain(codes: &[String]) -> ExitCode {
    let mut ok = true;
    for (i, code) in codes.iter().enumerate() {
        let canonical = code.to_ascii_uppercase();
        match fhe_analysis::explain(&canonical) {
            Some(info) => {
                if i > 0 {
                    println!();
                }
                println!("{} ({})", info.code, info.severity.label());
                println!("  {}", info.summary);
                println!();
                for line in info.explanation.split(". ") {
                    let line = line.trim();
                    if !line.is_empty() {
                        let dot = if line.ends_with('.') { "" } else { "." };
                        println!("  {line}{dot}");
                    }
                }
            }
            None => {
                let known: Vec<&str> = fhe_analysis::registry().iter().map(|i| i.code).collect();
                eprintln!(
                    "lint: unknown lint code `{code}` (known: {})",
                    known.join(", ")
                );
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

/// The `depgraph` mode: profile each schedule's dependence DAG.
fn run_depgraph(cli: &Cli, files: &[PathBuf]) -> ExitCode {
    let model = match &cli.profile {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("lint: cannot read profile {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            match CostModel::from_bench_json(&text) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("lint: bad profile {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        None => CostModel::paper_table3(),
    };
    let dot_to_stdout = cli.dot.as_deref() == Some(std::path::Path::new("-"));
    if let Some(dir) = &cli.dot {
        if !dot_to_stdout {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("lint: cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let mut errors = 0usize;
    for path in files {
        let name = path.display().to_string();
        let content = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("lint: cannot read {name}: {e}");
                errors += 1;
                continue;
            }
        };
        let report = depgraph_file(&name, &content, &cli.run, &model, cli.dot.is_some());
        if let Some(err) = &report.error {
            eprint!("{err}");
            errors += 1;
        }
        for target in &report.targets {
            match (&target.estimate, &target.error) {
                (Some(est), _) => {
                    if !cli.quiet {
                        println!(
                            "{name}@{}: work {:.1}us, span {:.1}us, parallelism {:.2}x, width {}",
                            target.target,
                            est.work_us,
                            est.span_us,
                            est.parallelism(),
                            est.max_width
                        );
                    }
                }
                (None, Some(err)) => {
                    eprintln!("{name}@{}: {err}", target.target);
                    errors += 1;
                }
                (None, None) => {}
            }
            if let Some(dot) = &target.dot {
                if dot_to_stdout {
                    print!("{dot}");
                } else if let Some(dir) = &cli.dot {
                    let stem = path
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_else(|| "schedule".into());
                    let out = dir.join(format!("{stem}@{}.dot", target.target));
                    if let Err(e) = std::fs::write(&out, dot) {
                        eprintln!("lint: cannot write {}: {e}", out.display());
                        errors += 1;
                    } else if !cli.quiet {
                        println!("  wrote {}", out.display());
                    }
                }
            }
        }
    }
    eprintln!(
        "lint: depgraph over {} file(s), {errors} error(s)",
        files.len()
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if !cli.explain.is_empty() {
        return run_explain(&cli.explain);
    }
    let files = match collect_files(&cli.paths) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if files.is_empty() {
        eprintln!("lint: no .fhe files under the given paths");
        return ExitCode::FAILURE;
    }
    if matches!(cli.mode, Mode::DepGraph) {
        return run_depgraph(&cli, &files);
    }

    let mut reports = Vec::new();
    let (mut total, mut denied_count, mut errors) = (0usize, 0usize, 0usize);
    for path in &files {
        let name = path.display().to_string();
        let content = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("lint: cannot read {name}: {e}");
                errors += 1;
                continue;
            }
        };
        let report = lint_file(&name, &content, &cli.run);
        if let Some(err) = &report.error {
            eprint!("{err}");
            errors += 1;
        }
        for target in &report.targets {
            if let Some(err) = &target.error {
                eprintln!("{name}@{}: {err}", target.target);
                errors += 1;
            }
            total += target.findings.len();
            denied_count += target
                .findings
                .iter()
                .filter(|f| denied(&cli.deny, f))
                .count();
            if !cli.quiet && !target.rendered.is_empty() {
                print!("{}", target.rendered);
            }
        }
        reports.push(report);
    }

    if let Some(path) = &cli.json {
        if let Err(e) = std::fs::write(path, format!("{}\n", reports_json(&reports))) {
            eprintln!("lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    eprintln!(
        "lint: {} file(s), {total} finding(s), {denied_count} denied, {errors} error(s)",
        files.len()
    );
    if errors > 0 || denied_count > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
