//! Static latency estimation of scheduled programs (drives Fig. 6/8).

use fhe_ir::{CostModel, OpClass, ScheduleError, ScheduledProgram};

/// Per-class latency breakdown of a scheduled program.
#[derive(Debug, Clone, Default)]
pub struct LatencyBreakdown {
    /// (class, total µs, op count) per op class, descending by total.
    pub by_class: Vec<(OpClass, f64, usize)>,
    /// Total estimated latency in µs.
    pub total_us: f64,
}

/// Estimates the latency of a scheduled program under a cost model.
///
/// # Errors
///
/// Returns the schedule's validation errors if it is illegal.
pub fn estimate(
    scheduled: &ScheduledProgram,
    cost: &CostModel,
) -> Result<LatencyBreakdown, Vec<ScheduleError>> {
    let map = scheduled.validate()?;
    let program = &scheduled.program;
    let live = fhe_ir::analysis::live(program);
    let mut by_class: Vec<(OpClass, f64, usize)> =
        OpClass::ALL.iter().map(|&c| (c, 0.0, 0)).collect();
    let mut total = 0.0;
    for id in program.ids() {
        if !live[id.index()] {
            continue;
        }
        if let Some(class) = CostModel::classify(program, id) {
            let c = cost.op_cost(program, id, &map);
            total += c;
            let entry = by_class
                .iter_mut()
                .find(|(cl, _, _)| *cl == class)
                .expect("all classes present");
            entry.1 += c;
            entry.2 += 1;
        }
    }
    by_class.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite costs"));
    Ok(LatencyBreakdown {
        by_class,
        total_us: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::Builder;
    use reserve_core::Options;

    #[test]
    fn breakdown_sums_to_total() {
        let b = Builder::new("t", 8);
        let x = b.input("x");
        let y = b.input("y");
        let e = (x.clone() * y.clone() + x.clone().rotate(1)) * (y + x);
        let p = b.finish(vec![e]);
        let compiled = reserve_core::compile(&p, &Options::new(25)).unwrap();
        let bd = estimate(&compiled.scheduled, &CostModel::paper_table3()).unwrap();
        let sum: f64 = bd.by_class.iter().map(|(_, c, _)| c).sum();
        assert!((sum - bd.total_us).abs() < 1e-9);
        assert!(bd.total_us > 0.0);
        // Rotation present and expensive.
        let rot = bd
            .by_class
            .iter()
            .find(|(c, _, _)| *c == OpClass::Rotate)
            .unwrap();
        assert_eq!(rot.2, 1);
        assert!(rot.1 >= 3828.0);
    }
}
