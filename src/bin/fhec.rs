//! `fhec` — command-line FHE scale-management compiler.
//!
//! Reads a program in the textual IR format, compiles it with the selected
//! scale-management scheme, and prints the scheduled program and/or
//! statistics.
//!
//! ```sh
//! cargo run --release --bin fhec -- program.fhe --waterline 30 --emit text
//! cargo run --release --bin fhec -- program.fhe --compiler eva --emit stats
//! cargo run --release --bin fhec -- program.fhe --run --workers 4
//! ```
//!
//! `--run` executes the compiled schedule on the encrypted backend through
//! the DAG-parallel executor (deterministic inputs derived from the input
//! names, the fuzz harness's convention) and reports walk telemetry:
//! runners, fused mul·relin·rescale pairs, hoisted rotation groups, and
//! the parallel walk time. `--workers 0` (the default) sizes the walk to
//! the host; `--workers 1` is the serial reference walk; `--no-fusion`
//! disables the fused kernel. Outputs are bit-identical for every worker
//! count and fusion setting.

use std::process::ExitCode;

use fhe_reserve::baselines;
use fhe_reserve::ir::{text, CompileParams, ScheduledProgram};
use fhe_reserve::prelude::*;
use fhe_reserve::runtime::{execute_parallel, ExecOptions, ParOptions};

struct Cli {
    input: String,
    waterline: u32,
    compiler: String,
    mode: Mode,
    emit: String,
    run: bool,
    workers: usize,
    fusion: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut input = None;
    let mut waterline = 30u32;
    let mut compiler = "reserve".to_string();
    let mut mode = Mode::Full;
    let mut emit = "stats".to_string();
    let mut run = false;
    let mut workers = 0usize;
    let mut fusion = true;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--waterline" | "-w" => {
                waterline = args
                    .next()
                    .ok_or("--waterline needs a value")?
                    .parse()
                    .map_err(|e| format!("bad waterline: {e}"))?;
            }
            "--compiler" | "-c" => {
                compiler = args.next().ok_or("--compiler needs eva|hecate|reserve")?;
            }
            "--mode" | "-m" => {
                mode = match args.next().as_deref() {
                    Some("ba") => Mode::Ba,
                    Some("ra") => Mode::Ra,
                    Some("full") => Mode::Full,
                    other => return Err(format!("bad --mode {other:?} (ba|ra|full)")),
                };
            }
            "--emit" | "-e" => {
                emit = args.next().ok_or("--emit needs text|stats|both")?;
            }
            "--run" => run = true,
            "--workers" | "-j" => {
                workers = args
                    .next()
                    .ok_or("--workers needs a count (0 = auto)")?
                    .parse()
                    .map_err(|e| format!("bad worker count: {e}"))?;
            }
            "--no-fusion" => fusion = false,
            "--help" | "-h" => {
                return Err("usage: fhec <program.fhe> [--waterline N] \
                            [--compiler eva|hecate|reserve] [--mode ba|ra|full] \
                            [--emit text|stats|both] [--run] [--workers N] [--no-fusion]"
                    .to_string())
            }
            other if !other.starts_with('-') && input.is_none() => {
                input = Some(other.to_string());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if !(1..60).contains(&waterline) {
        return Err(format!(
            "waterline must be in 1..=59 bits (below the rescaling factor R = 2^60), got {waterline}"
        ));
    }
    Ok(Cli {
        input: input.ok_or("missing input file (try --help)")?,
        waterline,
        compiler,
        mode,
        emit,
        run,
        workers,
        fusion,
    })
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let source = match std::fs::read_to_string(&cli.input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", cli.input);
            return ExitCode::FAILURE;
        }
    };
    let program = match text::parse(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}: {e}", cli.input);
            return ExitCode::FAILURE;
        }
    };

    let (scheduled, label, sm_time): (ScheduledProgram, &str, std::time::Duration) =
        match cli.compiler.as_str() {
            "eva" => match baselines::eva::compile(&program, &CompileParams::new(cli.waterline)) {
                Ok(out) => (out.scheduled, "EVA", out.report.scale_management_time),
                Err(e) => {
                    eprintln!("EVA: {e}");
                    return ExitCode::FAILURE;
                }
            },
            "hecate" => match baselines::hecate::compile(
                &program,
                &CompileParams::new(cli.waterline),
                &baselines::HecateOptions::default(),
            ) {
                Ok(out) => (out.scheduled, "Hecate", out.report.scale_management_time),
                Err(e) => {
                    eprintln!("Hecate: {e}");
                    return ExitCode::FAILURE;
                }
            },
            "reserve" => {
                match fhe_reserve::compiler::compile(
                    &program,
                    &Options::with_mode(cli.waterline, cli.mode),
                ) {
                    Ok(out) => (out.scheduled, "reserve", out.report.scale_management_time),
                    Err(e) => {
                        eprintln!("reserve: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("unknown compiler `{other}` (eva|hecate|reserve)");
                return ExitCode::from(2);
            }
        };

    let map = scheduled.validate().expect("compiled schedules validate");
    if cli.emit == "text" || cli.emit == "both" {
        print!("{}", text::print(&scheduled.program));
    }
    if cli.emit == "stats" || cli.emit == "both" {
        let cost = CostModel::paper_table3().program_cost(&scheduled.program, &map);
        let (rs, ms, us) = scheduled.scale_management_counts();
        eprintln!(
            "{label}: W=2^{} level={} ops={} rescale={rs} modswitch={ms} upscale={us} \
             est_latency={:.2}ms sm_time={:?}",
            cli.waterline,
            map.max_level(),
            scheduled.program.num_ops(),
            cost / 1000.0,
            sm_time,
        );
        for (i, spec) in scheduled.inputs.iter().enumerate() {
            eprintln!(
                "  input {i}: scale 2^{}, level {}",
                spec.scale_bits, spec.level
            );
        }
    }
    if cli.run {
        let inputs = fhe_fuzz::input_data(&scheduled.program);
        let options = ParOptions {
            exec: ExecOptions {
                poly_degree: scheduled.program.slots() * 2,
                seed: 0xF4EC,
                threads: 1,
                ..ExecOptions::default()
            },
            workers: cli.workers,
            fusion: cli.fusion,
        };
        let report = match execute_parallel(&scheduled, &inputs, &options) {
            Ok(r) => r,
            Err(errors) => {
                for e in errors {
                    eprintln!("run: {e}");
                }
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "run: {} runners, {} ops, {} fused mul·relin·rescale, {} hoisted rotation \
             groups, {} safety obligations discharged",
            report.workers,
            report.ops_executed,
            report.fused,
            report.hoisted_groups,
            report.safety_obligations,
        );
        eprintln!(
            "run: walk {:?} (op phase {:?}, total {:?}), peak memory {:.2} MiB, \
             max |error| vs plaintext reference {:.3e}",
            report.walk_time,
            report.op_time,
            report.total_time,
            report.mem.peak_bytes as f64 / (1 << 20) as f64,
            report.max_abs_error(),
        );
        for (i, out) in report.outputs.iter().enumerate() {
            let head: Vec<String> = out.iter().take(4).map(|v| format!("{v:.6}")).collect();
            let ell = if out.len() > 4 { ", …" } else { "" };
            println!("output {i}: [{}{ell}]", head.join(", "));
        }
    }
    ExitCode::SUCCESS
}
