//! The lint engine: walks abstract-domain results over a scheduled program
//! and emits [`Finding`]s.
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | `F001` | error   | possible overflow: the static magnitude bound times the scale may exceed the level's modulus budget (`m·x_max < Q` unprovable) |
//! | `F002` | warning | dead rescale/modswitch: the result of a level-dropping op is never used |
//! | `F003` | warning | redundant upscale: dead, or immediately re-upscaled (mergeable) |
//! | `F004` | warning | level imbalance: a multiplication's operand scales differ by a whole rescale factor, pinning the smaller operand a level too high |
//! | `F005` | warning | over-provisioned modulus: every live ciphertext keeps ≥ R bits of slack, so the whole schedule provably fits one level lower |
//! | `F006` | warning | over-provisioned keys: rotation keys were requested for steps the schedule never rotates by |
//!
//! `F001` is the static form of the fuzz oracle's `schedule_fits_backend`
//! gate: a lint-clean schedule under true input ranges cannot wrap in the
//! encrypted backend. `F005` is a proof, not a heuristic: slack ≥ R on
//! every live cipher value implies dropping every level by one preserves
//! every validator constraint. `F006` only runs when the caller supplies
//! the deployment's requested key set
//! ([`LintOptions::requested_rotation_steps`]); steps are compared modulo
//! the slot count, since steps in the same residue class share one Galois
//! key.

use fhe_ir::diag::{Finding, Severity};
use fhe_ir::{analysis, Op, ScheduleError, ScheduledProgram};

use crate::domain::{analyze, AnalysisCx};
use crate::interval::IntervalDomain;

/// Knobs for the lint run.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Input ranges assumed by the magnitude analysis (default `[-1, 1]`
    /// for every input).
    pub intervals: IntervalDomain,
    /// Rotation steps the deployment provisions Galois keys for. When set,
    /// `F006` warns if the schedule's rotation steps are a strict subset —
    /// the surplus keys are pure key-switch-material waste. `None` (the
    /// default) disables the check.
    pub requested_rotation_steps: Option<Vec<i64>>,
}

/// Lints a scheduled program; returns all findings (empty = clean).
///
/// # Errors
///
/// Returns the validator's errors when the schedule is illegal — linting
/// presupposes a well-typed schedule.
pub fn lint_scheduled(
    scheduled: &ScheduledProgram,
    options: &LintOptions,
) -> Result<Vec<Finding>, Vec<ScheduleError>> {
    let map = scheduled.validate()?;
    let program = &scheduled.program;
    let cx = AnalysisCx::scheduled(program, &map);
    let intervals = analyze(&options.intervals, &cx);
    let live = analysis::live(program);
    let users = program.users();
    let rescale = f64::from(scheduled.params.rescale_bits);

    let mut findings = Vec::new();
    let mut min_slack: Option<(fhe_ir::ValueId, f64)> = None;

    for id in program.ids() {
        let is_live = live[id.index()];

        // F002 / F003(dead): scale management whose result is never used.
        if !is_live {
            match program.op(id) {
                Op::Rescale(_) | Op::ModSwitch(_) => {
                    findings.push(
                        Finding::new(
                            "F002",
                            Severity::Warning,
                            format!(
                                "dead {}: the result of {id} is never used",
                                program.op(id).mnemonic()
                            ),
                        )
                        .at(id),
                    );
                }
                Op::Upscale(..) => {
                    findings.push(
                        Finding::new(
                            "F003",
                            Severity::Warning,
                            format!("redundant upscale: the result of {id} is never used"),
                        )
                        .at(id),
                    );
                }
                _ => {}
            }
            continue;
        }

        // F003 (mergeable): an upscale consumed only by another upscale.
        if let Op::Upscale(..) = program.op(id) {
            let us = &users[id.index()];
            if !us.is_empty()
                && !program.outputs().contains(&id)
                && us.iter().all(|&u| matches!(program.op(u), Op::Upscale(..)))
            {
                findings.push(
                    Finding::new(
                        "F003",
                        Severity::Warning,
                        format!(
                            "redundant upscale: {id} is only consumed by another upscale \
                             ({}); merge the two",
                            us.iter()
                                .map(|u| u.to_string())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    )
                    .at(id),
                );
            }
        }

        if !program.is_cipher(id) {
            continue;
        }
        let scale = map.scale_bits(id).to_f64();
        let level = map.level(id);
        let budget = f64::from(level) * rescale;

        // F001: the soundness hypothesis m·x_max < Q. One bit of margin
        // covers the `< Q/2` half-range plus chain primes sitting
        // fractionally below 2^rescale (same margin as the fuzz oracle's
        // backend-fit gate).
        let magnitude = intervals[id.index()].magnitude();
        if magnitude > 0.0 && (!magnitude.is_finite() || magnitude.log2() + scale > budget - 1.0) {
            findings.push(
                Finding::new(
                    "F001",
                    Severity::Error,
                    format!(
                        "possible overflow at {id} ({}): slot magnitude may reach {magnitude:.3e}, \
                         and {magnitude:.3e}·2^{scale:.0} exceeds the level-{level} modulus \
                         budget 2^{:.0}",
                        program.op(id).mnemonic(),
                        budget - 1.0
                    ),
                )
                .at(id),
            );
        }

        // F004: a multiplication whose operand scales differ by ≥ R pins
        // the lower-scale operand a whole level above what its own scale
        // needs (the level-match rule forces it up).
        if let Op::Mul(a, b) = program.op(id) {
            if program.is_cipher(*a) && program.is_cipher(*b) {
                let (sa, sb) = (map.scale_bits(*a).to_f64(), map.scale_bits(*b).to_f64());
                if (sa - sb).abs() >= rescale {
                    let poor = if sa < sb { *a } else { *b };
                    findings.push(
                        Finding::new(
                            "F004",
                            Severity::Warning,
                            format!(
                                "level imbalance at {id}: operand scales 2^{sa:.0} vs 2^{sb:.0} \
                                 differ by a full rescale factor; {poor} is held a level higher \
                                 than its scale needs"
                            ),
                        )
                        .at(id),
                    );
                }
            }
        }

        // Track the tightest slack for F005.
        let slack = budget - scale;
        if min_slack.is_none_or(|(_, s)| slack < s) {
            min_slack = Some((id, slack));
        }
    }

    // F005: if every live ciphertext keeps at least one whole limb of
    // slack, shifting all levels down by one preserves every constraint
    // (scale ≤ (l−1)·R follows from slack ≥ R; rescale/modswitch operands
    // stay ≥ level 2 because their results' slack pins them ≥ 3).
    if let Some((id, slack)) = min_slack {
        if slack >= rescale {
            findings.push(
                Finding::new(
                    "F005",
                    Severity::Warning,
                    format!(
                        "over-provisioned modulus: every live ciphertext keeps ≥ {rescale:.0} \
                         bits of slack (minimum {slack:.0} bits at {id}); the schedule fits \
                         one level lower"
                    ),
                )
                .at(id),
            );
        }
    }

    // F006: requested rotation-key steps the schedule never uses. A Galois
    // key is the dominant per-step memory term (2·L·(L+1) limbs of
    // key-switch material), so provisioning keys for steps the schedule
    // cannot rotate by is pure working-set waste. Steps are compared modulo
    // the slot count: a residue class shares one key, and class 0 is the
    // identity, which needs no key at all.
    if let Some(requested) = &options.requested_rotation_steps {
        let slots = program.slots() as i64;
        let norm = |k: i64| k.rem_euclid(slots);
        let mut used = std::collections::BTreeSet::new();
        let mut anchor = None;
        for id in program.ids() {
            if let Op::Rotate(_, k) = program.op(id) {
                if live[id.index()] && program.is_cipher(id) && norm(*k) != 0 {
                    used.insert(norm(*k));
                    anchor.get_or_insert(id);
                }
            }
        }
        let requested_classes: std::collections::BTreeSet<i64> = requested
            .iter()
            .map(|&k| norm(k))
            .filter(|&k| k != 0)
            .collect();
        let unused: Vec<i64> = requested
            .iter()
            .copied()
            .filter(|&k| norm(k) != 0 && !used.contains(&norm(k)))
            .collect();
        if !unused.is_empty() && used.is_subset(&requested_classes) {
            let list = |steps: &mut dyn Iterator<Item = i64>| {
                steps.map(|k| k.to_string()).collect::<Vec<_>>().join(", ")
            };
            let detail = if used.is_empty() {
                "the schedule performs no rotations".to_string()
            } else {
                format!(
                    "the schedule only rotates by steps {{{}}}",
                    list(&mut used.iter().copied())
                )
            };
            let mut f = Finding::new(
                "F006",
                Severity::Warning,
                format!(
                    "over-provisioned keys: rotation steps {{{}}} have keys requested but \
                     are never used ({detail}); each unused step costs a full Galois key \
                     of key-switch material",
                    list(&mut unused.iter().copied())
                ),
            );
            if let Some(id) = anchor {
                f = f.at(id);
            }
            findings.push(f);
        }
    }

    findings.sort_by_key(|f| (f.op, std::cmp::Reverse(f.severity)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::{CompileParams, Frac, InputSpec, Program, ValueId};

    fn spec(scale: u32, level: u32) -> InputSpec {
        InputSpec {
            scale_bits: Frac::from(scale),
            level,
        }
    }

    fn lint(s: &ScheduledProgram) -> Vec<Finding> {
        lint_scheduled(s, &LintOptions::default()).expect("valid schedule")
    }

    fn codes(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn clean_single_input_is_finding_free() {
        let mut p = Program::new("ok", 4);
        let x = p.push(Op::Input { name: "x".into() });
        p.set_outputs(vec![x]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(35, 1)],
        };
        assert!(lint(&s).is_empty());
    }

    #[test]
    fn dead_rescale_fires_f002() {
        let mut p = Program::new("dead", 4);
        let x = p.push(Op::Input { name: "x".into() });
        let _dead = p.push(Op::Rescale(x));
        p.set_outputs(vec![x]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(95, 2)],
        };
        let f = lint(&s);
        assert_eq!(codes(&f), vec!["F002"]);
        assert_eq!(f[0].op, Some(ValueId(1)));
    }

    #[test]
    fn stacked_upscales_fire_f003() {
        let mut p = Program::new("up", 4);
        let x = p.push(Op::Input { name: "x".into() });
        let u1 = p.push(Op::Upscale(x, Frac::from(5)));
        let u2 = p.push(Op::Upscale(u1, Frac::from(5)));
        p.set_outputs(vec![u2]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(35, 1)],
        };
        let f = lint(&s);
        assert_eq!(codes(&f), vec!["F003"]);
        assert_eq!(f[0].op, Some(ValueId(1)));
    }

    #[test]
    fn overflow_risk_fires_f001() {
        // x·100 at scale 55, level 1: 100·2^55 > 2^59.
        let mut p = Program::new("ovf", 4);
        let x = p.push(Op::Input { name: "x".into() });
        let c = p.push(Op::Const {
            value: 100.0.into(),
        });
        let m = p.push(Op::Mul(x, c));
        p.set_outputs(vec![m]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(20),
            inputs: vec![spec(35, 1)],
        };
        let f = lint(&s);
        assert_eq!(codes(&f), vec!["F001"]);
        assert_eq!(f[0].severity, Severity::Error);
        assert_eq!(f[0].op, Some(ValueId(2)));
    }

    #[test]
    fn scale_imbalanced_mul_fires_f004() {
        // x at 100 bits, y at 35 bits, both level 2: diff 65 ≥ R = 60.
        let mut p = Program::new("imb", 4);
        let x = p.push(Op::Input { name: "x".into() });
        let y = p.push(Op::Input { name: "y".into() });
        let m = p.push(Op::Mul(x, y));
        p.set_outputs(vec![m]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(100, 3), spec(35, 3)],
        };
        let f = lint(&s);
        assert!(codes(&f).contains(&"F004"), "{f:?}");
    }

    #[test]
    fn uniform_slack_fires_f005() {
        // A single input at scale 35, level 2: slack 85 ≥ 60 everywhere.
        let mut p = Program::new("slack", 4);
        let x = p.push(Op::Input { name: "x".into() });
        p.set_outputs(vec![x]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(35, 2)],
        };
        let f = lint(&s);
        assert_eq!(codes(&f), vec!["F005"]);
    }

    #[test]
    fn unused_requested_keys_fire_f006() {
        let mut p = Program::new("keys", 8);
        let x = p.push(Op::Input { name: "x".into() });
        let r = p.push(Op::Rotate(x, 1));
        p.set_outputs(vec![r]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(35, 1)],
        };
        let opts = LintOptions {
            requested_rotation_steps: Some(vec![1, 2, 4]),
            ..LintOptions::default()
        };
        let f = lint_scheduled(&s, &opts).expect("valid schedule");
        assert_eq!(codes(&f), vec!["F006"]);
        assert_eq!(f[0].op, Some(r), "anchored at the first live rotate");
        assert!(f[0].message.contains("{2, 4}"), "{}", f[0].message);
    }

    #[test]
    fn f006_respects_step_residue_classes_and_stays_inert() {
        let mut p = Program::new("keys", 8);
        let x = p.push(Op::Input { name: "x".into() });
        let r = p.push(Op::Rotate(x, 1));
        p.set_outputs(vec![r]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(35, 1)],
        };
        // No requested set: the check never runs.
        assert!(lint(&s).is_empty());
        // 9 ≡ 1 and −7 ≡ 1 (mod 8): same Galois key, so nothing is unused.
        let opts = LintOptions {
            requested_rotation_steps: Some(vec![1, 9, -7]),
            ..LintOptions::default()
        };
        assert!(lint_scheduled(&s, &opts).expect("valid").is_empty());
        // Identity steps (0 mod slots) need no key and are never "unused".
        let opts = LintOptions {
            requested_rotation_steps: Some(vec![1, 0, 8]),
            ..LintOptions::default()
        };
        assert!(lint_scheduled(&s, &opts).expect("valid").is_empty());
        // A schedule rotating outside the requested set is a missing-key
        // problem for the runtime, not over-provisioning: stay quiet.
        let opts = LintOptions {
            requested_rotation_steps: Some(vec![2]),
            ..LintOptions::default()
        };
        assert!(lint_scheduled(&s, &opts).expect("valid").is_empty());
    }

    #[test]
    fn invalid_schedule_is_an_error_not_findings() {
        let mut p = Program::new("bad", 4);
        let x = p.push(Op::Input { name: "x".into() });
        p.set_outputs(vec![x]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(10, 1)], // below waterline
        };
        assert!(lint_scheduled(&s, &LintOptions::default()).is_err());
    }
}
