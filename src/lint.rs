//! Driver behind the `lint` binary: collects `.fhe` files, runs the
//! abstract-interpretation lints and translation validation from
//! [`fhe_analysis`] over each, and renders/serializes the results.
//!
//! A file is linted in one of two modes, selected by a `// lint-mode:`
//! directive comment:
//!
//! - **compiled** (the default): the file holds a *source* program; every
//!   requested compiler schedules it, and the lints plus translation
//!   validation run on each resulting schedule, rendered against the
//!   printed schedule text.
//! - **scheduled**: the file holds an already-scheduled program (it may
//!   contain `rescale`/`modswitch`/`upscale` ops); the lints run directly
//!   on it, rendered with carets into the file's own text. Input encodings
//!   come from `// lint-input-scale: N` and `// lint-input-level: N`
//!   directives (defaults: the waterline, level 1).
//!
//! Either mode honors `// lint-keys: 1,2,4` — the deployment's provisioned
//! rotation-key steps — which arms the `F006` over-provisioned-keys check.
//!
//! The fuzz-corpus directives (`// fuzz-waterline:` and friends, see
//! [`fhe_fuzz::corpus`]) are honored for compile parameters, so reproducer
//! files lint under the parameters their divergence was found with. When a
//! file carries no explicit `// fuzz-output-reserve:`, the output reserve
//! is derived statically from the interval analysis
//! ([`required_output_reserve_bits`]), making Table 1's `m·x_max < Q`
//! hypothesis hold by construction for in-range inputs.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use fhe_analysis::interval::required_output_reserve_bits;
use fhe_analysis::{
    lint_scheduled, render_finding, render_parse_error, validate, IntervalDomain, LintOptions,
    SourceMap,
};
use fhe_baselines::{EvaCompiler, HecateCompiler};
use fhe_bench::json::Json;
use fhe_fuzz::corpus;
use fhe_ir::diag::{Finding, Severity};
use fhe_ir::pipeline::ScaleCompiler;
use fhe_ir::{text, Frac, InputSpec, Op, Program, ScheduledProgram};
use reserve_core::ReserveCompiler;

/// Options for a lint run over files.
#[derive(Debug, Clone)]
pub struct LintRun {
    /// Compilers scheduling compiled-mode files, by name
    /// (`eva`/`hecate`/`reserve`), in report order.
    pub compilers: Vec<String>,
    /// Assumed input range `[-m, m]` for the magnitude analysis.
    pub input_magnitude: f64,
}

impl Default for LintRun {
    fn default() -> Self {
        LintRun {
            compilers: vec!["eva".into(), "hecate".into(), "reserve".into()],
            input_magnitude: 1.0,
        }
    }
}

/// Lint results for one scheduled target of a file.
#[derive(Debug)]
pub struct TargetReport {
    /// `"scheduled"` for directly-linted files, else the compiler name.
    pub target: String,
    /// The findings, including an `F000` error on a translation-validation
    /// mismatch.
    pub findings: Vec<Finding>,
    /// Translation-validation verdict; `None` for scheduled-mode files
    /// (there is no separate source to validate against).
    pub translation_validated: Option<bool>,
    /// Rustc-style rendering of the findings (empty when clean).
    pub rendered: String,
    /// A target-level failure (the compiler rejected the program, or the
    /// hand-written schedule does not validate).
    pub error: Option<String>,
}

/// All lint results for one file.
#[derive(Debug)]
pub struct FileReport {
    /// The file, as given on the command line.
    pub file: String,
    /// One report per scheduled target.
    pub targets: Vec<TargetReport>,
    /// A file-level failure (unreadable or unparsable), already rendered
    /// with a caret where possible.
    pub error: Option<String>,
}

impl FileReport {
    /// Total findings across all targets.
    pub fn num_findings(&self) -> usize {
        self.targets.iter().map(|t| t.findings.len()).sum()
    }

    /// True when any file- or target-level error occurred.
    pub fn has_error(&self) -> bool {
        self.error.is_some() || self.targets.iter().any(|t| t.error.is_some())
    }
}

/// Recursively collects `.fhe` files under each root (a root that is
/// itself a file is taken as-is), sorted for deterministic output.
///
/// # Errors
///
/// Propagates filesystem errors other than a missing root, which yields
/// no files.
pub fn collect_files(roots: &[PathBuf]) -> io::Result<Vec<PathBuf>> {
    fn walk(path: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
        if path.is_file() {
            out.push(path.to_path_buf());
            return Ok(());
        }
        let entries = match fs::read_dir(path) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        let mut children: Vec<PathBuf> = entries
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        children.sort();
        for child in children {
            if child.is_dir() {
                walk(&child, out)?;
            } else if child.extension().is_some_and(|x| x == "fhe") {
                out.push(child);
            }
        }
        Ok(())
    }
    let mut files = Vec::new();
    for root in roots {
        walk(root, &mut files)?;
    }
    files.sort();
    files.dedup();
    Ok(files)
}

/// The `// lint-…` directives of a file.
#[derive(Debug, Default)]
struct Directives {
    scheduled_mode: bool,
    input_scale: Option<u32>,
    input_level: Option<u32>,
    has_explicit_reserve: bool,
    requested_keys: Option<Vec<i64>>,
}

fn parse_directives(comments: &[String]) -> Result<Directives, String> {
    let mut d = Directives::default();
    for comment in comments {
        let Some((key, value)) = comment.split_once(':') else {
            continue;
        };
        let value = value.trim();
        let int = |what: &str| -> Result<u32, String> {
            value.parse().map_err(|_| format!("bad {what} `{value}`"))
        };
        match key.trim() {
            "lint-mode" => match value {
                "scheduled" => d.scheduled_mode = true,
                "compiled" => d.scheduled_mode = false,
                other => return Err(format!("bad lint-mode `{other}` (scheduled|compiled)")),
            },
            "lint-input-scale" => d.input_scale = Some(int("lint-input-scale")?),
            "lint-input-level" => d.input_level = Some(int("lint-input-level")?),
            "lint-keys" => {
                let steps = value
                    .split(',')
                    .map(|s| s.trim().parse())
                    .collect::<Result<Vec<i64>, _>>()
                    .map_err(|_| format!("bad lint-keys `{value}` (comma-separated steps)"))?;
                d.requested_keys = Some(steps);
            }
            "fuzz-output-reserve" => d.has_explicit_reserve = true,
            _ => {}
        }
    }
    Ok(d)
}

fn num_inputs(program: &Program) -> usize {
    program
        .ids()
        .filter(|&id| matches!(program.op(id), Op::Input { .. }))
        .count()
}

fn render_findings(findings: &[Finding], map: &SourceMap, label: &str) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&render_finding(f, map, label));
    }
    out
}

/// Lints the schedule already written in the file itself.
fn lint_scheduled_mode(
    file: &str,
    content: &str,
    case: &corpus::CorpusCase,
    directives: &Directives,
    options: &LintOptions,
) -> TargetReport {
    let spec = InputSpec {
        scale_bits: Frac::from(directives.input_scale.unwrap_or(case.params.waterline_bits)),
        level: directives.input_level.unwrap_or(1),
    };
    let scheduled = ScheduledProgram {
        program: case.program.clone(),
        params: case.params,
        inputs: vec![spec; num_inputs(&case.program)],
    };
    match lint_scheduled(&scheduled, options) {
        Ok(findings) => {
            let rendered = render_findings(&findings, &SourceMap::new(content), file);
            TargetReport {
                target: "scheduled".into(),
                findings,
                translation_validated: None,
                rendered,
                error: None,
            }
        }
        Err(errors) => {
            let joined = errors
                .iter()
                .map(|e| format!("  {e}"))
                .collect::<Vec<_>>()
                .join("\n");
            TargetReport {
                target: "scheduled".into(),
                findings: Vec::new(),
                translation_validated: None,
                rendered: String::new(),
                error: Some(format!("schedule does not validate:\n{joined}")),
            }
        }
    }
}

/// Compiles the source program with one compiler and lints the schedule.
fn lint_compiled_mode(
    file: &str,
    name: &str,
    case: &corpus::CorpusCase,
    directives: &Directives,
    options: &LintOptions,
) -> TargetReport {
    let compiler: Box<dyn ScaleCompiler> = match name {
        "eva" => Box::new(EvaCompiler),
        "hecate" => Box::new(HecateCompiler::default()),
        _ => Box::new(ReserveCompiler::full()),
    };
    let mut params = case.params;
    if !directives.has_explicit_reserve {
        params.output_reserve_bits = params.output_reserve_bits.max(required_output_reserve_bits(
            &case.program,
            &options.intervals,
        ));
    }
    let compiled = match compiler.compile(&case.program, &params) {
        Ok(c) => c,
        Err(e) => {
            return TargetReport {
                target: name.into(),
                findings: Vec::new(),
                translation_validated: None,
                rendered: String::new(),
                error: Some(format!("{name}: {e}")),
            }
        }
    };
    let mut findings = lint_scheduled(&compiled.scheduled, options).unwrap_or_default();
    let tv = validate(&case.program, &compiled.scheduled);
    if let Err(m) = &tv {
        let mut f = Finding::new(
            "F000",
            Severity::Error,
            format!("translation validation failed: {m}"),
        );
        if let Some(op) = m.scheduled_op {
            f = f.at(op);
        }
        findings.push(f);
    }
    let schedule_text = text::print(&compiled.scheduled.program);
    let rendered = render_findings(
        &findings,
        &SourceMap::new(&schedule_text),
        &format!("{file}@{name}"),
    );
    TargetReport {
        target: name.into(),
        findings,
        translation_validated: Some(tv.is_ok()),
        rendered,
        error: None,
    }
}

/// Lints one file's content. `file` is the display name used in
/// diagnostics (typically the path as given).
pub fn lint_file(file: &str, content: &str, run: &LintRun) -> FileReport {
    let comments = match text::parse_with_comments(content) {
        Ok((_, comments)) => comments,
        Err(e) => {
            return FileReport {
                file: file.into(),
                targets: Vec::new(),
                error: Some(render_parse_error(&e, content, file)),
            }
        }
    };
    let (case, directives) = match (corpus::parse_case(content), parse_directives(&comments)) {
        (Ok(c), Ok(d)) => (c, d),
        (Err(e), _) | (_, Err(e)) => {
            return FileReport {
                file: file.into(),
                targets: Vec::new(),
                error: Some(format!("error: {e}\n  --> {file}\n")),
            }
        }
    };
    let options = LintOptions {
        intervals: IntervalDomain::with_input_magnitude(run.input_magnitude),
        requested_rotation_steps: directives.requested_keys.clone(),
    };
    let targets = if directives.scheduled_mode {
        vec![lint_scheduled_mode(
            file,
            content,
            &case,
            &directives,
            &options,
        )]
    } else {
        run.compilers
            .iter()
            .map(|name| lint_compiled_mode(file, name, &case, &directives, &options))
            .collect()
    };
    FileReport {
        file: file.into(),
        targets,
        error: None,
    }
}

/// One analysis target of `depgraph` mode: the schedule's parallelism
/// profile and (on request) its DOT rendering.
#[derive(Debug)]
pub struct DepTarget {
    /// `"scheduled"` for directly-analyzed files, else the compiler name.
    pub target: String,
    /// Work/span/width profile of the schedule's dependence DAG.
    pub estimate: Option<fhe_ir::ParallelismEstimate>,
    /// Graphviz rendering (critical path highlighted), when requested.
    pub dot: Option<String>,
    /// A target-level failure (compile error, invalid schedule).
    pub error: Option<String>,
}

/// `depgraph`-mode results for one file.
#[derive(Debug)]
pub struct DepFileReport {
    /// The file, as given on the command line.
    pub file: String,
    /// One entry per analyzed schedule.
    pub targets: Vec<DepTarget>,
    /// A file-level failure (unreadable or unparsable).
    pub error: Option<String>,
}

/// Builds the dependence DAG of every schedule of `file` (the file's own
/// schedule in scheduled mode, one per requested compiler otherwise) and
/// profiles it under `model` — the paper's Table 3 by default, or a
/// measured profile via the CLI's `--profile`.
pub fn depgraph_file(
    file: &str,
    content: &str,
    run: &LintRun,
    model: &fhe_ir::CostModel,
    want_dot: bool,
) -> DepFileReport {
    let comments = match text::parse_with_comments(content) {
        Ok((_, comments)) => comments,
        Err(e) => {
            return DepFileReport {
                file: file.into(),
                targets: Vec::new(),
                error: Some(render_parse_error(&e, content, file)),
            }
        }
    };
    let (case, directives) = match (corpus::parse_case(content), parse_directives(&comments)) {
        (Ok(c), Ok(d)) => (c, d),
        (Err(e), _) | (_, Err(e)) => {
            return DepFileReport {
                file: file.into(),
                targets: Vec::new(),
                error: Some(format!("error: {e}\n  --> {file}\n")),
            }
        }
    };

    let analyze_schedule = |target: &str, scheduled: &ScheduledProgram| -> DepTarget {
        match scheduled.validate() {
            Ok(map) => {
                let graph = fhe_ir::DepGraph::build(scheduled, &map, model, true);
                DepTarget {
                    target: target.into(),
                    estimate: Some(graph.estimate()),
                    dot: want_dot
                        .then(|| graph.to_dot(&format!("{}_{target}", scheduled.program.name()))),
                    error: None,
                }
            }
            Err(errors) => {
                let joined = errors
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("; ");
                DepTarget {
                    target: target.into(),
                    estimate: None,
                    dot: None,
                    error: Some(format!("schedule does not validate: {joined}")),
                }
            }
        }
    };

    let targets = if directives.scheduled_mode {
        let spec = InputSpec {
            scale_bits: Frac::from(directives.input_scale.unwrap_or(case.params.waterline_bits)),
            level: directives.input_level.unwrap_or(1),
        };
        let scheduled = ScheduledProgram {
            program: case.program.clone(),
            params: case.params,
            inputs: vec![spec; num_inputs(&case.program)],
        };
        vec![analyze_schedule("scheduled", &scheduled)]
    } else {
        run.compilers
            .iter()
            .map(|name| {
                let compiler: Box<dyn ScaleCompiler> = match name.as_str() {
                    "eva" => Box::new(EvaCompiler),
                    "hecate" => Box::new(HecateCompiler::default()),
                    _ => Box::new(ReserveCompiler::full()),
                };
                match compiler.compile(&case.program, &case.params) {
                    Ok(c) => analyze_schedule(name, &c.scheduled),
                    Err(e) => DepTarget {
                        target: name.clone(),
                        estimate: None,
                        dot: None,
                        error: Some(format!("{name}: {e}")),
                    },
                }
            })
            .collect()
    };
    DepFileReport {
        file: file.into(),
        targets,
        error: None,
    }
}

/// True when `finding` matches any `--deny` selector: `error` and
/// `warning` match by severity (at least that severe), anything else is an
/// exact, case-insensitive code match.
pub fn denied(deny: &[String], finding: &Finding) -> bool {
    deny.iter().any(|d| match d.as_str() {
        "error" => finding.severity >= Severity::Error,
        "warning" => finding.severity >= Severity::Warning,
        code => finding.code.eq_ignore_ascii_case(code),
    })
}

fn finding_json(f: &Finding) -> Json {
    Json::obj([
        ("code", Json::from(f.code)),
        ("severity", Json::from(f.severity.label())),
        ("message", Json::from(f.message.as_str())),
        ("op", f.op.map_or(Json::Null, |o| Json::from(o.index()))),
    ])
}

/// Serializes the reports as the `--json` machine-readable form: an array
/// of `{file, error, targets: [{target, error, translation_validated,
/// findings}]}` objects.
pub fn reports_json(reports: &[FileReport]) -> Json {
    Json::Array(
        reports
            .iter()
            .map(|r| {
                Json::obj([
                    ("file", Json::from(r.file.as_str())),
                    ("error", r.error.as_deref().map_or(Json::Null, Json::from)),
                    (
                        "targets",
                        Json::Array(
                            r.targets
                                .iter()
                                .map(|t| {
                                    Json::obj([
                                        ("target", Json::from(t.target.as_str())),
                                        (
                                            "error",
                                            t.error.as_deref().map_or(Json::Null, Json::from),
                                        ),
                                        (
                                            "translation_validated",
                                            t.translation_validated.map_or(Json::Null, Json::Bool),
                                        ),
                                        (
                                            "findings",
                                            Json::Array(
                                                t.findings.iter().map(finding_json).collect(),
                                            ),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_reports_render_a_caret() {
        let r = lint_file(
            "bad.fhe",
            "program t(slots=4) {\n  %0 = frob %0\n}\n",
            &LintRun::default(),
        );
        assert!(r.has_error());
        let err = r.error.expect("parse error");
        assert!(err.contains("--> bad.fhe:2:8"), "{err}");
        assert!(err.contains('^'), "{err}");
    }

    #[test]
    fn scheduled_mode_lints_the_file_text_directly() {
        let src = "// lint-mode: scheduled\n// lint-input-scale: 95\n// lint-input-level: 2\n\
                   program d(slots=4) {\n  %0 = input \"x\"\n  %1 = rescale %0\n  return %0\n}\n";
        let r = lint_file("d.fhe", src, &LintRun::default());
        assert!(r.error.is_none());
        assert_eq!(r.targets.len(), 1);
        let t = &r.targets[0];
        assert_eq!(t.target, "scheduled");
        assert_eq!(t.translation_validated, None);
        assert_eq!(t.findings.len(), 1);
        assert_eq!(t.findings[0].code, "F002");
        assert!(t.rendered.contains("--> d.fhe:6:3"), "{}", t.rendered);
        assert!(t.rendered.contains("%1 = rescale %0"), "{}", t.rendered);
    }

    #[test]
    fn compiled_mode_validates_translation_for_every_compiler() {
        let src = "program q(slots=8) {\n  %0 = input \"x\"\n  %1 = input \"y\"\n  \
                   %2 = mul %0, %0\n  %3 = mul %2, %0\n  %4 = mul %1, %1\n  \
                   %5 = add %4, %1\n  %6 = mul %3, %5\n  return %6\n}\n";
        let r = lint_file("q.fhe", src, &LintRun::default());
        assert!(r.error.is_none());
        assert_eq!(r.targets.len(), 3);
        for t in &r.targets {
            assert!(t.error.is_none(), "{}: {:?}", t.target, t.error);
            assert_eq!(t.translation_validated, Some(true), "{}", t.target);
            assert!(
                t.findings.iter().all(|f| f.severity < Severity::Error),
                "{}: {:?}",
                t.target,
                t.findings
            );
        }
    }

    #[test]
    fn deny_selectors_match_severity_and_code() {
        let warn = Finding::new("F002", Severity::Warning, "w");
        let err = Finding::new("F001", Severity::Error, "e");
        let deny = |s: &str| vec![s.to_string()];
        assert!(denied(&deny("warning"), &warn));
        assert!(denied(&deny("warning"), &err));
        assert!(!denied(&deny("error"), &warn));
        assert!(denied(&deny("error"), &err));
        assert!(denied(&deny("f002"), &warn));
        assert!(!denied(&deny("F002"), &err));
    }

    #[test]
    fn depgraph_mode_profiles_every_compiler_target() {
        let src = "program q(slots=8) {\n  %0 = input \"x\"\n  %1 = input \"y\"\n  \
                   %2 = mul %0, %0\n  %3 = mul %2, %0\n  %4 = mul %1, %1\n  \
                   %5 = add %4, %1\n  %6 = mul %3, %5\n  return %6\n}\n";
        let model = fhe_ir::CostModel::paper_table3();
        let r = depgraph_file("q.fhe", src, &LintRun::default(), &model, true);
        assert!(r.error.is_none());
        assert_eq!(r.targets.len(), 3);
        for t in &r.targets {
            assert!(t.error.is_none(), "{}: {:?}", t.target, t.error);
            let est = t.estimate.as_ref().expect("estimate");
            assert!(est.span_us > 0.0 && est.span_us <= est.work_us + 1e-9);
            assert!(est.max_width >= 1);
            assert_eq!(est.t_of_k.first().map(|&(k, _)| k), Some(1));
            let dot = t.dot.as_ref().expect("dot requested");
            assert!(dot.starts_with("digraph"), "{dot}");
        }
    }

    #[test]
    fn depgraph_mode_analyzes_a_scheduled_file_directly() {
        let src = "// lint-mode: scheduled\n// lint-input-scale: 95\n// lint-input-level: 2\n\
                   program d(slots=4) {\n  %0 = input \"x\"\n  %1 = rescale %0\n  return %0\n}\n";
        let model = fhe_ir::CostModel::paper_table3();
        let r = depgraph_file("d.fhe", src, &LintRun::default(), &model, false);
        assert!(r.error.is_none());
        assert_eq!(r.targets.len(), 1);
        assert_eq!(r.targets[0].target, "scheduled");
        assert!(r.targets[0].dot.is_none());
        let est = r.targets[0].estimate.as_ref().expect("estimate");
        // A straight-line schedule has span == work.
        assert!((est.span_us - est.work_us).abs() < 1e-9, "{est:?}");
    }

    #[test]
    fn json_report_is_well_formed() {
        let src = "// lint-mode: scheduled\n// lint-input-scale: 95\n// lint-input-level: 2\n\
                   program d(slots=4) {\n  %0 = input \"x\"\n  %1 = rescale %0\n  return %0\n}\n";
        let r = lint_file("d.fhe", src, &LintRun::default());
        let json = reports_json(&[r]).to_string();
        assert!(json.contains("\"file\":\"d.fhe\""), "{json}");
        assert!(json.contains("\"code\":\"F002\""), "{json}");
        assert!(json.contains("\"translation_validated\":null"), "{json}");
    }
}
