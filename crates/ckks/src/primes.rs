//! Generation of NTT-friendly prime moduli chains.

use crate::modular::is_prime;

/// Finds `count` distinct primes `p ≡ 1 (mod 2n)` as close as possible to
/// `2^bits`, alternating below/above so the chain's geometric mean stays
/// near `2^bits` (keeps the actual rescaling factor within a few parts in
/// 2^40 of the nominal `R`).
///
/// # Panics
///
/// Panics if `n` is not a power of two, `bits` is not in `20..=61`, or not
/// enough primes exist in the search window (practically impossible for the
/// sizes used here).
pub fn ntt_primes(bits: u32, n: usize, count: usize) -> Vec<u64> {
    assert!(n.is_power_of_two(), "degree must be a power of two");
    assert!(
        (20..=61).contains(&bits),
        "prime size must be in 20..=61 bits"
    );
    let step = 2 * n as u64;
    let target = 1u64 << bits;
    // First candidate ≡ 1 mod 2n at or below target.
    let base = target - (target - 1) % step;
    let mut found = Vec::with_capacity(count);
    let mut lo = base;
    let mut hi = base + step;
    let mut below = true;
    while found.len() < count {
        let candidate = if below {
            let c = lo;
            lo = lo.checked_sub(step).expect("prime search underflow");
            c
        } else {
            let c = hi;
            hi = hi.checked_add(step).expect("prime search overflow");
            c
        };
        below = !below;
        if candidate > 1 && is_prime(candidate) {
            found.push(candidate);
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primes_are_friendly_and_near_target() {
        let n = 1 << 13;
        let ps = ntt_primes(50, n, 4);
        assert_eq!(ps.len(), 4);
        for &p in &ps {
            assert!(is_prime(p));
            assert_eq!((p - 1) % (2 * n as u64), 0);
            let rel = (p as f64 / 2f64.powi(50) - 1.0).abs();
            assert!(rel < 1e-3, "prime {p} strays {rel} from 2^50");
        }
        // Distinct.
        let mut sorted = ps.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn sixty_bit_primes_for_large_degree() {
        let ps = ntt_primes(60, 1 << 15, 2);
        for &p in &ps {
            assert!(is_prime(p));
            assert_eq!((p - 1) % (1 << 16), 0);
            assert!(p.ilog2() == 59 || p.ilog2() == 60);
        }
    }
}
