//! Real encrypted execution of scheduled programs on the `fhe-ckks`
//! backend, with wall-clock timing — the ground truth behind the latency
//! and error experiments.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use fhe_ckks::{
    decrypt, encrypt_symmetric, Ciphertext, CkksContext, CkksParams, Evaluator, GaloisKeys,
    KeyCache, KeyGenerator, PolyPool, RelinKey, SecretKey,
};
use fhe_ir::{CostModel, Op, OpClass, ScaleMap, ScheduleError, ScheduledProgram, ValueId};

use crate::executor::MemStats;
use crate::plain;

/// Domain separator so the lazy key cache's per-element RNG streams never
/// collide with the main keygen/encryption stream at the same seed.
pub(crate) const KEY_CACHE_SEED_TWEAK: u64 = 0x517C_C1B7_2722_0A95;

/// How the executor provisions Galois keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyPolicy {
    /// Generate each rotation key on first use and hold it in an LRU
    /// [`KeyCache`], optionally bounded to a byte budget. Evicted keys
    /// regenerate bit-identically, so outputs are independent of the
    /// budget (default, with no budget).
    Lazy {
        /// Byte budget for cached keys (`None` = unbounded). The cache
        /// always retains at least the key in use.
        budget_bytes: Option<usize>,
    },
    /// Generate keys for every rotation step of the program up front
    /// (the deployment-style eager whole-set provisioning).
    EagerProgram,
    /// Generate keys for exactly this step set up front. A scheduled
    /// rotation outside the set fails with [`ScheduleError::MissingKey`].
    EagerSet(Vec<i64>),
}

impl Default for KeyPolicy {
    fn default() -> Self {
        KeyPolicy::Lazy { budget_bytes: None }
    }
}

/// Options for encrypted execution.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Polynomial degree `N` of the backend. The program's slot count must
    /// equal `N/2` so rotations wrap identically.
    pub poly_degree: usize,
    /// RNG seed for key generation and encryption randomness.
    pub seed: u64,
    /// Worker threads for the backend's per-limb fan-out (see
    /// [`CkksParams::threads`]): `0` = auto-detect, `1` = serial. Results
    /// are bit-identical for every value.
    pub threads: usize,
    /// Galois-key provisioning policy.
    pub keys: KeyPolicy,
    /// Share one key-switch decomposition across rotations of the same
    /// ciphertext (faster, but the whole group's outputs are live at
    /// once). Disable to minimize the working set — must match the
    /// compiler's `WorkingSet` knob for the static memory bound to apply.
    pub rotation_hoisting: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            poly_degree: 1 << 12,
            seed: 0xC0FFEE,
            threads: 0,
            keys: KeyPolicy::default(),
            rotation_hoisting: true,
        }
    }
}

/// Reusable per-session key material: one context, secret/relin/Galois
/// keys and (under a lazy policy) a key cache, generated once and shared
/// by any number of [`execute_with_keys`] /
/// [`execute_parallel_with_keys`](crate::par_exec::execute_parallel_with_keys)
/// calls. This is what a serving layer amortizes across requests — the
/// context's NTT tables and the keygen RNG work are paid once per session
/// shape instead of once per request.
///
/// The RNG stream is the same as [`execute`]'s prologue (keygen from
/// `options.seed`, key cache from `seed ^ KEY_CACHE_SEED_TWEAK`), so a
/// session's keys are a pure function of `(options, shape)`.
#[derive(Debug, Clone)]
pub struct SessionKeys {
    ctx: Arc<CkksContext>,
    sk: SecretKey,
    relin: Arc<RelinKey>,
    galois: Arc<GaloisKeys>,
    cache: Option<Arc<KeyCache>>,
    fixed_key_bytes: u64,
    static_key_bytes: u64,
}

impl SessionKeys {
    /// Generates key material for programs of the given shape: polynomial
    /// degree and per-limb threads come from `options`, the modulus chain
    /// from `(max_level, modulus_bits)`. Under [`KeyPolicy::EagerProgram`]
    /// the static Galois set covers `rotation_steps` (callers pass the
    /// union of rotation steps the sessions' programs use); the other
    /// policies ignore it.
    pub fn generate(
        options: &ExecOptions,
        max_level: usize,
        modulus_bits: u32,
        rotation_steps: &[i64],
    ) -> SessionKeys {
        let ctx = Arc::new(CkksContext::new(CkksParams {
            poly_degree: options.poly_degree,
            max_level,
            modulus_bits,
            special_bits: modulus_bits.min(60) + 1,
            error_std: 3.2,
            threads: options.threads,
        }));
        let mut rng = StdRng::seed_from_u64(options.seed);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key();
        let relin = kg.relin_key(&mut rng);
        let (galois, cache) = match &options.keys {
            KeyPolicy::Lazy { budget_bytes } => {
                let cache = KeyCache::new(
                    kg.secret_key(),
                    options.seed ^ KEY_CACHE_SEED_TWEAK,
                    *budget_bytes,
                );
                (GaloisKeys::default(), Some(Arc::new(cache)))
            }
            KeyPolicy::EagerProgram => (
                kg.galois_keys(rotation_steps.iter().copied(), &mut rng),
                None,
            ),
            KeyPolicy::EagerSet(steps) => (kg.galois_keys(steps.iter().copied(), &mut rng), None),
        };
        let static_key_bytes = galois.byte_size() as u64;
        let fixed_key_bytes = (sk.byte_size() + relin.byte_size()) as u64;
        SessionKeys {
            ctx,
            sk,
            relin: Arc::new(relin),
            galois: Arc::new(galois),
            cache,
            fixed_key_bytes,
            static_key_bytes,
        }
    }

    /// Generates key material sized for one schedule: validates it, sizes
    /// the modulus chain to its level requirement, and (under
    /// [`KeyPolicy::EagerProgram`]) provisions its rotation steps.
    ///
    /// # Errors
    ///
    /// Returns the schedule's validation errors if it is illegal.
    pub fn for_schedule(
        scheduled: &ScheduledProgram,
        options: &ExecOptions,
    ) -> Result<SessionKeys, Vec<ScheduleError>> {
        let map = scheduled.validate()?;
        Ok(SessionKeys::generate(
            options,
            map.max_level() as usize,
            scheduled.params.rescale_bits,
            &rotation_steps(&scheduled.program),
        ))
    }

    /// The shared backend context.
    pub fn context(&self) -> &Arc<CkksContext> {
        &self.ctx
    }

    /// The session's secret key (encryption + decryption).
    pub fn secret_key(&self) -> &SecretKey {
        &self.sk
    }

    /// Shared handle to the relinearization key.
    pub fn relin_handle(&self) -> Arc<RelinKey> {
        self.relin.clone()
    }

    /// Shared handle to the static Galois key set.
    pub fn galois_handle(&self) -> Arc<GaloisKeys> {
        self.galois.clone()
    }

    /// Shared handle to the lazy key cache, if the policy was
    /// [`KeyPolicy::Lazy`].
    pub fn cache_handle(&self) -> Option<Arc<KeyCache>> {
        self.cache.clone()
    }

    /// The lazy Galois-key cache, if the policy was [`KeyPolicy::Lazy`].
    pub fn key_cache(&self) -> Option<&KeyCache> {
        self.cache.as_deref()
    }

    /// Bytes of the always-resident key material (secret + relin key).
    pub fn fixed_key_bytes(&self) -> u64 {
        self.fixed_key_bytes
    }

    /// Bytes of the static Galois key set (zero under a lazy policy).
    pub fn static_key_bytes(&self) -> u64 {
        self.static_key_bytes
    }
}

/// The rotation steps a program uses, in schedule order (duplicates kept —
/// [`fhe_ckks::KeyGenerator::galois_keys`] deduplicates).
pub fn rotation_steps(program: &fhe_ir::Program) -> Vec<i64> {
    program
        .ops()
        .iter()
        .filter_map(|op| match op {
            Op::Rotate(_, k) => Some(*k),
            _ => None,
        })
        .collect()
}

/// Result of an encrypted execution.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Decrypted program outputs.
    pub outputs: Vec<Vec<f64>>,
    /// Plaintext reference outputs.
    pub reference: Vec<Vec<f64>>,
    /// Wall-clock time spent in homomorphic operations (excludes key
    /// generation, encryption and decryption).
    pub op_time: Duration,
    /// End-to-end time including keygen/encrypt/decrypt.
    pub total_time: Duration,
    /// Number of homomorphic ops executed.
    pub ops_executed: usize,
    /// Wall time and op count per Table 3 op class (fresh encryptions are
    /// counted in [`ExecReport::ops_executed`] but have no class).
    pub per_class: Vec<(OpClass, Duration, usize)>,
    /// Whole-run memory counters (pool + key material).
    pub mem: MemStats,
    /// Per-op-class memory counters (summed deltas; byte peaks are the
    /// high-water mark at the end of any op of the class).
    pub per_class_mem: Vec<(OpClass, MemStats)>,
}

impl ExecReport {
    /// Maximum absolute slot error vs the reference.
    pub fn max_abs_error(&self) -> f64 {
        self.outputs
            .iter()
            .zip(&self.reference)
            .flat_map(|(o, r)| o.iter().zip(r).map(|(a, b)| (a - b).abs()))
            .fold(0.0, f64::max)
    }
}

/// Executes a scheduled program under real RNS-CKKS encryption.
///
/// # Errors
///
/// Returns the schedule's validation errors if it is illegal.
///
/// # Panics
///
/// Panics if the program's slot count differs from `poly_degree / 2` or the
/// schedule's rescaling factor differs from 60 bits (the backend's chain
/// prime size is chosen to match the schedule's `R`).
pub fn execute(
    scheduled: &ScheduledProgram,
    inputs: &HashMap<String, Vec<f64>>,
    options: &ExecOptions,
) -> Result<ExecReport, Vec<ScheduleError>> {
    let map = scheduled.validate()?;
    let program = &scheduled.program;
    assert_eq!(
        program.slots(),
        options.poly_degree / 2,
        "program slots must match N/2 for rotation semantics"
    );

    let t_total = Instant::now();
    let ckks_params = CkksParams {
        poly_degree: options.poly_degree,
        max_level: map.max_level() as usize,
        modulus_bits: scheduled.params.rescale_bits,
        special_bits: scheduled.params.rescale_bits.min(60) + 1,
        error_std: 3.2,
        threads: options.threads,
    };
    let ctx = CkksContext::new(ckks_params);
    let mut rng = StdRng::seed_from_u64(options.seed);
    let kg = KeyGenerator::new(&ctx, &mut rng);
    let sk = kg.secret_key();
    let relin = kg.relin_key(&mut rng);
    let (galois, cache) = match &options.keys {
        KeyPolicy::Lazy { budget_bytes } => {
            let cache = KeyCache::new(
                kg.secret_key(),
                options.seed ^ KEY_CACHE_SEED_TWEAK,
                *budget_bytes,
            );
            (GaloisKeys::default(), Some(cache))
        }
        KeyPolicy::EagerProgram => (kg.galois_keys(rotation_steps(program), &mut rng), None),
        KeyPolicy::EagerSet(steps) => (kg.galois_keys(steps.iter().copied(), &mut rng), None),
    };
    let static_key_bytes = galois.byte_size() as u64;
    let fixed_key_bytes = (sk.byte_size() + relin.byte_size()) as u64;
    let mut ev = Evaluator::new(&ctx, Some(relin), galois);
    if let Some(cache) = cache {
        ev = ev.with_key_cache(cache);
    }
    run_schedule(
        scheduled,
        &map,
        inputs,
        options.rotation_hoisting,
        &ev,
        &ctx,
        &sk,
        &mut rng,
        fixed_key_bytes,
        static_key_bytes,
        t_total,
    )
}

/// Executes a scheduled program against pre-generated [`SessionKeys`],
/// optionally drawing limb buffers from a shared [`PolyPool`] — the
/// request path of a serving layer: compile once, generate keys once per
/// session, execute many times.
///
/// Encryption randomness comes from `enc_seed` alone (keygen randomness
/// was consumed when the keys were generated), so a request's output bytes
/// are a pure function of `(schedule, inputs, keys, enc_seed)` — byte
/// identical whether requests run serially or interleaved with other
/// sessions.
///
/// The report's [`MemStats`] counters (`allocations`, `pool_*`, `key_*`)
/// are **deltas** over this call; byte figures (`peak_bytes`,
/// `live_bytes`, `key_bytes_peak`) are absolute high-water/end values of
/// the (possibly shared) pool and cache. Counter deltas are exact when
/// requests sharing a pool run serially; under concurrent execution they
/// attribute contended traffic approximately, while the *global* pool
/// counters remain exact.
///
/// # Errors
///
/// Returns the schedule's validation errors if it is illegal.
///
/// # Panics
///
/// Panics if the program's slot count differs from the session context's
/// `N/2`, the schedule needs more levels than the context provides, its
/// rescaling factor differs from the context's chain-prime size, or an
/// input binding is missing.
pub fn execute_with_keys(
    scheduled: &ScheduledProgram,
    inputs: &HashMap<String, Vec<f64>>,
    options: &ExecOptions,
    keys: &SessionKeys,
    pool: Option<Arc<PolyPool>>,
    enc_seed: u64,
) -> Result<ExecReport, Vec<ScheduleError>> {
    let map = scheduled.validate()?;
    let ctx = &keys.ctx;
    assert_eq!(
        scheduled.program.slots(),
        ctx.degree() / 2,
        "program slots must match the session context's N/2"
    );
    assert!(
        map.max_level() as usize <= ctx.max_level(),
        "schedule needs level {} but the session context provides {}",
        map.max_level(),
        ctx.max_level()
    );
    assert_eq!(
        scheduled.params.rescale_bits as usize,
        ctx.params().modulus_bits as usize,
        "schedule rescale bits must match the session context's chain primes"
    );

    let t_total = Instant::now();
    let mut ev = Evaluator::new_shared(ctx, Some(keys.relin.clone()), keys.galois.clone());
    if let Some(cache) = &keys.cache {
        ev = ev.with_key_cache_handle(cache.clone());
    }
    if let Some(pool) = pool {
        ev = ev.with_pool(pool);
    }
    let mut rng = StdRng::seed_from_u64(enc_seed);
    run_schedule(
        scheduled,
        &map,
        inputs,
        options.rotation_hoisting,
        &ev,
        ctx,
        &keys.sk,
        &mut rng,
        keys.fixed_key_bytes,
        keys.static_key_bytes,
        t_total,
    )
}

/// The shared post-keygen body of [`execute`] and [`execute_with_keys`]:
/// walks the schedule serially against an already-constructed evaluator,
/// with `rng` supplying encryption randomness in schedule order.
#[allow(clippy::too_many_arguments)]
fn run_schedule(
    scheduled: &ScheduledProgram,
    map: &ScaleMap,
    inputs: &HashMap<String, Vec<f64>>,
    rotation_hoisting: bool,
    ev: &Evaluator<'_>,
    ctx: &CkksContext,
    sk: &SecretKey,
    rng: &mut StdRng,
    fixed_key_bytes: u64,
    static_key_bytes: u64,
    t_total: Instant,
) -> Result<ExecReport, Vec<ScheduleError>> {
    let program = &scheduled.program;
    // Plaintext sub-values are evaluated in the clear and encoded on demand.
    let slots = program.slots();
    let live = fhe_ir::analysis::live(program);
    let mut plain_vals: Vec<Option<Vec<f64>>> = vec![None; program.num_ops()];
    let mut cipher_vals: Vec<Option<Ciphertext>> = vec![None; program.num_ops()];
    let waterline = 2f64.powi(scheduled.params.waterline_bits as i32);

    // Rotations of the same ciphertext share one hoisted key-switch
    // decomposition: group them up front, compute the whole group when its
    // first member executes, and hand out the rest from a side table.
    let mut rotation_groups: HashMap<ValueId, Vec<(ValueId, i64)>> = HashMap::new();
    for id in program.ids() {
        if let Op::Rotate(a, k) = program.op(id) {
            if live[id.index()] && program.is_cipher(id) {
                rotation_groups.entry(*a).or_default().push((id, *k));
            }
        }
    }
    rotation_groups.retain(|_, group| group.len() >= 2);
    if !rotation_hoisting {
        rotation_groups.clear();
    }
    let mut hoisted_results: HashMap<ValueId, Ciphertext> = HashMap::new();

    // Last-use positions drive eager freeing: a ciphertext whose final
    // consumer has executed is recycled into the pool. Outputs stay live
    // until decryption.
    let mut last_use: Vec<usize> = vec![0; program.num_ops()];
    let mut is_output = vec![false; program.num_ops()];
    for &o in program.outputs() {
        is_output[o.index()] = true;
    }
    for id in program.ids() {
        if !live[id.index()] {
            continue;
        }
        for a in program.op(id).operands() {
            last_use[a.index()] = id.index();
        }
    }

    let mut op_time = Duration::ZERO;
    let mut ops_executed = 0usize;
    let mut by_class: [(Duration, usize); OpClass::ALL.len()] =
        [(Duration::ZERO, 0); OpClass::ALL.len()];
    let mut by_class_mem: [MemStats; OpClass::ALL.len()] =
        [MemStats::default(); OpClass::ALL.len()];
    let start_mem = mem_snapshot(ev, fixed_key_bytes, static_key_bytes);
    let mut prev_mem = start_mem;
    let mut input_iter = scheduled.inputs.iter();

    for id in program.ids() {
        if !live[id.index()] {
            if matches!(program.op(id), Op::Input { .. }) {
                let _ = input_iter.next();
            }
            continue;
        }
        if program.is_plain(id) {
            let v = match program.op(id) {
                Op::Const { value } => value.to_vec(slots),
                Op::Add(a, b) => bin(&plain_vals, *a, *b, |x, y| x + y),
                Op::Sub(a, b) => bin(&plain_vals, *a, *b, |x, y| x - y),
                Op::Mul(a, b) => bin(&plain_vals, *a, *b, |x, y| x * y),
                Op::Neg(a) => get(&plain_vals, *a).iter().map(|x| -x).collect(),
                Op::Rotate(a, k) => plain::rotate(get(&plain_vals, *a), *k),
                other => unreachable!("plain {other:?}"),
            };
            plain_vals[id.index()] = Some(v);
            continue;
        }

        let t0 = Instant::now();
        let ct = match program.op(id) {
            Op::Input { name } => {
                let spec = input_iter.next().expect("input specs match inputs");
                let data = inputs
                    .get(name)
                    .unwrap_or_else(|| panic!("missing input binding `{name}`"));
                let scale = 2f64.powf(spec.scale_bits.to_f64());
                let pt = ev.encoder().encode(data, scale, spec.level as usize);
                let ct = encrypt_symmetric(ctx, sk, &pt, rng);
                // Fresh encryptions allocate outside the pool; adopt their
                // limbs so live/peak accounting covers them.
                ev.pool().adopt(2 * ct.level);
                ct
            }
            Op::Add(a, b) | Op::Sub(a, b) => {
                let sub = matches!(program.op(id), Op::Sub(..));
                match (program.is_cipher(*a), program.is_cipher(*b)) {
                    (true, true) => {
                        let ca = cref(&cipher_vals, *a);
                        let cb = cref(&cipher_vals, *b);
                        if sub {
                            ev.sub(ca, cb)
                        } else {
                            ev.add(ca, cb)
                        }
                    }
                    (true, false) => {
                        let ca = cref(&cipher_vals, *a);
                        let pv = get(&plain_vals, *b);
                        let pv: Vec<f64> = if sub {
                            pv.iter().map(|x| -x).collect()
                        } else {
                            pv.clone()
                        };
                        let pt = ev.encoder().encode(&pv, ca.scale, ca.level);
                        ev.add_plain(ca, &pt)
                    }
                    (false, true) => {
                        // plain ± cipher: a + b, or a − b = (−b) + a. The
                        // negated temporary goes straight back to the pool.
                        let cb = cref(&cipher_vals, *b);
                        let pv = get(&plain_vals, *a);
                        if sub {
                            let neg = ev.neg(cb);
                            let pt = ev.encoder().encode(pv, neg.scale, neg.level);
                            let out = ev.add_plain(&neg, &pt);
                            ev.recycle_ct(neg);
                            out
                        } else {
                            let pt = ev.encoder().encode(pv, cb.scale, cb.level);
                            ev.add_plain(cb, &pt)
                        }
                    }
                    (false, false) => unreachable!(),
                }
            }
            Op::Mul(a, b) => match (program.is_cipher(*a), program.is_cipher(*b)) {
                (true, true) => ev.mul(cref(&cipher_vals, *a), cref(&cipher_vals, *b)),
                (true, false) | (false, true) => {
                    let (c, p) = if program.is_cipher(*a) {
                        (*a, *b)
                    } else {
                        (*b, *a)
                    };
                    let cc = cref(&cipher_vals, c);
                    let pt = ev
                        .encoder()
                        .encode(get(&plain_vals, p), waterline, cc.level);
                    ev.mul_plain(cc, &pt)
                }
                (false, false) => unreachable!(),
            },
            Op::Neg(a) => ev.neg(cref(&cipher_vals, *a)),
            Op::Rotate(a, k) => {
                if let Some(ct) = hoisted_results.remove(&id) {
                    ct
                } else if let Some(group) = rotation_groups.get(a) {
                    let ca = cref(&cipher_vals, *a);
                    let steps: Vec<i64> = group.iter().map(|&(_, s)| s).collect();
                    match ev.try_rotate_hoisted(ca, &steps) {
                        Ok(outs) => {
                            let mut mine = None;
                            for (&(gid, _), out) in group.iter().zip(outs) {
                                if gid == id {
                                    mine = Some(out);
                                } else {
                                    hoisted_results.insert(gid, out);
                                }
                            }
                            mine.expect("group contains the current op")
                        }
                        Err(e) => {
                            return Err(vec![ScheduleError::MissingKey {
                                op: id,
                                steps: e.steps.unwrap_or(*k),
                            }])
                        }
                    }
                } else {
                    match ev.try_rotate(cref(&cipher_vals, *a), *k) {
                        Ok(ct) => ct,
                        Err(_) => {
                            return Err(vec![ScheduleError::MissingKey { op: id, steps: *k }])
                        }
                    }
                }
            }
            Op::Rescale(a) => ev.rescale(cref(&cipher_vals, *a)),
            Op::ModSwitch(a) => ev.mod_switch(cref(&cipher_vals, *a)),
            Op::Upscale(a, delta) => ev.upscale(cref(&cipher_vals, *a), 2f64.powf(delta.to_f64())),
            Op::Const { .. } => unreachable!("consts are plain"),
        };
        let elapsed = t0.elapsed();
        op_time += elapsed;
        ops_executed += 1;
        debug_assert_eq!(
            ct.level as u32,
            map.level(id),
            "backend level tracks schedule"
        );
        cipher_vals[id.index()] = Some(ct);
        // Recycle operands whose last consumer just ran (a squared operand
        // appears twice but is freed once).
        let mut seen = None;
        for a in program.op(id).operands() {
            if seen == Some(a) {
                continue;
            }
            seen = Some(a);
            if program.is_cipher(a) && last_use[a.index()] == id.index() && !is_output[a.index()] {
                if let Some(dead) = cipher_vals[a.index()].take() {
                    ev.recycle_ct(dead);
                }
            }
        }
        let cur = mem_snapshot(ev, fixed_key_bytes, static_key_bytes);
        if let Some(class) = CostModel::classify(program, id) {
            let slot = OpClass::ALL
                .iter()
                .position(|c| *c == class)
                .expect("class in ALL");
            by_class[slot].0 += elapsed;
            by_class[slot].1 += 1;
            let m = &mut by_class_mem[slot];
            m.allocations += cur.allocations - prev_mem.allocations;
            m.pool_hits += cur.pool_hits - prev_mem.pool_hits;
            m.pool_misses += cur.pool_misses - prev_mem.pool_misses;
            m.key_hits += cur.key_hits - prev_mem.key_hits;
            m.key_misses += cur.key_misses - prev_mem.key_misses;
            m.key_evictions += cur.key_evictions - prev_mem.key_evictions;
            m.peak_bytes = m.peak_bytes.max(cur.live_bytes);
            m.live_bytes = cur.live_bytes;
            m.key_bytes_peak = m.key_bytes_peak.max(cur.key_bytes_peak);
        }
        prev_mem = cur;
    }

    let outputs = program
        .outputs()
        .iter()
        .map(|&o| {
            // Rewrites can fold an output to a public value (e.g. `x - x`);
            // a plain output has no ciphertext to decrypt.
            if program.is_plain(o) {
                return get(&plain_vals, o).clone();
            }
            let ct = cipher_vals[o.index()].as_ref().expect("output evaluated");
            let mut v = ev.encoder().decode(&decrypt(ctx, sk, ct));
            v.truncate(slots);
            v
        })
        .collect();
    let reference = plain::execute(program, inputs);
    let per_class = OpClass::ALL
        .iter()
        .zip(by_class)
        .filter(|(_, (_, n))| *n > 0)
        .map(|(&c, (d, n))| (c, d, n))
        .collect();
    let per_class_mem = OpClass::ALL
        .iter()
        .zip(by_class_mem)
        .zip(by_class.iter())
        .filter(|(_, t)| t.1 > 0)
        .map(|((&c, m), _)| (c, m))
        .collect();
    let mem = mem_snapshot(ev, fixed_key_bytes, static_key_bytes).delta_since(&start_mem);
    Ok(ExecReport {
        outputs,
        reference,
        op_time,
        total_time: t_total.elapsed(),
        ops_executed,
        per_class,
        mem,
        per_class_mem,
    })
}

fn cref(vals: &[Option<Ciphertext>], id: ValueId) -> &Ciphertext {
    vals[id.index()].as_ref().expect("cipher operand evaluated")
}

/// Total memory picture at one instant: pool-tracked polynomial bytes plus
/// the fixed key material (secret + relin) plus Galois keys (cached bytes
/// under a lazy policy, the whole static set under an eager one). Encoder
/// scratch is invisible here and in the static model alike, so the static
/// bound stays comparable.
pub(crate) fn mem_snapshot(
    ev: &Evaluator<'_>,
    fixed_key_bytes: u64,
    static_key_bytes: u64,
) -> MemStats {
    let p = ev.pool_stats();
    let (kh, km, ke, kb, kp) = match ev.key_cache() {
        Some(c) => {
            let s = c.stats();
            (
                s.hits,
                s.misses,
                s.evictions,
                s.bytes as u64,
                s.peak_bytes as u64,
            )
        }
        None => (0, 0, 0, static_key_bytes, static_key_bytes),
    };
    MemStats {
        peak_bytes: p.peak_bytes + fixed_key_bytes + kp,
        live_bytes: p.live_bytes + fixed_key_bytes + kb,
        allocations: p.misses + p.adopted,
        pool_hits: p.hits,
        pool_misses: p.misses,
        key_hits: kh,
        key_misses: km,
        key_evictions: ke,
        key_bytes_peak: kp,
    }
}

pub(crate) fn get(vals: &[Option<Vec<f64>>], id: ValueId) -> &Vec<f64> {
    vals[id.index()].as_ref().expect("plain operand evaluated")
}

pub(crate) fn bin(
    vals: &[Option<Vec<f64>>],
    a: ValueId,
    b: ValueId,
    f: impl Fn(f64, f64) -> f64,
) -> Vec<f64> {
    get(vals, a)
        .iter()
        .zip(get(vals, b))
        .map(|(&x, &y)| f(x, y))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::Builder;
    use reserve_core::Options;

    fn inputs(pairs: &[(&str, Vec<f64>)]) -> HashMap<String, Vec<f64>> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    fn opts() -> ExecOptions {
        ExecOptions {
            poly_degree: 256,
            seed: 3,
            threads: 1,
            ..ExecOptions::default()
        }
    }

    #[test]
    fn encrypted_fig2a_matches_reference() {
        let slots = 128;
        let b = Builder::new("fig2a", slots);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        let p = b.finish(vec![q]);
        let compiled = reserve_core::compile(&p, &Options::new(30)).unwrap();
        let xs: Vec<f64> = (0..slots).map(|i| ((i % 5) as f64 - 2.0) * 0.3).collect();
        let ys: Vec<f64> = (0..slots).map(|i| ((i % 7) as f64) * 0.1).collect();
        let report = execute(
            &compiled.scheduled,
            &inputs(&[("x", xs), ("y", ys)]),
            &opts(),
        )
        .unwrap();
        assert!(
            report.max_abs_error() < 1e-2,
            "encrypted error {}",
            report.max_abs_error()
        );
        assert!(report.ops_executed > 5);
        assert!(report.op_time > Duration::ZERO);
    }

    #[test]
    fn encrypted_rotation_and_plain_mul() {
        let slots = 128;
        let b = Builder::new("rotmul", slots);
        let x = b.input("x");
        let k = b.constant(vec![0.5; 128]);
        let e = x.clone().rotate(1) * k + x;
        let p = b.finish(vec![e]);
        // Slot values exceed 1, so the outputs need headroom: reserve two
        // bits of the output modulus for the value magnitude (Table 1's
        // m·x_max < Q constraint).
        let mut options = Options::new(30);
        options.params.output_reserve_bits = 2;
        let compiled = reserve_core::compile(&p, &options).unwrap();
        let xs: Vec<f64> = (0..slots).map(|i| i as f64 * 0.01).collect();
        let report = execute(&compiled.scheduled, &inputs(&[("x", xs.clone())]), &opts()).unwrap();
        let expect0 = xs[1] * 0.5 + xs[0];
        assert!((report.outputs[0][0] - expect0).abs() < 1e-2);
        assert_eq!(report.outputs[0].len(), slots);
    }

    #[test]
    fn plain_output_decodes_without_ciphertext() {
        // Fuzzer reproducer (tests/corpus/fold_plain_output.fhe): cleanup
        // folds `x - x` to a public zero, so the program's only output is
        // a plain value with no ciphertext to decrypt.
        let slots = 128;
        let b = Builder::new("fold", slots);
        let x = b.input("x");
        let z = x.clone() - x;
        let p = b.finish(vec![z]);
        let compiled = reserve_core::compile(&p, &Options::new(30)).unwrap();
        assert!(
            compiled
                .scheduled
                .program
                .outputs()
                .iter()
                .any(|&o| { compiled.scheduled.program.is_plain(o) }),
            "expected cleanup to fold the output to a plain value"
        );
        let xs: Vec<f64> = (0..slots).map(|i| i as f64 * 0.01).collect();
        let report = execute(&compiled.scheduled, &inputs(&[("x", xs)]), &opts()).unwrap();
        assert!(report.outputs[0].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn key_policies_agree_and_eager_set_reports_missing_keys() {
        let slots = 128;
        let b = Builder::new("keypol", slots);
        let x = b.input("x");
        let e = x.clone().rotate(1) + x.clone().rotate(3) + x;
        let p = b.finish(vec![e]);
        let mut options = Options::new(30);
        options.params.output_reserve_bits = 2;
        let compiled = reserve_core::compile(&p, &options).unwrap();
        let xs: Vec<f64> = (0..slots).map(|i| i as f64 * 0.001).collect();
        let ins = inputs(&[("x", xs)]);

        let lazy = execute(&compiled.scheduled, &ins, &opts()).unwrap();
        assert!(lazy.max_abs_error() < 1e-2, "err {}", lazy.max_abs_error());
        assert!(
            lazy.mem.key_misses >= 2,
            "two distinct steps generate lazily"
        );
        assert!(lazy.mem.peak_bytes > 0);

        // A one-byte budget forces an eviction after every use; per-element
        // key RNG streams make regenerated keys bit-identical, so outputs
        // are independent of the budget.
        let budgeted = execute(
            &compiled.scheduled,
            &ins,
            &ExecOptions {
                keys: KeyPolicy::Lazy {
                    budget_bytes: Some(1),
                },
                ..opts()
            },
        )
        .unwrap();
        assert_eq!(
            lazy.outputs, budgeted.outputs,
            "budget must not change results"
        );
        assert!(budgeted.mem.key_evictions > 0);
        assert!(budgeted.mem.key_bytes_peak <= lazy.mem.key_bytes_peak);

        let eager = execute(
            &compiled.scheduled,
            &ins,
            &ExecOptions {
                keys: KeyPolicy::EagerProgram,
                ..opts()
            },
        )
        .unwrap();
        assert!(eager.max_abs_error() < 1e-2);
        assert_eq!(eager.mem.key_evictions, 0);

        // A provisioned set without the schedule's step 3 is a structured
        // error, not a panic — even on the hoisted-group path.
        let err = execute(
            &compiled.scheduled,
            &ins,
            &ExecOptions {
                keys: KeyPolicy::EagerSet(vec![1]),
                ..opts()
            },
        )
        .unwrap_err();
        assert!(
            matches!(err[0], ScheduleError::MissingKey { steps: 3, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn eva_schedules_also_execute() {
        let slots = 128;
        let b = Builder::new("evaexec", slots);
        let x = b.input("x");
        let y = b.input("y");
        let e = (x.clone() * y.clone() + x) * y;
        let p = b.finish(vec![e]);
        let eva = fhe_baselines::eva::compile(&p, &fhe_ir::CompileParams::new(30)).unwrap();
        let xs = vec![0.5; slots];
        let ys = vec![0.25; slots];
        let report = execute(&eva.scheduled, &inputs(&[("x", xs), ("y", ys)]), &opts()).unwrap();
        assert!(
            report.max_abs_error() < 1e-2,
            "err {}",
            report.max_abs_error()
        );
    }
}
