//! Concurrency suite for the service layer: N submitter threads × M
//! sessions against a multi-worker [`FheServer`], under both lazy and
//! eager key provisioning and DAG-executor widths {1, 2, 8} — every
//! response must be **byte-identical** to a serial single-session replay
//! through [`execute_with_keys`] at the same derived encryption seed.
//!
//! This pins the service determinism contract: outputs are a pure
//! function of (schedule, inputs, keys, seed); queue interleavings,
//! worker counts and pool sharing must not move a single bit.

use std::collections::HashMap;
use std::sync::Arc;

use fhe_ir::pipeline::ScaleCompiler;
use fhe_ir::{text, CompileParams};
use fhe_runtime::{
    execute_with_keys, outputs_close, ExecOptions, KeyPolicy, ParOptions, SessionKeys,
};
use fhe_serve::{request_seed, FheServer, Request, ServerConfig};

const SLOTS: usize = 128;
const SESSIONS: usize = 3;
const REQUESTS: usize = 4;

fn fig2a_text() -> String {
    let b = fhe_ir::Builder::new("fig2a", SLOTS);
    let x = b.input("x");
    let y = b.input("y");
    let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
    text::print(&b.finish(vec![q]))
}

fn session_seed(s: usize) -> u64 {
    0x5E55_0000 + s as u64
}

/// Deterministic inputs, distinct per (session, request index).
fn inputs_for(s: usize, i: usize) -> HashMap<String, Vec<f64>> {
    let xs: Vec<f64> = (0..SLOTS)
        .map(|k| (((k + 3 * s + 7 * i) % 11) as f64 - 5.0) * 0.08)
        .collect();
    let ys: Vec<f64> = (0..SLOTS)
        .map(|k| (((k + 5 * s + 2 * i) % 7) as f64) * 0.09)
        .collect();
    [("x".to_string(), xs), ("y".to_string(), ys)]
        .into_iter()
        .collect()
}

fn exec_options(s: usize, keys: KeyPolicy) -> ExecOptions {
    ExecOptions {
        poly_degree: SLOTS * 2,
        seed: session_seed(s),
        threads: 1,
        keys,
        rotation_hoisting: true,
    }
}

/// The serial oracle: one session at a time, one request at a time,
/// through the plain (non-service) executor entry point.
fn serial_reference(keys_policy: &KeyPolicy) -> Vec<Vec<Vec<Vec<f64>>>> {
    let program = text::parse(&fig2a_text()).expect("round-trips");
    let scheduled = reserve_core::ReserveCompiler::full()
        .compile(&program, &CompileParams::new(30))
        .expect("compiles")
        .scheduled;
    (0..SESSIONS)
        .map(|s| {
            let options = exec_options(s, keys_policy.clone());
            let keys = SessionKeys::for_schedule(&scheduled, &options).expect("valid schedule");
            (0..REQUESTS)
                .map(|i| {
                    let report = execute_with_keys(
                        &scheduled,
                        &inputs_for(s, i),
                        &options,
                        &keys,
                        None,
                        request_seed(session_seed(s), i as u64),
                    )
                    .expect("executes");
                    outputs_close(&report.outputs, &report.reference, 1e-2).expect("accurate");
                    report.outputs
                })
                .collect()
        })
        .collect()
}

/// Runs the full matrix for one key policy: for each width w in
/// {1, 2, 8}, w service workers × w DAG runners, all sessions submitting
/// concurrently; asserts byte-identity against the serial oracle.
fn run_matrix(keys_policy: KeyPolicy) {
    let reference = serial_reference(&keys_policy);
    let program_text = fig2a_text();

    for width in [1usize, 2, 8] {
        let server = Arc::new(FheServer::new(ServerConfig {
            workers: width,
            queue_capacity: 64,
            ..ServerConfig::default()
        }));
        let sessions: Vec<_> = (0..SESSIONS)
            .map(|s| {
                server.create_session(ParOptions {
                    exec: exec_options(s, keys_policy.clone()),
                    workers: width,
                    fusion: true,
                })
            })
            .collect();

        // One submitter thread per session, submitting in order (the
        // session's sequence numbers then match the request indices),
        // interleaved arbitrarily across sessions by the scheduler.
        let outputs: Vec<Vec<Vec<Vec<f64>>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..SESSIONS)
                .map(|s| {
                    let server = server.clone();
                    let session = sessions[s];
                    let text = program_text.clone();
                    scope.spawn(move || {
                        let tickets: Vec<_> = (0..REQUESTS)
                            .map(|i| {
                                server
                                    .submit(Request {
                                        session,
                                        program: text.clone(),
                                        params: CompileParams::new(30),
                                        compiler: "reserve".into(),
                                        inputs: inputs_for(s, i),
                                        deadline: None,
                                    })
                                    .expect("submits")
                            })
                            .collect();
                        tickets
                            .into_iter()
                            .enumerate()
                            .map(|(i, t)| {
                                let resp = t.wait().expect("request succeeds");
                                assert_eq!(resp.seq, i as u64, "submission order is seq order");
                                assert_eq!(
                                    resp.enc_seed,
                                    request_seed(session_seed(s), i as u64),
                                    "seed derivation is the documented pure function"
                                );
                                resp.outputs
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for s in 0..SESSIONS {
            for i in 0..REQUESTS {
                assert_eq!(
                    outputs[s][i], reference[s][i],
                    "width {width}, session {s}, request {i}: concurrent response \
                     must be byte-identical to the serial replay"
                );
            }
        }

        let stats = server.stats();
        assert_eq!(stats.requests, (SESSIONS * REQUESTS) as u64);
        assert_eq!(stats.failed, 0);
        // All sessions submit the same (text, params, compiler): exactly
        // one compile, everything else cache hits.
        assert_eq!(stats.cache.misses, 1, "width {width}");
        assert_eq!(stats.cache.hits, (SESSIONS * REQUESTS - 1) as u64);
        assert_eq!(stats.sessions.len(), SESSIONS);
        for session_stats in &stats.sessions {
            assert_eq!(session_stats.requests, REQUESTS as u64);
            assert!(!session_stats.quarantined);
            assert!(session_stats.peak_bytes > 0);
        }
    }
}

#[test]
fn concurrent_sessions_are_byte_identical_to_serial_replay_lazy() {
    run_matrix(KeyPolicy::Lazy { budget_bytes: None });
}

#[test]
fn concurrent_sessions_are_byte_identical_to_serial_replay_eager() {
    run_matrix(KeyPolicy::EagerProgram);
}
