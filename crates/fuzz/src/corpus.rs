//! Reproducer corpus: shrunk failing programs serialized as textual IR
//! with `// fuzz-…` directive comments carrying the compile parameters
//! and failure label, so a case replays bit-identically from the file
//! alone (input data is derived from input *names*, see
//! [`crate::oracle::input_data`]).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use fhe_ir::{text, CompileParams, Program};

/// A corpus entry: program plus the parameters and label it was found
/// under.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// Source file (for diagnostics), if loaded from disk.
    pub path: Option<PathBuf>,
    /// The reproducer program.
    pub program: Program,
    /// Compile parameters the divergence was found under.
    pub params: CompileParams,
    /// The divergence label at discovery time (informational: a fixed bug
    /// no longer reproduces it).
    pub label: Option<String>,
}

/// Renders a corpus case to the textual reproducer format.
pub fn render_case(program: &Program, params: &CompileParams, label: &str, detail: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("// fuzz-label: {label}\n"));
    if !detail.is_empty() {
        let flat = detail.replace(['\n', '\r'], "; ");
        out.push_str(&format!("// fuzz-detail: {flat}\n"));
    }
    out.push_str(&format!("// fuzz-waterline: {}\n", params.waterline_bits));
    out.push_str(&format!("// fuzz-rescale: {}\n", params.rescale_bits));
    out.push_str(&format!("// fuzz-max-level: {}\n", params.max_level));
    if params.output_reserve_bits != 0 {
        out.push_str(&format!(
            "// fuzz-output-reserve: {}\n",
            params.output_reserve_bits
        ));
    }
    out.push_str(&text::print(program));
    out
}

/// Parses a corpus case from its textual form.
///
/// # Errors
///
/// Returns a message on malformed IR or directives.
pub fn parse_case(content: &str) -> Result<CorpusCase, String> {
    let (program, comments) = text::parse_with_comments(content).map_err(|e| e.to_string())?;
    let mut waterline: u32 = 35;
    let mut rescale: u32 = 60;
    let mut max_level: u32 = 30;
    let mut output_reserve: u32 = 0;
    let mut label = None;
    for comment in &comments {
        let Some((key, value)) = comment.split_once(':') else {
            continue;
        };
        let value = value.trim();
        match key.trim() {
            "fuzz-label" => label = Some(value.to_string()),
            "fuzz-waterline" => {
                waterline = value
                    .parse()
                    .map_err(|_| format!("bad waterline `{value}`"))?;
            }
            "fuzz-rescale" => {
                rescale = value
                    .parse()
                    .map_err(|_| format!("bad rescale `{value}`"))?;
            }
            "fuzz-max-level" => {
                max_level = value
                    .parse()
                    .map_err(|_| format!("bad max-level `{value}`"))?;
            }
            "fuzz-output-reserve" => {
                output_reserve = value
                    .parse()
                    .map_err(|_| format!("bad output-reserve `{value}`"))?;
            }
            _ => {}
        }
    }
    let mut params = CompileParams::with_rescale_bits(waterline, rescale);
    params.max_level = max_level;
    params.output_reserve_bits = output_reserve;
    Ok(CorpusCase {
        path: None,
        program,
        params,
        label,
    })
}

/// Writes a reproducer into `dir` as `<stem>.fhe`, creating the directory
/// if needed. Returns the file path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_case(
    dir: &Path,
    stem: &str,
    program: &Program,
    params: &CompileParams,
    label: &str,
    detail: &str,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{stem}.fhe"));
    fs::write(&path, render_case(program, params, label, detail))?;
    Ok(path)
}

/// Loads every `.fhe` case in `dir` (sorted by file name). A missing
/// directory is an empty corpus, not an error.
///
/// # Errors
///
/// Returns a message naming the file on the first malformed case.
pub fn load_dir(dir: &Path) -> Result<Vec<CorpusCase>, String> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", dir.display())),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "fhe"))
        .collect();
    paths.sort();
    let mut cases = Vec::new();
    for path in paths {
        let content = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut case = parse_case(&content).map_err(|e| format!("{}: {e}", path.display()))?;
        case.path = Some(path);
        cases.push(case);
    }
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use crate::oracle::structural_diff;

    #[test]
    fn case_roundtrips_with_params() {
        let p = generate(5, &GenConfig::default());
        let mut params = CompileParams::with_rescale_bits(33, 50);
        params.max_level = 17;
        let rendered = render_case(&p, &params, "panic:ckks", "boom\nline two");
        let case = parse_case(&rendered).expect("parse");
        assert!(structural_diff(&p, &case.program).is_none());
        assert_eq!(case.params.waterline_bits, 33);
        assert_eq!(case.params.rescale_bits, 50);
        assert_eq!(case.params.max_level, 17);
        assert_eq!(case.label.as_deref(), Some("panic:ckks"));
    }

    #[test]
    fn missing_corpus_dir_is_empty() {
        let cases = load_dir(Path::new("/nonexistent/corpus/dir")).unwrap();
        assert!(cases.is_empty());
    }
}
