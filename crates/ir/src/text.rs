//! Textual IR format: a printer and a parser, for tests, golden files and
//! human inspection of compiled programs.
//!
//! ```text
//! program sobel(slots=4096) {
//!   %0 = input "img"
//!   %1 = const 0.125
//!   %2 = rotate %0, -1
//!   %3 = mul %2, %1
//!   %4 = rescale %3
//!   return %4
//! }
//! ```

use std::fmt;

use crate::op::{ConstValue, Op, ValueId};
use crate::program::Program;
use crate::Frac;

/// Renders a program in the textual format.
pub fn print(program: &Program) -> String {
    let mut out = String::new();
    use fmt::Write;
    writeln!(
        out,
        "program {}(slots={}) {{",
        program.name(),
        program.slots()
    )
    .unwrap();
    for id in program.ids() {
        write!(out, "  {id} = ").unwrap();
        match program.op(id) {
            Op::Input { name } => writeln!(out, "input \"{name}\""),
            Op::Const { value } => match value {
                ConstValue::Scalar(v) => writeln!(out, "const {v:?}"),
                ConstValue::Vector(v) => {
                    write!(out, "const [").unwrap();
                    for (i, x) in v.iter().enumerate() {
                        if i > 0 {
                            write!(out, ", ").unwrap();
                        }
                        write!(out, "{x:?}").unwrap();
                    }
                    writeln!(out, "]")
                }
            },
            Op::Add(a, b) => writeln!(out, "add {a}, {b}"),
            Op::Sub(a, b) => writeln!(out, "sub {a}, {b}"),
            Op::Mul(a, b) => writeln!(out, "mul {a}, {b}"),
            Op::Neg(a) => writeln!(out, "neg {a}"),
            Op::Rotate(a, k) => writeln!(out, "rotate {a}, {k}"),
            Op::Rescale(a) => writeln!(out, "rescale {a}"),
            Op::ModSwitch(a) => writeln!(out, "modswitch {a}"),
            Op::Upscale(a, d) => writeln!(out, "upscale {a}, {d}"),
        }
        .unwrap();
    }
    let rets: Vec<String> = program.outputs().iter().map(|o| o.to_string()).collect();
    writeln!(out, "  return {}", rets.join(", ")).unwrap();
    out.push_str("}\n");
    out
}

/// A parse failure with a line number, column, and message.
///
/// The `Display` rendering intentionally omits the column (older tooling
/// and tests match on the `parse error on line N: …` format); callers that
/// want caret-style output feed the error and the original source through
/// the diagnostics renderer in the `fhe-analysis` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the failure.
    pub line: usize,
    /// 1-based byte column within that line where parsing stopped.
    pub column: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    line_no: usize,
    /// The original (untrimmed) line, for column reporting.
    line: &'a str,
    rest: &'a str,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        self.err_back(0, message)
    }

    /// An error pointing `back` bytes before the current position — used
    /// when the offending token was already consumed (e.g. an unknown
    /// mnemonic).
    fn err_back<T>(&self, back: usize, message: impl Into<String>) -> Result<T, ParseError> {
        // `rest` is a suffix of the trimmed line: the failure column is the
        // leading indentation plus however much of the line was consumed.
        let trimmed = self.line.trim();
        let indent = self.line.len() - self.line.trim_start().len();
        let consumed = (trimmed.len() - self.rest.len()).saturating_sub(back);
        Err(ParseError {
            line: self.line_no,
            column: indent + consumed + 1,
            message: message.into(),
        })
    }

    fn eat_ws(&mut self) {
        self.rest = self.rest.trim_start_matches([' ', '\t']);
    }

    fn expect(&mut self, tok: &str) -> Result<(), ParseError> {
        self.eat_ws();
        if let Some(r) = self.rest.strip_prefix(tok) {
            self.rest = r;
            Ok(())
        } else {
            self.err(format!("expected `{tok}` at `{}`", truncate(self.rest)))
        }
    }

    fn ident(&mut self) -> Result<&'a str, ParseError> {
        self.eat_ws();
        let end = self
            .rest
            .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == '-'))
            .unwrap_or(self.rest.len());
        if end == 0 {
            return self.err(format!("expected identifier at `{}`", truncate(self.rest)));
        }
        let (id, r) = self.rest.split_at(end);
        self.rest = r;
        Ok(id)
    }

    fn integer<T: std::str::FromStr>(&mut self) -> Result<T, ParseError> {
        self.eat_ws();
        let end = self
            .rest
            .char_indices()
            .take_while(|&(i, c)| c.is_ascii_digit() || (i == 0 && c == '-'))
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        let (num, r) = self.rest.split_at(end);
        match num.parse() {
            Ok(v) => {
                self.rest = r;
                Ok(v)
            }
            Err(_) => self.err(format!("expected integer at `{}`", truncate(self.rest))),
        }
    }

    fn float(&mut self) -> Result<f64, ParseError> {
        self.eat_ws();
        let end = self
            .rest
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(self.rest.len());
        let (num, r) = self.rest.split_at(end);
        match num.parse() {
            Ok(v) => {
                self.rest = r;
                Ok(v)
            }
            Err(_) => self.err(format!("expected number at `{}`", truncate(self.rest))),
        }
    }

    fn value_id(&mut self) -> Result<ValueId, ParseError> {
        self.expect("%")?;
        Ok(ValueId(self.integer()?))
    }

    fn frac(&mut self) -> Result<Frac, ParseError> {
        let num: i128 = self.integer()?;
        self.eat_ws();
        if self.rest.starts_with('/') {
            self.rest = &self.rest[1..];
            let den: i128 = self.integer()?;
            if den == 0 {
                return self.err("zero denominator");
            }
            Ok(Frac::ratio(num, den))
        } else {
            Ok(Frac::from(num))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect("\"")?;
        match self.rest.find('"') {
            Some(end) => {
                let s = self.rest[..end].to_owned();
                self.rest = &self.rest[end + 1..];
                Ok(s)
            }
            None => self.err("unterminated string"),
        }
    }

    fn at_end(&mut self) -> bool {
        self.eat_ws();
        self.rest.is_empty()
    }
}

fn truncate(s: &str) -> &str {
    &s[..s.len().min(20)]
}

/// Parses a program from the textual format produced by [`print()`].
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line on malformed input,
/// out-of-order ids, or forward references.
pub fn parse(text: &str) -> Result<Program, ParseError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let mut program: Option<Program> = None;
    let mut done = false;

    for (line_no, raw) in &mut lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        let mut p = Parser {
            line_no,
            line: raw,
            rest: line,
        };
        if program.is_none() {
            p.expect("program")?;
            let name = p.ident()?.to_owned();
            p.expect("(")?;
            p.expect("slots")?;
            p.expect("=")?;
            let slots: usize = p.integer()?;
            p.expect(")")?;
            p.expect("{")?;
            if slots == 0 {
                return p.err("slots must be positive");
            }
            program = Some(Program::new(name, slots));
            continue;
        }
        let prog = program.as_mut().expect("set above");
        if line.starts_with('}') {
            done = true;
            break;
        }
        if line.starts_with("return") {
            p.expect("return")?;
            let mut outputs = Vec::new();
            loop {
                let v = p.value_id()?;
                if v.index() >= prog.num_ops() {
                    return p.err(format!("undefined value {v}"));
                }
                outputs.push(v);
                p.eat_ws();
                if p.rest.starts_with(',') {
                    p.rest = &p.rest[1..];
                } else {
                    break;
                }
            }
            prog.set_outputs(outputs);
            continue;
        }
        let id = p.value_id()?;
        if id.index() != prog.num_ops() {
            return p.err(format!("expected id %{} here, got {id}", prog.num_ops()));
        }
        p.expect("=")?;
        let mnemonic = p.ident()?;
        let operand = |p: &mut Parser| -> Result<ValueId, ParseError> {
            let v = p.value_id()?;
            if v >= id {
                return p.err(format!("forward reference to {v}"));
            }
            Ok(v)
        };
        let op = match mnemonic {
            "input" => Op::Input { name: p.string()? },
            "const" => {
                p.eat_ws();
                if p.rest.starts_with('[') {
                    p.rest = &p.rest[1..];
                    let mut vals = Vec::new();
                    loop {
                        p.eat_ws();
                        if p.rest.starts_with(']') {
                            p.rest = &p.rest[1..];
                            break;
                        }
                        vals.push(p.float()?);
                        p.eat_ws();
                        if p.rest.starts_with(',') {
                            p.rest = &p.rest[1..];
                        }
                    }
                    Op::Const {
                        value: ConstValue::from(vals),
                    }
                } else {
                    Op::Const {
                        value: ConstValue::Scalar(p.float()?),
                    }
                }
            }
            "add" | "sub" | "mul" => {
                let a = operand(&mut p)?;
                p.expect(",")?;
                let b = operand(&mut p)?;
                match mnemonic {
                    "add" => Op::Add(a, b),
                    "sub" => Op::Sub(a, b),
                    _ => Op::Mul(a, b),
                }
            }
            "neg" => Op::Neg(operand(&mut p)?),
            "rotate" => {
                let a = operand(&mut p)?;
                p.expect(",")?;
                Op::Rotate(a, p.integer()?)
            }
            "rescale" => Op::Rescale(operand(&mut p)?),
            "modswitch" => Op::ModSwitch(operand(&mut p)?),
            "upscale" => {
                let a = operand(&mut p)?;
                p.expect(",")?;
                Op::Upscale(a, p.frac()?)
            }
            other => return p.err_back(other.len(), format!("unknown op `{other}`")),
        };
        if !p.at_end() {
            return p.err(format!("trailing input `{}`", truncate(p.rest)));
        }
        prog.push(op);
    }

    let prog = program.ok_or(ParseError {
        line: 1,
        column: 1,
        message: "empty input".into(),
    })?;
    if !done {
        return Err(ParseError {
            line: text.lines().count(),
            column: 1,
            message: "missing `}`".into(),
        });
    }
    Ok(prog)
}

/// Like [`parse`], but also returns every `//` comment line (with the
/// `//` prefix stripped and surrounding whitespace trimmed), in file
/// order. The comments are otherwise ignored by the grammar; tooling
/// (e.g. the fuzz corpus) uses them to carry reproduction metadata —
/// compile parameters, failure labels — alongside a program in one file.
///
/// # Errors
///
/// Same failure modes as [`parse`].
pub fn parse_with_comments(text: &str) -> Result<(Program, Vec<String>), ParseError> {
    let program = parse(text)?;
    let comments = text
        .lines()
        .map(str::trim)
        .filter_map(|l| l.strip_prefix("//"))
        .map(|l| l.trim().to_owned())
        .collect();
    Ok((program, comments))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    fn sample() -> Program {
        let b = Builder::new("sample", 8);
        let x = b.input("x");
        let c = b.constant(vec![1.0, 2.5]);
        let e = (x.clone().rotate(-2) * c + x.clone()) - x.clone().square();
        let n = -e;
        b.finish(vec![n, x])
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let p = sample();
        let text = print(&p);
        let q = parse(&text).expect("roundtrip parse");
        assert_eq!(q.num_ops(), p.num_ops());
        assert_eq!(q.outputs(), p.outputs());
        assert_eq!(q.slots(), p.slots());
        assert_eq!(q.name(), p.name());
        for id in p.ids() {
            assert_eq!(q.op(id), p.op(id), "op {id} differs");
        }
        // Idempotent printing.
        assert_eq!(print(&q), text);
    }

    #[test]
    fn roundtrip_scale_management_ops() {
        let mut p = Program::new("sm", 4);
        let x = p.push(Op::Input { name: "x".into() });
        let r = p.push(Op::Rescale(x));
        let m = p.push(Op::ModSwitch(r));
        let u = p.push(Op::Upscale(m, Frac::ratio(41, 2)));
        p.set_outputs(vec![u]);
        let q = parse(&print(&p)).unwrap();
        assert_eq!(
            q.op(ValueId(3)),
            &Op::Upscale(ValueId(2), Frac::ratio(41, 2))
        );
    }

    #[test]
    fn rejects_forward_reference() {
        let text = "program t(slots=4) {\n  %0 = neg %1\n  return %0\n}\n";
        let err = parse(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("integer") || err.message.contains("forward"));
    }

    #[test]
    fn rejects_unknown_op() {
        let text = "program t(slots=4) {\n  %0 = frobnicate %0\n  return %0\n}\n";
        let err = parse(text).unwrap_err();
        assert!(err.message.contains("unknown op"));
    }

    #[test]
    fn rejects_missing_brace() {
        let text = "program t(slots=4) {\n  %0 = input \"x\"\n  return %0\n";
        let err = parse(text).unwrap_err();
        assert!(err.message.contains("missing"));
    }

    #[test]
    fn errors_carry_columns() {
        // The unknown mnemonic starts at column 8 (two spaces of indent,
        // then `%0 = `).
        let text = "program t(slots=4) {\n  %0 = frobnicate %0\n  return %0\n}\n";
        let err = parse(text).unwrap_err();
        assert_eq!((err.line, err.column), (2, 8));
        // A bad rotate offset: the column lands where the integer should be.
        let text =
            "program t(slots=4) {\n  %0 = input \"x\"\n  %1 = rotate %0, x\n  return %1\n}\n";
        let err = parse(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.column >= 18, "column {} too early", err.column);
        // Display stays backward-compatible (no column).
        assert_eq!(
            err.to_string(),
            format!("parse error on line 3: {}", err.message)
        );
    }

    #[test]
    fn comments_and_blank_lines_ok() {
        let text = "\n// header\nprogram t(slots=4) {\n\n  // the input\n  %0 = input \"x\"\n  return %0\n}\n";
        let p = parse(text).unwrap();
        assert_eq!(p.num_ops(), 1);
    }

    #[test]
    fn comments_are_surfaced_by_parse_with_comments() {
        let text = "// fuzz-label: panic:ckks\n// note\nprogram t(slots=4) {\n  // inner\n  %0 = input \"x\"\n  return %0\n}\n";
        let (p, comments) = parse_with_comments(text).unwrap();
        assert_eq!(p.num_ops(), 1);
        assert_eq!(comments, vec!["fuzz-label: panic:ckks", "note", "inner"]);
    }

    #[test]
    fn negative_rotation_roundtrips() {
        let text =
            "program t(slots=4) {\n  %0 = input \"x\"\n  %1 = rotate %0, -7\n  return %1\n}\n";
        let p = parse(text).unwrap();
        assert_eq!(p.op(ValueId(1)), &Op::Rotate(ValueId(0), -7));
    }
}

/// Renders a program as a Graphviz DOT digraph (values as nodes, data flow
/// as edges), for visual inspection of compiled schedules.
pub fn to_dot(program: &Program) -> String {
    use fmt::Write;
    let mut out = String::new();
    writeln!(out, "digraph \"{}\" {{", program.name()).unwrap();
    writeln!(out, "  rankdir=TB; node [fontname=\"monospace\"];").unwrap();
    for id in program.ids() {
        let (label, shape, color) = match program.op(id) {
            Op::Input { name } => (format!("input {name}"), "box", "lightblue"),
            Op::Const { .. } => ("const".to_string(), "box", "lightgray"),
            Op::Rescale(_) => ("rescale".to_string(), "ellipse", "salmon"),
            Op::ModSwitch(_) => ("modswitch".to_string(), "ellipse", "khaki"),
            Op::Upscale(_, d) => (format!("upscale {d}"), "ellipse", "khaki"),
            Op::Rotate(_, k) => (format!("rotate {k}"), "ellipse", "palegreen"),
            op => (op.mnemonic().to_string(), "ellipse", "white"),
        };
        writeln!(
            out,
            "  v{} [label=\"%{}: {label}\", shape={shape}, style=filled, fillcolor={color}];",
            id.0, id.0
        )
        .unwrap();
        for operand in program.op(id).operands() {
            writeln!(out, "  v{} -> v{};", operand.0, id.0).unwrap();
        }
    }
    for (i, o) in program.outputs().iter().enumerate() {
        writeln!(out, "  out{i} [label=\"ret\", shape=doublecircle];").unwrap();
        writeln!(out, "  v{} -> out{i};", o.0).unwrap();
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use crate::builder::Builder;

    #[test]
    fn dot_contains_all_values_and_edges() {
        let b = Builder::new("g", 4);
        let x = b.input("x");
        let y = x.clone() * x;
        let p = b.finish(vec![y]);
        let dot = to_dot(&p);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("v0 [label=\"%0: input x\""));
        assert!(dot.contains("v0 -> v1;"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.ends_with("}\n"));
        // Two edges from x into the square (used twice).
        assert_eq!(dot.matches("v0 -> v1;").count(), 2);
    }
}
