//! Golden-workload acceptance test of the dependence/critical-path
//! analyzer (`fhe_ir::depgraph`): for every compiler × workload pair the
//! static span never exceeds the static work, and under a cost model
//! calibrated to this machine's backend the static work tracks the
//! *measured* single-threaded encrypted latency — `span ≤ work ≤ 1.15 ×
//! measured`. Rotation hoisting is disabled on both sides so the per-op
//! cost model and the executed schedule describe the same computation.
//!
//! Calibration and measurement run back to back on the same machine, so
//! the 15% margin absorbs scheduler jitter, not model error; a failed
//! attempt recalibrates from a fresh seed before failing the suite
//! (timing-noise robustness, three attempts per pair).

use std::collections::HashMap;

use fhe_bench::standard_compilers;
use fhe_ir::depgraph::DepGraph;
use fhe_ir::{CompileParams, CostModel};
use fhe_runtime::executor::{CkksExec, Executor};
use fhe_runtime::{microbench, ExecOptions};
use fhe_workloads::{suite, Size};

#[test]
fn span_work_and_measured_latency_agree_on_the_golden_suite() {
    let compilers = standard_compilers(1);
    let params = CompileParams::new(30);
    // One calibrated model per schedule shape, shared across pairs.
    let mut models: HashMap<(usize, u32, usize), CostModel> = HashMap::new();

    for w in suite(Size::Test) {
        for compiler in &compilers {
            let compiled = compiler
                .compile(&w.program, &params)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", compiler.name(), w.name));
            let map = compiled
                .scheduled
                .validate()
                .unwrap_or_else(|e| panic!("{} on {}: {e:?}", compiler.name(), w.name));
            let slots = compiled.scheduled.program.slots();
            let rescale_bits = compiled.scheduled.params.rescale_bits;
            let levels = map.max_level() as usize;
            let key = (slots, rescale_bits, levels);

            let mut ok = false;
            let mut detail = String::new();
            for attempt in 0u64..3 {
                let model = models.entry(key).or_insert_with(|| {
                    microbench::calibrate_backend(slots, rescale_bits, levels, 3, 0xCA1B + attempt)
                });
                let est = DepGraph::build(&compiled.scheduled, &map, model, false).estimate();
                // The structural half never depends on timing: the
                // critical path is a subset of the work.
                assert!(
                    est.span_us <= est.work_us + 1e-6,
                    "{} on {}: span {} > work {}",
                    compiler.name(),
                    w.name,
                    est.span_us,
                    est.work_us
                );
                let run = CkksExec {
                    options: ExecOptions {
                        poly_degree: slots * 2,
                        seed: 5,
                        threads: 1,
                        rotation_hoisting: false,
                        ..ExecOptions::default()
                    },
                }
                .execute(&compiled.scheduled, &w.inputs)
                .unwrap_or_else(|e| panic!("{} on {}: {e:?}", compiler.name(), w.name));
                let measured_us = run.trace.op_time.as_secs_f64() * 1e6;
                if est.work_us <= 1.15 * measured_us {
                    ok = true;
                    break;
                }
                detail = format!(
                    "work {:.1}us > 1.15 x measured {:.1}us (span {:.1}us)",
                    est.work_us, measured_us, est.span_us
                );
                // Recalibrate with a fresh seed before the next attempt.
                models.remove(&key);
            }
            assert!(ok, "{} on {}: {detail}", compiler.name(), w.name);
        }
    }
}
