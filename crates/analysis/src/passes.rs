//! Pipeline integration: [`DepGraphPass`], [`LintPass`] and
//! [`TranslationValidatePass`] plug the analyses into any compiler's
//! [`PassManager`] sequence, recording findings, the parallelism profile,
//! and the TV verdict in the shared [`PassCx`] so they surface in the
//! uniform `CompileReport`.
//!
//! [`PassManager`]: fhe_ir::pipeline::PassManager

use fhe_ir::depgraph::DepGraph;
use fhe_ir::diag::{Finding, Severity, TvVerdict};
use fhe_ir::pipeline::{Pass, PassCx, PassError, PassIr, PassKind};
use fhe_ir::{MemoryModelConfig, Program};

use crate::lint::{lint_scheduled, LintOptions};
use crate::parallel;
use crate::tv;

/// Lints the scheduled program and records findings in the context.
///
/// Never fails the pipeline: an invalid schedule is the `validate` pass's
/// job to reject, so this pass notes the skip and moves on.
#[derive(Debug, Clone, Default)]
pub struct LintPass {
    /// Input-range assumptions for the magnitude analysis.
    pub options: LintOptions,
}

impl LintPass {
    /// A lint pass with the given options.
    pub fn new(options: LintOptions) -> Self {
        LintPass { options }
    }
}

impl Pass for LintPass {
    fn name(&self) -> &str {
        "lint"
    }

    fn kind(&self) -> PassKind {
        PassKind::Analysis
    }

    fn run(&mut self, ir: PassIr, cx: &mut PassCx) -> Result<PassIr, PassError> {
        let scheduled = ir.try_scheduled("lint")?;
        match lint_scheduled(&scheduled, &self.options) {
            Ok(findings) => {
                if !findings.is_empty() {
                    cx.note(format!("{} finding(s)", findings.len()));
                }
                for f in findings {
                    cx.finding(f);
                }
            }
            Err(_) => cx.note("skipped: schedule does not validate"),
        }
        Ok(PassIr::Scheduled(scheduled))
    }
}

/// Builds the dependence DAG of the schedule, notes its work/span/width
/// profile, and proves the schedule race-free for topological-order
/// parallel execution via [`parallel::check`].
///
/// Never fails the pipeline: the profile is informative and a safety
/// violation is surfaced as an `F008` error finding (the parallel form of
/// the premature-free lint) for the fuzz oracle and the lint CLI to gate
/// on. The hoisting discipline follows the [`MemoryModelConfig`] artifact
/// if an earlier pass stored one, matching what the memory model and the
/// runtime will do.
#[derive(Debug, Clone, Default)]
pub struct DepGraphPass;

impl Pass for DepGraphPass {
    fn name(&self) -> &str {
        "depgraph"
    }

    fn kind(&self) -> PassKind {
        PassKind::Analysis
    }

    fn run(&mut self, ir: PassIr, cx: &mut PassCx) -> Result<PassIr, PassError> {
        let scheduled = ir.try_scheduled("depgraph")?;
        let Ok(map) = scheduled.validate() else {
            cx.note("skipped: schedule does not validate");
            return Ok(PassIr::Scheduled(scheduled));
        };
        let hoist = cx
            .get::<MemoryModelConfig>()
            .cloned()
            .unwrap_or_default()
            .hoist_rotations;
        let graph = DepGraph::build(&scheduled, &map, &cx.cost_model, hoist);
        let est = graph.estimate();
        cx.note(format!(
            "work {:.1}us, span {:.1}us, parallelism {:.2}x, max width {}",
            est.work_us,
            est.span_us,
            est.parallelism(),
            est.max_width
        ));
        let safety = parallel::check(&scheduled, &graph, hoist);
        if safety.race_free() {
            cx.note(format!(
                "parallel-safety: proved race-free ({} obligation(s), {} freed value(s))",
                safety.obligations, safety.freed_values
            ));
        } else {
            cx.note(format!(
                "parallel-safety: {} unordered hazard(s)",
                safety.violations.len()
            ));
            for v in &safety.violations {
                let at = match v {
                    parallel::Violation::ReadAfterFree { reader, .. } => *reader,
                    parallel::Violation::UnorderedGroupWriter { member, .. } => *member,
                };
                cx.finding(
                    Finding::new("F008", Severity::Error, format!("parallel hazard: {v}")).at(at),
                );
            }
        }
        Ok(PassIr::Scheduled(scheduled))
    }
}

/// Proves the scheduled program bisimulates the source modulo scale
/// management, storing a [`TvVerdict`] artifact and — on mismatch — an
/// `F000` error finding.
///
/// A mismatch does *not* abort compilation: the verdict is recorded so the
/// fuzz oracle can observe it as a divergence and the lint CLI can render
/// it as a diagnostic.
#[derive(Debug, Clone)]
pub struct TranslationValidatePass {
    source: Program,
}

impl TranslationValidatePass {
    /// A TV pass checking against `source` (the pre-compilation program).
    pub fn new(source: Program) -> Self {
        TranslationValidatePass { source }
    }
}

impl Pass for TranslationValidatePass {
    fn name(&self) -> &str {
        "translation-validate"
    }

    fn kind(&self) -> PassKind {
        PassKind::Check
    }

    fn run(&mut self, ir: PassIr, cx: &mut PassCx) -> Result<PassIr, PassError> {
        let scheduled = ir.try_scheduled("translation-validate")?;
        match tv::validate(&self.source, &scheduled) {
            Ok(report) => {
                cx.note(format!(
                    "bisimulation: {} op(s) matched, {} scale-management op(s) stripped",
                    report.matched, report.scale_management_ops
                ));
                cx.put(TvVerdict::pass());
            }
            Err(mismatch) => {
                cx.note(format!("MISMATCH: {mismatch}"));
                let mut finding = Finding::new(
                    "F000",
                    Severity::Error,
                    format!("translation validation failed: {mismatch}"),
                );
                if let Some(op) = mismatch.scheduled_op {
                    finding = finding.at(op);
                }
                cx.finding(finding);
                cx.put(TvVerdict::fail(mismatch.to_string()));
            }
        }
        Ok(PassIr::Scheduled(scheduled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::pipeline::PassManager;
    use fhe_ir::{Builder, CompileParams, CostModel, Frac, InputSpec, Op, ScheduledProgram};

    fn source() -> Program {
        let b = Builder::new("p", 4);
        let x = b.input("x");
        b.finish(vec![x.clone() * x])
    }

    fn schedule(rotate_bug: bool) -> ScheduledProgram {
        let mut p = Program::new("p", 4);
        let x = p.push(Op::Input { name: "x".into() });
        let x = if rotate_bug {
            p.push(Op::Rotate(x, 1))
        } else {
            x
        };
        let m = p.push(Op::Mul(x, x));
        p.set_outputs(vec![m]);
        // Scale 45 at level 2: the mul lands at scale 90 with 30 bits of
        // slack — below both the F001 threshold and the F005 trigger.
        let spec = InputSpec {
            scale_bits: Frac::from(45),
            level: 2,
        };
        ScheduledProgram {
            program: p,
            params: CompileParams::new(30),
            inputs: vec![spec],
        }
    }

    fn run(s: ScheduledProgram) -> (PassCx, fhe_ir::pipeline::PipelineTrace) {
        let mut cx = PassCx::new(CompileParams::new(30), CostModel::paper_table3());
        let mut pm = PassManager::new()
            .with(LintPass::default())
            .with(TranslationValidatePass::new(source()));
        let (_, trace) = pm.run(PassIr::Scheduled(s), &mut cx).unwrap();
        (cx, trace)
    }

    #[test]
    fn faithful_schedule_passes_both_passes() {
        let (cx, trace) = run(schedule(false));
        assert_eq!(cx.get::<TvVerdict>(), Some(&TvVerdict::pass()));
        assert!(cx.findings().is_empty(), "{:?}", cx.findings());
        let note = &trace.pass("translation-validate").unwrap().notes[0];
        assert!(note.starts_with("bisimulation:"), "{note}");
    }

    #[test]
    fn mismatch_records_f000_without_aborting() {
        let (cx, _) = run(schedule(true));
        let v = cx.get::<TvVerdict>().unwrap();
        assert!(!v.validated);
        assert_eq!(cx.findings().len(), 1);
        assert_eq!(cx.findings()[0].code, "F000");
        assert_eq!(cx.findings()[0].severity, Severity::Error);
    }

    #[test]
    fn depgraph_pass_notes_the_profile_and_proves_safety() {
        let mut cx = PassCx::new(CompileParams::new(30), CostModel::paper_table3());
        let mut pm = PassManager::new().with(DepGraphPass);
        let (_, trace) = pm.run(PassIr::Scheduled(schedule(false)), &mut cx).unwrap();
        assert!(cx.findings().is_empty(), "{:?}", cx.findings());
        let notes = &trace.pass("depgraph").unwrap().notes;
        assert!(notes[0].starts_with("work "), "{notes:?}");
        assert!(
            notes.iter().any(|n| n.contains("proved race-free")),
            "{notes:?}"
        );
    }

    #[test]
    fn depgraph_pass_skips_an_invalid_schedule() {
        // Mismatched add scales: validation fails, the pass notes the skip.
        let mut p = Program::new("bad", 4);
        let x = p.push(Op::Input { name: "x".into() });
        let m = p.push(Op::Mul(x, x));
        let a = p.push(Op::Add(x, m));
        p.set_outputs(vec![a]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(30),
            inputs: vec![InputSpec {
                scale_bits: Frac::from(45),
                level: 2,
            }],
        };
        let mut cx = PassCx::new(CompileParams::new(30), CostModel::paper_table3());
        let mut pm = PassManager::new().with(DepGraphPass);
        let (_, trace) = pm.run(PassIr::Scheduled(s), &mut cx).unwrap();
        let notes = &trace.pass("depgraph").unwrap().notes;
        assert_eq!(notes[0], "skipped: schedule does not validate");
    }
}
