//! Golden-file test of the lint driver's rendered diagnostics: the
//! hand-written corpus case `tests/corpus/lint/dead_rescale.fhe` must
//! produce exactly the checked-in caret-rendered F002 diagnostic.
//! Regenerate with `UPDATE_GOLDEN=1 cargo test --test lint_diagnostics`
//! and review the diff like any other code change.

use fhe_reserve::lint::{lint_file, LintRun};

const CASE: &str = "tests/corpus/lint/dead_rescale.fhe";

fn check(name: &str, rendered: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, rendered).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden file {name}; run with UPDATE_GOLDEN=1"));
    assert_eq!(
        rendered, expected,
        "rendered lint diagnostic drifted from {name}; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn dead_rescale_diagnostic_matches_golden() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(CASE);
    let content = std::fs::read_to_string(path).expect("demo corpus case exists");
    let report = lint_file(CASE, &content, &LintRun::default());
    assert!(report.error.is_none(), "{:?}", report.error);
    assert_eq!(report.targets.len(), 1);
    let target = &report.targets[0];
    assert!(target.error.is_none(), "{:?}", target.error);
    assert_eq!(target.findings.len(), 1, "{:?}", target.findings);
    assert_eq!(target.findings[0].code, "F002");
    check("lint_dead_rescale.txt", &target.rendered);
}

#[test]
fn over_provisioned_keys_diagnostic_matches_golden() {
    const KEYS_CASE: &str = "tests/corpus/lint/over_provisioned_keys.fhe";
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(KEYS_CASE);
    let content = std::fs::read_to_string(path).expect("demo corpus case exists");
    let report = lint_file(KEYS_CASE, &content, &LintRun::default());
    assert!(report.error.is_none(), "{:?}", report.error);
    assert_eq!(report.targets.len(), 1);
    let target = &report.targets[0];
    assert!(target.error.is_none(), "{:?}", target.error);
    assert_eq!(target.findings.len(), 1, "{:?}", target.findings);
    assert_eq!(target.findings[0].code, "F006");
    check("lint_over_provisioned_keys.txt", &target.rendered);
}

#[test]
fn serialized_reduction_diagnostic_matches_golden() {
    const CHAIN_CASE: &str = "tests/corpus/lint/serialized_reduction.fhe";
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(CHAIN_CASE);
    let content = std::fs::read_to_string(path).expect("demo corpus case exists");
    let report = lint_file(CHAIN_CASE, &content, &LintRun::default());
    assert!(report.error.is_none(), "{:?}", report.error);
    assert_eq!(report.targets.len(), 1);
    let target = &report.targets[0];
    assert!(target.error.is_none(), "{:?}", target.error);
    assert_eq!(target.findings.len(), 1, "{:?}", target.findings);
    assert_eq!(target.findings[0].code, "F007");
    assert_eq!(
        target.findings[0].severity,
        fhe_reserve::ir::diag::Severity::Warning
    );
    check("lint_serialized_reduction.txt", &target.rendered);
}

#[test]
fn unfusable_mul_chain_diagnostic_matches_golden() {
    const FUSION_CASE: &str = "tests/corpus/lint/unfusable_mul_chain.fhe";
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(FUSION_CASE);
    let content = std::fs::read_to_string(path).expect("demo corpus case exists");
    let report = lint_file(FUSION_CASE, &content, &LintRun::default());
    assert!(report.error.is_none(), "{:?}", report.error);
    assert_eq!(report.targets.len(), 1);
    let target = &report.targets[0];
    assert!(target.error.is_none(), "{:?}", target.error);
    assert_eq!(target.findings.len(), 1, "{:?}", target.findings);
    assert_eq!(target.findings[0].code, "F009");
    assert_eq!(
        target.findings[0].severity,
        fhe_reserve::ir::diag::Severity::Warning
    );
    check("lint_unfusable_mul_chain.txt", &target.rendered);
}

#[test]
fn premature_free_diagnostic_matches_golden() {
    // Error severity, so the case lives outside tests/corpus — CI's
    // `--deny error` sweep over the shipped corpus must stay clean.
    const FREE_CASE: &str = "tests/lint_cases/premature_free.fhe";
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(FREE_CASE);
    let content = std::fs::read_to_string(path).expect("crafted case exists");
    let report = lint_file(FREE_CASE, &content, &LintRun::default());
    assert!(report.error.is_none(), "{:?}", report.error);
    assert_eq!(report.targets.len(), 1);
    let target = &report.targets[0];
    assert!(target.error.is_none(), "{:?}", target.error);
    assert_eq!(target.findings.len(), 1, "{:?}", target.findings);
    assert_eq!(target.findings[0].code, "F008");
    assert_eq!(
        target.findings[0].severity,
        fhe_reserve::ir::diag::Severity::Error
    );
    check("lint_premature_free.txt", &target.rendered);
}

#[test]
fn shipped_corpus_and_examples_are_lint_clean() {
    // The same gate CI runs: every shipped `.fhe` file parses and
    // compiles, every compiled schedule translation-validates, and the
    // eva/reserve schedules carry no error-severity findings. Hecate is
    // exempt from the F001 gate only: its explored schedules satisfy the
    // validator but cannot always statically prove `m·x_max < Q` on
    // adversarial fuzz reproducers — a true positive this lint exists to
    // surface (the reserve compiler provisions magnitude headroom by
    // construction; exploration does not).
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = fhe_reserve::lint::collect_files(&[
        root.join("examples/programs"),
        root.join("tests/corpus"),
    ])
    .expect("walk");
    assert!(
        files.len() >= 7,
        "expected shipped .fhe files, got {files:?}"
    );
    for file in files {
        let content = std::fs::read_to_string(&file).expect("readable");
        let report = lint_file(&file.display().to_string(), &content, &LintRun::default());
        assert!(
            report.error.is_none(),
            "{}: {:?}",
            file.display(),
            report.error
        );
        for target in &report.targets {
            assert!(
                target.error.is_none(),
                "{}@{}: {:?}",
                file.display(),
                target.target,
                target.error
            );
            assert!(
                target.findings.iter().all(|f| f.code != "F000"),
                "{}@{}: translation validation failed: {:?}",
                file.display(),
                target.target,
                target.findings
            );
            if target.target != "hecate" {
                assert!(
                    target
                        .findings
                        .iter()
                        .all(|f| f.severity < fhe_reserve::ir::diag::Severity::Error),
                    "{}@{}: {:?}",
                    file.display(),
                    target.target,
                    target.findings
                );
            }
            if target.target != "scheduled" {
                assert_eq!(
                    target.translation_validated,
                    Some(true),
                    "{}@{}",
                    file.display(),
                    target.target
                );
            }
        }
    }
}
