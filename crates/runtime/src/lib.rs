//! # fhe-runtime — executors and estimators for scheduled programs
//!
//! Four ways to run or cost a compiled ([`fhe_ir::ScheduledProgram`])
//! RNS-CKKS program:
//!
//! - [`plain`]: exact plaintext reference execution (the semantics oracle);
//! - [`noise_sim`]: plaintext execution with the scheme's scale-dependent
//!   noise injected per op — drives the paper's error comparison (Fig. 7)
//!   at a tiny fraction of encrypted cost;
//! - [`ckks_exec`]: real encrypted execution on the `fhe-ckks` backend with
//!   wall-clock timing;
//! - [`estimate()`](estimate::estimate): static latency estimation under the Table 3 cost model
//!   (drives Fig. 6 and Fig. 8);
//! - [`error_est`]: closed-form worst-case error bounds (an ELASM-style
//!   extension beyond the paper);
//!
//! plus [`microbench`], which measures this repo's own Table 3.
//!
//! The three executors are unified behind the [`Executor`] trait
//! ([`executor`]): each returns the same [`Execution`] artifact (outputs +
//! plaintext reference + [`ExecTrace`] with per-op-class timing), and the
//! encrypted/plain output-diff check is the shared [`outputs_close`]
//! helper.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ckks_exec;
pub mod error_est;
pub mod estimate;
pub mod executor;
pub mod microbench;
pub mod noise_sim;
pub mod par_exec;
pub mod plain;

pub use ckks_exec::{
    execute as execute_encrypted, execute_with_keys, rotation_steps, ExecOptions, ExecReport,
    KeyPolicy, SessionKeys,
};
pub use error_est::{estimate_error, select_waterline, ErrorEstimateOptions};
pub use estimate::{estimate, LatencyBreakdown};
pub use executor::{
    max_abs_diff, outputs_close, CkksExec, ExecTrace, Execution, Executor, MemStats, NoiseSimExec,
    ParCkksExec, PlainExec,
};
pub use noise_sim::{simulate, NoiseModel, NoisyRun};
pub use par_exec::{execute_parallel, execute_parallel_with_keys, ParOptions, ParReport};
