//! # fhe-ir — an SSA IR for RNS-CKKS programs
//!
//! This crate is the substrate shared by every scale-management compiler in
//! the workspace (the reserve compiler of the paper, and the EVA / Hecate
//! baselines). It provides:
//!
//! - a tiny SSA [`Program`] DAG over encrypted vectors with the arithmetic
//!   ops of the paper's Fig. 4 plus the three scale-management ops of
//!   Table 2 ([`Op`]);
//! - an ergonomic [`Builder`] front-end with `+`, `-`, `*` operators;
//! - dataflow [`analysis`] (multiplicative depth, liveness, §6.1 level
//!   estimates);
//! - cleanup [`passes`] (CSE, DCE) and [`fold`] (constant folding,
//!   algebraic canonicalization);
//! - a textual format ([`text`]) for printing and parsing programs;
//! - the RNS-CKKS legality validator ([`ScheduledProgram::validate`]), the
//!   shared correctness oracle for compiled programs;
//! - the latency [`CostModel`] seeded with the paper's Table 3; and
//! - the instrumented [`pipeline`] every compiler is built on: a [`Pass`]
//!   sequence run by a [`PassManager`] recording a [`PipelineTrace`], with
//!   all compilers unified behind the [`ScaleCompiler`] trait producing a
//!   uniform [`CompileReport`].
//!
//! # Example
//!
//! Build the paper's running example `x³ · (y² + y)` and inspect it:
//!
//! ```
//! use fhe_ir::{Builder, analysis};
//! let b = Builder::new("example", 4096);
//! let x = b.input("x");
//! let y = b.input("y");
//! let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
//! let program = b.finish(vec![q]);
//! assert_eq!(analysis::circuit_depth(&program), 3);
//! println!("{}", fhe_ir::text::print(&program));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod builder;
pub mod cost;
pub mod depgraph;
pub mod diag;
pub mod dsl;
pub mod fold;
mod frac;
pub mod fusion;
pub mod memory;
mod op;
mod params;
pub mod passes;
pub mod pipeline;
mod program;
mod schedule;
pub mod text;

pub use builder::{Builder, Expr};
pub use cost::{CostModel, OpClass};
pub use depgraph::{DepConsumer, DepGraph, DepKind, DepNode, ParallelismEstimate};
pub use diag::{Finding, Severity, TvVerdict};
pub use frac::Frac;
pub use fusion::{BlockedFusion, Blocker, FusionPlan};
pub use memory::{estimate_memory, MemoryEstimate, MemoryModelConfig};
pub use op::{ConstValue, Op, OperandIter, ValueId};
pub use params::CompileParams;
pub use pipeline::{
    CompileError, CompileReport, Compiled, Pass, PassCx, PassError, PassIr, PassKind, PassManager,
    PassRecord, PipelineTrace, ScaleCompiler,
};
pub use program::{Program, ProgramEditor};
pub use schedule::{InputSpec, ScaleMap, ScheduleError, ScheduledProgram};
