//! Coarse security estimation for parameter selection.
//!
//! Based on the homomorphicencryption.org standard tables (ternary secret,
//! classical attacks): for each polynomial degree `N`, the maximum total
//! modulus size `log₂(Q·P)` that keeps the scheme at a given security
//! level. The paper's evaluation targets 128-bit security at `N = 2^15`
//! (max 881 bits ⇒ up to 13 sixty-bit primes + the special prime).
//!
//! These bounds are *guidance for experiments*, not a substitute for a real
//! estimator run.

use crate::context::CkksParams;

/// Supported security targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecurityLevel {
    /// 128-bit classical security.
    Bits128,
    /// 192-bit classical security.
    Bits192,
    /// 256-bit classical security.
    Bits256,
}

/// Maximum `log₂(Q·P)` (total modulus bits) for a ternary-secret R-LWE
/// instance of degree `n` at the given level, per the HE standard. Returns
/// `None` if `n` is below the table (insecure for any modulus).
pub fn max_modulus_bits(n: usize, level: SecurityLevel) -> Option<u32> {
    let table: &[(usize, [u32; 3])] = &[
        (1024, [27, 19, 14]),
        (2048, [54, 37, 29]),
        (4096, [109, 75, 58]),
        (8192, [218, 152, 118]),
        (16384, [438, 305, 237]),
        (32768, [881, 611, 476]),
    ];
    let idx = match level {
        SecurityLevel::Bits128 => 0,
        SecurityLevel::Bits192 => 1,
        SecurityLevel::Bits256 => 2,
    };
    table
        .iter()
        .filter(|(deg, _)| *deg <= n)
        .map(|(_, caps)| caps[idx])
        .next_back()
        .filter(|_| n >= 1024)
}

/// The total modulus size (`log₂(Q·P)` in bits) a parameter set uses.
pub fn total_modulus_bits(params: &CkksParams) -> u32 {
    params.max_level as u32 * params.modulus_bits + params.special_bits
}

/// Whether the parameter set meets the security target, or `None` when the
/// degree is below the standard's table.
pub fn meets(params: &CkksParams, level: SecurityLevel) -> Option<bool> {
    max_modulus_bits(params.poly_degree, level).map(|cap| total_modulus_bits(params) <= cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_table_values() {
        assert_eq!(max_modulus_bits(1 << 15, SecurityLevel::Bits128), Some(881));
        assert_eq!(max_modulus_bits(1 << 14, SecurityLevel::Bits128), Some(438));
        assert_eq!(max_modulus_bits(1 << 15, SecurityLevel::Bits256), Some(476));
        assert_eq!(max_modulus_bits(512, SecurityLevel::Bits128), None);
        // Intermediate (non-power-of-standard) degrees use the next lower row.
        assert_eq!(max_modulus_bits(3 << 12, SecurityLevel::Bits128), Some(218));
    }

    #[test]
    fn paper_parameters_at_128_bits() {
        // N = 2^15, R = 2^60: up to 13 chain primes + special stay ≤ 881.
        let params = CkksParams::paper_eval(13);
        assert_eq!(meets(&params, SecurityLevel::Bits128), Some(true));
        let too_deep = CkksParams::paper_eval(15);
        assert_eq!(meets(&too_deep, SecurityLevel::Bits128), Some(false));
    }

    #[test]
    fn test_parameters_are_flagged_insecure() {
        // The unit-test parameters are deliberately tiny — the estimator
        // must not claim security for them.
        let params = CkksParams {
            poly_degree: 256,
            max_level: 2,
            modulus_bits: 45,
            special_bits: 46,
            error_std: 3.2,
            threads: 1,
        };
        assert_eq!(meets(&params, SecurityLevel::Bits128), None);
    }
}
