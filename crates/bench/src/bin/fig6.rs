//! Fig. 6: estimated program latency of EVA, Hecate and this work for
//! waterline parameters 15–50, per benchmark (seconds, Table 3 cost model).
//!
//! `--fast` uses reduced benchmarks and exploration budgets; `--json <path>`
//! additionally writes every series point with its full compile report.

use fhe_bench::{
    compile_all, hecate_budget, json::Json, print_table, report_json, standard_compilers, CliArgs,
};

fn main() {
    let args = CliArgs::parse();
    let waterlines: Vec<u32> = (15..=50).step_by(5).collect();
    let suite = fhe_bench::selected_suite(&args);
    let names: Vec<String> = standard_compilers(1)
        .iter()
        .map(|c| c.name().to_string())
        .collect();

    println!("Fig. 6: Latency (s) of EVA, Hecate, and this work for waterlines 15-50.\n");
    let mut improvement_over_eva = Vec::new();
    let mut vs_hecate = Vec::new();
    let mut json_benchmarks = Vec::new();
    for w in &suite {
        eprintln!("sweeping {} ...", w.name);
        // Sweeps multiply Hecate's cost by the point count; cap the budget
        // to keep the harness to minutes.
        let budget = hecate_budget(&args, w.program.num_ops()).min(2000);
        // The eight waterline points are independent; sweep them on scoped
        // threads (latency here is *estimated*, so parallelism cannot skew
        // the results the way it would for wall-clock measurements).
        let points: Vec<Vec<fhe_ir::pipeline::Compiled>> = std::thread::scope(|scope| {
            let handles: Vec<_> = waterlines
                .iter()
                .map(|&wl| {
                    let program = &w.program;
                    scope.spawn(move || compile_all(&standard_compilers(budget), program, wl))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep thread"))
                .collect()
        });

        let mut headers: Vec<&str> = vec!["W"];
        headers.extend(names.iter().map(String::as_str));
        headers.push("vs EVA");
        let mut rows = Vec::new();
        let mut json_points = Vec::new();
        for (&wl, outs) in waterlines.iter().zip(&points) {
            // By standard_compilers convention: EVA first, this work last.
            let eva = outs[0].report.estimated_latency_us;
            let hec = outs[1].report.estimated_latency_us;
            let ours = outs.last().expect("nonempty").report.estimated_latency_us;
            improvement_over_eva.push(ours / eva);
            vs_hecate.push(ours / hec);
            let mut row = vec![wl.to_string()];
            row.extend(
                outs.iter()
                    .map(|o| format!("{:.3}", o.report.estimated_latency_us / 1e6)),
            );
            row.push(format!("{:+.1}%", (ours / eva - 1.0) * 100.0));
            rows.push(row);
            json_points.push(Json::obj([
                ("waterline", Json::from(wl)),
                (
                    "reports",
                    Json::Array(outs.iter().map(|o| report_json(&o.report)).collect()),
                ),
            ]));
        }
        println!("({})", w.name);
        print_table(&headers, &rows);
        println!();
        json_benchmarks.push(Json::obj([
            ("benchmark", Json::from(w.name)),
            ("points", Json::Array(json_points)),
        ]));
    }
    let geo = fhe_bench::geomean(&improvement_over_eva);
    let geo_h = fhe_bench::geomean(&vs_hecate);
    println!(
        "geomean latency vs EVA: {:.3} ({:.1}% faster; paper reports 41.8% improvement)",
        geo,
        (1.0 - geo) * 100.0
    );
    println!("geomean latency vs Hecate: {geo_h:.3} (paper: similar performance)");
    args.emit_json(&Json::obj([
        ("figure", Json::from("fig6")),
        ("geomean_vs_eva", Json::from(geo)),
        ("geomean_vs_hecate", Json::from(geo_h)),
        ("benchmarks", Json::Array(json_benchmarks)),
    ]));
}
