//! # fhe-serve — compile-cache + concurrent multi-session service layer
//!
//! Deployment front-end over the workspace's compilers and encrypted
//! executors: an [`FheServer`] accepts textual programs from many
//! sessions concurrently, compiles them once through a content-addressed
//! [`CompileCache`], and executes them on the DAG-parallel encrypted
//! backend with per-session key material.
//!
//! Guarantees, in order of importance:
//!
//! - **Determinism under concurrency.** A request's encryption seed is a
//!   pure function of its session's seed and its submission index
//!   ([`request_seed`]); outputs depend only on (schedule, inputs, keys,
//!   seed). Any interleaving of workers and sessions produces responses
//!   byte-identical to a serial single-session replay.
//! - **Session isolation.** Sessions share the compile cache, the
//!   per-degree polynomial pools and the persistent thread pool — never
//!   key material. A panicking request quarantines only its own session
//!   ([`ServeError::ExecutorPanic`]); the shared resources keep serving.
//! - **Structured failure.** Every failure mode is a [`ServeError`]; no
//!   panic crosses the request boundary and no mutex the service owns can
//!   be poisoned by a request.
//! - **Bounded memory.** The compile cache evicts least-recently-used
//!   entries under a byte budget; evicted programs recompile to
//!   structurally identical schedules (compilation is deterministic).
//!
//! Telemetry lives in [`ServeStats`]: throughput, log-bucketed p50/p99
//! latency, cache hit rate, per-degree pool counters and per-session
//! sums that reconcile exactly with the per-request [`MemStats`] deltas
//! (see `tests/serve_stats.rs`).
//!
//! [`MemStats`]: fhe_runtime::MemStats

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod error;
pub mod server;
pub mod session;
pub mod stats;

pub use cache::{CacheStats, CachedCompile, CompileCache};
pub use error::ServeError;
pub use server::{compiler_for, FheServer, Request, Response, ServerConfig, Ticket};
pub use session::{request_seed, SessionId, SessionStats, SessionStore};
pub use stats::{LatencyHistogram, PoolSnapshot, ServeStats};
