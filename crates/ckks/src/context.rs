//! The RNS-CKKS context: modulus chain, NTT tables, and CRT constants.

use crate::bigint::CrtReconstructor;
use crate::modular::Modulus;
use crate::ntt::NttTable;
use crate::primes::ntt_primes;

/// Scheme parameters.
///
/// These follow the paper's evaluation setup in structure (`N = 2^15`,
/// 60-bit rescaling primes); tests use smaller `N` for speed. **These
/// parameters are for experimentation, not hardened for production
/// security.**
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CkksParams {
    /// Polynomial modulus degree `N` (a power of two). Slots = `N/2`.
    pub poly_degree: usize,
    /// Maximum level `L`: number of rescaling primes in the chain.
    pub max_level: usize,
    /// Size of each chain prime in bits (the nominal `log₂ R`).
    pub modulus_bits: u32,
    /// Size of the key-switching special prime `P` in bits.
    pub special_bits: u32,
    /// Standard deviation of the RLWE error distribution.
    pub error_std: f64,
    /// Worker threads for fanning independent RNS limbs across cores
    /// (NTT conversions, pointwise products, rescale, key-switch inner
    /// loops). `0` = use [`std::thread::available_parallelism`]; `1` =
    /// exact serial execution. Results are bit-identical for every value —
    /// limb jobs are independent and deterministic — so this is purely a
    /// throughput knob.
    pub threads: usize,
}

impl CkksParams {
    /// The paper's evaluation parameters: `N = 2^15`, `R = 2^60`.
    pub fn paper_eval(max_level: usize) -> Self {
        CkksParams {
            poly_degree: 1 << 15,
            max_level,
            modulus_bits: 60,
            special_bits: 60,
            error_std: 3.2,
            threads: 0,
        }
    }

    /// Small parameters for fast tests: `N = 2^12`, 50-bit primes.
    pub fn insecure_test(max_level: usize) -> Self {
        CkksParams {
            poly_degree: 1 << 12,
            max_level,
            modulus_bits: 50,
            special_bits: 51,
            error_std: 3.2,
            threads: 0,
        }
    }
}

/// Precomputed state shared by keys, ciphertexts and the evaluator.
#[derive(Debug)]
pub struct CkksContext {
    params: CkksParams,
    /// Chain moduli `q_0 .. q_{L-1}` (level `l` uses the first `l`).
    moduli: Vec<Modulus>,
    /// The key-switching special prime `P`.
    special: Modulus,
    tables: Vec<NttTable>,
    special_table: NttTable,
    /// CRT reconstructors for each level `1..=L` (index `l-1`).
    crt: Vec<CrtReconstructor>,
    /// `(q_j^{-1} mod q_i, Shoup companion)` for rescaling from level `j+1`
    /// (index `[j][i]`, `i < j`).
    rescale_inv: Vec<Vec<(u64, u64)>>,
    /// `(P^{-1} mod q_i, Shoup companion)` for the key-switch scale-down.
    special_inv: Vec<(u64, u64)>,
    /// Resolved worker-thread count (≥ 1); see [`CkksParams::threads`].
    threads: usize,
}

impl CkksContext {
    /// Builds the context: generates the prime chain and all tables.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent (degree not a power of two,
    /// zero levels, primes too small for the degree).
    pub fn new(params: CkksParams) -> Self {
        assert!(params.max_level >= 1, "need at least one level");
        let n = params.poly_degree;
        let chain = ntt_primes(params.modulus_bits, n, params.max_level);
        // The special prime must be distinct from every chain prime; search
        // a different nominal size if needed.
        let special_candidates = ntt_primes(params.special_bits, n, params.max_level + 1);
        let special = *special_candidates
            .iter()
            .find(|p| !chain.contains(p))
            .expect("distinct special prime exists");
        let moduli: Vec<Modulus> = chain.iter().map(|&q| Modulus::new(q)).collect();
        let special_m = Modulus::new(special);
        let tables = moduli.iter().map(|&m| NttTable::new(m, n)).collect();
        let special_table = NttTable::new(special_m, n);
        let crt = (1..=params.max_level)
            .map(|l| CrtReconstructor::new(&chain[..l]))
            .collect();
        let with_shoup = |m: Modulus, v: u64| -> (u64, u64) {
            let inv = m.inv(v);
            (inv, m.shoup(inv))
        };
        let rescale_inv = (0..params.max_level)
            .map(|j| {
                (0..j)
                    .map(|i| with_shoup(moduli[i], moduli[j].value()))
                    .collect()
            })
            .collect();
        let special_inv = moduli.iter().map(|&m| with_shoup(m, special)).collect();
        let threads = if params.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            params.threads
        };
        CkksContext {
            params,
            moduli,
            special: special_m,
            tables,
            special_table,
            crt,
            rescale_inv,
            special_inv,
            threads,
        }
    }

    /// The parameters this context was built with.
    pub fn params(&self) -> &CkksParams {
        &self.params
    }

    /// Polynomial degree `N`.
    pub fn degree(&self) -> usize {
        self.params.poly_degree
    }

    /// Number of SIMD slots (`N/2`).
    pub fn slots(&self) -> usize {
        self.params.poly_degree / 2
    }

    /// Maximum level `L`.
    pub fn max_level(&self) -> usize {
        self.params.max_level
    }

    /// The chain moduli (`q_0..q_{L-1}`).
    pub fn moduli(&self) -> &[Modulus] {
        &self.moduli
    }

    /// The special prime `P`.
    pub fn special(&self) -> Modulus {
        self.special
    }

    /// NTT table for chain modulus `i`.
    pub fn table(&self, i: usize) -> &NttTable {
        &self.tables[i]
    }

    /// NTT table for the special prime.
    pub fn special_table(&self) -> &NttTable {
        &self.special_table
    }

    /// CRT reconstructor for level `l` (basis `q_0..q_{l-1}`).
    pub fn crt(&self, l: usize) -> &CrtReconstructor {
        &self.crt[l - 1]
    }

    /// `q_j^{-1} mod q_i` where `j` is the limb being dropped, with its
    /// Shoup companion for constant-multiplier products.
    pub fn rescale_inv(&self, j: usize, i: usize) -> (u64, u64) {
        self.rescale_inv[j][i]
    }

    /// `P^{-1} mod q_i`, with its Shoup companion.
    pub fn special_inv(&self, i: usize) -> (u64, u64) {
        self.special_inv[i]
    }

    /// Worker threads for per-limb fan-out (resolved; always ≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The exact product of the first `l` chain primes, as `f64` (this is
    /// the actual `Q` a level-`l` ciphertext lives under).
    pub fn modulus_f64(&self, l: usize) -> f64 {
        self.moduli[..l].iter().map(|m| m.value() as f64).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds_consistently() {
        let ctx = CkksContext::new(CkksParams::insecure_test(3));
        assert_eq!(ctx.moduli().len(), 3);
        assert_eq!(ctx.slots(), 1 << 11);
        // Chain primes distinct from each other and from P.
        let mut all: Vec<u64> = ctx.moduli().iter().map(|m| m.value()).collect();
        all.push(ctx.special().value());
        let len = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), len);
    }

    #[test]
    fn rescale_inverses_are_inverses() {
        let ctx = CkksContext::new(CkksParams::insecure_test(3));
        for j in 1..3 {
            for i in 0..j {
                let qi = ctx.moduli()[i];
                let qj = ctx.moduli()[j].value();
                let (inv, shoup) = ctx.rescale_inv(j, i);
                assert_eq!(qi.mul(qi.reduce(qj), inv), 1);
                assert_eq!(shoup, qi.shoup(inv), "Shoup companion consistent");
            }
        }
        for i in 0..3 {
            let qi = ctx.moduli()[i];
            let (inv, shoup) = ctx.special_inv(i);
            assert_eq!(qi.mul(qi.reduce(ctx.special().value()), inv), 1);
            assert_eq!(shoup, qi.shoup(inv));
        }
    }

    #[test]
    fn threads_resolve() {
        let mut params = CkksParams::insecure_test(1);
        params.threads = 3;
        assert_eq!(CkksContext::new(params).threads(), 3);
        params.threads = 0;
        assert!(CkksContext::new(params).threads() >= 1);
    }

    #[test]
    fn modulus_f64_grows_with_level() {
        let ctx = CkksContext::new(CkksParams::insecure_test(3));
        assert!(ctx.modulus_f64(2) > ctx.modulus_f64(1));
        let ratio = ctx.modulus_f64(2) / ctx.modulus_f64(1);
        let rel = ratio / 2f64.powi(50) - 1.0;
        assert!(rel.abs() < 1e-3, "chain prime strays from nominal size");
    }
}
