//! Self-tests of the model checker: these run only under
//! `RUSTFLAGS="--cfg fhe_conc"` (the conc-smoke CI tier) and validate the
//! scheduler itself — exploration actually covers both orders of racing
//! operations, planted races and deadlocks are detected and classified,
//! and fixed protocols pass exhaustively.
#![cfg(fhe_conc)]

use std::collections::HashSet;
use std::sync::Mutex as StdMutex;

use fhe_conc::sync::atomic::{AtomicUsize, Ordering};
use fhe_conc::sync::{thread, Arc, Condvar, Mutex};
use fhe_conc::{check, Config, FailureKind, Mode};

fn exhaustive() -> Config {
    Config::exhaustive()
}

/// Unbounded exhaustive search (no preemption bound) for tiny models.
fn exhaustive_unbounded() -> Config {
    Config {
        mode: Mode::Exhaustive {
            max_executions: 100_000,
            preemption_bound: None,
        },
        max_steps: 20_000,
    }
}

#[test]
fn explores_both_orders_of_a_racing_read() {
    // Main reads an atomic a spawned thread sets to 1: an exhaustive
    // search must produce executions observing 0 *and* executions
    // observing 1.
    let seen: Arc<StdMutex<HashSet<usize>>> = Arc::new(StdMutex::new(HashSet::new()));
    let seen2 = Arc::clone(&seen);
    let outcome = check("both-orders", exhaustive_unbounded(), move || {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || x2.store(1, Ordering::SeqCst));
        let observed = x.load(Ordering::SeqCst);
        seen2.lock().unwrap().insert(observed);
        t.join().unwrap();
    });
    assert!(outcome.passed(), "{:?}", outcome.failure);
    assert!(outcome.complete, "tiny model must be fully explored");
    assert!(outcome.executions >= 2);
    let seen = seen.lock().unwrap();
    assert!(
        seen.contains(&0) && seen.contains(&1),
        "exploration must cover both orders, saw {seen:?}"
    );
}

#[test]
fn detects_a_lost_update() {
    // Two unsynchronized load-then-store increments: some interleaving
    // loses one update, so the final assertion fails in that schedule.
    let outcome = check("lost-update", exhaustive(), || {
        let x = Arc::new(AtomicUsize::new(0));
        let t = {
            let x = Arc::clone(&x);
            thread::spawn(move || {
                let v = x.load(Ordering::SeqCst);
                x.store(v + 1, Ordering::SeqCst);
            })
        };
        let v = x.load(Ordering::SeqCst);
        x.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(x.load(Ordering::SeqCst), 2, "an increment was lost");
    });
    let failure = outcome.failure.expect("the lost update must be found");
    assert!(matches!(failure.kind, FailureKind::Panic), "{failure:?}");
    assert!(failure.message.contains("an increment was lost"));
    assert!(!failure.trace.is_empty(), "counterexample trace recorded");
}

#[test]
fn mutexed_increments_pass_exhaustively() {
    // The same counter behind a mutex: no schedule loses an update.
    let outcome = check("mutexed-increments", exhaustive_unbounded(), || {
        let n = Arc::new(Mutex::new(0u32));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || *n2.lock().unwrap() += 1);
        *n.lock().unwrap() += 1;
        t.join().unwrap();
        assert_eq!(*n.lock().unwrap(), 2);
    });
    assert!(outcome.passed(), "{:?}", outcome.failure);
    assert!(outcome.complete);
    assert!(outcome.executions >= 2, "lock orders explored both ways");
}

#[test]
fn detects_ab_ba_deadlock() {
    let outcome = check("ab-ba", exhaustive(), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _gb = b2.lock().unwrap();
            let _ga = a2.lock().unwrap();
        });
        let _ga = a.lock().unwrap();
        let _gb = b.lock().unwrap();
        drop((_ga, _gb));
        t.join().unwrap();
    });
    let failure = outcome.failure.expect("AB-BA deadlock must be found");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { lost_wakeup: false }),
        "{failure:?}"
    );
}

#[test]
fn classifies_a_lost_wakeup() {
    // Broken wait protocol: the flag check and the wait are not atomic
    // under one lock acquisition, so the notify can land in the gap and
    // the waiter sleeps forever.
    let outcome = check("lost-wakeup", exhaustive(), || {
        let flag = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (flag2, cv2) = (Arc::clone(&flag), Arc::clone(&cv));
        let t = thread::spawn(move || {
            *flag2.lock().unwrap() = true;
            cv2.notify_one();
        });
        // BUG: the lock is released between the check and the wait.
        let ready = *flag.lock().unwrap();
        if !ready {
            let guard = flag.lock().unwrap();
            let _guard = cv.wait(guard).unwrap();
        }
        t.join().unwrap();
    });
    let failure = outcome.failure.expect("lost wakeup must be found");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { lost_wakeup: true }),
        "{failure:?}"
    );
}

#[test]
fn correct_wait_loop_passes_exhaustively() {
    // The fixed protocol: check and wait under one lock acquisition, in a
    // while loop. No schedule hangs.
    let outcome = check("wait-loop", exhaustive_unbounded(), || {
        let flag = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (flag2, cv2) = (Arc::clone(&flag), Arc::clone(&cv));
        let t = thread::spawn(move || {
            *flag2.lock().unwrap() = true;
            cv2.notify_one();
        });
        let mut guard = flag.lock().unwrap();
        while !*guard {
            guard = cv.wait(guard).unwrap();
        }
        drop(guard);
        t.join().unwrap();
    });
    assert!(outcome.passed(), "{:?}", outcome.failure);
    assert!(outcome.complete);
}

#[test]
fn pct_finds_a_narrow_window_race() {
    // x briefly holds 1 between two stores; the racing observer asserts
    // it never sees it. PCT with committed seeds must land in the window.
    let outcome = check("pct-window", Config::pct(0xFEED_F00D, 200), || {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            x2.store(0, Ordering::SeqCst);
        });
        assert_ne!(x.load(Ordering::SeqCst), 1, "observer saw the window");
        t.join().unwrap();
    });
    let failure = outcome.failure.expect("PCT must land in the window");
    assert!(matches!(failure.kind, FailureKind::Panic));
}

#[test]
fn join_passes_values_and_thread_ids_are_deterministic() {
    let outcome = check("join-values", exhaustive(), || {
        assert_eq!(fhe_conc::current_thread_id(), 0, "model closure is t0");
        let t = thread::spawn(|| {
            assert_eq!(fhe_conc::current_thread_id(), 1, "first spawn is t1");
            41 + 1
        });
        assert_eq!(t.join().unwrap(), 42);
    });
    assert!(outcome.passed(), "{:?}", outcome.failure);
}

#[test]
fn trace_renders_numbered_steps() {
    let outcome = check("trace-render", exhaustive(), || {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || x2.store(1, Ordering::SeqCst));
        t.join().unwrap();
        assert_eq!(x.load(Ordering::SeqCst), 99, "always fails");
    });
    let failure = outcome.failure.expect("model always fails");
    let rendered = failure.render();
    assert!(rendered.contains("#0"), "numbered steps: {rendered}");
    assert!(rendered.contains("store a"), "op names: {rendered}");
    assert!(
        rendered.contains("checker_self.rs"),
        "source locations: {rendered}"
    );
}

#[test]
fn three_thread_counter_is_exact_under_exhaustive_bounds() {
    let outcome = check("three-counter", exhaustive(), || {
        let n = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || *n.lock().unwrap() += 1)
            })
            .collect();
        *n.lock().unwrap() += 1;
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 3);
    });
    assert!(outcome.passed(), "{:?}", outcome.failure);
    assert!(outcome.executions > 2);
}
