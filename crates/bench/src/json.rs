//! A minimal JSON value and serializer for the harnesses' `--json` output.
//!
//! The workspace builds offline (no serde); the harness output is flat and
//! small, so a tiny escaping serializer is all that is needed. Numbers are
//! emitted with `f64` round-trip precision; non-finite numbers become
//! `null` (JSON has no NaN/∞).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (serialized via `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) if !v.is_finite() => f.write_str("null"),
            Json::Num(v) if *v == v.trunc() && v.abs() < 1e15 => write!(f, "{}", *v as i64),
            Json::Num(v) => write!(f, "{v}"),
            Json::Str(s) => escape(s, f),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_structures() {
        let j = Json::obj([
            ("name", Json::from("fig6")),
            ("n", Json::from(3usize)),
            ("ratio", Json::from(0.5)),
            (
                "points",
                Json::Array(vec![Json::from(1.0), Json::Null, Json::from(true)]),
            ),
        ]);
        assert_eq!(
            j.to_string(),
            r#"{"name":"fig6","n":3,"ratio":0.5,"points":[1,null,true]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::from("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn integers_have_no_fraction() {
        assert_eq!(Json::from(42.0).to_string(), "42");
        assert_eq!(Json::from(1e18).to_string(), "1000000000000000000");
    }
}
