//! Golden-file regression tests of the per-pass pipeline traces: the
//! op-count/level deltas each compiler's passes report for the paper's
//! worked example and two workloads must match the checked-in snapshots,
//! asserting the pass-pipeline refactor stays behavior-preserving. If a
//! compiler change legitimately alters a trace, regenerate with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_traces
//! ```
//!
//! and review the diff like any other code change.
//!
//! `PipelineTrace::summary()` deliberately omits wall times, so these
//! snapshots are deterministic across machines.

use fhe_reserve::prelude::*;

fn fig2a() -> Program {
    let b = Builder::new("fig2a", 8);
    let x = b.input("x");
    let y = b.input("y");
    let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
    b.finish(vec![q])
}

/// The three compilers under test, with a fixed deterministic Hecate
/// budget so the explored-iterations note in its trace is stable.
fn compilers() -> Vec<Box<dyn ScaleCompiler>> {
    vec![
        Box::new(EvaCompiler),
        Box::new(HecateCompiler {
            options: HecateOptions {
                max_iterations: 200,
                patience: 200,
                seed: 7,
                ..HecateOptions::default()
            },
        }),
        Box::new(ReserveCompiler::full()),
    ]
}

fn check(name: &str, rendered: String) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden file {name}; run with UPDATE_GOLDEN=1"));
    assert_eq!(
        rendered, expected,
        "pipeline trace for {name} drifted from its golden snapshot; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

fn trace_all(program: &Program, waterline: u32) -> String {
    let params = CompileParams::new(waterline);
    let mut out = String::new();
    for compiler in compilers() {
        let compiled = compiler.compile(program, &params).expect("compiles");
        assert!(
            !compiled.report.trace.passes.is_empty(),
            "{}: trace must record at least one pass",
            compiler.name()
        );
        out.push_str(&format!("== {} ==\n", compiler.name()));
        out.push_str(&compiled.report.trace.summary());
        out.push_str(&format!(
            "final: {} ops, max level {}\n\n",
            compiled.report.ops_after, compiled.report.max_level
        ));
    }
    out
}

#[test]
fn fig2_trace_is_stable_under_all_compilers() {
    check("trace_fig2a_w20.txt", trace_all(&fig2a(), 20));
}

#[test]
fn mlp_trace_is_stable_under_all_compilers() {
    let program = fhe_reserve::workloads::mlp::mlp(64, 4, 3);
    check("trace_mlp_w30.txt", trace_all(&program, 30));
}

#[test]
fn regression_trace_is_stable_under_all_compilers() {
    let program = fhe_reserve::workloads::regression::linear(64, 2);
    check("trace_regression_w30.txt", trace_all(&program, 30));
}
