//! Mul·relin·rescale fusion planning.
//!
//! A cipher×cipher [`Op::Mul`] already folds relinearization into the
//! product pass; when its *sole* consumer is an [`Op::Rescale`], the
//! runtime can run both as one fused kernel that rescales the
//! relinearized pair in place — the mul's full-level result ciphertext
//! (two level-`l` polynomials) is never materialized. The arithmetic is
//! untouched, so fused and unfused execution are bit-identical; fusion
//! only deletes the intermediate buffer traffic and the scheduling gap
//! between the two ops.
//!
//! [`FusionPlan::plan`] finds every fusible pair of a scheduled program
//! and — for the diagnostics layer — every *near miss*: a mul whose
//! rescale exists but cannot fuse because an intervening consumer pins
//! the pre-rescale value (the F009 lint feeds on
//! [`FusionPlan::blocked`]).

use crate::op::{Op, ValueId};
use crate::schedule::ScheduledProgram;

/// Why a mul→rescale pair cannot fuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Blocker {
    /// The mul's pre-rescale value has consumers besides the rescale (or
    /// is a program output), so it must be materialized anyway.
    ExtraConsumers {
        /// The other consumers pinning the value (outputs excluded).
        others: Vec<ValueId>,
        /// Whether the mul value is itself a program output.
        is_output: bool,
    },
    /// The rescale applies to the mul value only after an intervening
    /// unary op, so the fused kernel's in-place rescale cannot be used.
    Intervening {
        /// The op sitting between the mul and the rescale.
        via: ValueId,
    },
}

/// A mul→rescale pair that was considered for fusion and rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedFusion {
    /// The cipher×cipher multiply.
    pub mul: ValueId,
    /// The rescale that would have fused with it.
    pub rescale: ValueId,
    /// Why the pair stays unfused.
    pub blocker: Blocker,
}

/// The fusion decisions for one scheduled program: which mul ops execute
/// as fused mul·relin·rescale kernels, keyed from both ends so the
/// executor can look up a pair at either op.
#[derive(Debug, Clone, Default)]
pub struct FusionPlan {
    /// Indexed by mul id: the rescale fused onto it.
    rescale_of: Vec<Option<ValueId>>,
    /// Indexed by rescale id: the mul it fused with.
    mul_of: Vec<Option<ValueId>>,
    blocked: Vec<BlockedFusion>,
    pairs: Vec<(ValueId, ValueId)>,
}

impl FusionPlan {
    /// Plans fusion for `scheduled`. A pair `(mul, rescale)` fuses iff the
    /// mul is a live cipher×cipher product, the rescale is its only live
    /// consumer, and the mul value is not a program output. Dead ops are
    /// ignored entirely.
    pub fn plan(scheduled: &ScheduledProgram) -> FusionPlan {
        let program = &scheduled.program;
        let live = crate::analysis::live(program);
        let n = program.num_ops();
        let mut users: Vec<Vec<ValueId>> = vec![Vec::new(); n];
        for id in program.ids() {
            if !live[id.index()] {
                continue;
            }
            for a in program.op(id).operands() {
                if users[a.index()].last() != Some(&id) {
                    users[a.index()].push(id);
                }
            }
        }
        let is_output = |id: ValueId| program.outputs().contains(&id);

        let mut plan = FusionPlan {
            rescale_of: vec![None; n],
            mul_of: vec![None; n],
            blocked: Vec::new(),
            pairs: Vec::new(),
        };
        for id in program.ids() {
            if !live[id.index()] {
                continue;
            }
            let Op::Mul(a, b) = *program.op(id) else {
                continue;
            };
            if !(program.is_cipher(a) && program.is_cipher(b)) {
                continue;
            }
            let direct_rescale = users[id.index()]
                .iter()
                .copied()
                .find(|&u| matches!(program.op(u), Op::Rescale(_)));
            match direct_rescale {
                Some(r) if users[id.index()].len() == 1 && !is_output(id) => {
                    plan.rescale_of[id.index()] = Some(r);
                    plan.mul_of[r.index()] = Some(id);
                    plan.pairs.push((id, r));
                }
                Some(r) => {
                    plan.blocked.push(BlockedFusion {
                        mul: id,
                        rescale: r,
                        blocker: Blocker::ExtraConsumers {
                            others: users[id.index()]
                                .iter()
                                .copied()
                                .filter(|&u| u != r)
                                .collect(),
                            is_output: is_output(id),
                        },
                    });
                }
                None => {
                    // Sole-consumer chain mul → unary op → rescale: the
                    // rescale exists but an op intervenes.
                    let [via] = users[id.index()][..] else {
                        continue;
                    };
                    let unary = matches!(
                        program.op(via),
                        Op::Neg(_) | Op::ModSwitch(_) | Op::Upscale(..)
                    );
                    if !unary || is_output(via) {
                        continue;
                    }
                    if let [r] = users[via.index()][..] {
                        if matches!(program.op(r), Op::Rescale(_)) {
                            plan.blocked.push(BlockedFusion {
                                mul: id,
                                rescale: r,
                                blocker: Blocker::Intervening { via },
                            });
                        }
                    }
                }
            }
        }
        plan
    }

    /// The rescale fused onto `mul`, if any.
    pub fn rescale_for(&self, mul: ValueId) -> Option<ValueId> {
        self.rescale_of.get(mul.index()).copied().flatten()
    }

    /// The mul that `rescale` fused with, if any.
    pub fn mul_for(&self, rescale: ValueId) -> Option<ValueId> {
        self.mul_of.get(rescale.index()).copied().flatten()
    }

    /// All fused `(mul, rescale)` pairs, in schedule order.
    pub fn pairs(&self) -> &[(ValueId, ValueId)] {
        &self.pairs
    }

    /// Number of fused pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pair fused.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The near misses: pairs that were considered and rejected, in
    /// schedule order of the mul.
    pub fn blocked(&self) -> &[BlockedFusion] {
        &self.blocked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::params::CompileParams;
    use crate::program::Program;
    use crate::schedule::{InputSpec, ScheduledProgram};
    use crate::Frac;

    fn scheduled(p: Program) -> ScheduledProgram {
        ScheduledProgram {
            params: CompileParams::new(30),
            inputs: p
                .inputs()
                .iter()
                .map(|_| InputSpec {
                    scale_bits: Frac::from(30u32),
                    level: 2,
                })
                .collect(),
            program: p,
        }
    }

    #[test]
    fn sole_consumer_rescale_fuses() {
        let mut p = Program::new("t", 8);
        let x = p.push(Op::Input { name: "x".into() });
        let y = p.push(Op::Input { name: "y".into() });
        let m = p.push(Op::Mul(x, y));
        let r = p.push(Op::Rescale(m));
        p.set_outputs(vec![r]);
        let plan = FusionPlan::plan(&scheduled(p));
        assert_eq!(plan.pairs(), &[(m, r)]);
        assert_eq!(plan.rescale_for(m), Some(r));
        assert_eq!(plan.mul_for(r), Some(m));
        assert!(plan.blocked().is_empty());
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn extra_consumer_blocks_fusion() {
        let mut p = Program::new("t", 8);
        let x = p.push(Op::Input { name: "x".into() });
        let y = p.push(Op::Input { name: "y".into() });
        let m = p.push(Op::Mul(x, y));
        let r = p.push(Op::Rescale(m));
        let extra = p.push(Op::Add(m, y)); // second consumer of the raw product
        let out = p.push(Op::Add(r, extra));
        p.set_outputs(vec![out]);
        let plan = FusionPlan::plan(&scheduled(p));
        assert!(plan.is_empty());
        assert_eq!(plan.blocked().len(), 1);
        let b = &plan.blocked()[0];
        assert_eq!((b.mul, b.rescale), (m, r));
        assert_eq!(
            b.blocker,
            Blocker::ExtraConsumers {
                others: vec![extra],
                is_output: false
            }
        );
    }

    #[test]
    fn intervening_op_blocks_fusion() {
        let mut p = Program::new("t", 8);
        let x = p.push(Op::Input { name: "x".into() });
        let y = p.push(Op::Input { name: "y".into() });
        let m = p.push(Op::Mul(x, y));
        let n = p.push(Op::Neg(m));
        let r = p.push(Op::Rescale(n));
        p.set_outputs(vec![r]);
        let plan = FusionPlan::plan(&scheduled(p));
        assert!(plan.is_empty());
        assert_eq!(plan.blocked().len(), 1);
        assert_eq!(plan.blocked()[0].blocker, Blocker::Intervening { via: n });
    }

    #[test]
    fn output_muls_and_plain_muls_do_not_fuse() {
        let mut p = Program::new("t", 8);
        let x = p.push(Op::Input { name: "x".into() });
        let c = p.push(Op::Const { value: 2.0.into() });
        let pm = p.push(Op::Mul(x, c)); // cipher×plain: no relin, no fusion
        let r1 = p.push(Op::Rescale(pm));
        let m = p.push(Op::Mul(r1, r1));
        let r2 = p.push(Op::Rescale(m));
        p.set_outputs(vec![m, r2]); // raw product is itself an output
        let plan = FusionPlan::plan(&scheduled(p));
        assert!(plan.is_empty());
        assert_eq!(plan.blocked().len(), 1, "output mul is a near miss");
        assert_eq!(
            plan.blocked()[0].blocker,
            Blocker::ExtraConsumers {
                others: vec![],
                is_output: true
            }
        );
    }

    #[test]
    fn dead_rescales_are_ignored() {
        let b = Builder::new("t", 8);
        let x = b.input("x");
        let y = b.input("y");
        let prod = x * y;
        let p = {
            let mut p = b.finish(vec![prod.clone()]);
            // A rescale nobody uses: planning must not pair it.
            let m = p.outputs()[0];
            p.push(Op::Rescale(m));
            p
        };
        let plan = FusionPlan::plan(&scheduled(p));
        assert!(plan.is_empty());
        assert!(plan.blocked().is_empty());
    }
}
