//! # fhe-workloads — the Reserve paper's eight evaluation benchmarks
//!
//! Circuit builders for the workloads of §8: Sobel Filter (SF), Harris
//! Corner Detection (HCD), Linear/Multivariate/Polynomial Regression
//! (LR/MR/PR), a Multi-Layer Perceptron (MLP), and LeNet-5 on MNIST- and
//! CIFAR-shaped inputs (Lenet-5 / Lenet-C). Each builder returns a plain
//! arithmetic [`fhe_ir::Program`] (no scale management) plus deterministic
//! synthetic inputs, ready for any of the workspace's compilers.
//!
//! # Example
//!
//! ```
//! use fhe_workloads::{suite, Size};
//! let workloads = suite(Size::Test);
//! assert_eq!(workloads.len(), 8);
//! for w in workloads.iter().take(2) {
//!     let compiled = reserve_core::compile(&w.program, &reserve_core::Options::new(30))?;
//!     assert!(compiled.scheduled.validate().is_ok());
//! }
//! # Ok::<(), reserve_core::CompileError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod data;
pub mod helpers;
pub mod image;
pub mod lenet;
pub mod mlp;
pub mod regression;

use std::collections::HashMap;

use fhe_ir::Program;

/// A benchmark: its circuit and matching input bindings.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name as used in the paper's tables (e.g. `"SF"`, `"Lenet-5"`).
    pub name: &'static str,
    /// The arithmetic circuit (no scale-management ops).
    pub program: Program,
    /// Deterministic synthetic inputs.
    pub inputs: HashMap<String, Vec<f64>>,
}

/// Benchmark sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Size {
    /// The paper's evaluation sizes (64×64 images, 16384-sample
    /// regressions, full LeNet) — use for the table/figure harnesses.
    Paper,
    /// Miniature instances for unit tests and encrypted execution.
    Test,
}

/// Builds all eight benchmarks at the given size, in the paper's table
/// order: SF, HCD, LR, MR, PR, MLP, Lenet-5, Lenet-C.
pub fn suite(size: Size) -> Vec<Workload> {
    let seed = 0xBEEF;
    match size {
        Size::Paper => vec![
            Workload {
                name: "SF",
                program: image::sobel(64),
                inputs: image::image_inputs(64, seed),
            },
            Workload {
                name: "HCD",
                program: image::harris(64),
                inputs: image::image_inputs(64, seed),
            },
            Workload {
                name: "LR",
                program: regression::linear(16384, 2),
                inputs: regression::linear_inputs(16384, seed),
            },
            Workload {
                name: "MR",
                program: regression::multivariate(16384, 4, 2),
                inputs: regression::multivariate_inputs(16384, 4, seed),
            },
            Workload {
                name: "PR",
                program: regression::polynomial(16384, 2),
                inputs: regression::polynomial_inputs(16384, seed),
            },
            Workload {
                name: "MLP",
                program: mlp::mlp(16384, 58, seed),
                inputs: mlp::mlp_inputs(16384, seed),
            },
            Workload {
                name: "Lenet-5",
                program: lenet::build(&lenet::LenetConfig::lenet5()),
                inputs: lenet::lenet_inputs(&lenet::LenetConfig::lenet5(), seed),
            },
            Workload {
                name: "Lenet-C",
                program: lenet::build(&lenet::LenetConfig::lenet_cifar()),
                inputs: lenet::lenet_inputs(&lenet::LenetConfig::lenet_cifar(), seed),
            },
        ],
        Size::Test => {
            let tiny_lenet = lenet::LenetConfig::tiny(128);
            let mut tiny_cifar = lenet::LenetConfig::tiny(128);
            tiny_cifar.in_channels = 2;
            vec![
                Workload {
                    name: "SF",
                    program: image::sobel(8),
                    inputs: image::image_inputs(8, seed),
                },
                Workload {
                    name: "HCD",
                    program: image::harris(8),
                    inputs: image::image_inputs(8, seed),
                },
                Workload {
                    name: "LR",
                    program: regression::linear(64, 2),
                    inputs: regression::linear_inputs(64, seed),
                },
                Workload {
                    name: "MR",
                    program: regression::multivariate(64, 3, 2),
                    inputs: regression::multivariate_inputs(64, 3, seed),
                },
                Workload {
                    name: "PR",
                    program: regression::polynomial(64, 2),
                    inputs: regression::polynomial_inputs(64, seed),
                },
                Workload {
                    name: "MLP",
                    program: mlp::mlp(64, 8, seed),
                    inputs: mlp::mlp_inputs(64, seed),
                },
                Workload {
                    name: "Lenet-5",
                    program: lenet::build(&tiny_lenet),
                    inputs: lenet::lenet_inputs(&tiny_lenet, seed),
                },
                Workload {
                    name: "Lenet-C",
                    program: lenet::build(&tiny_cifar),
                    inputs: lenet::lenet_inputs(&tiny_cifar, seed),
                },
            ]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_all_eight() {
        let names: Vec<&str> = suite(Size::Test).iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec!["SF", "HCD", "LR", "MR", "PR", "MLP", "Lenet-5", "Lenet-C"]
        );
    }

    #[test]
    fn inputs_bind_every_program_input() {
        for w in suite(Size::Test) {
            for &input in w.program.inputs() {
                if let fhe_ir::Op::Input { name } = w.program.op(input) {
                    assert!(
                        w.inputs.contains_key(name),
                        "{}: input {name} unbound",
                        w.name
                    );
                }
            }
        }
    }

    #[test]
    fn paper_sizes_match_table4_order_of_magnitude() {
        let ops: HashMap<&str, usize> = suite(Size::Paper)
            .iter()
            .map(|w| (w.name, w.program.num_ops()))
            .collect();
        // Paper Table 4 # Ops: SF 60, HCD 110, LR 123, MR 550, PR 183,
        // MLP 462, Lenet-5 8895, Lenet-C 9845.
        assert!(ops["SF"] < ops["HCD"]);
        assert!(ops["MR"] > ops["LR"]);
        assert!(ops["MLP"] > ops["PR"]);
        assert!(ops["Lenet-5"] > ops["MLP"] * 5);
        assert!(ops["Lenet-C"] > ops["Lenet-5"]);
    }

    #[test]
    fn every_test_workload_plain_executes() {
        for w in suite(Size::Test) {
            let out = fhe_runtime::plain::execute(&w.program, &w.inputs);
            assert!(!out.is_empty(), "{} produced no outputs", w.name);
            for o in &out {
                assert!(
                    o.iter().all(|v| v.is_finite()),
                    "{} non-finite output",
                    w.name
                );
            }
        }
    }
}
