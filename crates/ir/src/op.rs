//! Operations of the RNS-CKKS arithmetic IR.

use std::fmt;
use std::sync::Arc;

use crate::Frac;

/// Identifier of an SSA value (each op defines exactly one value).
///
/// Within a [`Program`](crate::Program), ids are dense indices assigned in
/// topological order: every operand id is smaller than the id of its user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The dense index of this value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A compile-time plaintext constant: either a scalar splatted across all
/// slots or a full vector of slot values.
#[derive(Debug, Clone)]
pub enum ConstValue {
    /// The same real value in every slot.
    Scalar(f64),
    /// One value per slot (shorter vectors are zero-padded at execution).
    Vector(Arc<Vec<f64>>),
}

impl ConstValue {
    /// The value at `slot`, honouring scalar splatting and zero padding.
    pub fn at(&self, slot: usize) -> f64 {
        match self {
            ConstValue::Scalar(v) => *v,
            ConstValue::Vector(v) => v.get(slot).copied().unwrap_or(0.0),
        }
    }

    /// Materializes the constant as a dense vector of `slots` values.
    pub fn to_vec(&self, slots: usize) -> Vec<f64> {
        (0..slots).map(|i| self.at(i)).collect()
    }

    /// An approximate magnitude bound, used by noise accounting.
    pub fn magnitude(&self) -> f64 {
        match self {
            ConstValue::Scalar(v) => v.abs(),
            ConstValue::Vector(v) => v.iter().fold(0.0f64, |a, x| a.max(x.abs())),
        }
    }
}

impl PartialEq for ConstValue {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ConstValue::Scalar(a), ConstValue::Scalar(b)) => a.to_bits() == b.to_bits(),
            (ConstValue::Vector(a), ConstValue::Vector(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            }
            _ => false,
        }
    }
}

impl From<f64> for ConstValue {
    fn from(v: f64) -> Self {
        ConstValue::Scalar(v)
    }
}

impl From<Vec<f64>> for ConstValue {
    fn from(v: Vec<f64>) -> Self {
        ConstValue::Vector(Arc::new(v))
    }
}

/// One IR operation. Arithmetic ops come from the programmer; scale
/// management ops ([`Rescale`](Op::Rescale), [`ModSwitch`](Op::ModSwitch),
/// [`Upscale`](Op::Upscale)) are inserted by a compiler (Table 2).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A ciphertext input with a user-facing name.
    Input {
        /// Name used for binding runtime input data.
        name: String,
    },
    /// A plaintext constant (encoded, never encrypted).
    Const {
        /// The constant slot data.
        value: ConstValue,
    },
    /// Elementwise addition. Cipher+cipher requires equal scale and level.
    Add(ValueId, ValueId),
    /// Elementwise subtraction (same constraints as addition).
    Sub(ValueId, ValueId),
    /// Elementwise multiplication. Cipher×cipher requires equal level and
    /// multiplies scales.
    Mul(ValueId, ValueId),
    /// Elementwise negation.
    Neg(ValueId),
    /// Cyclic slot rotation by the given (possibly negative) offset.
    Rotate(ValueId, i64),
    /// Divides scale and modulus by `R`; decreases level by 1.
    Rescale(ValueId),
    /// Drops one modulus limb without changing the scale; level −1.
    ModSwitch(ValueId),
    /// Multiplies by an encoded identity, raising the scale by the given
    /// number of bits without changing the level.
    Upscale(ValueId, Frac),
}

impl Op {
    /// The operands of this op, in order (empty for `Input`/`Const`).
    pub fn operands(&self) -> OperandIter {
        let (a, b) = match *self {
            Op::Input { .. } | Op::Const { .. } => (None, None),
            Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) => (Some(a), Some(b)),
            Op::Neg(a)
            | Op::Rotate(a, _)
            | Op::Rescale(a)
            | Op::ModSwitch(a)
            | Op::Upscale(a, _) => (Some(a), None),
        };
        OperandIter { a, b }
    }

    /// Rewrites each operand through `f`, returning the rewritten op.
    pub fn map_operands(&self, mut f: impl FnMut(ValueId) -> ValueId) -> Op {
        match self.clone() {
            op @ (Op::Input { .. } | Op::Const { .. }) => op,
            Op::Add(a, b) => Op::Add(f(a), f(b)),
            Op::Sub(a, b) => Op::Sub(f(a), f(b)),
            Op::Mul(a, b) => Op::Mul(f(a), f(b)),
            Op::Neg(a) => Op::Neg(f(a)),
            Op::Rotate(a, k) => Op::Rotate(f(a), k),
            Op::Rescale(a) => Op::Rescale(f(a)),
            Op::ModSwitch(a) => Op::ModSwitch(f(a)),
            Op::Upscale(a, d) => Op::Upscale(f(a), d),
        }
    }

    /// Whether this is one of the three scale-management operations.
    pub fn is_scale_management(&self) -> bool {
        matches!(self, Op::Rescale(_) | Op::ModSwitch(_) | Op::Upscale(..))
    }

    /// Whether this op performs arithmetic visible to the program semantics.
    pub fn is_arithmetic(&self) -> bool {
        matches!(
            self,
            Op::Add(..) | Op::Sub(..) | Op::Mul(..) | Op::Neg(_) | Op::Rotate(..)
        )
    }

    /// A short lowercase mnemonic (used by the printer and diagnostics).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Input { .. } => "input",
            Op::Const { .. } => "const",
            Op::Add(..) => "add",
            Op::Sub(..) => "sub",
            Op::Mul(..) => "mul",
            Op::Neg(_) => "neg",
            Op::Rotate(..) => "rotate",
            Op::Rescale(_) => "rescale",
            Op::ModSwitch(_) => "modswitch",
            Op::Upscale(..) => "upscale",
        }
    }
}

/// Iterator over an op's operands. Created by [`Op::operands`].
#[derive(Debug, Clone)]
pub struct OperandIter {
    a: Option<ValueId>,
    b: Option<ValueId>,
}

impl Iterator for OperandIter {
    type Item = ValueId;
    fn next(&mut self) -> Option<ValueId> {
        self.a.take().or_else(|| self.b.take())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operands_iterate_in_order() {
        let op = Op::Add(ValueId(3), ValueId(7));
        let v: Vec<_> = op.operands().collect();
        assert_eq!(v, vec![ValueId(3), ValueId(7)]);
        assert_eq!(Op::Input { name: "x".into() }.operands().count(), 0);
        assert_eq!(Op::Neg(ValueId(1)).operands().count(), 1);
    }

    #[test]
    fn map_operands_rewrites() {
        let op = Op::Mul(ValueId(1), ValueId(2));
        let mapped = op.map_operands(|v| ValueId(v.0 + 10));
        assert_eq!(mapped, Op::Mul(ValueId(11), ValueId(12)));
        let rot = Op::Rotate(ValueId(0), -3).map_operands(|v| ValueId(v.0 + 1));
        assert_eq!(rot, Op::Rotate(ValueId(1), -3));
    }

    #[test]
    fn classification() {
        assert!(Op::Rescale(ValueId(0)).is_scale_management());
        assert!(!Op::Rescale(ValueId(0)).is_arithmetic());
        assert!(Op::Mul(ValueId(0), ValueId(1)).is_arithmetic());
        assert!(!Op::Input { name: "x".into() }.is_arithmetic());
    }

    #[test]
    fn const_value_access() {
        let s = ConstValue::Scalar(2.5);
        assert_eq!(s.at(0), 2.5);
        assert_eq!(s.at(100), 2.5);
        let v = ConstValue::from(vec![1.0, 2.0]);
        assert_eq!(v.at(1), 2.0);
        assert_eq!(v.at(2), 0.0);
        assert_eq!(v.to_vec(3), vec![1.0, 2.0, 0.0]);
        assert_eq!(v.magnitude(), 2.0);
    }
}
