//! Image-processing benchmarks: Sobel Filter (SF) and Harris Corner
//! Detection (HCD). The paper uses 4096-pixel 64×64 images.

use std::collections::HashMap;

use fhe_ir::{Builder, Program};

use crate::data;
use crate::helpers::{box_sum, conv2d};

const SOBEL_GX: [[f64; 3]; 3] = [[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]];
const SOBEL_GY: [[f64; 3]; 3] = [[-1.0, -2.0, -1.0], [0.0, 0.0, 0.0], [1.0, 2.0, 1.0]];

fn kernel(k: &[[f64; 3]; 3]) -> Vec<Vec<f64>> {
    k.iter().map(|row| row.to_vec()).collect()
}

/// Builds the Sobel Filter benchmark on a `width × width` image:
/// `|∇I|² = Ix² + Iy²` with the two 3×3 Sobel kernels.
pub fn sobel(width: usize) -> Program {
    let slots = width * width;
    let b = Builder::new("sobel", slots);
    let img = b.input("img");
    let ix = conv2d(&b, &img, &kernel(&SOBEL_GX), width, 1);
    let iy = conv2d(&b, &img, &kernel(&SOBEL_GY), width, 1);
    let g = ix.clone() * ix + iy.clone() * iy;
    b.finish(vec![g])
}

/// Builds the Harris Corner Detection benchmark: structure-tensor window
/// sums of the Sobel gradients, response `det(M) − k·trace(M)²`.
pub fn harris(width: usize) -> Program {
    let slots = width * width;
    let b = Builder::new("harris", slots);
    let img = b.input("img");
    let ix = conv2d(&b, &img, &kernel(&SOBEL_GX), width, 1);
    let iy = conv2d(&b, &img, &kernel(&SOBEL_GY), width, 1);
    let ixx = ix.clone() * ix.clone();
    let iyy = iy.clone() * iy.clone();
    let ixy = ix * iy;
    let sxx = box_sum(&ixx, 3, width, 1);
    let syy = box_sum(&iyy, 3, width, 1);
    let sxy = box_sum(&ixy, 3, width, 1);
    let det = sxx.clone() * syy.clone() - sxy.clone() * sxy;
    let trace = sxx + syy;
    let k = b.constant(0.04);
    let response = det - trace.clone() * trace * k;
    b.finish(vec![response])
}

/// Input binding for either image benchmark.
pub fn image_inputs(width: usize, seed: u64) -> HashMap<String, Vec<f64>> {
    let mut m = HashMap::new();
    m.insert("img".to_string(), data::image(width * width, seed));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::analysis;
    use fhe_runtime::plain;

    #[test]
    fn sobel_shape_matches_paper() {
        let p = sobel(64);
        assert_eq!(p.slots(), 4096);
        // Paper Table 4: SF has 60 ops; ours must be in that ballpark.
        assert!(
            (40..=80).contains(&p.num_ops()),
            "sobel has {} ops",
            p.num_ops()
        );
        assert_eq!(analysis::circuit_depth(&p), 2, "conv then square");
    }

    #[test]
    fn harris_shape_matches_paper() {
        let p = harris(64);
        // Paper: HCD has 110 ops, depth 4 (two levels of products).
        assert!(
            (90..=140).contains(&p.num_ops()),
            "harris has {} ops",
            p.num_ops()
        );
        assert_eq!(
            analysis::circuit_depth(&p),
            4,
            "conv, product, response products"
        );
    }

    #[test]
    fn sobel_computes_gradient_magnitude() {
        // A vertical edge: left half 0, right half 1 → interior slots of the
        // edge columns see a strong Ix, zero Iy.
        let width = 8;
        let p = sobel(width);
        let mut img = vec![0.0; 64];
        for r in 0..width {
            for c in 4..width {
                img[r * width + c] = 1.0;
            }
        }
        let mut inputs = HashMap::new();
        inputs.insert("img".to_string(), img);
        let out = plain::execute(&p, &inputs);
        // Pixel (4, 3) is just left of the edge: Ix = ±4, Iy = 0 → 16.
        assert_eq!(out[0][4 * width + 3], 16.0);
        // Deep inside a flat region the gradient is 0.
        assert_eq!(out[0][4 * width + 1], 0.0);
    }

    #[test]
    fn harris_flat_region_has_zero_response() {
        let width = 8;
        let p = harris(width);
        let mut inputs = HashMap::new();
        inputs.insert("img".to_string(), vec![0.3; 64]);
        let out = plain::execute(&p, &inputs);
        for &v in &out[0] {
            assert!(v.abs() < 1e-12, "flat image must have no corners: {v}");
        }
    }
}
