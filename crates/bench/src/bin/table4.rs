//! Table 4: compile time and scale-management time of EVA, Hecate and this
//! work on the eight benchmarks (speedups over Hecate).
//!
//! `--fast` runs reduced benchmark sizes and exploration budgets.

use fhe_bench::{fmt_ms, geomean, hecate_budget, print_table, run_eva, run_hecate, run_reserve, CliArgs};
use reserve_core::Mode;

fn main() {
    let args = CliArgs::parse();
    let waterline = 30;
    let suite = fhe_bench::selected_suite(&args);

    println!("Table 4: Compile time of EVA, Hecate, and this work (W = 2^{waterline}).\n");
    let headers = [
        "Benchmark", "# Ops", "# Iters",
        "EVA (ms)", "Hecate (ms)", "This work (ms)", "Speedup",
        "EVA SM (ms)", "Hecate SM (ms)", "This work SM (ms)", "SM Speedup",
    ];
    let mut rows = Vec::new();
    let mut total_speedups = Vec::new();
    let mut sm_speedups = Vec::new();
    for w in &suite {
        eprintln!("compiling {} ({} ops)...", w.name, w.program.num_ops());
        let budget = hecate_budget(&args, w.program.num_ops());
        let eva = run_eva(&w.program, waterline);
        let hec = run_hecate(&w.program, waterline, budget);
        let ours = run_reserve(&w.program, waterline, Mode::Full);
        let speedup = hec.compile_time.as_secs_f64() / ours.compile_time.as_secs_f64();
        let sm_speedup =
            hec.scale_management.as_secs_f64() / ours.scale_management.as_secs_f64();
        total_speedups.push(speedup);
        sm_speedups.push(sm_speedup);
        rows.push(vec![
            w.name.to_string(),
            w.program.num_ops().to_string(),
            hec.iterations.to_string(),
            fmt_ms(eva.compile_time),
            fmt_ms(hec.compile_time),
            fmt_ms(ours.compile_time),
            format!("{speedup:.2}x"),
            fmt_ms(eva.scale_management),
            fmt_ms(hec.scale_management),
            fmt_ms(ours.scale_management),
            format!("{sm_speedup:.0}x"),
        ]);
    }
    print_table(&headers, &rows);
    println!(
        "\ngeomean speedup over Hecate: total compile {:.2}x, scale management {:.0}x",
        geomean(&total_speedups),
        geomean(&sm_speedups)
    );
    println!("(paper: 24.44x total, 15526x scale management — with 14763-iteration budgets)");
}
