//! Real-encryption integration: compile benchmarks with each compiler and
//! execute them on the `fhe-ckks` backend, checking the decrypted outputs
//! against the plaintext reference.

use fhe_reserve::prelude::*;
use fhe_reserve::{baselines, runtime};
use fhe_reserve::runtime::ExecOptions;

fn exec_opts() -> ExecOptions {
    // 256 slots = N/2 for N = 512: matches the Size::Test LeNet slot count.
    ExecOptions { poly_degree: 256, seed: 99 }
}

fn with_output_reserve(waterline: u32, bits: u32) -> Options {
    let mut o = Options::new(waterline);
    o.params.output_reserve_bits = bits;
    o
}

#[test]
fn encrypted_sobel_matches_reference() {
    // An 8×8 image is 64 slots, so the backend degree is N = 128.
    let program = fhe_reserve::workloads::image::sobel(8);
    let opts = ExecOptions { poly_degree: 128, seed: 1 };
    let inputs = fhe_reserve::workloads::image::image_inputs(8, 5);
    let compiled = compile(&program, &with_output_reserve(30, 4)).unwrap();
    let report = runtime::execute_encrypted(&compiled.scheduled, &inputs, &opts).unwrap();
    assert!(
        report.max_abs_error() < 1e-2,
        "sobel encrypted error {}",
        report.max_abs_error()
    );
}

#[test]
fn encrypted_linear_regression_trains() {
    let n = 128;
    let program = fhe_reserve::workloads::regression::linear(n, 2);
    let inputs = fhe_reserve::workloads::regression::linear_inputs(n, 21);
    let compiled = compile(&program, &with_output_reserve(35, 4)).unwrap();
    let report = runtime::execute_encrypted(&compiled.scheduled, &inputs, &exec_opts()).unwrap();
    assert!(
        report.max_abs_error() < 1e-2,
        "regression encrypted error {}",
        report.max_abs_error()
    );
    // The decrypted weight must match the plaintext-trained weight.
    assert!((report.outputs[0][0] - report.reference[0][0]).abs() < 1e-2);
    assert!(report.reference[0][0] > 0.0, "training moved the weight");
}

#[test]
fn encrypted_execution_agrees_across_compilers() {
    // The same program compiled by EVA, Hecate, and the reserve compiler
    // must decrypt to the same values (modulo noise).
    let n = 128;
    let program = fhe_reserve::workloads::mlp::mlp(n, 4, 3);
    let inputs = fhe_reserve::workloads::mlp::mlp_inputs(n, 3);
    let params = CompileParams::new(30);

    let eva = baselines::eva::compile(&program, &params).unwrap().scheduled;
    let hec = baselines::hecate::compile(
        &program,
        &params,
        &baselines::HecateOptions {
            max_iterations: 60,
            patience: 60,
            seed: 2,
            max_choice: baselines::ForwardPlan::MAX_CHOICE,
        },
    )
    .unwrap()
    .scheduled;
    let ours = compile(&program, &with_output_reserve(30, 2)).unwrap().scheduled;

    let mut outs = Vec::new();
    for s in [&eva, &hec, &ours] {
        let report = runtime::execute_encrypted(s, &inputs, &exec_opts()).unwrap();
        assert!(report.max_abs_error() < 1e-2, "error {}", report.max_abs_error());
        outs.push(report.outputs[0].clone());
    }
    for i in (0..n).step_by(17) {
        assert!((outs[0][i] - outs[1][i]).abs() < 1e-2);
        assert!((outs[0][i] - outs[2][i]).abs() < 1e-2);
    }
}

#[test]
fn encrypted_tiny_lenet_runs_all_eleven_levels() {
    let cfg = fhe_reserve::workloads::lenet::LenetConfig::tiny(128);
    let program = fhe_reserve::workloads::lenet::build(&cfg);
    let inputs = fhe_reserve::workloads::lenet::lenet_inputs(&cfg, 13);
    // Depth 11 with a large waterline keeps levels deep — the heaviest
    // encrypted test in the suite.
    let compiled = compile(&program, &with_output_reserve(30, 4)).unwrap();
    let opts = ExecOptions { poly_degree: 256, seed: 4 };
    let report = runtime::execute_encrypted(&compiled.scheduled, &inputs, &opts).unwrap();
    assert!(
        report.max_abs_error() < 0.05,
        "lenet encrypted error {}",
        report.max_abs_error()
    );
    assert!(report.ops_executed > 100);
}
