//! The EVA baseline: conservative forward static scale analysis
//! (Dathathri et al., PLDI'20, as summarized in the paper's §3.1).

use std::time::Instant;

use fhe_ir::{passes, CompileParams, CostModel, Program};

use crate::forward::{legalize, ForwardPlan, LegalizeError};
use crate::{BaselineCompiled, BaselineStats};

/// Compiles with EVA's waterline-driven forward analysis.
///
/// # Errors
///
/// Fails when the program's accumulated scale requires more levels than
/// `params.max_level`.
pub fn compile(program: &Program, params: &CompileParams) -> Result<BaselineCompiled, LegalizeError> {
    let t_total = Instant::now();
    let cleaned = passes::cleanup(program);
    let t_sm = Instant::now();
    let scheduled = legalize(&cleaned, params, &ForwardPlan::empty(cleaned.num_ops()))?;
    let scale_management_time = t_sm.elapsed();
    let map = scheduled.validate().expect("EVA schedules are legal by construction");
    let estimated_latency_us = CostModel::paper_table3().program_cost(&scheduled.program, &map);
    Ok(BaselineCompiled {
        scheduled,
        stats: BaselineStats {
            scale_management_time,
            total_time: t_total.elapsed(),
            iterations: 1,
            estimated_latency_us,
            max_level: map.max_level(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::Builder;

    #[test]
    fn eva_compiles_and_validates() {
        let b = Builder::new("t", 8);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        let p = b.finish(vec![q]);
        let out = compile(&p, &CompileParams::new(20)).unwrap();
        assert_eq!(out.stats.max_level, 2);
        assert!(out.stats.estimated_latency_us > 0.0);
        assert_eq!(out.stats.iterations, 1);
    }
}
