//! `fhe-conc`: an in-tree deterministic-interleaving model checker for the
//! workspace's synchronization protocols, in the spirit of loom/shuttle
//! (crates.io is unavailable offline, so the checker is built in-tree).
//!
//! # Two build modes
//!
//! The crate compiles in one of two modes, selected by the custom
//! `--cfg fhe_conc` flag (set via `RUSTFLAGS="--cfg fhe_conc"`):
//!
//! * **std mode** (`cfg(not(fhe_conc))`, the default): [`sync`] is a set of
//!   zero-cost re-exports of `std::sync` / `std::thread`. Production builds
//!   pay nothing — the facade compiles away entirely. [`model`] and
//!   [`check`] run the model closure **once** with real threads
//!   (*passthrough*), so doc-examples and smoke tests exercise the entry
//!   points in ordinary `cargo test` runs.
//! * **checker mode** (`cfg(fhe_conc)`): every type in [`sync`] is a shim
//!   whose operations are *schedule points* — the calling thread parks and a
//!   controlling scheduler decides which thread runs next, exploring
//!   interleavings across repeated executions of the model closure:
//!   bounded-exhaustive DFS with DPOR-style sleep-set reduction for small
//!   models, and seeded PCT randomized-priority scheduling for larger ones,
//!   with deadlock detection, lost-wakeup classification for condvars and a
//!   numbered counterexample trace on failure.
//!
//! # What the checker models (and what it weakens)
//!
//! See [`sync`] for the precise memory-model contract. In short: the
//! checker explores *interleavings* under sequential consistency — every
//! atomic executes with SeqCst-equivalent visibility regardless of the
//! `Ordering` argument, so `SeqCst`/`AcqRel`/`Acquire`/`Release` protocols
//! are modeled faithfully (their bugs are interleaving bugs) while bugs
//! that *require* weak-memory reordering of `Relaxed` accesses are out of
//! scope. Condvars never wake spuriously under the checker (protocols must
//! still use `while` loops — std may wake spuriously), and `notify_one`
//! wakes the longest-waiting thread (FIFO).
//!
//! # Writing a model
//!
//! A model is a closure that builds its state *inside* the closure (fresh
//! per execution), spawns threads through [`sync::thread`], joins or
//! otherwise terminates every thread it spawns, and asserts its invariants
//! with ordinary `assert!`. See [`model`] for a runnable example and
//! DESIGN.md §13 for the full guide.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod sync;

#[cfg(fhe_conc)]
mod engine;
#[cfg(fhe_conc)]
mod shim;

use std::fmt;

/// How the scheduler explores interleavings.
#[derive(Debug, Clone)]
pub enum Mode {
    /// Depth-first enumeration of all schedules, bounded by a preemption
    /// budget and an execution cap, with sleep-set pruning of redundant
    /// reorderings of independent operations. For small protocol models.
    Exhaustive {
        /// Stop after this many executions even if un-explored schedules
        /// remain ([`ModelOutcome::complete`] reports whether the search
        /// finished).
        max_executions: u64,
        /// Maximum number of *preemptive* context switches per schedule
        /// (switching away from a thread that could have continued);
        /// forced switches — the running thread blocked or finished — are
        /// free. `None` removes the bound. Empirically almost all real
        /// concurrency bugs manifest within 2–3 preemptions (CHESS).
        preemption_bound: Option<usize>,
    },
    /// Probabilistic concurrency testing: each execution assigns random
    /// per-thread priorities from a seeded RNG, runs the highest-priority
    /// enabled thread, and demotes the front-runner at `depth - 1` random
    /// change points. For models too large to enumerate (the real pool,
    /// cache and serve protocols).
    Pct {
        /// Base RNG seed; execution `i` derives its schedule from
        /// `seed + i`, so a failing seed replays exactly.
        seed: u64,
        /// Number of randomized executions.
        executions: u64,
        /// PCT depth `d`: schedules with up to `d - 1` priority-change
        /// points are covered.
        depth: usize,
    },
}

/// Scheduler configuration for [`check`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Exploration strategy.
    pub mode: Mode,
    /// Per-execution step budget: an execution exceeding this many
    /// schedule points fails as a suspected livelock.
    pub max_steps: usize,
}

impl Config {
    /// Bounded-exhaustive DFS defaults: up to 100 000 executions, at most
    /// 3 preemptions per schedule, 20 000 steps per execution.
    pub fn exhaustive() -> Config {
        Config {
            mode: Mode::Exhaustive {
                max_executions: 100_000,
                preemption_bound: Some(3),
            },
            max_steps: 20_000,
        }
    }

    /// PCT defaults for a given seed/iteration budget (depth 3).
    pub fn pct(seed: u64, executions: u64) -> Config {
        Config {
            mode: Mode::Pct {
                seed,
                executions,
                depth: 3,
            },
            max_steps: 200_000,
        }
    }
}

/// One executed schedule point in a counterexample trace.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// Model-thread id (0 is the model closure itself).
    pub tid: usize,
    /// Thread name (`t{tid}` unless the spawner named it).
    pub thread: String,
    /// Human-readable operation, e.g. `lock m0` or `wait c1 (releases m0)`.
    pub op: String,
    /// `file:line` of the synchronization call.
    pub location: String,
}

/// Why a model failed.
#[derive(Debug, Clone)]
pub enum FailureKind {
    /// A model thread panicked (failed assertion or explicit panic).
    Panic,
    /// No runnable thread remained while some thread was still blocked.
    Deadlock {
        /// `true` when every blocked thread was parked in a condvar wait —
        /// the signature of a lost wakeup (a notify that raced ahead of
        /// the wait it was meant to release).
        lost_wakeup: bool,
    },
    /// An execution exceeded [`Config::max_steps`] — suspected livelock.
    StepBoundExceeded,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Panic => write!(f, "panic"),
            FailureKind::Deadlock { lost_wakeup: true } => write!(f, "deadlock (lost wakeup)"),
            FailureKind::Deadlock { lost_wakeup: false } => write!(f, "deadlock"),
            FailureKind::StepBoundExceeded => write!(f, "step bound exceeded"),
        }
    }
}

/// A failing schedule: what went wrong plus the numbered interleaving that
/// triggered it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Failure class.
    pub kind: FailureKind,
    /// Panic message / deadlock description.
    pub message: String,
    /// The schedule that produced the failure, in execution order.
    pub trace: Vec<TraceStep>,
}

impl Failure {
    /// Renders the failure as a numbered step listing (the last 200 steps
    /// for very long schedules).
    pub fn render(&self) -> String {
        let mut out = format!("model failure: {}\n  {}\n", self.kind, self.message);
        let skip = self.trace.len().saturating_sub(200);
        if skip > 0 {
            out.push_str(&format!("  … {skip} earlier steps elided …\n"));
        }
        for (i, step) in self.trace.iter().enumerate().skip(skip) {
            out.push_str(&format!(
                "  #{:<4} [t{} {}] {} @ {}\n",
                i, step.tid, step.thread, step.op, step.location
            ));
        }
        out
    }
}

/// The result of checking one model.
#[derive(Debug, Clone)]
pub struct ModelOutcome {
    /// Model name (as passed to [`check`]).
    pub name: String,
    /// Interleavings executed to completion (including a failing one).
    pub executions: u64,
    /// Executions cut short by sleep-set pruning (their continuations are
    /// covered by an explored sibling schedule).
    pub pruned: u64,
    /// `true` when an exhaustive search enumerated every schedule within
    /// its preemption bound (always `false` for PCT and passthrough).
    pub complete: bool,
    /// The first failing schedule, if any.
    pub failure: Option<Failure>,
}

impl ModelOutcome {
    /// `true` when no failing schedule was found.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// One model's row in a [`ConcReport`].
#[derive(Debug, Clone)]
pub struct ModelRecord {
    /// Model name.
    pub name: String,
    /// `"exhaustive"`, `"pct"` or `"passthrough"`.
    pub mode: String,
    /// Interleavings executed.
    pub executions: u64,
    /// Sleep-set-pruned executions.
    pub pruned: u64,
    /// Whether the exhaustive search completed.
    pub complete: bool,
    /// Whether the model passed.
    pub passed: bool,
    /// Wall-clock milliseconds spent checking.
    pub wall_ms: u64,
}

/// Machine-readable summary of a model-checking run, emitted by the
/// `conc_smoke` binary as `--json` and referenced from the lint-registry
/// docs alongside the F001–F009 static findings.
#[derive(Debug, Clone, Default)]
pub struct ConcReport {
    /// `true` when the binary was built with `--cfg fhe_conc` (schedules
    /// were actually explored rather than run once in passthrough).
    pub checker_enabled: bool,
    /// Per-model results.
    pub models: Vec<ModelRecord>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl ConcReport {
    /// Total interleavings explored across all models.
    pub fn total_executions(&self) -> u64 {
        self.models.iter().map(|m| m.executions).sum()
    }

    /// `true` when every model passed.
    pub fn all_passed(&self) -> bool {
        self.models.iter().all(|m| m.passed)
    }

    /// Serializes the report as JSON (hand-rolled; the workspace has no
    /// serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"checker_enabled\": {},\n  \"models_total\": {},\n  \"models_passed\": {},\n  \"interleavings_total\": {},\n  \"models\": [\n",
            self.checker_enabled,
            self.models.len(),
            self.models.iter().filter(|m| m.passed).count(),
            self.total_executions(),
        ));
        for (i, m) in self.models.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"mode\": \"{}\", \"executions\": {}, \"pruned\": {}, \"complete\": {}, \"passed\": {}, \"wall_ms\": {}}}{}\n",
                json_escape(&m.name),
                json_escape(&m.mode),
                m.executions,
                m.pruned,
                m.complete,
                m.passed,
                m.wall_ms,
                if i + 1 == self.models.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl Mode {
    /// `"exhaustive"` or `"pct"` — the [`ModelRecord::mode`] string
    /// (std-mode passthrough runs report `"passthrough"` instead).
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Exhaustive { .. } => "exhaustive",
            Mode::Pct { .. } => "pct",
        }
    }
}

/// Checks `model` under `config` and returns the outcome without
/// panicking. In std builds this runs the closure once with real threads
/// (passthrough) and reports one execution.
///
/// On failure, if the `FHE_CONC_TRACE_DIR` environment variable is set the
/// rendered counterexample is additionally written to
/// `$FHE_CONC_TRACE_DIR/<name>.trace.txt` (CI uploads these as artifacts).
pub fn check<F>(name: &str, config: Config, model: F) -> ModelOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let outcome = check_inner(name, &config, model);
    if let Some(failure) = &outcome.failure {
        if let Ok(dir) = std::env::var("FHE_CONC_TRACE_DIR") {
            if !dir.is_empty() {
                let _ = std::fs::create_dir_all(&dir);
                let path = std::path::Path::new(&dir).join(format!("{name}.trace.txt"));
                let _ = std::fs::write(path, failure.render());
            }
        }
    }
    outcome
}

#[cfg(fhe_conc)]
fn check_inner<F>(name: &str, config: &Config, model: F) -> ModelOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    engine::check_model(name, config, std::sync::Arc::new(model))
}

#[cfg(not(fhe_conc))]
fn check_inner<F>(name: &str, _config: &Config, model: F) -> ModelOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    // Passthrough: one real-threaded execution, so std-mode test runs
    // still drive the model end to end.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&model));
    ModelOutcome {
        name: name.to_string(),
        executions: 1,
        pruned: 0,
        complete: false,
        failure: result.err().map(|payload| Failure {
            kind: FailureKind::Panic,
            message: panic_message(&*payload),
            trace: Vec::new(),
        }),
    }
}

/// Best-effort string form of a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Explores every interleaving of `model` under the default
/// [`Config::exhaustive`] bounds and panics with a numbered
/// counterexample trace if any schedule fails. In std builds (no
/// `--cfg fhe_conc`) the model runs once with real threads.
///
/// ```
/// use fhe_conc::sync::{thread, Arc, Mutex};
///
/// // Two racing increments through a mutex: every interleaving sums to 2.
/// fhe_conc::model(|| {
///     let n = Arc::new(Mutex::new(0u32));
///     let n2 = Arc::clone(&n);
///     let t = thread::spawn(move || *n2.lock().unwrap() += 1);
///     *n.lock().unwrap() += 1;
///     t.join().unwrap();
///     assert_eq!(*n.lock().unwrap(), 2);
/// });
/// ```
pub fn model<F>(model: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let outcome = check("model", Config::exhaustive(), model);
    if let Some(failure) = outcome.failure {
        panic!("{}", failure.render());
    }
}

/// A small stable id for the calling thread.
///
/// Under the checker this is the model-thread id (deterministic across
/// replays of a schedule — `0` for the model closure, then spawn order),
/// which is what makes per-thread sharding decisions like the poly-pool's
/// home shard replay-stable. In std builds it is an arbitrary but fixed
/// per-thread counter.
pub fn current_thread_id() -> usize {
    #[cfg(fhe_conc)]
    {
        if let Some(tid) = engine::model_thread_id() {
            return tid;
        }
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static ID: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}
