//! Fig. 8: performance breakdown of the proposed algorithms — BA (backward
//! analysis only), RA (+ reserve redistribution), and this work (+ rescale
//! hoisting) — normalized by BA, at waterlines 2^20 and 2^40.
//!
//! Expected shape (paper §8.3): redistribution (RA) helps benchmarks with
//! ciphertext×ciphertext products of *distinct* values (it cannot help
//! squarings, the bulk of the DL benchmarks); hoisting helps benchmarks
//! with external summations (image kernels, NNs) and not the rotation-heavy
//! internal summations of the regressions.

use fhe_bench::{geomean, print_table, run_reserve, CliArgs};
use reserve_core::Mode;

fn main() {
    let args = CliArgs::parse();
    let suite = fhe_bench::selected_suite(&args);

    for waterline in [20u32, 40] {
        println!("Fig. 8{}: latency normalized by BA, waterline 2^{waterline}.\n",
            if waterline == 20 { "a" } else { "b" });
        let headers = ["Benchmark", "BA", "RA", "This work"];
        let mut rows = Vec::new();
        let mut ra_ratios = Vec::new();
        let mut full_ratios = Vec::new();
        for w in &suite {
            eprintln!("ablating {} at W=2^{waterline} ...", w.name);
            let ba = run_reserve(&w.program, waterline, Mode::Ba);
            let ra = run_reserve(&w.program, waterline, Mode::Ra);
            let full = run_reserve(&w.program, waterline, Mode::Full);
            let r_ra = ra.latency_us / ba.latency_us;
            let r_full = full.latency_us / ba.latency_us;
            ra_ratios.push(r_ra);
            full_ratios.push(r_full);
            rows.push(vec![
                w.name.to_string(),
                "1.000".to_string(),
                format!("{r_ra:.3}"),
                format!("{r_full:.3}"),
            ]);
        }
        rows.push(vec![
            "GMean".to_string(),
            "1.000".to_string(),
            format!("{:.3}", geomean(&ra_ratios)),
            format!("{:.3}", geomean(&full_ratios)),
        ]);
        print_table(&headers, &rows);
        println!();
    }
    println!("(paper: RA and this work achieve 9.1%/11.6% speedup over BA at W=2^20");
    println!(" and 7.4%/19.6% at W=2^40)");
}
