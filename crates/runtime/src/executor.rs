//! The unified [`Executor`] interface over the three ways this workspace
//! runs a scheduled program: exact plaintext reference ([`PlainExec`]),
//! noise-injecting simulation ([`NoiseSimExec`]) and real encrypted
//! execution ([`CkksExec`]).
//!
//! Every executor returns the same [`Execution`] artifact — outputs, the
//! plaintext reference, and an [`ExecTrace`] with per-op-class timing — so
//! tests and benches compare backends without per-backend plumbing. The
//! output-diff checks ([`max_abs_diff`], [`outputs_close`]) are the shared
//! correctness oracle between encrypted and plain runs.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use fhe_ir::{CostModel, OpClass, ScheduleError, ScheduledProgram};

use crate::ckks_exec::{self, ExecOptions};
use crate::noise_sim::{self, NoiseModel};
use crate::par_exec::{self, ParOptions};
use crate::plain;

/// Memory counters of one execution (encrypted backend only; the
/// plaintext backends report zeros). Byte figures cover the backend's
/// polynomial pool (live ciphertexts + pooled temporaries + adopted
/// encryptions) plus key material; encoder scratch is excluded on both the
/// measured and the static side, so the compiler's static bound remains
/// comparable.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemStats {
    /// High-water mark of polynomial + key bytes.
    pub peak_bytes: u64,
    /// Polynomial + key bytes live at the end of the window.
    pub live_bytes: u64,
    /// Fresh limb-buffer allocations (pool misses + adopted encryptions).
    pub allocations: u64,
    /// Pool checkouts served from the free list.
    pub pool_hits: u64,
    /// Pool checkouts that allocated.
    pub pool_misses: u64,
    /// Galois-key lookups served from the static set or cache.
    pub key_hits: u64,
    /// Galois-key lookups that generated a key on demand.
    pub key_misses: u64,
    /// Galois keys evicted under the cache's byte budget.
    pub key_evictions: u64,
    /// High-water mark of Galois-key bytes (cached or static set).
    pub key_bytes_peak: u64,
}

impl MemStats {
    /// Fraction of pool checkouts served from the free list (0 when idle).
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }

    /// The per-window view of a later snapshot against `start`: monotone
    /// counters (`allocations`, `pool_*`, `key_hits/misses/evictions`)
    /// become deltas, byte figures (`peak_bytes`, `live_bytes`,
    /// `key_bytes_peak`) keep this snapshot's absolute values. This is how
    /// a request executing against a shared pool/cache reports *its own*
    /// traffic while the global counters stay exact — summing the deltas
    /// of serially executed requests reconstructs the global counters.
    pub fn delta_since(&self, start: &MemStats) -> MemStats {
        MemStats {
            peak_bytes: self.peak_bytes,
            live_bytes: self.live_bytes,
            allocations: self.allocations - start.allocations,
            pool_hits: self.pool_hits - start.pool_hits,
            pool_misses: self.pool_misses - start.pool_misses,
            key_hits: self.key_hits - start.key_hits,
            key_misses: self.key_misses - start.key_misses,
            key_evictions: self.key_evictions - start.key_evictions,
            key_bytes_peak: self.key_bytes_peak,
        }
    }
}

/// Timing breakdown of one execution.
#[derive(Debug, Clone, Default)]
pub struct ExecTrace {
    /// End-to-end wall time (for [`CkksExec`]: including keygen, encryption
    /// and decryption).
    pub total_time: Duration,
    /// Wall time spent in program operations proper.
    pub op_time: Duration,
    /// Number of (cipher) ops executed.
    pub ops_executed: usize,
    /// Wall time and op count per Table 3 op class. Durations are measured
    /// per op only on the encrypted backend; the plaintext backends report
    /// counts with zero durations (their per-op cost is not meaningful).
    pub per_class: Vec<(OpClass, Duration, usize)>,
    /// Whole-run memory counters (encrypted backend; zeros elsewhere).
    pub mem: MemStats,
    /// Per-op-class memory counters: counter fields are summed deltas over
    /// the class's ops, byte peaks are the high-water mark observed at the
    /// end of any op of the class.
    pub per_class_mem: Vec<(OpClass, MemStats)>,
}

/// Result of running a scheduled program through any [`Executor`].
#[derive(Debug, Clone)]
pub struct Execution {
    /// The executor's outputs (decrypted, for the encrypted backend).
    pub outputs: Vec<Vec<f64>>,
    /// Exact plaintext reference outputs for the same inputs.
    pub reference: Vec<Vec<f64>>,
    /// Timing breakdown.
    pub trace: ExecTrace,
}

impl Execution {
    /// Maximum absolute slot error vs the plaintext reference.
    pub fn max_abs_error(&self) -> f64 {
        max_abs_diff(&self.outputs, &self.reference)
    }

    /// log₂ of the maximum absolute error (Fig. 7's "Error(Log)" axis).
    pub fn log2_error(&self) -> f64 {
        self.max_abs_error().max(f64::MIN_POSITIVE).log2()
    }
}

/// A way to run a [`ScheduledProgram`] on named inputs.
pub trait Executor {
    /// Display name ("plain", "noise-sim", "ckks").
    fn name(&self) -> &str;

    /// Executes `scheduled` on `inputs` (one vector per program input,
    /// padded/truncated to the slot count).
    ///
    /// # Errors
    ///
    /// Returns the schedule's validation errors if it is illegal.
    fn execute(
        &self,
        scheduled: &ScheduledProgram,
        inputs: &HashMap<String, Vec<f64>>,
    ) -> Result<Execution, Vec<ScheduleError>>;
}

/// Maximum absolute slot difference between two output sets.
///
/// # Panics
///
/// Panics if the two sets disagree in shape — that is itself a diff worth
/// failing loudly on.
pub fn max_abs_diff(actual: &[Vec<f64>], expected: &[Vec<f64>]) -> f64 {
    assert_eq!(actual.len(), expected.len(), "output count mismatch");
    actual
        .iter()
        .zip(expected)
        .flat_map(|(a, e)| {
            assert_eq!(a.len(), e.len(), "output width mismatch");
            a.iter().zip(e).map(|(x, y)| (x - y).abs())
        })
        .fold(0.0, f64::max)
}

/// The shared encrypted/plain output-diff check: `Ok` when every slot of
/// `actual` is within `tol` of `expected`.
///
/// # Errors
///
/// Returns a human-readable description of the worst offending slot.
pub fn outputs_close(actual: &[Vec<f64>], expected: &[Vec<f64>], tol: f64) -> Result<(), String> {
    let worst = max_abs_diff(actual, expected);
    if worst <= tol {
        Ok(())
    } else {
        Err(format!(
            "outputs differ: max |Δ| = {worst:.3e} > tolerance {tol:.3e}"
        ))
    }
}

/// Per-class op counts of the live cipher ops (zero durations — used by the
/// backends that do not time individual ops).
fn class_counts(scheduled: &ScheduledProgram) -> Vec<(OpClass, Duration, usize)> {
    let program = &scheduled.program;
    let live = fhe_ir::analysis::live(program);
    let mut counts = [0usize; OpClass::ALL.len()];
    for id in program.ids() {
        if !live[id.index()] {
            continue;
        }
        if let Some(class) = CostModel::classify(program, id) {
            let slot = OpClass::ALL
                .iter()
                .position(|c| *c == class)
                .expect("class in ALL");
            counts[slot] += 1;
        }
    }
    OpClass::ALL
        .iter()
        .zip(counts)
        .filter(|(_, n)| *n > 0)
        .map(|(&c, n)| (c, Duration::ZERO, n))
        .collect()
}

/// Exact plaintext reference execution (the semantics oracle).
#[derive(Debug, Clone, Copy, Default)]
pub struct PlainExec;

impl Executor for PlainExec {
    fn name(&self) -> &str {
        "plain"
    }

    fn execute(
        &self,
        scheduled: &ScheduledProgram,
        inputs: &HashMap<String, Vec<f64>>,
    ) -> Result<Execution, Vec<ScheduleError>> {
        scheduled.validate()?;
        let t0 = Instant::now();
        let outputs = plain::execute(&scheduled.program, inputs);
        let wall = t0.elapsed();
        let per_class = class_counts(scheduled);
        let ops_executed = per_class.iter().map(|&(_, _, n)| n).sum();
        Ok(Execution {
            reference: outputs.clone(),
            outputs,
            trace: ExecTrace {
                total_time: wall,
                op_time: wall,
                ops_executed,
                per_class,
                ..ExecTrace::default()
            },
        })
    }
}

/// Plaintext execution with the scheme's scale-dependent noise injected
/// per op (drives the paper's Fig. 7 error comparison).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoiseSimExec {
    /// Noise magnitude and seed.
    pub model: NoiseModel,
}

impl Executor for NoiseSimExec {
    fn name(&self) -> &str {
        "noise-sim"
    }

    fn execute(
        &self,
        scheduled: &ScheduledProgram,
        inputs: &HashMap<String, Vec<f64>>,
    ) -> Result<Execution, Vec<ScheduleError>> {
        let t0 = Instant::now();
        let run = noise_sim::simulate(scheduled, inputs, &self.model)?;
        let wall = t0.elapsed();
        let per_class = class_counts(scheduled);
        let ops_executed = per_class.iter().map(|&(_, _, n)| n).sum();
        Ok(Execution {
            outputs: run.outputs,
            reference: run.reference,
            trace: ExecTrace {
                total_time: wall,
                op_time: wall,
                ops_executed,
                per_class,
                ..ExecTrace::default()
            },
        })
    }
}

/// Real encrypted execution on the `fhe-ckks` backend, with per-op-class
/// wall-clock timing.
#[derive(Debug, Clone, Default)]
pub struct CkksExec {
    /// Backend configuration (polynomial degree, seed).
    pub options: ExecOptions,
}

impl Executor for CkksExec {
    fn name(&self) -> &str {
        "ckks"
    }

    fn execute(
        &self,
        scheduled: &ScheduledProgram,
        inputs: &HashMap<String, Vec<f64>>,
    ) -> Result<Execution, Vec<ScheduleError>> {
        let report = ckks_exec::execute(scheduled, inputs, &self.options)?;
        Ok(Execution {
            outputs: report.outputs,
            reference: report.reference,
            trace: ExecTrace {
                total_time: report.total_time,
                op_time: report.op_time,
                ops_executed: report.ops_executed,
                per_class: report.per_class,
                mem: report.mem,
                per_class_mem: report.per_class_mem,
            },
        })
    }
}

/// Real encrypted execution through the DAG-parallel executor
/// ([`par_exec`]): op-level parallelism on the persistent work-stealing
/// pool, with fused mul·relin·rescale and hoisted rotations. Outputs are
/// byte-identical to [`CkksExec`] at the same backend options.
#[derive(Debug, Clone, Default)]
pub struct ParCkksExec {
    /// Backend + walk configuration (workers, fusion toggle).
    pub options: ParOptions,
}

impl Executor for ParCkksExec {
    fn name(&self) -> &str {
        "ckks-par"
    }

    fn execute(
        &self,
        scheduled: &ScheduledProgram,
        inputs: &HashMap<String, Vec<f64>>,
    ) -> Result<Execution, Vec<ScheduleError>> {
        let report = par_exec::execute_parallel(scheduled, inputs, &self.options)?;
        Ok(Execution {
            outputs: report.outputs,
            reference: report.reference,
            trace: ExecTrace {
                total_time: report.total_time,
                op_time: report.op_time,
                ops_executed: report.ops_executed,
                per_class: report.per_class,
                mem: report.mem,
                // Per-class memory attribution diffs whole-pool snapshots
                // between consecutive ops — meaningless under concurrent
                // runners, so the parallel backend reports none.
                per_class_mem: Vec::new(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::Builder;
    use reserve_core::Options;

    fn inputs(pairs: &[(&str, Vec<f64>)]) -> HashMap<String, Vec<f64>> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    fn fig2a_scheduled(slots: usize) -> ScheduledProgram {
        let b = Builder::new("fig2a", slots);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        let p = b.finish(vec![q]);
        reserve_core::compile(&p, &Options::new(30))
            .unwrap()
            .scheduled
    }

    #[test]
    fn plain_executor_is_exact() {
        let s = fig2a_scheduled(8);
        let binds = inputs(&[("x", vec![0.5; 8]), ("y", vec![0.25; 8])]);
        let run = PlainExec.execute(&s, &binds).unwrap();
        assert_eq!(run.max_abs_error(), 0.0);
        assert!(run.trace.ops_executed > 0);
        assert!(run
            .trace
            .per_class
            .iter()
            .any(|&(c, _, n)| c == OpClass::MulCipher && n > 0));
    }

    #[test]
    fn noise_sim_executor_is_close_but_not_exact() {
        let s = fig2a_scheduled(8);
        let binds = inputs(&[("x", vec![0.5; 8]), ("y", vec![0.25; 8])]);
        let run = NoiseSimExec::default().execute(&s, &binds).unwrap();
        assert!(run.max_abs_error() > 0.0);
        assert!(outputs_close(&run.outputs, &run.reference, 1e-2).is_ok());
    }

    #[test]
    fn all_executors_agree_through_the_shared_diff_check() {
        let s = fig2a_scheduled(128);
        let xs: Vec<f64> = (0..128).map(|i| ((i % 5) as f64 - 2.0) * 0.3).collect();
        let ys: Vec<f64> = (0..128).map(|i| ((i % 7) as f64) * 0.1).collect();
        let binds = inputs(&[("x", xs), ("y", ys)]);
        let executors: Vec<Box<dyn Executor>> = vec![
            Box::new(PlainExec),
            Box::new(NoiseSimExec::default()),
            Box::new(CkksExec {
                options: ExecOptions {
                    poly_degree: 256,
                    seed: 3,
                    threads: 1,
                    ..ExecOptions::default()
                },
            }),
        ];
        for ex in &executors {
            let run = ex.execute(&s, &binds).unwrap();
            outputs_close(&run.outputs, &run.reference, 1e-2)
                .unwrap_or_else(|e| panic!("{}: {e}", ex.name()));
        }
    }

    #[test]
    fn ckks_executor_times_per_class() {
        let s = fig2a_scheduled(128);
        let binds = inputs(&[("x", vec![0.5; 128]), ("y", vec![0.25; 128])]);
        let run = CkksExec {
            options: ExecOptions {
                poly_degree: 256,
                seed: 3,
                threads: 1,
                ..ExecOptions::default()
            },
        }
        .execute(&s, &binds)
        .unwrap();
        let timed: Duration = run.trace.per_class.iter().map(|&(_, d, _)| d).sum();
        assert!(timed > Duration::ZERO);
        assert!(timed <= run.trace.op_time);
        // Memory accounting is live on the encrypted backend: a nonzero
        // peak, recycled buffers producing pool hits, and per-class stats
        // covering the timed classes.
        assert!(run.trace.mem.peak_bytes > 0);
        assert!(run.trace.mem.pool_hit_rate() > 0.0);
        assert_eq!(run.trace.per_class_mem.len(), run.trace.per_class.len());
    }

    #[test]
    fn per_class_mem_counters_sum_to_the_global_trace() {
        // Rotate-heavy program: four distinct steps drive the lazy
        // Galois-key cache, and the mul/rescale churn exercises the pool.
        let b = Builder::new("rotsum", 64);
        let x = b.input("x");
        let y = b.input("y");
        let mut acc = x.clone() * y.clone();
        for k in [1i64, 2, 4, 8] {
            acc = acc.rotate(k) + x.clone().rotate(-k) * y.clone();
        }
        let p = b.finish(vec![acc]);
        let s = reserve_core::compile(&p, &Options::new(30))
            .unwrap()
            .scheduled;
        let xs: Vec<f64> = (0..64).map(|i| ((i % 5) as f64 - 2.0) * 0.2).collect();
        let ys: Vec<f64> = (0..64).map(|i| ((i % 3) as f64) * 0.3).collect();
        let run = CkksExec {
            options: ExecOptions {
                poly_degree: 128,
                seed: 9,
                threads: 1,
                ..ExecOptions::default()
            },
        }
        .execute(&s, &inputs(&[("x", xs), ("y", ys)]))
        .unwrap();
        let t = &run.trace;
        assert!(t
            .per_class_mem
            .iter()
            .any(|&(c, m)| c == OpClass::Rotate && m.key_hits + m.key_misses > 0));
        // Counter fields are deltas attributed to the executing op, so the
        // per-class totals must reconstruct the whole-run counters exactly.
        let sum = |f: fn(&MemStats) -> u64| t.per_class_mem.iter().map(|(_, m)| f(m)).sum::<u64>();
        assert_eq!(sum(|m| m.pool_hits), t.mem.pool_hits);
        assert_eq!(sum(|m| m.pool_misses), t.mem.pool_misses);
        assert_eq!(sum(|m| m.key_hits), t.mem.key_hits);
        assert_eq!(sum(|m| m.key_misses), t.mem.key_misses);
        assert_eq!(sum(|m| m.key_evictions), t.mem.key_evictions);
        // Fresh input encryptions adopt buffers outside any op class, so
        // the global allocation count strictly exceeds the per-class sum.
        assert!(sum(|m| m.allocations) < t.mem.allocations);
        // Byte fields are high-water marks, bounded by the run's peak.
        for &(class, m) in &t.per_class_mem {
            assert!(m.peak_bytes <= t.mem.peak_bytes, "{class:?}");
            assert!(m.live_bytes <= m.peak_bytes, "{class:?}");
            assert!(m.key_bytes_peak <= t.mem.key_bytes_peak, "{class:?}");
        }
    }

    #[test]
    fn diff_check_reports_the_gap() {
        let err = outputs_close(&[vec![1.0, 2.0]], &[vec![1.0, 2.5]], 0.1).unwrap_err();
        assert!(err.contains("5.000e-1"), "got: {err}");
    }
}
