//! Micro-benchmarks of individual RNS-CKKS operations at each level —
//! measures this repository's equivalent of the paper's Table 3.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use fhe_ckks::{encrypt_symmetric, Ciphertext, CkksContext, CkksParams, Evaluator, KeyGenerator};
use fhe_ir::{CostModel, OpClass};

/// One measured row: the op class and its mean latency (µs) per level
/// `1..=levels`.
pub type LatencyRow = (OpClass, Vec<f64>);

/// Measures the latency of every Table 3 op class at levels `1..=levels`.
///
/// A `rescale` at row level `l` operates on a level `l+1` ciphertext (the
/// paper charges rescales at their result level). `reps` controls averaging.
pub fn measure(params: CkksParams, levels: usize, reps: usize, seed: u64) -> Vec<LatencyRow> {
    assert!(
        params.max_level > levels,
        "need max_level > measured levels for rescale"
    );
    let ctx = CkksContext::new(params);
    let mut rng = StdRng::seed_from_u64(seed);
    let kg = KeyGenerator::new(&ctx, &mut rng);
    let sk = kg.secret_key();
    let relin = kg.relin_key(&mut rng);
    let galois = kg.galois_keys([1i64], &mut rng);
    let ev = Evaluator::new(&ctx, Some(relin), galois);

    let values: Vec<f64> = (0..ctx.slots())
        .map(|i| ((i % 17) as f64 - 8.0) * 0.05)
        .collect();
    let fresh = |level: usize, rng: &mut StdRng| -> Ciphertext {
        let pt = ev.encoder().encode(&values, 2f64.powi(40), level);
        encrypt_symmetric(&ctx, &sk, &pt, rng)
    };

    let mut rows: Vec<LatencyRow> = OpClass::ALL
        .iter()
        .map(|&c| (c, Vec::with_capacity(levels)))
        .collect();

    for level in 1..=levels {
        let ct = fresh(level, &mut rng);
        let ct2 = fresh(level, &mut rng);
        let ct_up = fresh(level + 1, &mut rng);
        // add_plain needs a scale-matched plaintext; mul_plain a waterline one.
        let pt_add = ev.encoder().encode(&values, 2f64.powi(40), level);
        let pt_mul = ev.encoder().encode(&values, 2f64.powi(20), level);

        for (class, row) in rows.iter_mut() {
            let t0 = Instant::now();
            for _ in 0..reps {
                match class {
                    OpClass::ModSwitch => {
                        std::hint::black_box(ev.mod_switch(&ct_up));
                    }
                    OpClass::AddPlain => {
                        std::hint::black_box(ev.add_plain(&ct, &pt_add));
                    }
                    OpClass::AddCipher => {
                        std::hint::black_box(ev.add(&ct, &ct2));
                    }
                    OpClass::MulPlain => {
                        std::hint::black_box(ev.mul_plain(&ct, &pt_mul));
                    }
                    OpClass::Rescale => {
                        std::hint::black_box(ev.rescale(&ct_up));
                    }
                    OpClass::Rotate => {
                        std::hint::black_box(ev.rotate(&ct, 1));
                    }
                    OpClass::MulCipher => {
                        std::hint::black_box(ev.mul(&ct, &ct2));
                    }
                }
            }
            row.push(t0.elapsed().as_secs_f64() * 1e6 / reps as f64);
        }
    }
    rows
}

/// Measures the backend under `params` and returns a [`CostModel`]
/// calibrated to *this machine*, replacing the paper's Table 3 numbers.
///
/// This is what makes static span/work predictions comparable to measured
/// single-threaded latency (the fuzz oracle's span-bound check and the
/// golden-workload parallelism tests): the paper model describes a
/// different machine at `N = 2^15`, while the fuzzer and tests run tiny
/// rings where the cost ratios differ.
pub fn calibrate(params: CkksParams, levels: usize, reps: usize, seed: u64) -> CostModel {
    CostModel::from_rows(measure(params, levels, reps, seed))
}

/// [`calibrate`] with parameters derived exactly like
/// [`crate::ckks_exec`] derives them for a scheduled program: `N = 2 ×
/// slots`, modulus = the schedule's rescale bits, serial execution. Use
/// this to compare static depgraph predictions against what
/// [`crate::executor::CkksExec`] will actually measure.
pub fn calibrate_backend(
    slots: usize,
    rescale_bits: u32,
    levels: usize,
    reps: usize,
    seed: u64,
) -> CostModel {
    // `from_rows` interpolates, so it needs at least two tabulated levels
    // even for a depth-one schedule.
    let levels = levels.max(2);
    let params = CkksParams {
        poly_degree: slots * 2,
        max_level: levels + 1,
        modulus_bits: rescale_bits,
        special_bits: rescale_bits.min(60) + 1,
        error_std: 3.2,
        threads: 1,
    };
    calibrate(params, levels, reps, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_shape_matches_table3() {
        // Small parameters; assert the *shape*, not absolute numbers:
        // cost grows with level, and mul ≫ rotate ≫ rescale ≫ adds.
        let params = CkksParams {
            poly_degree: 1 << 10,
            max_level: 4,
            modulus_bits: 40,
            special_bits: 41,
            error_std: 3.2,
            threads: 1,
        };
        let rows = measure(params, 3, 2, 42);
        let get = |c: OpClass| -> &Vec<f64> {
            &rows.iter().find(|(cl, _)| *cl == c).expect("row present").1
        };
        let mul = get(OpClass::MulCipher);
        let rot = get(OpClass::Rotate);
        let rs = get(OpClass::Rescale);
        let add = get(OpClass::AddCipher);
        // Growth with level.
        assert!(mul[2] > mul[0], "mul cost must grow with level: {mul:?}");
        assert!(rot[2] > rot[0], "rotate cost must grow with level: {rot:?}");
        // Ordering at the top level.
        assert!(mul[2] > rs[2], "mul {} > rescale {}", mul[2], rs[2]);
        assert!(rot[2] > rs[2], "rotate {} > rescale {}", rot[2], rs[2]);
        assert!(rs[2] > add[2], "rescale {} > add {}", rs[2], add[2]);
    }

    #[test]
    fn calibrate_yields_a_usable_cost_model() {
        let params = CkksParams {
            poly_degree: 1 << 10,
            max_level: 3,
            modulus_bits: 40,
            special_bits: 41,
            error_std: 3.2,
            threads: 1,
        };
        let model = calibrate(params, 2, 1, 7);
        for &class in OpClass::ALL.iter() {
            for level in 1..=2usize {
                let us = model.at_level(class, level as u32);
                assert!(us.is_finite() && us > 0.0, "{class:?} level {level}: {us}");
            }
        }
    }
}
