//! The reserve compiler driver: cleanup → reserve analysis → placement →
//! hoisting, with the paper's BA / RA / full ablation modes (§8.3).

use std::fmt;
use std::time::{Duration, Instant};

use fhe_ir::{passes, CompileParams, CostModel, Program, ScheduleError, ScheduledProgram};

use crate::alloc::{allocate, ReserveSolution};
use crate::hoist::hoist;
use crate::ordering::{allocation_order, naive_order};
use crate::placement::place;
use crate::types::{self, TypeError};

/// Ablation configuration (Fig. 8 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Backward analysis only: no redistribution, no hoisting.
    Ba,
    /// Reserve allocation with redistribution, no hoisting.
    Ra,
    /// The full pipeline: redistribution + rescale hoisting ("this work").
    Full,
}

impl Mode {
    /// All modes, in the paper's Fig. 8 order.
    pub const ALL: [Mode; 3] = [Mode::Ba, Mode::Ra, Mode::Full];

    /// The paper's label for this configuration.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Ba => "BA",
            Mode::Ra => "RA",
            Mode::Full => "This work",
        }
    }

    fn redistribute(self) -> bool {
        !matches!(self, Mode::Ba)
    }

    fn hoist(self) -> bool {
        matches!(self, Mode::Full)
    }
}

/// How the backward analysis orders its visits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingStrategy {
    /// The paper's §6.1 ordering: heavy dependence chains first.
    CostPriority,
    /// Plain reverse-topological order (ablation baseline).
    ReverseTopological,
}

/// Options for [`compile`].
#[derive(Debug, Clone)]
pub struct Options {
    /// RNS-CKKS compilation parameters (waterline, `R`, max level).
    pub params: CompileParams,
    /// Latency model used for ordering and hoisting decisions.
    pub cost_model: CostModel,
    /// Ablation mode.
    pub mode: Mode,
    /// Run CSE/DCE before scale management (both baselines do).
    pub cleanup: bool,
    /// Allocation-order strategy (ablation of §6.1).
    pub ordering: OrderingStrategy,
}

impl Options {
    /// Full-pipeline options at the given waterline (in bits).
    pub fn new(waterline_bits: u32) -> Self {
        Options {
            params: CompileParams::new(waterline_bits),
            cost_model: CostModel::paper_table3(),
            mode: Mode::Full,
            cleanup: true,
            ordering: OrderingStrategy::CostPriority,
        }
    }

    /// Same, with an explicit ablation mode.
    pub fn with_mode(waterline_bits: u32, mode: Mode) -> Self {
        Options { mode, ..Self::new(waterline_bits) }
    }
}

/// Why compilation failed.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// The reserve solution violates the type system (e.g. the program's
    /// depth exceeds `max_level`).
    Type(Vec<TypeError>),
    /// The emitted schedule failed validation (a compiler bug if it ever
    /// happens — surfaced rather than panicking so fuzzing can observe it).
    Schedule(Vec<ScheduleError>),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Type(errs) => write!(f, "reserve typing failed: {} error(s)", errs.len()),
            CompileError::Schedule(errs) => {
                write!(f, "schedule validation failed: {} error(s)", errs.len())
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Timing and size statistics for one compilation (Table 4's columns).
#[derive(Debug, Clone)]
pub struct Stats {
    /// Time spent in scale management proper (ordering + allocation +
    /// placement + hoisting) — the paper's "Scale Management Time".
    pub scale_management_time: Duration,
    /// End-to-end compile time including cleanup passes and validation.
    pub total_time: Duration,
    /// Op count before compilation (after cleanup).
    pub ops_before: usize,
    /// Op count of the scheduled program.
    pub ops_after: usize,
    /// Number of hoists applied.
    pub hoists: usize,
    /// Statically estimated latency of the result (µs).
    pub estimated_latency_us: f64,
    /// Modulus level required of fresh encryptions.
    pub max_level: u32,
}

/// Output of the reserve compiler.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The scheduled program (validates by construction).
    pub scheduled: ScheduledProgram,
    /// The certified reserve solution (for inspection/tests).
    pub solution: ReserveSolution,
    /// Compilation statistics.
    pub stats: Stats,
}

/// Compiles a program with the reserve pipeline.
///
/// # Errors
///
/// Returns [`CompileError::Type`] when the program cannot be typed under the
/// given parameters (most commonly: multiplicative depth needs more than
/// `params.max_level` levels).
pub fn compile(program: &Program, options: &Options) -> Result<Compiled, CompileError> {
    let t_total = Instant::now();
    let cleaned;
    let program = if options.cleanup {
        cleaned = passes::cleanup(program);
        &cleaned
    } else {
        program
    };
    let ops_before = program.num_ops();

    let t_sm = Instant::now();
    let order = match options.ordering {
        OrderingStrategy::CostPriority => {
            allocation_order(program, &options.params, &options.cost_model)
        }
        OrderingStrategy::ReverseTopological => naive_order(program),
    };
    let solution = allocate(program, &options.params, &order, options.mode.redistribute());
    let type_errors = types::check(program, &options.params, &solution);
    if !type_errors.is_empty() {
        return Err(CompileError::Type(type_errors));
    }
    let mut scheduled = place(program, &options.params, &solution);
    let hoists = if options.mode.hoist() {
        hoist(&mut scheduled, &options.cost_model)
    } else {
        0
    };
    let scale_management_time = t_sm.elapsed();

    let map = scheduled.validate().map_err(CompileError::Schedule)?;
    let estimated_latency_us = options.cost_model.program_cost(&scheduled.program, &map);
    let stats = Stats {
        scale_management_time,
        total_time: t_total.elapsed(),
        ops_before,
        ops_after: scheduled.program.num_ops(),
        hoists,
        estimated_latency_us,
        max_level: map.max_level(),
    };
    Ok(Compiled { scheduled, solution, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::Builder;

    fn fig2a() -> Program {
        let b = Builder::new("fig2a", 8);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        b.finish(vec![q])
    }

    #[test]
    fn full_pipeline_reproduces_fig2_ordering() {
        // EVA's plan costs 390 (hundreds of µs); the paper's step-1 plan 353
        // and step-2 plan 335. Our full pipeline must land in that band.
        let p = fig2a();
        let full = compile(&p, &Options::new(20)).unwrap();
        let ra = compile(&p, &Options::with_mode(20, Mode::Ra)).unwrap();
        let ba = compile(&p, &Options::with_mode(20, Mode::Ba)).unwrap();
        let f = full.stats.estimated_latency_us / 100.0;
        let r = ra.stats.estimated_latency_us / 100.0;
        let bb = ba.stats.estimated_latency_us / 100.0;
        assert!(f < r, "hoisting must help on Fig. 2a: {f} vs {r}");
        assert!(r <= bb, "redistribution must not hurt: {r} vs {bb}");
        assert!((300.0..380.0).contains(&f), "full cost {f} should be ≈335");
        assert!((330.0..400.0).contains(&r), "RA cost {r} should be ≈353");
    }

    #[test]
    fn modes_all_validate() {
        let p = fig2a();
        for mode in Mode::ALL {
            for wl in [15, 25, 35, 45] {
                let out = compile(&p, &Options::with_mode(wl, mode)).unwrap();
                assert!(out.scheduled.validate().is_ok());
                assert!(out.stats.max_level >= 1);
            }
        }
    }

    #[test]
    fn depth_beyond_max_level_errors() {
        let b = Builder::new("deep", 4);
        let x = b.input("x");
        let mut acc = x;
        for _ in 0..8 {
            acc = acc.clone() * acc;
        }
        let p = b.finish(vec![acc]);
        let mut options = Options::new(50);
        options.params.max_level = 3;
        match compile(&p, &options) {
            Err(CompileError::Type(errs)) => assert!(!errs.is_empty()),
            other => panic!("expected type error, got {other:?}"),
        }
    }

    #[test]
    fn cleanup_shrinks_duplicate_work() {
        let b = Builder::new("dup", 8);
        let x = b.input("x");
        let a = x.clone() * x.clone();
        let c = x.clone() * x.clone();
        let out = a + c;
        let p = b.finish(vec![out]);
        let compiled = compile(&p, &Options::new(20)).unwrap();
        // One mul survives CSE; with x, add, and any scale management the
        // total stays small.
        assert!(compiled.stats.ops_before < p.num_ops());
    }

    #[test]
    fn stats_time_is_populated() {
        let p = fig2a();
        let out = compile(&p, &Options::new(20)).unwrap();
        assert!(out.stats.total_time >= out.stats.scale_management_time);
        assert!(out.stats.estimated_latency_us > 0.0);
    }
}

#[cfg(test)]
mod ordering_ablation_tests {
    use super::*;
    use fhe_ir::Builder;

    #[test]
    fn naive_ordering_compiles_and_validates() {
        let b = Builder::new("t", 8);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        let p = b.finish(vec![q]);
        let mut options = Options::new(20);
        options.ordering = OrderingStrategy::ReverseTopological;
        let out = compile(&p, &options).unwrap();
        assert!(out.scheduled.validate().is_ok());
        // Both orderings produce locally-optimal (but possibly different)
        // plans; each must beat EVA's 390 on this example.
        assert!(out.stats.estimated_latency_us < 39000.0);
    }

    #[test]
    fn multi_output_programs_compile() {
        let b = Builder::new("multi", 8);
        let x = b.input("x");
        let y = b.input("y");
        let a = x.clone() * y.clone();
        let c = x.clone() + y;
        let deep = a.clone() * a.clone() * x;
        let p = b.finish(vec![a, c, deep]);
        for mode in Mode::ALL {
            let out = compile(&p, &Options::with_mode(25, mode)).unwrap();
            let map = out.scheduled.validate().unwrap();
            assert_eq!(out.scheduled.program.outputs().len(), 3);
            // Every output keeps at least the configured output reserve.
            for &o in out.scheduled.program.outputs() {
                let reserve = fhe_ir::Frac::from(map.level(o)) * fhe_ir::Frac::from(60)
                    - map.scale_bits(o);
                assert!(reserve >= fhe_ir::Frac::ZERO);
            }
        }
    }

    #[test]
    fn no_cleanup_option_respected() {
        let b = Builder::new("dup", 8);
        let x = b.input("x");
        let a = x.clone() * x.clone();
        let c = x.clone() * x.clone();
        let out_expr = a + c;
        let p = b.finish(vec![out_expr]);
        let mut options = Options::new(20);
        options.cleanup = false;
        let out = compile(&p, &options).unwrap();
        // Duplicate squares survive without CSE.
        assert!(out.stats.ops_before == p.num_ops());
        out.scheduled.validate().unwrap();
    }
}
