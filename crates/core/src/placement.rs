//! Scale-management operation insertion (§7, step 1).
//!
//! Translates a reserve-typed program into an RNS-CKKS-compliant scheduled
//! program. Every value is materialized at the principal level of its
//! reserve; at each use edge the operand is *adapted* to the state the
//! typing rules demand by inserting `modswitch` / `upscale` / `rescale`
//! chains (a `modswitch` replaces an `upscale`-by-`R` + `rescale` pair
//! whenever possible, being far cheaper). Level-mismatched multiplications
//! get their rescales right after the multiply — the earliest legal point —
//! which the hoisting pass may later move.

use std::collections::HashMap;

use fhe_ir::{
    CompileParams, Frac, InputSpec, Op, Program, ProgramEditor, ScheduledProgram, ValueId,
};

use crate::alloc::ReserveSolution;

/// Concrete ciphertext state during placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    /// Scale in log₂ bits.
    scale_bits: Frac,
    /// Level (modulus limbs).
    level: u32,
}

impl State {
    fn reserve_bits(&self, params: &CompileParams) -> Frac {
        Frac::from(self.level) * params.rescale() - self.scale_bits
    }
}

/// Materializes a reserve solution as a scheduled program.
///
/// # Panics
///
/// Panics if the solution omits a reserve for a live ciphertext value (run
/// the type checker first) or if the program already contains scale
/// management ops.
pub fn place(program: &Program, params: &CompileParams, sol: &ReserveSolution) -> ScheduledProgram {
    let mut ed = ProgramEditor::new(program);
    let mut state: HashMap<ValueId, State> = HashMap::new(); // dest id → state
    let mut adapted: HashMap<(ValueId, State), ValueId> = HashMap::new();
    let mut inputs = Vec::new();
    let rescale = params.rescale();

    let rho_bits =
        |v: ValueId| -> Frac { params.to_bits(sol.reserve[v.index()].expect("cipher reserve")) };
    let req_bits = |v: ValueId, slot: usize| -> Frac {
        params.to_bits(sol.operand_req[v.index()][slot].expect("operand requirement"))
    };

    for id in program.ids() {
        if program.is_plain(id) {
            ed.emit(id);
            continue;
        }
        let rho = rho_bits(id);
        let principal = sol.principal_level(params, id);
        let principal_state = State {
            scale_bits: Frac::from(principal) * rescale - rho,
            level: principal,
        };
        match program.op(id).clone() {
            Op::Input { .. } => {
                let new = ed.emit(id);
                inputs.push(InputSpec {
                    scale_bits: principal_state.scale_bits,
                    level: principal_state.level,
                });
                state.insert(new, principal_state);
            }
            Op::Add(a, b) | Op::Sub(a, b) => {
                let mapped = [a, b].map(|o| {
                    if program.is_cipher(o) {
                        adapt(
                            params,
                            &mut ed,
                            &mut state,
                            &mut adapted,
                            o,
                            principal_state,
                        )
                    } else {
                        ed.map_operand(o)
                    }
                });
                let new = ed.emit_with(id, &mapped);
                state.insert(new, principal_state);
            }
            Op::Neg(a) | Op::Rotate(a, _) => {
                let na = adapt(
                    params,
                    &mut ed,
                    &mut state,
                    &mut adapted,
                    a,
                    principal_state,
                );
                let new = ed.emit_with(id, &[na]);
                state.insert(new, principal_state);
            }
            Op::Mul(a, b) => {
                let (mapped, result) = match (program.is_cipher(a), program.is_cipher(b)) {
                    (true, true) => {
                        let req0 = req_bits(id, 0);
                        let req1 = req_bits(id, 1);
                        let l_op =
                            ((params.to_relative(req0) + params.omega()).ceil().max(1)) as u32;
                        let t0 = State {
                            scale_bits: Frac::from(l_op) * rescale - req0,
                            level: l_op,
                        };
                        let t1 = State {
                            scale_bits: Frac::from(l_op) * rescale - req1,
                            level: l_op,
                        };
                        let na = adapt(params, &mut ed, &mut state, &mut adapted, a, t0);
                        let nb = adapt(params, &mut ed, &mut state, &mut adapted, b, t1);
                        (
                            vec![na, nb],
                            State {
                                scale_bits: t0.scale_bits + t1.scale_bits,
                                level: l_op,
                            },
                        )
                    }
                    (true, false) | (false, true) => {
                        let (cipher, slot) = if program.is_cipher(a) { (a, 0) } else { (b, 1) };
                        let req = req_bits(id, slot);
                        let l_op =
                            ((params.to_relative(req) + params.omega()).ceil().max(1)) as u32;
                        let t = State {
                            scale_bits: Frac::from(l_op) * rescale - req,
                            level: l_op,
                        };
                        let nc = adapt(params, &mut ed, &mut state, &mut adapted, cipher, t);
                        let mapped = if program.is_cipher(a) {
                            vec![nc, ed.map_operand(b)]
                        } else {
                            vec![ed.map_operand(a), nc]
                        };
                        (
                            mapped,
                            State {
                                scale_bits: t.scale_bits + params.waterline(),
                                level: l_op,
                            },
                        )
                    }
                    (false, false) => unreachable!("plain values handled above"),
                };
                let mut new = ed.emit_with(id, &mapped);
                let mut cur = result;
                // Level mismatch: rescale down to the principal level.
                while cur.level > principal {
                    new = ed.push(Op::Rescale(new));
                    cur = State {
                        scale_bits: cur.scale_bits - rescale,
                        level: cur.level - 1,
                    };
                    ed.set_mapping(id, new);
                }
                debug_assert_eq!(
                    cur, principal_state,
                    "mul normalization must land on principal"
                );
                state.insert(new, cur);
            }
            Op::Rescale(_) | Op::ModSwitch(_) | Op::Upscale(..) => {
                panic!("placement expects a program without scale management ops")
            }
            Op::Const { .. } => unreachable!("consts are plain"),
        }
    }

    ScheduledProgram {
        program: ed.finish(),
        params: *params,
        inputs,
    }
}

/// Adapts the dest value mapped from source `src` to the `target` state,
/// inserting `modswitch`/`upscale`/`rescale` as needed. Chains are memoized
/// per (source, target) so multiple uses share them.
fn adapt(
    params: &CompileParams,
    ed: &mut ProgramEditor<'_>,
    state: &mut HashMap<ValueId, State>,
    adapted: &mut HashMap<(ValueId, State), ValueId>,
    src: ValueId,
    target: State,
) -> ValueId {
    let cur_id = ed.map_operand(src);
    let cur = state[&cur_id];
    if cur == target {
        return cur_id;
    }
    if let Some(&done) = adapted.get(&(src, target)) {
        return done;
    }
    let rescale = params.rescale();
    let d = cur
        .level
        .checked_sub(target.level)
        .expect("levels only decrease");
    let eps = cur.reserve_bits(params) - target.reserve_bits(params);
    assert!(eps >= Frac::ZERO, "reserves only decrease along an edge");
    // Each modswitch burns one level AND R bits of reserve.
    let by_modswitch = (eps / rescale).floor().max(0) as u32;
    let s = d.min(by_modswitch);
    let delta = eps - Frac::from(s) * rescale;
    let r = d - s;

    let mut id = cur_id;
    let mut st = cur;
    for _ in 0..s {
        id = ed.push(Op::ModSwitch(id));
        st.level -= 1;
    }
    if delta > Frac::ZERO {
        id = ed.push(Op::Upscale(id, delta));
        st.scale_bits += delta;
    }
    for _ in 0..r {
        id = ed.push(Op::Rescale(id));
        st.level -= 1;
        st.scale_bits -= rescale;
    }
    debug_assert_eq!(st, target, "adaptation must land exactly on the target");
    state.insert(id, st);
    adapted.insert((src, target), id);
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::allocate;
    use crate::ordering::allocation_order;
    use fhe_ir::{Builder, CostModel};

    fn compile_raw(program: &Program, waterline: u32, redistribute: bool) -> ScheduledProgram {
        let params = CompileParams::new(waterline);
        let order = allocation_order(program, &params, &CostModel::paper_table3());
        let sol = allocate(program, &params, &order, redistribute);
        place(program, &params, &sol)
    }

    fn fig2a() -> Program {
        let b = Builder::new("fig2a", 8);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        b.finish(vec![q])
    }

    #[test]
    fn placed_fig2a_validates() {
        for redistribute in [false, true] {
            for wl in [15, 20, 25, 30, 35, 40, 45, 50] {
                let s = compile_raw(&fig2a(), wl, redistribute);
                let map = s
                    .validate()
                    .unwrap_or_else(|e| panic!("W={wl} redistribute={redistribute}: {e:?}"));
                assert!(map.max_level() >= 1);
            }
        }
    }

    #[test]
    fn fig2a_redistributed_plan_shape() {
        // With redistribution at W=20, inputs are at level 2 with scale 40,
        // and the output fully uses its modulus (reserve 0 at level 1).
        let s = compile_raw(&fig2a(), 20, true);
        let map = s.validate().unwrap();
        assert_eq!(map.max_level(), 2);
        for spec in &s.inputs {
            assert_eq!(spec.level, 2);
            assert_eq!(spec.scale_bits, Frac::from(40));
        }
        let out = s.program.outputs()[0];
        assert_eq!(map.level(out), 1);
        assert_eq!(map.scale_bits(out), Frac::from(60));
    }

    #[test]
    fn cost_beats_eva_style_waterline_inputs() {
        // The reserve plan for Fig. 2a must beat EVA's 390 (hundreds of µs).
        let s = compile_raw(&fig2a(), 20, true);
        let map = s.validate().unwrap();
        let cost = CostModel::paper_table3().program_cost(&s.program, &map);
        assert!(
            cost < 39000.0,
            "reserve plan cost {cost}µs should beat EVA's ~39000µs"
        );
    }

    #[test]
    fn adaptation_chains_are_shared() {
        // x used twice at the same lower state: the upscale/rescale chain
        // must be emitted once.
        let b = Builder::new("share", 8);
        let x = b.input("x");
        let y = b.input("y");
        let m1 = x.clone() * y.clone();
        let m2 = x.clone() * y.clone();
        // Force depth on x and y via another mul.
        let out = m1 * m2;
        let p = b.finish(vec![out]);
        let s = compile_raw(&p, 20, true);
        s.validate().unwrap();
        // x (and y) feed two muls with identical requirements; count
        // upscales: no more than one per input.
        let upscales = s.program.count_ops(|o| matches!(o, Op::Upscale(..)));
        assert!(upscales <= 2, "adaptation chains duplicated: {upscales}");
    }

    #[test]
    fn modswitch_replaces_upscale_rescale_pairs() {
        // A value whose reserve drop exceeds R along an edge gets a
        // modswitch rather than upscale+rescale.
        let b = Builder::new("ms", 8);
        let x = b.input("x");
        let deep = x.clone() * x.clone() * x.clone() * x.clone() * x.clone();
        let shallow = x.clone();
        let out = deep + shallow; // x itself needs a large reserve drop
        let p = b.finish(vec![out]);
        let s = compile_raw(&p, 45, true);
        s.validate().unwrap();
        let ms = s.program.count_ops(|o| matches!(o, Op::ModSwitch(_)));
        assert!(ms >= 1, "expected at least one modswitch, got {ms}");
    }

    #[test]
    fn rotations_and_plain_ops_place_cleanly() {
        let b = Builder::new("rot", 16);
        let x = b.input("x");
        let k = b.constant(vec![0.25; 16]);
        let conv =
            (x.clone() * k.clone()) + (x.clone().rotate(1) * k.clone()) + (x.clone().rotate(2) * k);
        let sq = conv.clone() * conv;
        let p = b.finish(vec![sq]);
        for wl in [20, 30, 40] {
            let s = compile_raw(&p, wl, true);
            s.validate().unwrap_or_else(|e| panic!("W={wl}: {e:?}"));
        }
    }
}
