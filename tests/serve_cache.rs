//! Compile-cache correctness at the service boundary, carried all the way
//! to encrypted execution: an entry evicted under the byte budget must
//! recompile to a schedule that is not only structurally identical
//! (pinned by `structural_hash`) but **executes byte-identically** under
//! the same session keys and encryption seed — the golden-trace style
//! comparison (outputs + per-class op counts) applied across an eviction.

use std::collections::HashMap;
use std::sync::Arc;

use fhe_ir::{text, CompileParams};
use fhe_runtime::{execute_with_keys, ExecOptions, SessionKeys};
use fhe_serve::CompileCache;
use reserve_core::ReserveCompiler;

const SLOTS: usize = 64;

fn program_text(name: &str) -> String {
    let b = fhe_ir::Builder::new(name, SLOTS);
    let x = b.input("x");
    let y = b.input("y");
    let half = b.constant(0.5);
    let q = (x.clone() * y.clone() + x.clone()).rotate(2) * (y * half + x);
    text::print(&b.finish(vec![q]))
}

fn inputs() -> HashMap<String, Vec<f64>> {
    [
        (
            "x".to_string(),
            (0..SLOTS).map(|k| ((k % 7) as f64 - 3.0) * 0.1).collect(),
        ),
        (
            "y".to_string(),
            (0..SLOTS).map(|k| ((k % 4) as f64) * 0.15).collect(),
        ),
    ]
    .into_iter()
    .collect()
}

#[test]
fn evicted_entry_recompiles_and_executes_byte_identically() {
    let compiler = ReserveCompiler::full();
    let params = CompileParams::new(30);
    let p1 = text::parse(&program_text("alpha")).unwrap();
    let p2 = text::parse(&program_text("omega")).unwrap();

    // Size the budget to hold roughly one entry.
    let probe = CompileCache::new(None);
    probe.get_or_compile(&p1, &params, &compiler).unwrap();
    let one_entry = probe.stats().bytes;
    let cache = CompileCache::new(Some(one_entry + one_entry / 2));

    let original = cache.get_or_compile(&p1, &params, &compiler).unwrap();
    cache.get_or_compile(&p2, &params, &compiler).unwrap();
    assert_eq!(cache.stats().evictions, 1, "p1 evicted under the budget");

    let recompiled = cache.get_or_compile(&p1, &params, &compiler).unwrap();
    assert!(!recompiled.hit, "eviction forces a recompile");
    assert!(
        !Arc::ptr_eq(&original.scheduled, &recompiled.scheduled),
        "genuinely a fresh compilation, not the old Arc"
    );
    assert_eq!(
        original.scheduled.structural_hash(),
        recompiled.scheduled.structural_hash(),
        "deterministic compilation: eviction cannot change the schedule"
    );
    assert_eq!(
        text::print(&original.scheduled.program),
        text::print(&recompiled.scheduled.program),
        "scheduled programs print identically"
    );

    // Golden-trace style: execute both under the same keys and seed; the
    // outputs and the per-class op counts must match exactly.
    let options = ExecOptions {
        poly_degree: SLOTS * 2,
        seed: 0xE51C,
        threads: 1,
        ..ExecOptions::default()
    };
    let keys = SessionKeys::for_schedule(&original.scheduled, &options).unwrap();
    let binds = inputs();
    let a = execute_with_keys(&original.scheduled, &binds, &options, &keys, None, 42).unwrap();
    let b = execute_with_keys(&recompiled.scheduled, &binds, &options, &keys, None, 42).unwrap();
    assert_eq!(a.outputs, b.outputs, "byte-identical encrypted outputs");
    assert_eq!(a.ops_executed, b.ops_executed);
    let counts = |r: &fhe_runtime::ExecReport| {
        r.per_class
            .iter()
            .map(|&(c, _, n)| (c, n))
            .collect::<Vec<_>>()
    };
    assert_eq!(counts(&a), counts(&b), "identical per-class op counts");
}

#[test]
fn params_and_compiler_id_are_part_of_the_key() {
    let cache = CompileCache::new(None);
    let p = text::parse(&program_text("keyed")).unwrap();
    let reserve = ReserveCompiler::full();

    let base = cache
        .get_or_compile(&p, &CompileParams::new(30), &reserve)
        .unwrap();
    assert!(!base.hit);
    assert!(
        cache
            .get_or_compile(&p, &CompileParams::new(30), &reserve)
            .unwrap()
            .hit
    );

    // Same text, different waterline: a different schedule entirely.
    let tighter = cache
        .get_or_compile(&p, &CompileParams::new(25), &reserve)
        .unwrap();
    assert!(!tighter.hit);
    assert_ne!(
        base.scheduled.structural_hash(),
        tighter.scheduled.structural_hash(),
        "waterline changes the compiled schedule, so sharing would be wrong"
    );

    // Same text and params, different compiler id.
    let eva = cache
        .get_or_compile(&p, &CompileParams::new(30), &fhe_baselines::EvaCompiler)
        .unwrap();
    assert!(!eva.hit);

    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 3, 3));
    assert!(stats.hit_rate() > 0.0 && stats.hit_rate() < 1.0);
}
