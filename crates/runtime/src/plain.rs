//! Reference plaintext executor: evaluates a program on clear `f64`
//! vectors. Scale-management ops are value-identities, so the same executor
//! runs both source programs and compiled schedules — compilation must not
//! change program semantics, and tests assert exactly that.

use std::collections::HashMap;

use fhe_ir::{Op, Program, ValueId};

/// Executes `program` on named input vectors (each padded/truncated to the
/// slot count).
///
/// Returns one vector per program output.
///
/// # Panics
///
/// Panics if an input binding is missing.
pub fn execute(program: &Program, inputs: &HashMap<String, Vec<f64>>) -> Vec<Vec<f64>> {
    let slots = program.slots();
    let mut values: Vec<Option<Vec<f64>>> = vec![None; program.num_ops()];
    let live = fhe_ir::analysis::live(program);

    let fetch = |values: &Vec<Option<Vec<f64>>>, id: ValueId| -> Vec<f64> {
        values[id.index()]
            .clone()
            .expect("operand evaluated (topological order)")
    };

    for id in program.ids() {
        if !live[id.index()] {
            continue;
        }
        let result = match program.op(id) {
            Op::Input { name } => {
                let data = inputs
                    .get(name)
                    .unwrap_or_else(|| panic!("missing input binding `{name}`"));
                (0..slots)
                    .map(|i| data.get(i).copied().unwrap_or(0.0))
                    .collect()
            }
            Op::Const { value } => value.to_vec(slots),
            Op::Add(a, b) => binop(&fetch(&values, *a), &fetch(&values, *b), |x, y| x + y),
            Op::Sub(a, b) => binop(&fetch(&values, *a), &fetch(&values, *b), |x, y| x - y),
            Op::Mul(a, b) => binop(&fetch(&values, *a), &fetch(&values, *b), |x, y| x * y),
            Op::Neg(a) => fetch(&values, *a).iter().map(|x| -x).collect(),
            Op::Rotate(a, k) => rotate(&fetch(&values, *a), *k),
            Op::Rescale(a) | Op::ModSwitch(a) | Op::Upscale(a, _) => fetch(&values, *a),
        };
        values[id.index()] = Some(result);
    }

    program
        .outputs()
        .iter()
        .map(|&o| values[o.index()].clone().expect("output evaluated"))
        .collect()
}

fn binop(a: &[f64], b: &[f64], f: impl Fn(f64, f64) -> f64) -> Vec<f64> {
    a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect()
}

/// Cyclic rotation by `k` (positive moves slot `k` to slot 0, matching the
/// CKKS Galois rotation convention).
pub fn rotate(a: &[f64], k: i64) -> Vec<f64> {
    let n = a.len() as i64;
    (0..n)
        .map(|i| a[((i + k).rem_euclid(n)) as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::Builder;

    fn inputs(pairs: &[(&str, Vec<f64>)]) -> HashMap<String, Vec<f64>> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn evaluates_fig2a() {
        let b = Builder::new("fig2a", 4);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        let p = b.finish(vec![q]);
        let out = execute(
            &p,
            &inputs(&[
                ("x", vec![2.0, 1.0, 0.5, -1.0]),
                ("y", vec![1.0, 2.0, 3.0, 4.0]),
            ]),
        );
        // x³·(y²+y)
        assert_eq!(out[0][0], 8.0 * 2.0);
        assert_eq!(out[0][1], 1.0 * 6.0);
        assert_eq!(out[0][3], -20.0);
    }

    #[test]
    fn rotation_convention() {
        assert_eq!(rotate(&[1.0, 2.0, 3.0, 4.0], 1), vec![2.0, 3.0, 4.0, 1.0]);
        assert_eq!(rotate(&[1.0, 2.0, 3.0, 4.0], -1), vec![4.0, 1.0, 2.0, 3.0]);
        assert_eq!(rotate(&[1.0, 2.0], 0), vec![1.0, 2.0]);
    }

    #[test]
    fn scale_management_is_identity() {
        let mut p = fhe_ir::Program::new("sm", 2);
        let x = p.push(Op::Input { name: "x".into() });
        let r = p.push(Op::Rescale(x));
        let m = p.push(Op::ModSwitch(r));
        let u = p.push(Op::Upscale(m, fhe_ir::Frac::from(20)));
        p.set_outputs(vec![u]);
        let out = execute(&p, &inputs(&[("x", vec![3.5, -1.0])]));
        assert_eq!(out[0], vec![3.5, -1.0]);
    }

    #[test]
    fn constants_and_padding() {
        let b = Builder::new("c", 4);
        let x = b.input("x");
        let k = b.constant(vec![10.0, 20.0]);
        let s = x + k;
        let p = b.finish(vec![s]);
        let out = execute(&p, &inputs(&[("x", vec![1.0])]));
        assert_eq!(out[0], vec![11.0, 20.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "missing input")]
    fn missing_input_panics() {
        let b = Builder::new("m", 2);
        let x = b.input("x");
        let p = b.finish(vec![x]);
        let _ = execute(&p, &HashMap::new());
    }
}
