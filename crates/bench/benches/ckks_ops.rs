//! Criterion micro-benchmarks of the `fhe-ckks` homomorphic operations —
//! the statistical counterpart of the `table3` harness (reduced degree so
//! the suite finishes quickly).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fhe_ckks::{encrypt_symmetric, CkksContext, CkksParams, Evaluator, KeyGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_ops(c: &mut Criterion) {
    let levels = 3usize;
    let ctx = CkksContext::new(CkksParams {
        poly_degree: 1 << 11,
        max_level: levels + 1,
        modulus_bits: 45,
        special_bits: 46,
        error_std: 3.2,
    });
    let mut rng = StdRng::seed_from_u64(1);
    let kg = KeyGenerator::new(&ctx, &mut rng);
    let sk = kg.secret_key();
    let relin = kg.relin_key(&mut rng);
    let galois = kg.galois_keys([1i64], &mut rng);
    let ev = Evaluator::new(&ctx, Some(relin), galois);
    let values: Vec<f64> = (0..ctx.slots()).map(|i| (i as f64 * 0.01).sin()).collect();

    let mut group = c.benchmark_group("ckks_ops");
    group.sample_size(10);
    for level in 1..=levels {
        let pt = ev.encoder().encode(&values, 2f64.powi(40), level);
        let ct = encrypt_symmetric(&ctx, &sk, &pt, &mut rng);
        let ct2 = encrypt_symmetric(&ctx, &sk, &pt, &mut rng);
        let pt_up = ev.encoder().encode(&values, 2f64.powi(40), level + 1);
        let ct_up = encrypt_symmetric(&ctx, &sk, &pt_up, &mut rng);
        group.bench_with_input(BenchmarkId::new("add", level), &level, |b, _| {
            b.iter(|| ev.add(&ct, &ct2))
        });
        group.bench_with_input(BenchmarkId::new("mul_cipher", level), &level, |b, _| {
            b.iter(|| ev.mul(&ct, &ct2))
        });
        group.bench_with_input(BenchmarkId::new("rotate", level), &level, |b, _| {
            b.iter(|| ev.rotate(&ct, 1))
        });
        group.bench_with_input(BenchmarkId::new("rescale", level), &level, |b, _| {
            b.iter(|| ev.rescale(&ct_up))
        });
        group.bench_with_input(BenchmarkId::new("modswitch", level), &level, |b, _| {
            b.iter(|| ev.mod_switch(&ct_up))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
