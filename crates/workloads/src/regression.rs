//! Regression training benchmarks: Linear (LR), Multivariate (MR) and
//! Polynomial (PR) regression via batch gradient descent, two epochs over
//! 16384 packed samples (the paper's §8 setup). Model parameters are
//! encrypted inputs; gradients are means computed with rotate-sums.

use std::collections::HashMap;

use fhe_ir::{Builder, Expr, Program};

use crate::data;
use crate::helpers::mean_all;

/// Learning rate shared by the regression benchmarks.
const LEARNING_RATE: f64 = 0.1;

/// Linear regression `y ≈ w·x + b`: returns the trained `(w, b)`.
pub fn linear(n: usize, epochs: usize) -> Program {
    let b = Builder::new("linreg", n);
    let x = b.input("x");
    let y = b.input("y");
    let mut w = b.input("w");
    let mut bias = b.input("b");
    for _ in 0..epochs {
        let pred = w.clone() * x.clone() + bias.clone();
        let err = pred - y.clone();
        let gw = mean_all(&b, err.clone() * x.clone(), n);
        let gb = mean_all(&b, err, n);
        let lr = b.constant(LEARNING_RATE);
        w = w - gw * lr.clone();
        bias = bias - gb * lr;
    }
    b.finish(vec![w, bias])
}

/// Multivariate regression over `features` packed feature vectors.
pub fn multivariate(n: usize, features: usize, epochs: usize) -> Program {
    let b = Builder::new("multireg", n);
    let xs: Vec<Expr> = (0..features).map(|i| b.input(format!("x{i}"))).collect();
    let y = b.input("y");
    let mut ws: Vec<Expr> = (0..features).map(|i| b.input(format!("w{i}"))).collect();
    let mut bias = b.input("b");
    for _ in 0..epochs {
        let mut pred = bias.clone();
        for (w, x) in ws.iter().zip(&xs) {
            pred = pred + w.clone() * x.clone();
        }
        let err = pred - y.clone();
        for (w, x) in ws.iter_mut().zip(&xs) {
            let g = mean_all(&b, err.clone() * x.clone(), n);
            *w = w.clone() - g * b.constant(LEARNING_RATE);
        }
        let gb = mean_all(&b, err, n);
        bias = bias - gb * b.constant(LEARNING_RATE);
    }
    let mut outs = ws;
    outs.push(bias);
    b.finish(outs)
}

/// Polynomial regression `y ≈ w₃x³ + w₂x² + w₁x + b`.
pub fn polynomial(n: usize, epochs: usize) -> Program {
    let b = Builder::new("polyreg", n);
    let x = b.input("x");
    let y = b.input("y");
    let x2 = x.clone() * x.clone();
    let x3 = x2.clone() * x.clone();
    let powers = [x.clone(), x2, x3];
    let mut ws: Vec<Expr> = (1..=3).map(|i| b.input(format!("w{i}"))).collect();
    let mut bias = b.input("b");
    for _ in 0..epochs {
        let mut pred = bias.clone();
        for (w, p) in ws.iter().zip(&powers) {
            pred = pred + w.clone() * p.clone();
        }
        let err = pred - y.clone();
        for (w, p) in ws.iter_mut().zip(&powers) {
            let g = mean_all(&b, err.clone() * p.clone(), n);
            *w = w.clone() - g * b.constant(LEARNING_RATE);
        }
        let gb = mean_all(&b, err, n);
        bias = bias - gb * b.constant(LEARNING_RATE);
    }
    let mut outs = ws;
    outs.push(bias);
    b.finish(outs)
}

/// Input bindings for [`linear`].
pub fn linear_inputs(n: usize, seed: u64) -> HashMap<String, Vec<f64>> {
    let (x, y) = data::regression_xy(n, |v| 0.7 * v + 0.2, seed);
    let mut m = HashMap::new();
    m.insert("x".into(), x);
    m.insert("y".into(), y);
    m.insert("w".into(), vec![0.0; n]);
    m.insert("b".into(), vec![0.0; n]);
    m
}

/// Input bindings for [`multivariate`].
pub fn multivariate_inputs(n: usize, features: usize, seed: u64) -> HashMap<String, Vec<f64>> {
    let mut m = HashMap::new();
    let mut y = vec![0.1; n];
    for i in 0..features {
        let x = data::uniform(n, -1.0, 1.0, seed + i as u64);
        for (yv, xv) in y.iter_mut().zip(&x) {
            *yv += 0.3 * xv / features as f64;
        }
        m.insert(format!("x{i}"), x);
        m.insert(format!("w{i}"), vec![0.0; n]);
    }
    m.insert("y".into(), y);
    m.insert("b".into(), vec![0.0; n]);
    m
}

/// Input bindings for [`polynomial`].
pub fn polynomial_inputs(n: usize, seed: u64) -> HashMap<String, Vec<f64>> {
    let (x, y) = data::regression_xy(n, |v| 0.3 * v * v * v - 0.2 * v * v + 0.5 * v, seed);
    let mut m = HashMap::new();
    m.insert("x".into(), x);
    m.insert("y".into(), y);
    for i in 1..=3 {
        m.insert(format!("w{i}"), vec![0.0; n]);
    }
    m.insert("b".into(), vec![0.0; n]);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::analysis;
    use fhe_runtime::plain;

    #[test]
    fn op_counts_match_paper_ballpark() {
        // Paper Table 4: LR 123, MR 550, PR 183 ops.
        let lr = linear(16384, 2);
        let mr = multivariate(16384, 4, 2);
        let pr = polynomial(16384, 2);
        assert!((90..=160).contains(&lr.num_ops()), "LR: {}", lr.num_ops());
        assert!((350..=700).contains(&mr.num_ops()), "MR: {}", mr.num_ops());
        assert!((140..=320).contains(&pr.num_ops()), "PR: {}", pr.num_ops());
        // Two epochs of cipher–cipher products give moderate depth.
        assert!(analysis::circuit_depth(&lr) >= 4);
        assert!(analysis::circuit_depth(&pr) > analysis::circuit_depth(&lr));
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        // One plain-executed epoch must move w towards the true slope.
        let n = 64;
        let p = linear(n, 2);
        let inputs = linear_inputs(n, 11);
        let out = plain::execute(&p, &inputs);
        let w = out[0][0];
        // True slope 0.7: after two GD steps with lr 0.1, w is positive and
        // closer to 0.7 than the zero initialization.
        assert!(w > 0.01 && w < 0.7, "w after training: {w}");
        // Every slot of the replicated parameter agrees.
        for &v in &out[0] {
            assert!((v - w).abs() < 1e-12);
        }
    }

    #[test]
    fn multivariate_trains_all_weights() {
        let n = 32;
        let p = multivariate(n, 3, 2);
        let inputs = multivariate_inputs(n, 3, 5);
        let out = plain::execute(&p, &inputs);
        assert_eq!(out.len(), 4); // 3 weights + bias
                                  // Bias moves towards 0.1.
        assert!(out[3][0] > 0.0);
    }

    #[test]
    fn polynomial_uses_higher_powers() {
        let n = 32;
        let p = polynomial(n, 1);
        let inputs = polynomial_inputs(n, 9);
        let out = plain::execute(&p, &inputs);
        assert_eq!(out.len(), 4);
        // With symmetric x, the cubic gradient is driven by E[x·y] ≠ 0.
        assert!(out[0][0].abs() > 1e-4, "w1 should move: {}", out[0][0]);
    }
}
