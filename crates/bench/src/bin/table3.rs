//! Table 3: latency of RNS-CKKS operations for levels 1 to 5 (µs),
//! measured on this repository's `fhe-ckks` backend.
//!
//! Default parameters use `N = 2^13` so the table finishes in seconds;
//! `--paper` switches to the paper's `N = 2^15`, `R = 2^60` (minutes in
//! this pure-Rust backend). The reproduction target is the *shape*: latency
//! grows with level, and `mul cc ≫ rotate ≫ rescale ≫ mul cp ≫ adds ≫
//! modswitch`, as in the paper. `--json <path>` writes the measured matrix.

use fhe_bench::{json::Json, print_table, standard_compilers, CliArgs};
use fhe_ckks::CkksParams;
use fhe_ir::CostModel;
use fhe_runtime::microbench;
use fhe_workloads::Size;

fn main() {
    let args = CliArgs::parse();
    let levels = 5usize;
    let params = if args.paper {
        CkksParams {
            poly_degree: 1 << 15,
            max_level: levels + 1,
            ..CkksParams::paper_eval(levels + 1)
        }
    } else {
        CkksParams {
            poly_degree: 1 << 13,
            max_level: levels + 1,
            modulus_bits: 50,
            special_bits: 51,
            error_std: 3.2,
            threads: 0,
        }
    };
    let reps = if args.fast { 1 } else { 3 };
    let poly_degree = params.poly_degree;
    eprintln!(
        "measuring N=2^{}, {} levels, {} reps (this is real encrypted computation)...",
        params.poly_degree.trailing_zeros(),
        levels,
        reps
    );
    let rows = microbench::measure(params, levels, reps, 0xBEEF);

    println!("Table 3: Latency of RNS-CKKS operations for level 1 to 5 (us).");
    println!("(measured on fhe-ckks; paper's reference values in EXPERIMENTS.md)\n");
    let headers: Vec<&str> = ["Op", "1", "2", "3", "4", "5"][..levels + 1].to_vec();
    let mut table = Vec::new();
    // Paper's row order: cheapest first.
    let mut sorted = rows.clone();
    sorted.sort_by(|a, b| a.1[0].partial_cmp(&b.1[0]).expect("finite"));
    for (class, lat) in &sorted {
        let mut row = vec![class.name().to_string()];
        row.extend(lat.iter().map(|v| format!("{v:.0}")));
        table.push(row);
    }
    print_table(&headers, &table);

    // Critical-path profile of the golden workloads under the measured
    // (not paper) cost model: what the depgraph analyzer predicts a
    // DAG-parallel executor could reach on *this* machine.
    let calibrated = CostModel::from_rows(rows.clone());
    let ours = &standard_compilers(1)[2];
    let mut cp_rows = Vec::new();
    let mut cp_json = Vec::new();
    println!("\nCritical path under the measured cost model (this work's schedules):");
    for w in &fhe_workloads::suite(Size::Test) {
        let Ok(out) = ours.compile(&w.program, &fhe_ir::CompileParams::new(30)) else {
            continue;
        };
        let map = out
            .scheduled
            .validate()
            .expect("compiled schedules validate");
        let est = fhe_ir::depgraph::analyze(&out.scheduled, &map, &calibrated, true);
        cp_rows.push(vec![
            w.name.to_string(),
            format!("{:.0}", est.work_us),
            format!("{:.0}", est.span_us),
            format!("{:.2}x", est.parallelism()),
            est.max_width.to_string(),
        ]);
        cp_json.push(Json::obj([
            ("benchmark", Json::from(w.name)),
            ("work_us", Json::from(est.work_us)),
            ("critical_path_us", Json::from(est.span_us)),
            ("max_width", Json::from(est.max_width)),
        ]));
    }
    print_table(
        &["Benchmark", "Work (us)", "CP (us)", "Parallelism", "Width"],
        &cp_rows,
    );

    // Shape checks mirroring the paper's ordering claims.
    let get = |name: &str| -> &Vec<f64> {
        &rows
            .iter()
            .find(|(c, _)| c.name() == name)
            .expect("present")
            .1
    };
    let mul = get("cipher x cipher");
    let rot = get("rotate (cipher)");
    let rs = get("rescale (cipher)");
    assert!(
        mul[levels - 1] > rot[levels - 1] * 0.5,
        "mul and rotate dominate"
    );
    assert!(rot[0] > rs[0], "rotate > rescale at level 1");
    assert!(mul[levels - 1] > mul[0] * 2.0, "mul grows with level");
    println!("\nshape check passed: cost grows with level; mul/rotate dominate.");

    args.emit_json(&Json::obj([
        ("table", Json::from("table3")),
        ("poly_degree", Json::from(poly_degree)),
        ("levels", Json::from(levels)),
        ("reps", Json::from(reps)),
        (
            "ops",
            Json::Array(
                rows.iter()
                    .map(|(class, lat)| {
                        Json::obj([
                            ("op", Json::from(class.name())),
                            (
                                "latency_us",
                                Json::Array(lat.iter().map(|&v| Json::from(v)).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("critical_path", Json::Array(cp_json)),
    ]));
}
