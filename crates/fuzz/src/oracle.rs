//! The differential oracle: one program, every compiler, every executor.
//!
//! Per program the oracle checks, in order:
//!
//! 1. **Textual round-trip** — `parse(print(p))` reproduces `p` exactly.
//! 2. **Metamorphic pass preservation** — CSE, DCE and the full cleanup
//!    pipeline leave the exact plaintext semantics bit-identical (every
//!    rewrite is IEEE-exact by design).
//! 3. **Compilation** — Reserve, EVA and Hecate must all compile the
//!    program (the generator guarantees compilability); panics are caught
//!    and reported as findings, not crashes.
//! 4. **Schedule invariants** — independently of the validator, every
//!    live cipher value of every schedule respects the waterline, stays
//!    under the level's modulus budget (`scale ≤ level·R`), stays under
//!    the key's max level, and never gains level across an op.
//! 5. **Translation validation** — each compiler's schedule must
//!    bisimulate its source program modulo inserted scale management
//!    (`fhe_analysis::tv`), and the pipeline-recorded verdict must agree
//!    with an independent re-run of the validator.
//! 6. **Static-bound domination** — the interval analysis's per-value
//!    magnitude bound must dominate the magnitude the plain executor
//!    actually observes on every value of every schedule, and — on every
//!    encrypted run — the static noise estimate (interval magnitudes fed
//!    into the noise domain) must dominate the observed error.
//! 7. **Executor agreement** — `PlainExec` must reproduce the source
//!    program's reference bit-for-bit (scale management is semantically
//!    transparent); `NoiseSimExec` and `CkksExec` must agree with the
//!    reference — and pairwise with each other — within a tolerance
//!    scaled to the program's dynamic range; and the DAG-parallel
//!    `ParCkksExec` must reproduce `CkksExec`'s decrypted outputs
//!    *bit-for-bit* (the parallel walk, fusion and hoisting are all
//!    byte-transparent by design).
//!
//! Anything that trips becomes a [`Divergence`] with a stable
//! [`Divergence::label`] the shrinker uses to preserve failure identity
//! while minimizing.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use fhe_analysis::{analyze, AnalysisCx, IntervalDomain, MagnitudeSource, NoiseDomain};
use fhe_baselines::{EvaCompiler, HecateCompiler};
use fhe_ir::{passes, CompileParams, Op, Program, ScaleCompiler, ScheduledProgram, ValueId};
use fhe_runtime::executor::{
    max_abs_diff, CkksExec, Executor, NoiseSimExec, ParCkksExec, PlainExec,
};
use fhe_runtime::{plain, ExecOptions, ParOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reserve_core::{Mode, ReserveCompiler};

/// What went wrong, structurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// `parse(print(p))` did not reproduce `p`.
    RoundTrip,
    /// A cleanup pass changed exact plaintext semantics.
    Metamorphic,
    /// A compiler refused a generator-guaranteed-compilable program.
    CompileFail,
    /// A compiler or executor panicked.
    Panic,
    /// A schedule violated the scale/level type system.
    Invariant,
    /// An executor rejected a schedule its compiler validated.
    ExecError,
    /// Executor outputs disagreed beyond tolerance.
    OutputMismatch,
    /// A schedule failed translation validation against its source.
    TranslationValidation,
    /// A static analysis bound was beaten by an observed value.
    StaticBound,
    /// The depgraph parallelism profile is inconsistent (span > work,
    /// non-monotone `T(k)`) or the measured single-threaded latency fails
    /// to dominate the statically predicted span under a calibrated model.
    SpanBound,
}

impl DivergenceKind {
    fn as_str(self) -> &'static str {
        match self {
            DivergenceKind::RoundTrip => "roundtrip",
            DivergenceKind::Metamorphic => "metamorphic",
            DivergenceKind::CompileFail => "compile-fail",
            DivergenceKind::Panic => "panic",
            DivergenceKind::Invariant => "invariant",
            DivergenceKind::ExecError => "exec-error",
            DivergenceKind::OutputMismatch => "output-mismatch",
            DivergenceKind::TranslationValidation => "tv",
            DivergenceKind::StaticBound => "static-bound",
            DivergenceKind::SpanBound => "span-bound",
        }
    }
}

/// One oracle finding.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Failure class.
    pub kind: DivergenceKind,
    /// Where it happened: `"text"`, a pass name, `"reserve"`,
    /// `"eva:ckks"`, …
    pub stage: String,
    /// Human-readable specifics (panic payload, worst slot diff, …).
    pub detail: String,
}

impl Divergence {
    /// Stable identity used by the shrinker: kind + stage, without the
    /// run-specific detail.
    pub fn label(&self) -> String {
        format!("{}:{}", self.kind.as_str(), self.stage)
    }
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.label(), self.detail)
    }
}

/// Oracle configuration.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Compilation parameters handed to every compiler. The default
    /// waterline of 35 bits keeps per-op noise (≈ `2^(16 − W)`) far under
    /// the comparison tolerance.
    pub params: CompileParams,
    /// Hecate exploration budget per program (the 20k paper default is
    /// far too slow for fuzzing volume).
    pub hecate_iterations: usize,
    /// Run the real encrypted backend (the most expensive check).
    pub run_ckks: bool,
    /// Seed for the encrypted backend's keygen/encryption randomness.
    pub ckks_seed: u64,
    /// Relative tolerance for the noisy executors: the absolute tolerance
    /// is `rel_tol × (1 + max |value|)` over every live value of the
    /// program, so cancellation-heavy programs are judged against their
    /// true dynamic range.
    pub rel_tol: f64,
    /// Extra bits added to the per-op noise term of the *static-bound*
    /// check (`NoiseModel::noise_bits` is calibrated against the noise
    /// simulator; the real lattice backend's key-switching and encoding
    /// noise run a few bits higher). The margin inflates every per-op
    /// contribution uniformly, so the bound keeps the exact structural
    /// growth of the noise domain — a scale-management bug still beats it
    /// by many orders of magnitude.
    pub static_noise_margin_bits: f64,
    /// Also run the reserve compiler's BA/RA ablation modes.
    pub include_ablations: bool,
    /// Check the depgraph span bound: the parallelism profile must be
    /// internally consistent on every compile (span ≤ work, `T(k)`
    /// monotone), and on every encrypted run the measured single-threaded
    /// latency — times [`OracleConfig::span_margin`] — must dominate the
    /// span predicted by a backend-calibrated cost model.
    pub check_span_bound: bool,
    /// Multiplier on the measured latency in the span-bound check,
    /// absorbing calibration and timing jitter on tiny fuzz programs.
    pub span_margin: f64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            params: CompileParams::new(35),
            hecate_iterations: 300,
            run_ckks: true,
            ckks_seed: 0xD1FF,
            rel_tol: 1e-2,
            static_noise_margin_bits: 16.0,
            include_ablations: false,
            check_span_bound: true,
            span_margin: 1.5,
        }
    }
}

/// The compiler roster under test.
pub fn compilers(cfg: &OracleConfig) -> Vec<(&'static str, Box<dyn ScaleCompiler>)> {
    let mut v: Vec<(&'static str, Box<dyn ScaleCompiler>)> = vec![
        ("reserve", Box::new(ReserveCompiler::full())),
        ("eva", Box::new(EvaCompiler)),
        (
            "hecate",
            Box::new(HecateCompiler::with_budget(cfg.hecate_iterations)),
        ),
    ];
    if cfg.include_ablations {
        v.push(("reserve-ba", Box::new(ReserveCompiler::with_mode(Mode::Ba))));
        v.push(("reserve-ra", Box::new(ReserveCompiler::with_mode(Mode::Ra))));
    }
    v
}

/// Deterministic input vectors for a program: each input's data depends
/// only on its *name*, so a shrunk or corpus-replayed program sees the
/// same slot values as the original run. Values lie in `[-1, 1)`.
pub fn input_data(program: &Program) -> HashMap<String, Vec<f64>> {
    let slots = program.slots();
    program
        .inputs()
        .iter()
        .filter_map(|&id| match program.op(id) {
            Op::Input { name } => Some(name.clone()),
            _ => None,
        })
        .map(|name| {
            let mut rng = StdRng::seed_from_u64(fnv1a(&name) ^ 0x5EED_F00D);
            let data = (0..slots).map(|_| rng.gen_range(-1.0..1.0)).collect();
            (name, data)
        })
        .collect()
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs `f`, converting a panic into an error string.
pub fn catching<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|e| {
        if let Some(s) = e.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = e.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic with non-string payload".to_string()
        }
    })
}

/// Largest `|slot|` over *every* value of the program (not just outputs):
/// the dynamic range the noisy executors' tolerance must scale with.
fn value_magnitude(program: &Program, inputs: &HashMap<String, Vec<f64>>) -> f64 {
    let mut all = program.clone();
    all.set_outputs(program.ids().collect());
    plain::execute(&all, inputs)
        .iter()
        .flatten()
        .fold(0.0f64, |m, v| m.max(v.abs()))
}

/// Checks one program against every compiler and executor; returns every
/// divergence found (empty = the program is clean).
pub fn check_program(program: &Program, cfg: &OracleConfig) -> Vec<Divergence> {
    let mut divs = Vec::new();

    check_roundtrip(program, &mut divs);

    let inputs = input_data(program);
    let reference = match catching(|| plain::execute(program, &inputs)) {
        Ok(r) => r,
        Err(e) => {
            divs.push(Divergence {
                kind: DivergenceKind::Panic,
                stage: "plain:source".into(),
                detail: e,
            });
            return divs;
        }
    };

    let magnitude = value_magnitude(program, &inputs);
    if !magnitude.is_finite() {
        divs.push(Divergence {
            kind: DivergenceKind::Invariant,
            stage: "generator".into(),
            detail: "program evaluates to non-finite values".into(),
        });
        return divs;
    }
    let tol = cfg.rel_tol * (1.0 + magnitude);

    // Table 1's m·x_max < Q constraint: scale analysis assumes message
    // magnitudes fit the slack between a value's scale and its level's
    // modulus budget. Values of magnitude up to `m` therefore need
    // `⌈log₂(1+m)⌉ + 1` bits of reserve at the outputs, which the
    // backward allocation propagates to every intermediate. Deriving it
    // from the measured dynamic range keeps the oracle honest: without
    // it, reserve's maximize-precision schedules sit at zero slack and
    // any |value| ≥ 1 wraps modulo Q/scale in the real backend.
    let mut params = cfg.params;
    let magnitude_bits = (1.0 + magnitude).log2().ceil() as u32 + 1;
    params.output_reserve_bits = params.output_reserve_bits.max(magnitude_bits);

    check_metamorphic(program, &inputs, &reference, &mut divs);

    for (name, compiler) in compilers(cfg) {
        let compiled = match catching(|| compiler.compile(program, &params)) {
            Err(payload) => {
                divs.push(Divergence {
                    kind: DivergenceKind::Panic,
                    stage: name.into(),
                    detail: payload,
                });
                continue;
            }
            Ok(Err(e)) => {
                divs.push(Divergence {
                    kind: DivergenceKind::CompileFail,
                    stage: name.into(),
                    detail: e.to_string(),
                });
                continue;
            }
            Ok(Ok(c)) => c,
        };
        check_schedule_invariants(&compiled.scheduled, &params, name, &mut divs);
        check_translation_validation(program, &compiled, name, &mut divs);
        if cfg.check_span_bound {
            check_parallelism_profile(&compiled.report, name, &mut divs);
        }
        let magnitudes = check_interval_bounds(&compiled.scheduled, &inputs, name, &mut divs);
        check_executors(
            &compiled.scheduled,
            &inputs,
            &reference,
            &magnitudes,
            &compiled.report.memory,
            tol,
            name,
            cfg,
            &mut divs,
        );
    }
    divs
}

/// Independently re-proves the schedule bisimulates the source, and checks
/// the pipeline's recorded verdict agrees with the re-run.
fn check_translation_validation(
    program: &Program,
    compiled: &fhe_ir::pipeline::Compiled,
    compiler: &str,
    divs: &mut Vec<Divergence>,
) {
    let direct = fhe_analysis::validate(program, &compiled.scheduled);
    if let Err(mismatch) = &direct {
        divs.push(Divergence {
            kind: DivergenceKind::TranslationValidation,
            stage: compiler.into(),
            detail: format!("schedule does not bisimulate source: {mismatch}"),
        });
    }
    let recorded = compiled.report.translation_validated;
    if recorded != Some(direct.is_ok()) {
        divs.push(Divergence {
            kind: DivergenceKind::TranslationValidation,
            stage: format!("{compiler}:report"),
            detail: format!(
                "pipeline recorded translation_validated = {recorded:?}, re-run says {}",
                direct.is_ok()
            ),
        });
    }
}

/// Asserts the interval analysis dominates reality: for every live value of
/// the schedule, the statically derived magnitude bound must be ≥ the
/// magnitude the plain executor observes (IEEE rounding is monotone, so
/// endpoint interval arithmetic is a true upper bound — any violation is an
/// analysis bug). Returns the per-value magnitude bounds for the noise
/// check.
fn check_interval_bounds(
    scheduled: &ScheduledProgram,
    inputs: &HashMap<String, Vec<f64>>,
    compiler: &str,
    divs: &mut Vec<Divergence>,
) -> Vec<f64> {
    let program = &scheduled.program;
    let intervals = analyze(&IntervalDomain::default(), &AnalysisCx::source(program));
    let magnitudes: Vec<f64> = intervals.iter().map(|iv| iv.magnitude()).collect();
    let mut all = program.clone();
    all.set_outputs(program.ids().collect());
    let Ok(vals) = catching(|| plain::execute(&all, inputs)) else {
        return magnitudes; // the executor checks report the panic
    };
    let live = fhe_ir::analysis::live(program);
    for (id, slots) in program.ids().zip(&vals) {
        if !live[id.index()] {
            continue;
        }
        let observed = slots.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if observed > magnitudes[id.index()] {
            divs.push(Divergence {
                kind: DivergenceKind::StaticBound,
                stage: format!("{compiler}:interval"),
                detail: format!(
                    "{id}: observed slot magnitude {observed:.6e} beats static bound {:.6e}",
                    magnitudes[id.index()]
                ),
            });
        }
    }
    magnitudes
}

fn check_roundtrip(program: &Program, divs: &mut Vec<Divergence>) {
    let push = |divs: &mut Vec<Divergence>, detail: String| {
        divs.push(Divergence {
            kind: DivergenceKind::RoundTrip,
            stage: "text".into(),
            detail,
        });
    };
    let text = fhe_ir::text::print(program);
    let parsed = match catching(|| fhe_ir::text::parse(&text)) {
        Ok(Ok(p)) => p,
        Ok(Err(e)) => return push(divs, format!("printed program fails to parse: {e}")),
        Err(payload) => return push(divs, format!("parser panicked: {payload}")),
    };
    if let Some(diff) = structural_diff(program, &parsed) {
        push(divs, diff);
    } else if fhe_ir::text::print(&parsed) != text {
        push(divs, "printing is not idempotent".into());
    }
}

/// First structural difference between two programs, if any.
pub fn structural_diff(a: &Program, b: &Program) -> Option<String> {
    if a.name() != b.name() {
        return Some(format!("name {:?} vs {:?}", a.name(), b.name()));
    }
    if a.slots() != b.slots() {
        return Some(format!("slots {} vs {}", a.slots(), b.slots()));
    }
    if a.num_ops() != b.num_ops() {
        return Some(format!("op count {} vs {}", a.num_ops(), b.num_ops()));
    }
    for id in a.ids() {
        if a.op(id) != b.op(id) {
            return Some(format!("op {id}: {:?} vs {:?}", a.op(id), b.op(id)));
        }
    }
    if a.outputs() != b.outputs() {
        return Some(format!("outputs {:?} vs {:?}", a.outputs(), b.outputs()));
    }
    None
}

fn check_metamorphic(
    program: &Program,
    inputs: &HashMap<String, Vec<f64>>,
    reference: &[Vec<f64>],
    divs: &mut Vec<Divergence>,
) {
    let variants: [(&str, Program); 3] = [
        ("cse", passes::cse(program).0),
        ("dce", passes::dce(program).0),
        ("cleanup", passes::cleanup(program)),
    ];
    for (pass, variant) in variants {
        match catching(|| plain::execute(&variant, inputs)) {
            Err(payload) => divs.push(Divergence {
                kind: DivergenceKind::Panic,
                stage: format!("plain:{pass}"),
                detail: payload,
            }),
            Ok(outputs) => {
                // Every cleanup rewrite is IEEE-exact, so "preserved
                // semantics" means bit-identical, not merely close.
                let worst = max_abs_diff(&outputs, reference);
                if worst != 0.0 {
                    divs.push(Divergence {
                        kind: DivergenceKind::Metamorphic,
                        stage: pass.into(),
                        detail: format!("max |Δ| = {worst:.3e} after {pass}"),
                    });
                }
            }
        }
    }
}

/// Re-derives the scale map and asserts the type-system invariants the
/// paper's Table 1 imposes, independently of the compilers' own
/// validation calls.
fn check_schedule_invariants(
    scheduled: &ScheduledProgram,
    params: &CompileParams,
    compiler: &str,
    divs: &mut Vec<Divergence>,
) {
    let mut push = |detail: String| {
        divs.push(Divergence {
            kind: DivergenceKind::Invariant,
            stage: compiler.into(),
            detail,
        });
    };
    let map = match scheduled.validate() {
        Ok(map) => map,
        Err(errs) => {
            let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
            push(format!("schedule fails validation: {}", msgs.join("; ")));
            return;
        }
    };
    let program = &scheduled.program;
    let live = fhe_ir::analysis::live(program);
    let waterline = f64::from(params.waterline_bits);
    let rescale = f64::from(params.rescale_bits);
    for id in program.ids() {
        if !live[id.index()] || !program.is_cipher(id) {
            continue;
        }
        let scale = map.scale_bits(id).to_f64();
        let level = map.level(id);
        if scale < waterline - 1e-9 {
            push(format!(
                "{id}: scale 2^{scale:.2} below waterline 2^{waterline}"
            ));
        }
        if scale > f64::from(level) * rescale + 1e-9 {
            push(format!(
                "{id}: scale 2^{scale:.2} exceeds modulus 2^{} at level {level}",
                f64::from(level) * rescale
            ));
        }
        if level > params.max_level {
            push(format!(
                "{id}: level {level} exceeds max level {}",
                params.max_level
            ));
        }
        // Level monotonicity: an op's result level never exceeds its
        // cipher operands' minimum (rescale/modswitch must drop exactly
        // one).
        let operand_min = program
            .op(id)
            .operands()
            .filter(|&o| program.is_cipher(o))
            .map(|o| map.level(o))
            .min();
        if let Some(lmin) = operand_min {
            let bound = match program.op(id) {
                Op::Rescale(_) | Op::ModSwitch(_) => lmin.saturating_sub(1),
                _ => lmin,
            };
            if level > bound {
                push(format!(
                    "{id}: level {level} above operand bound {bound} ({})",
                    program.op(id).mnemonic()
                ));
            }
        }
    }
}

/// Whether every live cipher value's magnitude fits the slack between its
/// scheduled scale and its level's modulus budget (`|v|·2^scale < Q_l/2`).
/// The type system only guarantees encrypted correctness under this
/// condition; EVA and Hecate never receive the magnitude-derived output
/// reserve (they ignore `output_reserve_bits`), so a schedule can be
/// well-typed yet wrap in the real backend. Such runs are skipped, not
/// flagged — they are outside the guarantee, not a divergence.
pub fn schedule_fits_backend(
    scheduled: &ScheduledProgram,
    inputs: &HashMap<String, Vec<f64>>,
) -> bool {
    let Ok(map) = scheduled.validate() else {
        return false;
    };
    let program = &scheduled.program;
    let mut all = program.clone();
    all.set_outputs(program.ids().collect());
    let Ok(vals) = catching(|| plain::execute(&all, inputs)) else {
        return false;
    };
    let rescale = f64::from(scheduled.params.rescale_bits);
    let live = fhe_ir::analysis::live(program);
    for (id, slots) in program.ids().zip(&vals) {
        if !live[id.index()] || !program.is_cipher(id) {
            continue;
        }
        // The backend realizes an upscale as an exact integer scalar
        // multiply, so a factor far from any integer (a small
        // fractional-bit delta like 2^(1/2)) drifts the actual scale away
        // from the scheduled one — unrealizable in an integer plaintext
        // ring, and outside the encrypted-correctness guarantee.
        if let Op::Upscale(_, delta) = program.op(id) {
            let factor = 2f64.powf(delta.to_f64());
            if factor < 2f64.powi(53) && (factor.round() - factor).abs() / factor > 1e-8 {
                return false;
            }
        }
        let mag = slots.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if mag == 0.0 {
            continue;
        }
        let scale = map.scale_bits(id).to_f64();
        let budget = f64::from(map.level(id)) * rescale;
        // One bit covers the `< Q/2` half plus the chain primes sitting
        // fractionally below 2^rescale.
        if mag.log2() + scale > budget - 1.0 {
            return false;
        }
    }
    true
}

#[allow(clippy::too_many_arguments)]
fn check_executors(
    scheduled: &ScheduledProgram,
    inputs: &HashMap<String, Vec<f64>>,
    reference: &[Vec<f64>],
    magnitudes: &[f64],
    static_mem: &fhe_ir::MemoryEstimate,
    tol: f64,
    compiler: &str,
    cfg: &OracleConfig,
    divs: &mut Vec<Divergence>,
) {
    let mut noisy_outputs: Vec<(String, Vec<Vec<f64>>)> = Vec::new();
    let mut executors: Vec<(&str, Box<dyn Executor>, f64)> = vec![
        ("plain", Box::new(PlainExec), 0.0),
        ("noise-sim", Box::new(NoiseSimExec::default()), tol),
    ];
    if cfg.run_ckks && schedule_fits_backend(scheduled, inputs) {
        let backend = ExecOptions {
            poly_degree: scheduled.program.slots() * 2,
            seed: cfg.ckks_seed,
            threads: 1,
            ..ExecOptions::default()
        };
        executors.push((
            "ckks",
            Box::new(CkksExec {
                options: backend.clone(),
            }),
            tol,
        ));
        // The DAG-parallel executor at the same backend options: checked
        // against the reference like the others, and bit-for-bit against
        // the serial backend below.
        executors.push((
            "ckks-par",
            Box::new(ParCkksExec {
                options: ParOptions {
                    exec: backend,
                    workers: 4,
                    fusion: true,
                },
            }),
            tol,
        ));
    }
    let mut ckks_bits: Option<Vec<Vec<u64>>> = None;
    let to_bits = |outs: &[Vec<f64>]| -> Vec<Vec<u64>> {
        outs.iter()
            .map(|v| v.iter().map(|x| x.to_bits()).collect())
            .collect()
    };
    for (exec_name, executor, allowed) in executors {
        let stage = format!("{compiler}:{exec_name}");
        let run = match catching(|| executor.execute(scheduled, inputs)) {
            Err(payload) => {
                divs.push(Divergence {
                    kind: DivergenceKind::Panic,
                    stage,
                    detail: payload,
                });
                continue;
            }
            Ok(Err(errs)) => {
                let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
                divs.push(Divergence {
                    kind: DivergenceKind::ExecError,
                    stage,
                    detail: msgs.join("; "),
                });
                continue;
            }
            Ok(Ok(run)) => run,
        };
        let worst = max_abs_diff(&run.outputs, reference);
        if worst > allowed {
            divs.push(Divergence {
                kind: DivergenceKind::OutputMismatch,
                stage,
                detail: format!("max |Δ| vs reference = {worst:.3e} > {allowed:.3e}"),
            });
            continue;
        }
        if exec_name == "ckks" {
            ckks_bits = Some(to_bits(&run.outputs));
        }
        // Parallel walk, fusion and hoisting must be byte-transparent:
        // the parallel backend reproduces the serial backend exactly, not
        // merely within tolerance.
        if exec_name == "ckks-par" {
            if let Some(serial) = &ckks_bits {
                if *serial != to_bits(&run.outputs) {
                    divs.push(Divergence {
                        kind: DivergenceKind::OutputMismatch,
                        stage: format!("{compiler}:ckks~ckks-par:bits"),
                        detail: "parallel executor diverges bitwise from serial backend".into(),
                    });
                }
            }
        }
        if exec_name == "ckks" {
            check_noise_bound(
                scheduled,
                magnitudes,
                &run.outputs,
                reference,
                compiler,
                cfg,
                divs,
            );
            if cfg.check_span_bound {
                check_span_bound(scheduled, run.trace.op_time, compiler, cfg, divs);
            }
            // The compiler's static working-set estimate must dominate the
            // peak the runtime's pool + key accounting actually measured
            // (both sides exclude encoder scratch).
            if run.trace.mem.peak_bytes > static_mem.peak_bytes {
                divs.push(Divergence {
                    kind: DivergenceKind::StaticBound,
                    stage: format!("{compiler}:memory"),
                    detail: format!(
                        "measured peak {} bytes beats static bound {} bytes (poly {} + keys {})",
                        run.trace.mem.peak_bytes,
                        static_mem.peak_bytes,
                        static_mem.poly_peak_bytes,
                        static_mem.key_bytes
                    ),
                });
            }
        }
        if allowed > 0.0 {
            noisy_outputs.push((exec_name.to_string(), run.outputs));
        }
    }
    // Pairwise agreement between the noisy executors (each is within
    // `tol` of the reference, so demand `2·tol` of each other).
    check_pairwise(&noisy_outputs, tol, compiler, divs);
}

/// Internal consistency of the parallelism profile every compile report
/// now carries: span never exceeds work, `T(1)` equals work, `T(k)` is
/// nonincreasing in `k`, and every `T(k)` is bracketed by span and work.
fn check_parallelism_profile(
    report: &fhe_ir::pipeline::CompileReport,
    compiler: &str,
    divs: &mut Vec<Divergence>,
) {
    let p = &report.parallelism;
    let mut push = |detail: String| {
        divs.push(Divergence {
            kind: DivergenceKind::SpanBound,
            stage: format!("{compiler}:profile"),
            detail,
        });
    };
    let eps = 1e-6 + p.work_us * 1e-9;
    if p.span_us > p.work_us + eps {
        push(format!(
            "span {:.3}us exceeds work {:.3}us",
            p.span_us, p.work_us
        ));
    }
    if let Some(&(k1, t1)) = p.t_of_k.first() {
        if k1 != 1 || (t1 - p.work_us).abs() > eps {
            push(format!(
                "T({k1}) = {t1:.3}us but the profile must start at T(1) = work = {:.3}us",
                p.work_us
            ));
        }
    }
    let mut prev = f64::INFINITY;
    for &(k, t) in &p.t_of_k {
        if t > prev + eps {
            push(format!("T(k) is not monotone: T({k}) = {t:.3}us rises"));
        }
        if t + eps < p.span_us || t > p.work_us + eps {
            push(format!(
                "T({k}) = {t:.3}us outside [span {:.3}, work {:.3}]",
                p.span_us, p.work_us
            ));
        }
        prev = t;
    }
}

/// The measured single-threaded encrypted latency must dominate the span a
/// backend-calibrated cost model predicts: the span is the latency floor a
/// DAG-parallel executor could reach, so a serial run beating it means the
/// static analysis under-costs the schedule. The margin absorbs timing
/// jitter, and hoisted rotation-group members (which the backend computes
/// with a shared decomposition, cheaper than the calibrated lone rotation)
/// are credited back explicitly.
fn check_span_bound(
    scheduled: &ScheduledProgram,
    op_time: std::time::Duration,
    compiler: &str,
    cfg: &OracleConfig,
    divs: &mut Vec<Divergence>,
) {
    use fhe_ir::OpClass;
    use std::sync::{Mutex, OnceLock};

    let Ok(map) = scheduled.validate() else {
        return; // invariant checks already flagged this
    };
    let slots = scheduled.program.slots();
    let levels = map.max_level() as usize;
    let rescale_bits = scheduled.params.rescale_bits;

    type CalibrationCache = Mutex<HashMap<(usize, u32, usize), fhe_ir::CostModel>>;
    static CACHE: OnceLock<CalibrationCache> = OnceLock::new();
    let model = {
        let mut cache = CACHE
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("calibration cache poisoned");
        cache
            .entry((slots, rescale_bits, levels))
            .or_insert_with(|| {
                fhe_runtime::microbench::calibrate_backend(slots, rescale_bits, levels, 3, 0xCA1B)
            })
            .clone()
    };

    let graph = fhe_ir::DepGraph::build(scheduled, &map, &model, true);
    let est = graph.estimate();

    // Credit for hoisted rotation groups: every non-leader member runs on
    // a shared decomposition, so its real cost can undercut the calibrated
    // lone-rotation cost by up to the full rotation latency.
    let program = &scheduled.program;
    let live = fhe_ir::analysis::live(program);
    let mut group_sizes: HashMap<ValueId, (usize, f64)> = HashMap::new();
    for id in program.ids() {
        if live[id.index()] && program.is_cipher(id) {
            if let Op::Rotate(a, _) = program.op(id) {
                let e = group_sizes.entry(*a).or_insert((0, 0.0));
                e.0 += 1;
                e.1 += model.at_level(OpClass::Rotate, map.level(id));
            }
        }
    }
    let hoist_credit_us: f64 = group_sizes
        .values()
        .filter(|&&(n, _)| n >= 2)
        .map(|&(n, total)| total * (n - 1) as f64 / n as f64)
        .sum();

    let measured_us = op_time.as_secs_f64() * 1e6;
    let allowed = measured_us * cfg.span_margin + hoist_credit_us + 200.0;
    if est.span_us > allowed {
        divs.push(Divergence {
            kind: DivergenceKind::SpanBound,
            stage: format!("{compiler}:measured"),
            detail: format!(
                "calibrated span {:.1}us exceeds measured single-thread latency {:.1}us \
                 (margin x{:.2} + hoist credit {:.1}us)",
                est.span_us, measured_us, cfg.span_margin, hoist_credit_us
            ),
        });
    }
}

/// The static noise estimate — the noise domain fed with the interval
/// analysis's per-value magnitudes — must dominate the error the encrypted
/// backend actually produced on every output.
#[allow(clippy::too_many_arguments)]
fn check_noise_bound(
    scheduled: &ScheduledProgram,
    magnitudes: &[f64],
    outputs: &[Vec<f64>],
    reference: &[Vec<f64>],
    compiler: &str,
    cfg: &OracleConfig,
    divs: &mut Vec<Divergence>,
) {
    let Ok(map) = scheduled.validate() else {
        return; // invariant checks already flagged this
    };
    let model = fhe_runtime::NoiseModel::default();
    let domain = NoiseDomain {
        noise_bits: model.noise_bits + cfg.static_noise_margin_bits,
        magnitudes: MagnitudeSource::PerValue(magnitudes.to_vec()),
    };
    let bounds = analyze(&domain, &AnalysisCx::scheduled(&scheduled.program, &map));
    // Both the plain reference and the backend's encode/decode pipeline run
    // in f64 and accumulate *different* roundings — up to ulp-scale
    // differences per op. Allow `num_ops` ulps of the largest intermediate
    // magnitude on top of the lattice-noise bound; still ~13 orders of
    // magnitude below the O(1) error of a genuine scale-management bug.
    let fp_slop = magnitudes.iter().copied().fold(1.0f64, f64::max)
        * f64::EPSILON
        * scheduled.program.num_ops() as f64;
    for (k, (&out_id, (got, want))) in scheduled
        .program
        .outputs()
        .iter()
        .zip(outputs.iter().zip(reference))
        .enumerate()
    {
        let observed = got
            .iter()
            .zip(want)
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
        let bound = bounds[out_id.index()] + fp_slop;
        if observed > bound {
            divs.push(Divergence {
                kind: DivergenceKind::StaticBound,
                stage: format!("{compiler}:noise"),
                detail: format!(
                    "output #{k}: observed encrypted error {observed:.6e} beats static \
                     estimate {bound:.6e}"
                ),
            });
        }
    }
}

fn check_pairwise(
    noisy_outputs: &[(String, Vec<Vec<f64>>)],
    tol: f64,
    compiler: &str,
    divs: &mut Vec<Divergence>,
) {
    for i in 0..noisy_outputs.len() {
        for j in i + 1..noisy_outputs.len() {
            let (ref a_name, ref a) = noisy_outputs[i];
            let (ref b_name, ref b) = noisy_outputs[j];
            let worst = max_abs_diff(a, b);
            if worst > 2.0 * tol {
                divs.push(Divergence {
                    kind: DivergenceKind::OutputMismatch,
                    stage: format!("{compiler}:{a_name}~{b_name}"),
                    detail: format!("pairwise max |Δ| = {worst:.3e} > {:.3e}", 2.0 * tol),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn input_data_depends_only_on_names() {
        let cfg = GenConfig::default();
        let p = generate(7, &cfg);
        let a = input_data(&p);
        let b = input_data(&p);
        assert_eq!(a, b);
        // Different inputs get different data.
        if a.len() >= 2 {
            let vals: Vec<&Vec<f64>> = a.values().collect();
            assert_ne!(vals[0], vals[1]);
        }
    }

    #[test]
    fn clean_programs_produce_no_divergences() {
        let cfg = GenConfig::default();
        let oracle = OracleConfig {
            run_ckks: false,
            ..OracleConfig::default()
        };
        for seed in 100..110 {
            let p = generate(seed, &cfg);
            let divs = check_program(&p, &oracle);
            assert!(divs.is_empty(), "seed {seed}: {divs:?}");
        }
    }

    #[test]
    fn span_bound_holds_on_encrypted_runs() {
        // Small rings keep the encrypted backend and its calibration fast;
        // width stress makes the span/work gap nontrivial.
        let cfg = GenConfig {
            slots: 16,
            width_stress: 6,
            ..GenConfig::default()
        };
        let oracle = OracleConfig::default();
        for seed in 300..303 {
            let p = generate(seed, &cfg);
            let divs = check_program(&p, &oracle);
            assert!(divs.is_empty(), "seed {seed}: {divs:?}");
        }
    }

    #[test]
    fn inconsistent_profile_is_flagged() {
        let p = generate(7, &GenConfig::default());
        let compiled = reserve_core::ReserveCompiler::full()
            .compile(&p, &CompileParams::new(35))
            .expect("compiles");
        let mut report = compiled.report;
        report.parallelism.span_us = report.parallelism.work_us * 2.0 + 1.0;
        let mut divs = Vec::new();
        super::check_parallelism_profile(&report, "reserve", &mut divs);
        assert!(divs
            .iter()
            .any(|d| d.kind == DivergenceKind::SpanBound && d.detail.contains("exceeds work")));
    }

    #[test]
    fn catching_captures_panics() {
        assert_eq!(catching(|| 3).unwrap(), 3);
        let err = catching(|| panic!("boom {}", 1)).unwrap_err();
        assert!(err.contains("boom"), "got {err}");
    }
}
