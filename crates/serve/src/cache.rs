//! Content-addressed compile cache.
//!
//! Maps `(program text, compile params, compiler id)` to the compiled
//! [`ScheduledProgram`] (shared as an [`Arc`], so hits cost one clone of a
//! pointer) plus the original [`CompileReport`]. The key is the *printed*
//! program text — two structurally identical programs submitted under
//! different names still hash to different text and miss, which is the
//! conservative choice for a service boundary: the printed text is exactly
//! what the client sent.
//!
//! Entries are evicted least-recently-used under an optional byte budget
//! (estimated: text + per-op footprint + constant payloads). Evicted
//! entries recompile on the next request; compilation is deterministic, so
//! the recompiled schedule is structurally identical to the evicted one
//! (see [`fhe_ir::Program::structural_hash`] — the cache-correctness tests
//! pin this down).

use fhe_conc::sync::{Arc, Condvar, Mutex};
use std::collections::{HashMap, HashSet};

use fhe_ir::pipeline::{CompileError, CompileReport, ScaleCompiler};
use fhe_ir::{text, CompileParams, ConstValue, Op, Program, ScheduledProgram};

/// Full cache key: nothing is ever looked up by a digest alone, so hash
/// collisions cannot alias two different programs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    text: String,
    params: CompileParams,
    compiler: String,
}

#[derive(Debug, Clone)]
struct Entry {
    scheduled: Arc<ScheduledProgram>,
    report: CompileReport,
    bytes: u64,
    /// Monotonic last-use tick for LRU eviction.
    tick: u64,
}

/// Counters describing a [`CompileCache`]'s traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that compiled.
    pub misses: u64,
    /// Entries evicted under the byte budget.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Estimated bytes currently cached.
    pub bytes: u64,
    /// High-water mark of [`CacheStats::bytes`].
    pub peak_bytes: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    /// Keys currently compiling (single-flight claims): a racing lookup
    /// waits for the claim holder instead of compiling a duplicate.
    in_flight: HashSet<CacheKey>,
    bytes: u64,
    peak_bytes: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The result of one cache lookup: the shared schedule, the compile report
/// of the (possibly cached) compilation, and whether it was a hit.
#[derive(Debug, Clone)]
pub struct CachedCompile {
    /// The scheduled program, shared with every other holder.
    pub scheduled: Arc<ScheduledProgram>,
    /// The report of the compilation that produced the entry.
    pub report: CompileReport,
    /// `true` when the entry was served without compiling.
    pub hit: bool,
}

/// Thread-safe LRU compile cache under an optional byte budget.
#[derive(Debug)]
pub struct CompileCache {
    budget_bytes: Option<u64>,
    inner: Mutex<Inner>,
    /// Signalled whenever an in-flight compile finishes (or fails), so
    /// waiters re-check the map.
    flight_done: Condvar,
}

/// Removes the single-flight claim on drop — including an unwinding
/// compiler panic — so waiters never hang on an abandoned claim.
struct FlightClaim<'a> {
    cache: &'a CompileCache,
    key: CacheKey,
}

impl Drop for FlightClaim<'_> {
    fn drop(&mut self) {
        let mut inner = self.cache.inner.lock().expect("compile cache lock");
        inner.in_flight.remove(&self.key);
        self.cache.flight_done.notify_all();
    }
}

/// Estimated resident footprint of one cached entry: the key text, a
/// fixed per-op footprint for both the source and the scheduled program,
/// and the payload of vector constants (shared via `Arc`, counted once).
fn entry_bytes(scheduled: &ScheduledProgram, key_text: &str) -> u64 {
    let program = &scheduled.program;
    let mut bytes = key_text.len() as u64 + 256;
    bytes += program.ops().len() as u64 * 96;
    for op in program.ops() {
        if let Op::Const {
            value: ConstValue::Vector(v),
        } = op
        {
            bytes += v.len() as u64 * 8;
        }
        if let Op::Input { name } = op {
            bytes += name.len() as u64;
        }
    }
    bytes
}

impl CompileCache {
    /// An empty cache holding at most `budget_bytes` of entries
    /// (`None` = unbounded). The budget never evicts the entry being
    /// inserted, so a single oversized program still caches.
    pub fn new(budget_bytes: Option<u64>) -> CompileCache {
        CompileCache {
            budget_bytes,
            inner: Mutex::new(Inner::default()),
            flight_done: Condvar::new(),
        }
    }

    /// Looks up `(program, params, compiler.name())`, compiling on a miss.
    ///
    /// Compilation runs outside the cache lock, so a slow compile never
    /// blocks hits on other keys. Misses are **single-flight**: a lookup
    /// racing an in-flight compile of the same key waits for it and is
    /// served the inserted entry as a hit, so each unique key compiles
    /// exactly once under contention and the miss counter is
    /// deterministic regardless of worker interleaving.
    ///
    /// # Errors
    ///
    /// Propagates the compiler's [`CompileError`]. Failures are not
    /// cached: a failing program re-fails (cheaply) on every request,
    /// and a waiter racing a failed compile retries the compile itself.
    pub fn get_or_compile(
        &self,
        program: &Program,
        params: &CompileParams,
        compiler: &dyn ScaleCompiler,
    ) -> Result<CachedCompile, CompileError> {
        let key = CacheKey {
            text: text::print(program),
            params: *params,
            compiler: compiler.name().to_string(),
        };
        {
            let mut inner = self.inner.lock().expect("compile cache lock");
            loop {
                inner.tick += 1;
                let tick = inner.tick;
                if let Some(entry) = inner.map.get_mut(&key) {
                    entry.tick = tick;
                    let out = CachedCompile {
                        scheduled: entry.scheduled.clone(),
                        report: entry.report.clone(),
                        hit: true,
                    };
                    inner.hits += 1;
                    return Ok(out);
                }
                if !inner.in_flight.contains(&key) {
                    break;
                }
                inner = self.flight_done.wait(inner).expect("compile cache lock");
            }
            inner.in_flight.insert(key.clone());
            inner.misses += 1;
        }
        let claim = FlightClaim { cache: self, key };

        let compiled = compiler.compile(program, params)?;
        let scheduled = Arc::new(compiled.scheduled);
        let report = compiled.report;
        let bytes = entry_bytes(&scheduled, &claim.key.text);

        let mut inner = self.inner.lock().expect("compile cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        // The claim guarantees exclusive insertion rights for this key.
        inner.map.insert(
            claim.key.clone(),
            Entry {
                scheduled: scheduled.clone(),
                report: report.clone(),
                bytes,
                tick,
            },
        );
        inner.bytes += bytes;
        if let Some(budget) = self.budget_bytes {
            while inner.bytes > budget && inner.map.len() > 1 {
                let victim = inner
                    .map
                    .iter()
                    .filter(|(_, e)| e.tick != tick)
                    .min_by_key(|(_, e)| e.tick)
                    .map(|(k, _)| k.clone());
                let Some(victim) = victim else { break };
                let evicted = inner.map.remove(&victim).expect("victim present");
                inner.bytes -= evicted.bytes;
                inner.evictions += 1;
            }
        }
        inner.peak_bytes = inner.peak_bytes.max(inner.bytes);
        Ok(CachedCompile {
            scheduled,
            report,
            hit: false,
        })
    }

    /// A snapshot of the cache's counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("compile cache lock");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
            bytes: inner.bytes,
            peak_bytes: inner.peak_bytes,
        }
    }

    /// Drops every entry (counters are kept). Used by the cold phase of
    /// the `serve` bench.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("compile cache lock");
        inner.map.clear();
        inner.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::Builder;
    use reserve_core::ReserveCompiler;

    fn fig2a(name: &str, slots: usize) -> Program {
        let b = Builder::new(name, slots);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        b.finish(vec![q])
    }

    #[test]
    fn hit_on_same_key_miss_on_different_params_or_compiler() {
        let cache = CompileCache::new(None);
        let p = fig2a("fig2a", 8);
        let compiler = ReserveCompiler::full();
        let params = CompileParams::new(30);

        let a = cache.get_or_compile(&p, &params, &compiler).unwrap();
        assert!(!a.hit);
        let b = cache.get_or_compile(&p, &params, &compiler).unwrap();
        assert!(b.hit);
        assert!(Arc::ptr_eq(&a.scheduled, &b.scheduled));

        // Same text, different params: must miss.
        let c = cache
            .get_or_compile(&p, &CompileParams::new(25), &compiler)
            .unwrap();
        assert!(!c.hit);

        // Same text + params, different compiler: must miss.
        let d = cache
            .get_or_compile(&p, &params, &fhe_baselines::EvaCompiler)
            .unwrap();
        assert!(!d.hit);

        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 3, 3));
        assert!(stats.bytes > 0 && stats.peak_bytes >= stats.bytes);
    }

    #[test]
    fn lru_eviction_under_byte_budget_recompiles_identically() {
        let compiler = ReserveCompiler::full();
        let params = CompileParams::new(30);
        let p1 = fig2a("one", 8);
        let p2 = fig2a("two", 8);

        // Budget sized for roughly one entry: inserting the second evicts
        // the least-recently-used first.
        let probe = CompileCache::new(None);
        let one = probe.get_or_compile(&p1, &params, &compiler).unwrap();
        let budget = probe.stats().bytes + probe.stats().bytes / 2;

        let cache = CompileCache::new(Some(budget));
        let a = cache.get_or_compile(&p1, &params, &compiler).unwrap();
        cache.get_or_compile(&p2, &params, &compiler).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes <= budget);

        // The evicted entry recompiles — a miss — but the recompiled
        // schedule is structurally identical to the evicted one.
        let again = cache.get_or_compile(&p1, &params, &compiler).unwrap();
        assert!(!again.hit);
        assert_eq!(
            again.scheduled.structural_hash(),
            a.scheduled.structural_hash()
        );
        assert_eq!(
            again.scheduled.structural_hash(),
            one.scheduled.structural_hash()
        );
    }

    #[test]
    fn cold_key_compiles_exactly_once_under_contention() {
        // Single-flight: many threads racing the same cold key produce
        // exactly one miss (the compile) — the rest wait and hit. This
        // holds for any interleaving, so the assertion is deterministic.
        let cache = CompileCache::new(None);
        let p = fig2a("contended", 8);
        let compiler = ReserveCompiler::full();
        let params = CompileParams::new(30);
        const THREADS: usize = 8;

        let results: Vec<CachedCompile> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| scope.spawn(|| cache.get_or_compile(&p, &params, &compiler).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "one compile no matter the interleaving");
        assert_eq!(stats.hits, THREADS as u64 - 1);
        assert_eq!(stats.entries, 1);
        for r in &results[1..] {
            assert!(
                Arc::ptr_eq(&results[0].scheduled, &r.scheduled),
                "everyone shares the single compiled schedule"
            );
        }
    }

    #[test]
    fn name_changes_the_text_and_therefore_the_key() {
        // The service boundary is the client's text: renaming the program
        // changes the text, so it misses even though the structure (and
        // structural hash) is unchanged.
        let cache = CompileCache::new(None);
        let compiler = ReserveCompiler::full();
        let params = CompileParams::new(30);
        let a = cache
            .get_or_compile(&fig2a("alpha", 8), &params, &compiler)
            .unwrap();
        let b = cache
            .get_or_compile(&fig2a("beta", 8), &params, &compiler)
            .unwrap();
        assert!(!b.hit);
        assert_eq!(a.scheduled.structural_hash(), b.scheduled.structural_hash());
    }
}
