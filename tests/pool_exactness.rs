//! Property tests for the memory subsystem: pooled buffer reuse and lazy
//! key-cache eviction must be invisible in the outputs.
//!
//! Over a rotation-heavy fuzz op mix, the encrypted executor runs each
//! schedule under several Galois-key budgets. Evicted keys regenerate from
//! per-element RNG streams, so every budget must produce *bit-identical*
//! outputs — any divergence means the pool handed out a stale buffer or
//! the cache regenerated a different key. (The eager policies draw keys
//! from the main RNG stream and are compared against the plaintext
//! reference instead, not bitwise.)
//!
//! The workspace builds offline (no proptest): deterministic seeded loops,
//! every case reproducible from its printed seed.

use fhe_fuzz::{generate, input_data, schedule_fits_backend, GenConfig, OpMix};
use fhe_reserve::compiler as reserve;
use fhe_reserve::runtime::{execute_encrypted, ExecOptions, KeyPolicy};

#[test]
fn key_budgets_and_pool_reuse_are_bit_exact() {
    let cfg = GenConfig {
        opmix: OpMix {
            rotate: 8,
            ..OpMix::default()
        },
        max_ops: 30,
        ..GenConfig::default()
    };
    // Most generated rotate-heavy programs overflow the waterline-35
    // modulus budget or pick fractional upscale factors the backend can't
    // realise; ~8% survive `schedule_fits_backend`, so 300 seeds yields a
    // stable 20+ exercised programs.
    let mut checked = 0usize;
    for seed in 0..300u64 {
        let program = generate(seed, &cfg);
        let inputs = input_data(&program);
        let Ok(compiled) = reserve::compile(&program, &reserve::Options::new(35)) else {
            continue;
        };
        if !schedule_fits_backend(&compiled.scheduled, &inputs) {
            continue;
        }
        let opts = |keys: KeyPolicy, hoist: bool| ExecOptions {
            poly_degree: program.slots() * 2,
            seed: 0xF00D,
            threads: 1,
            keys,
            rotation_hoisting: hoist,
        };
        let unbounded = execute_encrypted(
            &compiled.scheduled,
            &inputs,
            &opts(KeyPolicy::Lazy { budget_bytes: None }, true),
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
        // A one-byte budget evicts after every use; a mid-size budget
        // churns; both must regenerate bit-identical keys.
        for budget in [1usize, 200_000] {
            let run = execute_encrypted(
                &compiled.scheduled,
                &inputs,
                &opts(
                    KeyPolicy::Lazy {
                        budget_bytes: Some(budget),
                    },
                    true,
                ),
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            assert_eq!(
                unbounded.outputs, run.outputs,
                "seed {seed}: key budget {budget} changed outputs"
            );
        }
        // Re-running identical options must be deterministic even though
        // the pool's hit/miss pattern differs between cold and warm paths
        // across ops.
        let again = execute_encrypted(
            &compiled.scheduled,
            &inputs,
            &opts(KeyPolicy::Lazy { budget_bytes: None }, true),
        )
        .unwrap();
        assert_eq!(
            unbounded.outputs, again.outputs,
            "seed {seed}: not deterministic"
        );
        // Disabling hoisting changes the key-switch evaluation order, so
        // compare against the plaintext reference, not bitwise.
        let compact = execute_encrypted(
            &compiled.scheduled,
            &inputs,
            &opts(KeyPolicy::Lazy { budget_bytes: None }, false),
        )
        .unwrap();
        assert!(
            compact.max_abs_error() < 1e-1,
            "seed {seed}: unhoisted error {}",
            compact.max_abs_error()
        );
        assert!(
            unbounded.mem.peak_bytes > 0 && unbounded.mem.pool_hit_rate() >= 0.0,
            "seed {seed}: memory counters missing"
        );
        checked += 1;
    }
    assert!(
        checked >= 20,
        "only {checked} programs exercised the backend"
    );
}
