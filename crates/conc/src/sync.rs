//! The `fhe_sync` facade: the one import surface the workspace's
//! concurrent code uses for synchronization primitives.
//!
//! * Without `--cfg fhe_conc` (all production and tier-1 builds) every name
//!   here is a **zero-cost re-export** of `std::sync` / `std::thread` —
//!   there is no wrapper type, no indirection, no runtime cost.
//! * With `--cfg fhe_conc` every name is a checker shim whose operations
//!   are schedule points (see the crate docs).
//!
//! # Memory-ordering contract of the checker shims
//!
//! The checker explores **interleavings under sequential consistency**:
//!
//! * Every atomic operation executes with SeqCst-equivalent visibility,
//!   *regardless* of the [`atomic::Ordering`] argument. `SeqCst` and
//!   `AcqRel`/`Acquire`/`Release` protocols are therefore modeled
//!   **faithfully** — on these orderings an interleaving exhibiting a bug
//!   under the real memory model also exists under sequential consistency.
//! * `Relaxed` is **not weakened**: bugs that require genuine weak-memory
//!   effects (store buffering, load/store reordering of `Relaxed`
//!   accesses) are out of the checker's scope. The workspace uses
//!   `Relaxed` only for statistics counters whose invariants are
//!   order-insensitive sums, where this is sound.
//! * [`Condvar::wait`] never wakes **spuriously** under the checker
//!   (protocols must still guard with `while` — std may wake spuriously),
//!   and [`Condvar::notify_one`] wakes the longest-waiting thread (FIFO);
//!   std makes no fairness promise.
//! * Mutex **poisoning** is not modeled: shim locks always return `Ok`. A
//!   panicking model thread fails the whole model anyway.

#[cfg(not(fhe_conc))]
pub use std::sync::{
    Arc, Condvar, LockResult, Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard,
    RwLockWriteGuard, Weak,
};

/// Atomic types (std re-exports, or checker shims under `fhe_conc`).
#[cfg(not(fhe_conc))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// Thread spawning and yielding (std re-exports, or checker shims under
/// `fhe_conc`).
#[cfg(not(fhe_conc))]
pub mod thread {
    pub use std::thread::{current, spawn, yield_now, Builder, JoinHandle};
}

#[cfg(fhe_conc)]
pub use crate::shim::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
#[cfg(fhe_conc)]
pub use std::sync::{Arc, LockResult, OnceLock, Weak};

/// Atomic types (checker shims: every operation is a schedule point).
#[cfg(fhe_conc)]
pub mod atomic {
    pub use crate::shim::{AtomicBool, AtomicU64, AtomicUsize};
    pub use std::sync::atomic::Ordering;
}

/// Thread spawning and yielding (checker shims: spawned threads are
/// scheduled by the checker; `yield_now` is a plain schedule point).
#[cfg(fhe_conc)]
pub mod thread {
    pub use crate::shim::thread::{spawn, yield_now, Builder, JoinHandle};
    pub use std::thread::current;
}
