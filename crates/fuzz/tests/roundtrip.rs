//! Property test: `parse(print(p))` reproduces every generated program
//! structurally — names, slot counts, op sequences (negative constants,
//! rotate offsets), and multi-output returns all survive the text format.
//! The oracle runs the same check per seed during fuzzing; this test
//! pins it at volume with op mixes the default sweep de-emphasizes.

use fhe_fuzz::{generate, structural_diff, GenConfig, OpMix};
use fhe_ir::text;

fn assert_roundtrip(seed: u64, cfg: &GenConfig) {
    let p = generate(seed, cfg);
    let printed = text::print(&p);
    let reparsed = text::parse(&printed)
        .unwrap_or_else(|e| panic!("seed {seed}: printed program fails to parse: {e}\n{printed}"));
    if let Some(diff) = structural_diff(&p, &reparsed) {
        panic!("seed {seed}: round-trip diverged: {diff}\n{printed}");
    }
    // print is deterministic on the reparsed program too.
    assert_eq!(
        printed,
        text::print(&reparsed),
        "seed {seed}: unstable print"
    );
}

#[test]
fn default_mix_roundtrips() {
    let cfg = GenConfig::default();
    for seed in 0..200 {
        assert_roundtrip(seed, &cfg);
    }
}

#[test]
fn rotation_and_const_heavy_mix_roundtrips() {
    // Stress the cases with textual quirks: signed rotate offsets and
    // negative / fractional constants.
    let cfg = GenConfig {
        opmix: OpMix {
            rotate: 30,
            mul_const: 30,
            ..OpMix::default()
        },
        ..GenConfig::default()
    };
    for seed in 0..200 {
        assert_roundtrip(seed, &cfg);
    }
}

#[test]
fn deep_programs_roundtrip() {
    let cfg = GenConfig {
        max_ops: 120,
        ..GenConfig::default()
    };
    for seed in 0..50 {
        assert_roundtrip(seed, &cfg);
    }
}
