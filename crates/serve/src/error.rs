//! Structured failure modes of the service layer.
//!
//! Every way a request can fail maps to one [`ServeError`] variant — no
//! panic ever crosses the request boundary (the whole pipeline — parse,
//! compile, key generation, execution — runs under `catch_unwind` and
//! panics surface as [`ServeError::ExecutorPanic`]), and no error ever
//! takes the server down: the worker that produced it moves on to the
//! next job.

use std::fmt;
use std::time::Duration;

use fhe_ir::pipeline::CompileError;
use fhe_ir::ScheduleError;

use crate::session::SessionId;

/// Why a request failed, uniformly across the service pipeline.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// The request named a session the store has never issued (or one
    /// that has been removed).
    UnknownSession(SessionId),
    /// The request named a compiler id outside the registry
    /// (see [`crate::server::compiler_for`]).
    UnknownCompiler(String),
    /// The session was quarantined by an earlier panicking request and
    /// accepts no further work.
    SessionQuarantined(SessionId),
    /// The bounded queue was full and the caller asked not to block.
    Overloaded {
        /// Jobs queued at the time of rejection.
        queued: usize,
        /// The queue's capacity.
        capacity: usize,
    },
    /// The request's deadline elapsed before execution started — either
    /// while queued, or during compile/keygen (the deadline is re-checked
    /// just before the execution phase). A request that starts executing
    /// is never aborted; see
    /// [`ServerConfig::default_deadline`](crate::ServerConfig::default_deadline).
    DeadlineExceeded {
        /// Time since submission when the request was abandoned.
        waited: Duration,
    },
    /// The program text did not parse.
    Parse(String),
    /// The compiler rejected the program.
    Compile(CompileError),
    /// The schedule failed validation at execution time.
    Schedule(Vec<ScheduleError>),
    /// A stage of the request pipeline (parse, compile, key generation
    /// or execution) panicked. The offending session is quarantined; the
    /// shared pool and caches keep serving other sessions.
    ExecutorPanic(String),
    /// The server was shut down while the request was still queued.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServeError::UnknownCompiler(id) => write!(f, "unknown compiler `{id}`"),
            ServeError::SessionQuarantined(id) => write!(f, "session {id} is quarantined"),
            ServeError::Overloaded { queued, capacity } => {
                write!(f, "server overloaded ({queued}/{capacity} jobs queued)")
            }
            ServeError::DeadlineExceeded { waited } => {
                write!(
                    f,
                    "deadline exceeded {:.1} ms after submission",
                    waited.as_secs_f64() * 1e3
                )
            }
            ServeError::Parse(msg) => write!(f, "program text does not parse: {msg}"),
            ServeError::Compile(err) => write!(f, "compilation failed: {err}"),
            ServeError::Schedule(errs) => {
                write!(f, "schedule invalid ({} errors)", errs.len())
            }
            ServeError::ExecutorPanic(msg) => write!(f, "executor panicked: {msg}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CompileError> for ServeError {
    fn from(err: CompileError) -> Self {
        ServeError::Compile(err)
    }
}

impl From<Vec<ScheduleError>> for ServeError {
    fn from(errs: Vec<ScheduleError>) -> Self {
        ServeError::Schedule(errs)
    }
}
