//! The reserve type system (Fig. 5): a checker that certifies a
//! [`ReserveSolution`] against the typing rules.
//!
//! The reserve analysis *constructs* solutions; this module independently
//! *verifies* them — the paper's "type system ensures the correctness of the
//! analysis result". Every compiler test routes its solutions through this
//! checker (and the scheduled output through `fhe_ir`'s validator).

use std::fmt;

use fhe_ir::{CompileParams, Frac, Op, Program, ValueId};

use crate::alloc::ReserveSolution;

/// A typing-rule violation.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeError {
    /// A ciphertext value has no reserve assigned.
    MissingReserve {
        /// The value.
        value: ValueId,
    },
    /// A reserve or operand requirement is negative.
    NegativeReserve {
        /// The value.
        value: ValueId,
    },
    /// Subtyping violated: an operand demand exceeds the operand's reserve.
    SubtypeViolation {
        /// The consuming op.
        user: ValueId,
        /// The operand value.
        operand: ValueId,
        /// Demanded relative reserve.
        demanded: Frac,
        /// Available relative reserve.
        available: Frac,
    },
    /// The `Mul` rule's level side-condition `⌈ρ₁+ω⌉ = ⌈ρ₂+ω⌉` fails.
    MulLevelCondition {
        /// The multiplication.
        op: ValueId,
    },
    /// The `Mul` rule's reserve equation `ρ₁ + ρ₂ = ρ + l` fails.
    MulReserveEquation {
        /// The multiplication.
        op: ValueId,
    },
    /// A pass-through op's operand demand differs from its result reserve.
    PassThroughMismatch {
        /// The op.
        op: ValueId,
    },
    /// The `PMul` rule's demand `ρ + ω` fails.
    PlainMulDemand {
        /// The multiplication.
        op: ValueId,
    },
    /// An output's reserve is below the configured output reserve.
    OutputReserve {
        /// The output value.
        value: ValueId,
    },
    /// A value's principal level exceeds `max_level`.
    ExceedsMaxLevel {
        /// The value.
        value: ValueId,
        /// Its principal level.
        level: u32,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::MissingReserve { value } => write!(f, "{value} has no reserve"),
            TypeError::NegativeReserve { value } => write!(f, "{value} has a negative reserve"),
            TypeError::SubtypeViolation {
                user,
                operand,
                demanded,
                available,
            } => write!(
                f,
                "{user} demands reserve {demanded} of {operand}, which only has {available}"
            ),
            TypeError::MulLevelCondition { op } => {
                write!(f, "mul {op} violates ⌈ρ1+ω⌉ = ⌈ρ2+ω⌉")
            }
            TypeError::MulReserveEquation { op } => {
                write!(f, "mul {op} violates ρ1 + ρ2 = ρ + l")
            }
            TypeError::PassThroughMismatch { op } => {
                write!(f, "{op} demands a reserve different from its result's")
            }
            TypeError::PlainMulDemand { op } => {
                write!(f, "plain mul {op} does not demand ρ + ω")
            }
            TypeError::OutputReserve { value } => {
                write!(f, "output {value} has less than the output reserve")
            }
            TypeError::ExceedsMaxLevel { value, level } => {
                write!(f, "{value} needs principal level {level} beyond max_level")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// Checks a reserve solution against the Fig. 5 typing rules. Returns all
/// violations (empty ⇒ well-typed).
pub fn check(program: &Program, params: &CompileParams, sol: &ReserveSolution) -> Vec<TypeError> {
    let mut errors = Vec::new();
    let live = fhe_ir::analysis::live(program);
    let w = params.omega();

    let rho = |v: ValueId| -> Option<Frac> { sol.reserve[v.index()] };

    for id in program.ids() {
        if !live[id.index()] || program.is_plain(id) {
            continue;
        }
        let Some(r) = rho(id) else {
            errors.push(TypeError::MissingReserve { value: id });
            continue;
        };
        if r < Frac::ZERO {
            errors.push(TypeError::NegativeReserve { value: id });
        }
        let level = params.principal_level(r);
        if level > params.max_level {
            errors.push(TypeError::ExceedsMaxLevel { value: id, level });
        }

        // Per-op rules on the operand demands.
        let reqs = sol.operand_req[id.index()];
        let ops: Vec<ValueId> = program.op(id).operands().collect();
        // Subtyping on every cipher edge.
        for (slot, &o) in ops.iter().enumerate() {
            if program.is_cipher(o) {
                if let (Some(demand), Some(avail)) = (reqs[slot], rho(o)) {
                    if demand > avail {
                        errors.push(TypeError::SubtypeViolation {
                            user: id,
                            operand: o,
                            demanded: demand,
                            available: avail,
                        });
                    }
                    if demand < Frac::ZERO {
                        errors.push(TypeError::NegativeReserve { value: id });
                    }
                } else {
                    errors.push(TypeError::MissingReserve { value: id });
                }
            }
        }
        match program.op(id) {
            Op::Add(a, b) | Op::Sub(a, b) => {
                for (slot, o) in [(0usize, *a), (1, *b)] {
                    if program.is_cipher(o) && reqs[slot] != Some(r) {
                        errors.push(TypeError::PassThroughMismatch { op: id });
                    }
                }
            }
            Op::Neg(a) | Op::Rotate(a, _) => {
                if program.is_cipher(*a) && reqs[0] != Some(r) {
                    errors.push(TypeError::PassThroughMismatch { op: id });
                }
            }
            Op::Mul(a, b) => match (program.is_cipher(*a), program.is_cipher(*b)) {
                (true, true) => {
                    if let (Some(r1), Some(r2)) = (reqs[0], reqs[1]) {
                        let l1 = (r1 + w).ceil().max(1);
                        let l2 = (r2 + w).ceil().max(1);
                        if l1 != l2 {
                            errors.push(TypeError::MulLevelCondition { op: id });
                        }
                        if r1 + r2 != r + Frac::from(l1) {
                            errors.push(TypeError::MulReserveEquation { op: id });
                        }
                    }
                }
                (true, false) => {
                    if reqs[0] != Some(r + w) {
                        errors.push(TypeError::PlainMulDemand { op: id });
                    }
                }
                (false, true) => {
                    if reqs[1] != Some(r + w) {
                        errors.push(TypeError::PlainMulDemand { op: id });
                    }
                }
                (false, false) => unreachable!("plain mul results are plain"),
            },
            Op::Input { .. } | Op::Const { .. } => {}
            Op::Rescale(_) | Op::ModSwitch(_) | Op::Upscale(..) => {}
        }
    }

    // Output reserves.
    let out_reserve = params.to_relative(Frac::from(params.output_reserve_bits));
    for &o in program.outputs() {
        if program.is_cipher(o) {
            match rho(o) {
                Some(r) if r >= out_reserve => {}
                _ => errors.push(TypeError::OutputReserve { value: o }),
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::allocate;
    use crate::ordering::allocation_order;
    use fhe_ir::{Builder, CostModel};

    fn well_typed(program: &Program, waterline: u32, redistribute: bool) {
        let params = CompileParams::new(waterline);
        let order = allocation_order(program, &params, &CostModel::paper_table3());
        let sol = allocate(program, &params, &order, redistribute);
        let errors = check(program, &params, &sol);
        assert!(errors.is_empty(), "type errors: {errors:?}");
    }

    #[test]
    fn fig2a_solutions_are_well_typed() {
        let b = Builder::new("fig2a", 8);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        let p = b.finish(vec![q]);
        for redistribute in [false, true] {
            for wl in [15, 20, 30, 40, 45] {
                well_typed(&p, wl, redistribute);
            }
        }
    }

    #[test]
    fn mixed_plain_cipher_is_well_typed() {
        let b = Builder::new("mix", 8);
        let x = b.input("x");
        let k = b.constant(0.5);
        let r = (x.clone() * k + x.clone().rotate(1)) * x.clone() - x;
        let p = b.finish(vec![r]);
        well_typed(&p, 20, true);
        well_typed(&p, 33, true);
    }

    #[test]
    fn corrupted_solution_is_rejected() {
        let b = Builder::new("c", 8);
        let x = b.input("x");
        let y = b.input("y");
        let m = x * y;
        let p = b.finish(vec![m]);
        let params = CompileParams::new(20);
        let order = allocation_order(&p, &params, &CostModel::paper_table3());
        let mut sol = allocate(&p, &params, &order, true);
        // Tamper: shrink x's reserve below the mul's demand.
        sol.reserve[0] = Some(Frac::ZERO);
        let errors = check(&p, &params, &sol);
        assert!(errors
            .iter()
            .any(|e| matches!(e, TypeError::SubtypeViolation { .. })));
        // Tamper: break the mul equation.
        let mut sol2 = allocate(&p, &params, &order, true);
        sol2.operand_req[2][0] = Some(Frac::from(2));
        let errors2 = check(&p, &params, &sol2);
        assert!(errors2
            .iter()
            .any(|e| matches!(e, TypeError::MulReserveEquation { .. })
                || matches!(e, TypeError::MulLevelCondition { .. })
                || matches!(e, TypeError::SubtypeViolation { .. })));
    }

    #[test]
    fn max_level_violation_detected() {
        let b = Builder::new("deep", 4);
        let x = b.input("x");
        let mut acc = x.clone();
        for _ in 0..6 {
            acc = acc.clone() * acc;
        }
        let p = b.finish(vec![acc]);
        let mut params = CompileParams::new(40);
        params.max_level = 2;
        let order = allocation_order(&p, &params, &CostModel::paper_table3());
        let sol = allocate(&p, &params, &order, true);
        let errors = check(&p, &params, &sol);
        assert!(errors
            .iter()
            .any(|e| matches!(e, TypeError::ExceedsMaxLevel { .. })));
    }
}
