//! Greedy program shrinker.
//!
//! Given a failing program and the [`Divergence::label`] that identifies
//! its failure, repeatedly tries strictly smaller candidate programs —
//! dropping outputs, forwarding an op to one of its operands (which
//! deletes the op), and demoting vector constants to scalars — keeping a
//! candidate whenever the *same* failure label still reproduces. The
//! fixpoint is a (locally) minimal reproducer suitable for the corpus.

use fhe_ir::{passes, ConstValue, Op, Program, ProgramEditor, ValueId};

use crate::oracle::Divergence;

/// Upper bound on candidate evaluations per shrink (each evaluation runs
/// the full oracle on the candidate).
const MAX_CHECKS: usize = 2_000;

/// Shrinks `program` while `check` keeps reporting a divergence whose
/// [`Divergence::label`] equals `label`. Returns the smallest program
/// found (possibly the input itself).
pub fn shrink(
    program: &Program,
    label: &str,
    check: &dyn Fn(&Program) -> Vec<Divergence>,
) -> Program {
    let still_fails = |p: &Program| -> bool { check(p).iter().any(|d| d.label() == label) };
    let mut current = program.clone();
    let mut budget = MAX_CHECKS;
    'outer: loop {
        for candidate in candidates(&current) {
            if budget == 0 {
                break 'outer;
            }
            if size(&candidate) >= size(&current) {
                continue;
            }
            budget -= 1;
            if still_fails(&candidate) {
                current = candidate;
                continue 'outer;
            }
        }
        break;
    }
    current
}

/// Size metric the shrinker minimizes: ops, then outputs, then total
/// constant width.
fn size(p: &Program) -> (usize, usize, usize) {
    let const_width: usize = p
        .ids()
        .map(|id| match p.op(id) {
            Op::Const {
                value: ConstValue::Vector(v),
            } => v.len(),
            _ => 0,
        })
        .sum();
    (p.num_ops(), p.outputs().len(), const_width)
}

fn candidates(p: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    // Drop one output at a time (plus whatever becomes dead).
    if p.outputs().len() > 1 {
        for i in 0..p.outputs().len() {
            let mut q = p.clone();
            let mut outputs = p.outputs().to_vec();
            outputs.remove(i);
            q.set_outputs(outputs);
            out.push(gc(&q));
        }
    }
    // Forward each op to each of its operands, deleting the op. Later ops
    // first: deleting deep ops tends to discard the most.
    for id in p.ids().rev() {
        for operand in p.op(id).operands() {
            out.push(gc(&forward(p, id, operand)));
        }
    }
    // Demote vector constants to their first element.
    for id in p.ids() {
        if let Op::Const {
            value: ConstValue::Vector(v),
        } = p.op(id)
        {
            if let Some(&first) = v.first() {
                let mut ed = ProgramEditor::new(p);
                for other in p.ids() {
                    if other == id {
                        let new = ed.push(Op::Const {
                            value: ConstValue::Scalar(first),
                        });
                        ed.set_mapping(other, new);
                    } else {
                        ed.emit(other);
                    }
                }
                out.push(ed.finish());
            }
        }
    }
    out
}

/// Rebuilds `p` with every use of `victim` replaced by `replacement`
/// (which must dominate it), dropping `victim` itself.
fn forward(p: &Program, victim: ValueId, replacement: ValueId) -> Program {
    let mut ed = ProgramEditor::new(p);
    for id in p.ids() {
        if id == victim {
            let mapped = ed.map_operand(replacement);
            ed.set_mapping(victim, mapped);
        } else {
            ed.emit(id);
        }
    }
    ed.finish()
}

fn gc(p: &Program) -> Program {
    passes::dce(p).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::DivergenceKind;

    /// A synthetic oracle that "fails" iff the program still contains a
    /// rotate op.
    fn rotate_oracle(p: &Program) -> Vec<Divergence> {
        if p.count_ops(|op| matches!(op, Op::Rotate(..))) > 0 {
            vec![Divergence {
                kind: DivergenceKind::Invariant,
                stage: "test".into(),
                detail: "has rotate".into(),
            }]
        } else {
            Vec::new()
        }
    }

    #[test]
    fn shrinks_to_minimal_rotate() {
        // Build a bushy program with one rotate buried in the middle.
        let mut p = Program::new("bush", 8);
        let x = p.push(Op::Input { name: "x".into() });
        let y = p.push(Op::Input { name: "y".into() });
        let a = p.push(Op::Add(x, y));
        let m = p.push(Op::Mul(a, a));
        let r = p.push(Op::Rotate(m, 3));
        let n = p.push(Op::Neg(r));
        let s = p.push(Op::Sub(n, x));
        let t = p.push(Op::Add(s, y));
        p.set_outputs(vec![t, m]);

        let small = shrink(&p, "invariant:test", &rotate_oracle);
        assert!(small.count_ops(|op| matches!(op, Op::Rotate(..))) > 0);
        // Minimal reproducer: one input, one rotate, nothing else.
        assert!(
            small.num_ops() <= 2,
            "expected ≤2 ops, got:\n{}",
            fhe_ir::text::print(&small)
        );
        assert_eq!(small.outputs().len(), 1);
    }

    #[test]
    fn non_failing_program_is_returned_unchanged() {
        let mut p = Program::new("id", 4);
        let x = p.push(Op::Input { name: "x".into() });
        let n = p.push(Op::Neg(x));
        p.set_outputs(vec![n]);
        let same = shrink(&p, "invariant:test", &rotate_oracle);
        assert_eq!(same.num_ops(), p.num_ops());
    }
}
