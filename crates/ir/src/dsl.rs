//! A declarative macro front-end: write FHE programs as expression blocks.
//!
//! The paper's toolchain exposes a Python DSL over its MLIR dialect; the
//! Rust equivalent here is [`fhe_program!`](crate::fhe_program), which
//! expands to [`Builder`]
//! calls:
//!
//! ```
//! use fhe_ir::fhe_program;
//! let program = fhe_program! {
//!     program poly(slots = 64) {
//!         input x;
//!         input y;
//!         let x2 = x.clone() * x.clone();
//!         let x3 = x2 * x;
//!         let s = y.clone() * y.clone() + y;
//!         return x3 * s;
//!     }
//! };
//! assert_eq!(program.name(), "poly");
//! assert_eq!(program.inputs().len(), 2);
//! ```
//!
//! Bindings are ordinary Rust `let`s over [`Expr`] handles, so the full
//! operator set (`+`, `-`, `*`, unary `-`), method calls (`.rotate(k)`,
//! `.square()`) and Rust control flow (loops building sums) all work inside
//! the block.
//!
//! [`Builder`]: crate::Builder
//! [`Expr`]: crate::Expr

/// Builds a [`Program`](crate::Program) from a declarative block. See the
/// [module docs](crate::dsl) for the accepted grammar:
///
/// ```text
/// program <name>(slots = <n>) {
///     input <ident>;            // one per ciphertext input
///     const <ident> = <expr>;   // plaintext constant (f64 or Vec<f64>)
///     let <ident> = <expr>;     // any Rust expression over Expr handles
///     return <expr> [, <expr>]* ;
/// }
/// ```
#[macro_export]
macro_rules! fhe_program {
    (
        program $name:ident (slots = $slots:expr) {
            $($body:tt)*
        }
    ) => {{
        let __builder = $crate::Builder::new(stringify!($name), $slots);
        $crate::__fhe_program_body!(__builder; $($body)*)
    }};
}

/// Implementation detail of [`fhe_program!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __fhe_program_body {
    // input x;
    ($b:ident; input $name:ident; $($rest:tt)*) => {{
        let $name = $b.input(stringify!($name));
        $crate::__fhe_program_body!($b; $($rest)*)
    }};
    // const k = expr;
    ($b:ident; const $name:ident = $value:expr; $($rest:tt)*) => {{
        let $name = $b.constant($value);
        $crate::__fhe_program_body!($b; $($rest)*)
    }};
    // let v = expr;
    ($b:ident; let $name:ident = $value:expr; $($rest:tt)*) => {{
        let $name = $value;
        $crate::__fhe_program_body!($b; $($rest)*)
    }};
    // return e1, e2, ...;
    ($b:ident; return $($out:expr),+ ;) => {{
        $b.finish(vec![$($out),+])
    }};
}

#[cfg(test)]
mod tests {
    use crate::analysis;

    #[test]
    fn builds_the_worked_example() {
        let program = fhe_program! {
            program fig2a(slots = 8) {
                input x;
                input y;
                let x2 = x.clone() * x.clone();
                let x3 = x2 * x;
                let s = y.clone() * y.clone() + y;
                return x3 * s;
            }
        };
        assert_eq!(program.name(), "fig2a");
        assert_eq!(program.num_ops(), 7);
        assert_eq!(analysis::circuit_depth(&program), 3);
    }

    #[test]
    fn consts_and_multiple_outputs() {
        let program = fhe_program! {
            program weighted(slots = 4) {
                input x;
                const w = vec![0.5, 0.25, 0.125, 0.0625];
                const half = 0.5;
                let a = x.clone() * w;
                let b = x * half;
                return a, b;
            }
        };
        assert_eq!(program.outputs().len(), 2);
        assert_eq!(
            program.count_ops(|o| matches!(o, crate::Op::Const { .. })),
            2
        );
    }

    #[test]
    fn rust_control_flow_inside_the_block() {
        let program = fhe_program! {
            program rotsum(slots = 16) {
                input x;
                let sum = {
                    let mut acc = x.clone();
                    for step in [1i64, 2, 4, 8] {
                        acc = acc.clone() + acc.rotate(step);
                    }
                    acc
                };
                return sum;
            }
        };
        assert_eq!(program.count_ops(|o| matches!(o, crate::Op::Rotate(..))), 4);
    }
}
