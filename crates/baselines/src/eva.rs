//! The EVA baseline: conservative forward static scale analysis
//! (Dathathri et al., PLDI'20, as summarized in the paper's §3.1).

use std::time::Instant;

use fhe_analysis::{DepGraphPass, LintPass, TranslationValidatePass};
use fhe_ir::pipeline::{
    finish_compiled, CleanupPass, CompileError, Compiled, Pass, PassCx, PassError, PassIr,
    PassManager, ScaleCompiler,
};
use fhe_ir::{CompileParams, CostModel, Program};

use crate::forward::{legalize, ForwardPlan};

/// EVA's label in the paper's tables.
pub const NAME: &str = "EVA";

/// Forward waterline legalization with the empty (all-lazy) plan.
#[derive(Debug, Clone, Copy)]
struct LegalizePass;

impl Pass for LegalizePass {
    fn name(&self) -> &str {
        "legalize"
    }

    fn run(&mut self, ir: PassIr, cx: &mut PassCx) -> Result<PassIr, PassError> {
        let program = ir.try_source("legalize")?;
        let scheduled = legalize(&program, &cx.params, &ForwardPlan::empty(program.num_ops()))
            .map_err(|e| PassError::new("legalize", format!("{e:?}")))?;
        cx.add_iterations(1);
        Ok(PassIr::Scheduled(scheduled))
    }
}

/// Compiles with EVA's waterline-driven forward analysis.
///
/// # Errors
///
/// Fails (in pass `"legalize"`) when the program's accumulated scale
/// requires more levels than `params.max_level`.
pub fn compile(program: &Program, params: &CompileParams) -> Result<Compiled, CompileError> {
    let t_total = Instant::now();
    let mut cx = PassCx::new(*params, CostModel::paper_table3());
    let (ir, trace) = PassManager::new()
        .with(CleanupPass)
        .with(LegalizePass)
        .with(DepGraphPass)
        .with(LintPass::default())
        .with(TranslationValidatePass::new(program.clone()))
        .run(PassIr::Source(program.clone()), &mut cx)
        .map_err(|e| CompileError::in_compiler(NAME, e))?;
    let scheduled = ir
        .try_scheduled("finish")
        .map_err(|e| CompileError::in_compiler(NAME, e))?;
    let ops_before = trace
        .pass("legalize")
        .map_or(program.num_ops(), |r| r.ops_before);
    finish_compiled(NAME, scheduled, trace, &cx, t_total.elapsed(), ops_before)
}

/// EVA behind the workspace-wide [`ScaleCompiler`] trait.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvaCompiler;

impl ScaleCompiler for EvaCompiler {
    fn name(&self) -> &str {
        NAME
    }

    fn compile(&self, program: &Program, params: &CompileParams) -> Result<Compiled, CompileError> {
        compile(program, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::Builder;

    #[test]
    fn eva_compiles_and_validates() {
        let b = Builder::new("t", 8);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        let p = b.finish(vec![q]);
        let out = compile(&p, &CompileParams::new(20)).unwrap();
        assert_eq!(out.report.max_level, 2);
        assert!(out.report.estimated_latency_us > 0.0);
        assert_eq!(out.report.iterations, 1);
        assert_eq!(out.report.compiler, "EVA");
        let names: Vec<&str> = out
            .report
            .trace
            .passes
            .iter()
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(
            names,
            [
                "cleanup",
                "legalize",
                "depgraph",
                "lint",
                "translation-validate"
            ]
        );
        assert_eq!(out.report.translation_validated, Some(true));
    }

    #[test]
    fn depth_beyond_max_level_is_a_compile_error() {
        let b = Builder::new("deep", 4);
        let x = b.input("x");
        let mut acc = x;
        for _ in 0..8 {
            acc = acc.clone() * acc;
        }
        let p = b.finish(vec![acc]);
        let mut params = CompileParams::new(50);
        params.max_level = 3;
        let err = compile(&p, &params).unwrap_err();
        assert_eq!(err.compiler, "EVA");
        assert_eq!(err.error.pass, "legalize");
    }
}
