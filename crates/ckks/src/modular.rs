//! 64-bit modular arithmetic for NTT-friendly primes.
//!
//! Products avoid the hardware `u128 %` division entirely: every [`Modulus`]
//! precomputes a 128-bit Barrett magic constant at construction, so a general
//! modular product is four word multiplications plus one branchless
//! correction. Multiplications by a *constant* operand (twiddle factors,
//! rescale inverses, `N⁻¹`) use Shoup's trick — a precomputed quotient turns
//! the product into two word multiplications and a conditional subtraction,
//! and the `*_lazy` variant skips the correction to keep values in `[0, 2q)`
//! for the Harvey NTT butterflies (see `ntt.rs` and DESIGN.md § Kernel
//! optimization). The `u128 %` path survives only as
//! [`Modulus::mul_reference`], the oracle the property tests and the
//! `kernels` bench compare against.

/// A word-sized prime modulus with the arithmetic the scheme needs.
///
/// General products use Barrett reduction off a precomputed
/// `⌊2^128 / q⌋` constant; constant-operand products use Shoup
/// precomputed-quotient multiplication ([`Modulus::mul_shoup`]). The
/// `q < 2^62` bound leaves the headroom the lazy `[0, 4q)` NTT butterflies
/// need in 64 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modulus {
    q: u64,
    /// `⌊2^64 / q⌋` — Barrett constant for one-word reduction.
    ratio64: u64,
    /// `⌊2^128 / q⌋` — Barrett constant for two-word reduction.
    ratio128: u128,
}

/// High 128 bits of the 256-bit product `a · b`.
#[inline]
fn mul_hi_128(a: u128, b: u128) -> u128 {
    let a_lo = a as u64 as u128;
    let a_hi = (a >> 64) as u64 as u128;
    let b_lo = b as u64 as u128;
    let b_hi = (b >> 64) as u64 as u128;
    let ll = a_lo * b_lo;
    let lh = a_lo * b_hi;
    let hl = a_hi * b_lo;
    let hh = a_hi * b_hi;
    let mid = (ll >> 64) + (lh as u64 as u128) + (hl as u64 as u128);
    hh + (lh >> 64) + (hl >> 64) + (mid >> 64)
}

impl Modulus {
    /// Wraps a modulus value and precomputes its Barrett constants.
    ///
    /// # Panics
    ///
    /// Panics if `q < 2` or `q >= 2^62` (headroom for lazy additions).
    pub fn new(q: u64) -> Self {
        assert!(q >= 2, "modulus must be at least 2");
        assert!(q < 1 << 62, "modulus must leave headroom below 2^62");
        // ⌊2^k / q⌋: when q is not a power of two it does not divide 2^k,
        // so ⌊(2^k − 1) / q⌋ is the same value; when q = 2^t the quotient
        // is exactly 2^(k−t) (t ≥ 1, so the shift never overflows).
        let (ratio64, ratio128) = if q.is_power_of_two() {
            let t = q.trailing_zeros();
            (1u64 << (64 - t), 1u128 << (128 - t))
        } else {
            (u64::MAX / q, u128::MAX / q as u128)
        };
        Modulus {
            q,
            ratio64,
            ratio128,
        }
    }

    /// The modulus value.
    pub fn value(self) -> u64 {
        self.q
    }

    /// `(a + b) mod q` for operands already `< q`.
    #[inline]
    pub fn add(self, a: u64, b: u64) -> u64 {
        let s = a + b;
        if s >= self.q {
            s - self.q
        } else {
            s
        }
    }

    /// `(a - b) mod q` for operands already `< q`.
    #[inline]
    pub fn sub(self, a: u64, b: u64) -> u64 {
        if a >= b {
            a - b
        } else {
            a + self.q - b
        }
    }

    /// `-a mod q` for `a < q`.
    #[inline]
    pub fn neg(self, a: u64) -> u64 {
        if a == 0 {
            0
        } else {
            self.q - a
        }
    }

    /// `(a · b) mod q` for operands already `< q`, by Barrett reduction of
    /// the 128-bit product (no hardware division).
    #[inline]
    pub fn mul(self, a: u64, b: u64) -> u64 {
        self.reduce_u128(a as u128 * b as u128)
    }

    /// `(a · b) mod q` through the `u128 %` hardware division — the slow
    /// but transparently correct kernel this module used before Barrett
    /// reduction. Kept as the oracle for property tests and the `kernels`
    /// bench baseline.
    #[inline]
    pub fn mul_reference(self, a: u64, b: u64) -> u64 {
        ((a as u128 * b as u128) % self.q as u128) as u64
    }

    /// Shoup precomputed quotient `⌊w · 2^64 / q⌋` for a constant
    /// multiplier `w < q`, consumed by [`Modulus::mul_shoup`].
    ///
    /// # Panics
    ///
    /// Panics if `w >= q`.
    #[inline]
    pub fn shoup(self, w: u64) -> u64 {
        assert!(w < self.q, "Shoup precomputation requires w < q");
        (((w as u128) << 64) / self.q as u128) as u64
    }

    /// `(a · w) mod q` for a constant `w < q` with its Shoup companion
    /// `w_shoup = self.shoup(w)`. `a` may be any `u64` (lazy NTT values
    /// included); the result is fully reduced into `[0, q)`.
    #[inline]
    pub fn mul_shoup(self, a: u64, w: u64, w_shoup: u64) -> u64 {
        let r = self.mul_shoup_lazy(a, w, w_shoup);
        if r >= self.q {
            r - self.q
        } else {
            r
        }
    }

    /// Lazy Shoup product: same as [`Modulus::mul_shoup`] but the result is
    /// only guaranteed to be in `[0, 2q)` — the Harvey butterfly invariant.
    #[inline]
    pub fn mul_shoup_lazy(self, a: u64, w: u64, w_shoup: u64) -> u64 {
        let quot = ((a as u128 * w_shoup as u128) >> 64) as u64;
        a.wrapping_mul(w).wrapping_sub(quot.wrapping_mul(self.q))
    }

    /// Reduces an arbitrary `u64` into `[0, q)` (one-word Barrett).
    #[inline]
    pub fn reduce(self, a: u64) -> u64 {
        let quot = ((a as u128 * self.ratio64 as u128) >> 64) as u64;
        let r = a - quot * self.q;
        if r >= self.q {
            r - self.q
        } else {
            r
        }
    }

    /// Reduces an arbitrary `u128` into `[0, q)` (two-word Barrett).
    #[inline]
    pub fn reduce_u128(self, a: u128) -> u64 {
        let quot = mul_hi_128(a, self.ratio128);
        let r = (a - quot * self.q as u128) as u64;
        if r >= self.q {
            r - self.q
        } else {
            r
        }
    }

    /// Reduces a signed value into `[0, q)`.
    #[inline]
    pub fn reduce_i64(self, a: i64) -> u64 {
        let r = a.rem_euclid(self.q as i64);
        r as u64
    }

    /// `a^e mod q` by square-and-multiply.
    pub fn pow(self, mut a: u64, mut e: u64) -> u64 {
        a = self.reduce(a);
        let mut acc = 1u64;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, a);
            }
            a = self.mul(a, a);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse of `a` (requires `q` prime and `a ≠ 0 mod q`).
    ///
    /// # Panics
    ///
    /// Panics if `a ≡ 0 (mod q)`.
    pub fn inv(self, a: u64) -> u64 {
        let a = self.reduce(a);
        assert!(a != 0, "no inverse of 0");
        // Fermat: a^(q-2) mod q.
        self.pow(a, self.q - 2)
    }

    /// Lifts a residue to the centered representative in `(-q/2, q/2]`.
    #[inline]
    pub fn center(self, a: u64) -> i64 {
        if a > self.q / 2 {
            a as i64 - self.q as i64
        } else {
            a as i64
        }
    }

    /// Reduces an `f64` (|x| possibly ≫ 2^64, e.g. a coefficient scaled by
    /// 2^80) into `[0, q)`, exactly: the mantissa and binary exponent are
    /// read straight out of the IEEE-754 bit pattern (`f64::to_bits`), so
    /// powers of two, subnormals and fractional values all reduce without
    /// any floating-point rounding.
    pub fn reduce_f64(self, x: f64) -> u64 {
        assert!(x.is_finite(), "cannot reduce non-finite value");
        if x == 0.0 {
            return 0;
        }
        // |x| = mant · 2^exp exactly, with mant an integer < 2^53.
        let bits = x.abs().to_bits();
        let raw_exp = ((bits >> 52) & 0x7FF) as i32;
        let frac = bits & ((1u64 << 52) - 1);
        let (mant, exp) = if raw_exp == 0 {
            // Subnormal: frac · 2^(1 − 1023 − 52).
            (frac, -1074)
        } else {
            // Normal: (2^52 + frac) · 2^(raw − 1023 − 52).
            (frac | (1u64 << 52), raw_exp - 1075)
        };
        let mant_mod = self.reduce(mant);
        let two_exp = if exp >= 0 {
            self.pow(2, exp as u64)
        } else {
            self.inv(self.pow(2, (-exp) as u64))
        };
        let mag = self.mul(mant_mod, two_exp);
        if x < 0.0 {
            self.neg(mag)
        } else {
            mag
        }
    }
}

/// Deterministic Miller–Rabin primality test, exact for all `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let m = Modulus::new(n);
    let mut d = n - 1;
    let mut r = 0;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    // This witness set is deterministic for all 64-bit integers.
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = m.pow(a, d);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = m.mul(x, x);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const Q: u64 = (1 << 61) - 1; // not NTT-friendly, fine for arithmetic

    #[test]
    fn add_sub_neg() {
        let m = Modulus::new(17);
        assert_eq!(m.add(9, 12), 4);
        assert_eq!(m.sub(3, 5), 15);
        assert_eq!(m.neg(0), 0);
        assert_eq!(m.neg(5), 12);
    }

    #[test]
    fn mul_pow_inv() {
        let m = Modulus::new(Q);
        let a = 123456789012345678u64 % Q;
        assert_eq!(m.mul(a, 1), a);
        assert_eq!(m.pow(a, 0), 1);
        assert_eq!(m.pow(a, 3), m.mul(m.mul(a, a), a));
        let inv = m.inv(a);
        assert_eq!(m.mul(a, inv), 1);
    }

    #[test]
    fn barrett_agrees_with_reference() {
        // Primes across the supported range, including just below 2^62,
        // power-of-two and tiny moduli.
        for &q in &[
            2u64,
            3,
            17,
            1 << 20,
            (1 << 40) - 87,
            Q,
            (1 << 62) - 57, // just below the 2^62 headroom bound
        ] {
            let m = Modulus::new(q);
            let mut rng = StdRng::seed_from_u64(q);
            for case in 0..2000u64 {
                let a = rng.gen_range(0..q);
                let b = rng.gen_range(0..q);
                assert_eq!(
                    m.mul(a, b),
                    m.mul_reference(a, b),
                    "q={q} case={case} a={a} b={b}"
                );
                let r: u64 = rng.gen();
                assert_eq!(m.reduce(r), r % q, "q={q} reduce({r})");
                let z: u128 = (rng.gen::<u64>() as u128) << 64 | rng.gen::<u64>() as u128;
                assert_eq!(m.reduce_u128(z), (z % q as u128) as u64, "q={q} u128");
            }
            // Boundary operands.
            for &(a, b) in &[(0, 0), (0, q - 1), (1, q - 1), (q - 1, q - 1)] {
                assert_eq!(m.mul(a, b), m.mul_reference(a, b), "q={q} a={a} b={b}");
            }
        }
    }

    #[test]
    fn shoup_agrees_with_reference() {
        for &q in &[17u64, (1 << 50) - 27, Q, (1 << 62) - 57] {
            let m = Modulus::new(q);
            let mut rng = StdRng::seed_from_u64(!q);
            for _ in 0..2000 {
                let w = rng.gen_range(0..q);
                let ws = m.shoup(w);
                // a may be any u64, not just a reduced residue.
                let a: u64 = rng.gen();
                assert_eq!(m.mul_shoup(a, w, ws), m.mul_reference(a % q, w), "q={q}");
                let lazy = m.mul_shoup_lazy(a, w, ws);
                assert!(lazy < 2 * q, "lazy result out of [0, 2q): q={q}");
                assert_eq!(m.reduce(lazy), m.mul_reference(a % q, w), "q={q} lazy");
            }
            for &w in &[0u64, 1, q - 1] {
                let ws = m.shoup(w);
                for &a in &[0u64, 1, q - 1, u64::MAX] {
                    assert_eq!(m.mul_shoup(a, w, ws), m.mul_reference(a % q, w));
                }
            }
        }
    }

    #[test]
    fn center_lifts_symmetrically() {
        let m = Modulus::new(101);
        assert_eq!(m.center(0), 0);
        assert_eq!(m.center(50), 50);
        assert_eq!(m.center(51), -50);
        assert_eq!(m.center(100), -1);
    }

    #[test]
    fn reduce_i64_handles_negatives() {
        let m = Modulus::new(101);
        assert_eq!(m.reduce_i64(-1), 100);
        assert_eq!(m.reduce_i64(-101), 0);
        assert_eq!(m.reduce_i64(205), 3);
    }

    #[test]
    fn reduce_f64_matches_integer_reduction() {
        let m = Modulus::new(Q);
        for &x in &[
            0.0,
            1.0,
            -1.0,
            123456789.0,
            -987654321.0,
            2f64.powi(80),
            -2f64.powi(75),
        ] {
            let r = m.reduce_f64(x);
            if x.abs() < 2f64.powi(53) {
                assert_eq!(r, m.reduce_i64(x as i64), "x = {x}");
            }
            assert!(r < Q);
        }
        // 2^80 mod q computed independently.
        let expect = m.pow(2, 80);
        assert_eq!(m.reduce_f64(2f64.powi(80)), expect);
        assert_eq!(m.reduce_f64(-(2f64.powi(80))), m.neg(expect));
    }

    #[test]
    fn reduce_f64_fractional_scale() {
        // 1.5 · 2^61 is representable; check against exact integer math.
        let m = Modulus::new(Q);
        let x = 3.0 * 2f64.powi(60);
        let expect = m.mul(3, m.pow(2, 60));
        assert_eq!(m.reduce_f64(x), expect);
    }

    #[test]
    fn reduce_f64_power_of_two_boundaries() {
        // Exact powers of two across the whole exponent range: the old
        // log2-based exponent extraction was fragile exactly here.
        let m = Modulus::new(Q);
        for k in [-80i32, -62, -1, 0, 1, 52, 53, 61, 62, 80, 500, 1023] {
            let x = 2f64.powi(k);
            let expect = if k >= 0 {
                m.pow(2, k as u64)
            } else {
                m.inv(m.pow(2, (-k) as u64))
            };
            assert_eq!(m.reduce_f64(x), expect, "2^{k}");
            assert_eq!(m.reduce_f64(-x), m.neg(expect), "-2^{k}");
        }
    }

    #[test]
    fn reduce_f64_subnormal_and_tiny() {
        let m = Modulus::new(Q);
        // Smallest positive subnormal: 2^-1074.
        let tiny = f64::from_bits(1);
        let expect = m.inv(m.pow(2, 1074));
        assert_eq!(m.reduce_f64(tiny), expect);
        // A general subnormal: 5 · 2^-1074.
        let sub = f64::from_bits(5);
        assert_eq!(m.reduce_f64(sub), m.mul(5, expect));
        // Smallest positive normal: 2^-1022.
        assert_eq!(
            m.reduce_f64(f64::MIN_POSITIVE),
            m.inv(m.pow(2, 1022)),
            "2^-1022"
        );
    }

    #[test]
    fn primality() {
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(!is_prime(1));
        assert!(!is_prime(561)); // Carmichael
        assert!(is_prime((1 << 61) - 1)); // Mersenne prime
        assert!(!is_prime((1u64 << 60) + 1));
    }
}
