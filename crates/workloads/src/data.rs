//! Deterministic synthetic input generation.
//!
//! The paper's evaluation uses 64×64 images, 16384-sample regressions and
//! MNIST/CIFAR images; input *values* only affect error magnitudes, so this
//! reproduction uses seeded uniform data with matched shapes and ranges
//! (documented substitution in DESIGN.md).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `n` values uniform in `[lo, hi)`, deterministic in `seed`.
pub fn uniform(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// A synthetic grayscale image in `[0, 0.5)` (kept small so squared
/// gradients stay below 1).
pub fn image(pixels: usize, seed: u64) -> Vec<f64> {
    uniform(pixels, 0.0, 0.5, seed)
}

/// Regression samples: `x ∈ [−1, 1)` and `y = f(x) + ε` with small noise.
pub fn regression_xy(n: usize, f: impl Fn(f64) -> f64, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let x = uniform(n, -1.0, 1.0, seed);
    let noise = uniform(n, -0.05, 0.05, seed ^ 0xABCD);
    let y = x.iter().zip(&noise).map(|(&xi, &e)| f(xi) + e).collect();
    (x, y)
}

/// Weight matrix diagonals for a banded FC layer: `count` diagonals of
/// length `len`, scaled by `1/count` so outputs stay bounded.
pub fn diagonals(count: usize, len: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..len)
                .map(|_| rng.gen_range(-1.0..1.0) / count as f64)
                .collect()
        })
        .collect()
}

/// A convolution kernel `k×k` with small random weights.
pub fn kernel(k: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let scale = 1.0 / (k * k) as f64;
    (0..k)
        .map(|_| (0..k).map(|_| rng.gen_range(-1.0..1.0) * scale).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(uniform(10, 0.0, 1.0, 7), uniform(10, 0.0, 1.0, 7));
        assert_ne!(uniform(10, 0.0, 1.0, 7), uniform(10, 0.0, 1.0, 8));
    }

    #[test]
    fn ranges_respected() {
        for v in uniform(1000, -2.0, 3.0, 1) {
            assert!((-2.0..3.0).contains(&v));
        }
        for v in image(100, 2) {
            assert!((0.0..0.5).contains(&v));
        }
    }

    #[test]
    fn regression_targets_follow_function() {
        let (x, y) = regression_xy(100, |v| 2.0 * v + 1.0, 3);
        for (xi, yi) in x.iter().zip(&y) {
            assert!((yi - (2.0 * xi + 1.0)).abs() <= 0.05);
        }
    }

    #[test]
    fn diagonal_shapes() {
        let d = diagonals(4, 16, 5);
        assert_eq!(d.len(), 4);
        assert!(d.iter().all(|row| row.len() == 16));
    }
}
