//! Ergonomic front-end for constructing IR programs with operator syntax.

use std::cell::RefCell;
use std::ops::{Add, Mul, Neg, Sub};
use std::rc::Rc;

use crate::op::{ConstValue, Op, ValueId};
use crate::program::Program;

/// Builds a [`Program`] with natural `+`, `-`, `*` expression syntax.
///
/// This plays the role of the Python DSL front-end in the paper's toolchain.
///
/// # Examples
///
/// The running example of the paper, `x³ · (y² + y)` (Fig. 2a):
///
/// ```
/// use fhe_ir::Builder;
/// let b = Builder::new("example", 16);
/// let x = b.input("x");
/// let y = b.input("y");
/// let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
/// let program = b.finish(vec![q]);
/// assert_eq!(program.num_ops(), 7);
/// ```
#[derive(Debug, Clone)]
pub struct Builder {
    inner: Rc<RefCell<Program>>,
}

/// A handle to a value under construction. Cloning is cheap; arithmetic
/// operators append ops to the owning [`Builder`].
#[derive(Debug, Clone)]
pub struct Expr {
    inner: Rc<RefCell<Program>>,
    id: ValueId,
}

impl Builder {
    /// Starts building a program with the given name and slot count.
    pub fn new(name: impl Into<String>, slots: usize) -> Self {
        Builder {
            inner: Rc::new(RefCell::new(Program::new(name, slots))),
        }
    }

    fn expr(&self, id: ValueId) -> Expr {
        Expr {
            inner: Rc::clone(&self.inner),
            id,
        }
    }

    /// Declares a fresh ciphertext input.
    pub fn input(&self, name: impl Into<String>) -> Expr {
        let id = self
            .inner
            .borrow_mut()
            .push(Op::Input { name: name.into() });
        self.expr(id)
    }

    /// Introduces a plaintext constant (scalar or vector).
    pub fn constant(&self, value: impl Into<ConstValue>) -> Expr {
        let id = self.inner.borrow_mut().push(Op::Const {
            value: value.into(),
        });
        self.expr(id)
    }

    /// Sums an iterator of expressions as a balanced-ish left fold.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty.
    pub fn sum(&self, exprs: impl IntoIterator<Item = Expr>) -> Expr {
        let mut it = exprs.into_iter();
        let first = it.next().expect("Builder::sum of an empty iterator");
        it.fold(first, |acc, e| acc + e)
    }

    /// Finalizes the program with the given outputs. Any still-live `Expr`
    /// clones are detached (appending through them afterwards is lost).
    ///
    /// # Panics
    ///
    /// Panics if any output expression belongs to a different builder.
    pub fn finish(self, outputs: Vec<Expr>) -> Program {
        let ids: Vec<ValueId> = outputs
            .into_iter()
            .map(|e| {
                assert!(
                    Rc::ptr_eq(&e.inner, &self.inner),
                    "output expression belongs to a different Builder"
                );
                e.id
            })
            .collect();
        let mut prog = self.inner.borrow_mut();
        prog.set_outputs(ids);
        std::mem::replace(&mut *prog, Program::new("detached", 1))
    }
}

impl Expr {
    /// The SSA id of this expression in the program under construction.
    pub fn id(&self) -> ValueId {
        self.id
    }

    fn push(&self, op: Op) -> Expr {
        let id = self.inner.borrow_mut().push(op);
        Expr {
            inner: Rc::clone(&self.inner),
            id,
        }
    }

    fn same_builder(&self, other: &Expr) {
        assert!(
            Rc::ptr_eq(&self.inner, &other.inner),
            "cannot combine expressions from different Builders"
        );
    }

    /// Cyclically rotates the slots by `k` (positive rotates towards slot 0).
    pub fn rotate(&self, k: i64) -> Expr {
        self.push(Op::Rotate(self.id, k))
    }

    /// The square of this expression (a ciphertext×ciphertext multiply).
    pub fn square(&self) -> Expr {
        self.push(Op::Mul(self.id, self.id))
    }
}

impl Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        self.same_builder(&rhs);
        self.push(Op::Add(self.id, rhs.id))
    }
}

impl Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        self.same_builder(&rhs);
        self.push(Op::Sub(self.id, rhs.id))
    }
}

impl Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        self.same_builder(&rhs);
        self.push(Op::Mul(self.id, rhs.id))
    }
}

impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        self.push(Op::Neg(self.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_paper_example() {
        // x2 := x*x; x3 := x*x2; y2 := y*y; s := y2+y; q := x3*s
        let b = Builder::new("fig2a", 8);
        let x = b.input("x");
        let y = b.input("y");
        let x2 = x.clone() * x.clone();
        let x3 = x * x2;
        let y2 = y.clone() * y.clone();
        let s = y2 + y;
        let q = x3 * s;
        let p = b.finish(vec![q]);
        assert_eq!(p.num_ops(), 7);
        assert_eq!(p.inputs().len(), 2);
        assert_eq!(p.outputs().len(), 1);
        assert_eq!(p.count_ops(|o| matches!(o, Op::Mul(..))), 4);
    }

    #[test]
    fn constants_and_unary() {
        let b = Builder::new("t", 4);
        let x = b.input("x");
        let c = b.constant(vec![1.0, 2.0, 3.0, 4.0]);
        let e = -(x.rotate(1) * c);
        let p = b.finish(vec![e]);
        assert_eq!(p.count_ops(|o| matches!(o, Op::Rotate(..))), 1);
        assert_eq!(p.count_ops(|o| matches!(o, Op::Neg(_))), 1);
    }

    #[test]
    fn sum_folds() {
        let b = Builder::new("t", 4);
        let xs: Vec<Expr> = (0..4).map(|i| b.input(format!("x{i}"))).collect();
        let s = b.sum(xs);
        let p = b.finish(vec![s]);
        assert_eq!(p.count_ops(|o| matches!(o, Op::Add(..))), 3);
    }

    #[test]
    #[should_panic(expected = "different Builder")]
    fn cross_builder_panics() {
        let b1 = Builder::new("a", 4);
        let b2 = Builder::new("b", 4);
        let x = b1.input("x");
        let y = b2.input("y");
        let _ = x + y;
    }
}
