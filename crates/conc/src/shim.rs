//! Checker-mode (`cfg(fhe_conc)`) drop-in replacements for `std::sync`
//! primitives. Every operation is a schedule point (see [`crate::engine`]).
//!
//! Shims fall back to plain std behavior when the calling thread is not a
//! model thread (no engine in scope): the same binary can run ordinary
//! stress tests and checker models side by side.
//!
//! Object identity is lazily (re-)registered per execution via an
//! epoch-stamped cell, which is what lets `const fn new` work — atomics in
//! `[const { AtomicU64::new(0) }; N]` arrays register on first use inside
//! the execution that touches them.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar as StdCondvar, LockResult, Mutex as StdMutex, RwLock as StdRwLock};

use crate::engine::{current_engine, Engine, ObjId, ObjKind, OpKind, Tid};

/// Epoch-stamped lazy object id: packs `(epoch << 24) | (id + 1)` into one
/// std atomic, re-registering whenever the stored epoch is stale (new
/// execution). Reads/writes happen only while the owner holds the baton,
/// so registration order is deterministic.
struct ObjCell(std::sync::atomic::AtomicU64);

const ID_BITS: u32 = 24;
const ID_MASK: u64 = (1 << ID_BITS) - 1;

impl ObjCell {
    const fn new() -> ObjCell {
        ObjCell(std::sync::atomic::AtomicU64::new(0))
    }

    fn get(&self, engine: &Arc<Engine>, kind: ObjKind) -> ObjId {
        let epoch = engine.epoch();
        let packed = self.0.load(Ordering::Relaxed);
        if packed >> ID_BITS == epoch && packed & ID_MASK != 0 {
            return ((packed & ID_MASK) - 1) as ObjId;
        }
        let id = engine.register_object(kind);
        assert!((id as u64) < ID_MASK, "object id overflow in one execution");
        self.0
            .store((epoch << ID_BITS) | (id as u64 + 1), Ordering::Relaxed);
        id
    }
}

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// Checker shim of [`std::sync::Mutex`] (lock/unlock are schedule points;
/// poisoning is not modeled — lock always returns `Ok`).
pub struct Mutex<T> {
    id: ObjCell,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            id: ObjCell::new(),
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the mutex (a schedule point under the checker).
    #[track_caller]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let loc = Location::caller();
        if let Some((engine, me)) = current_engine() {
            let id = self.id.get(&engine, ObjKind::Mutex);
            engine.schedule_point(me, OpKind::Lock(id), loc);
            // The model grants the lock only when free, and every holder
            // releases the std mutex before parking again, so this never
            // blocks.
            let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            Ok(MutexGuard {
                lock: self,
                inner: Some(inner),
                model: true,
                acquired_at: loc,
            })
        } else {
            let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            Ok(MutexGuard {
                lock: self,
                inner: Some(inner),
                model: false,
                acquired_at: loc,
            })
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.inner.into_inner().unwrap_or_else(|p| p.into_inner()))
    }

    /// Mutable access without locking (no schedule point: `&mut self`
    /// proves exclusivity).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.inner.get_mut().unwrap_or_else(|p| p.into_inner()))
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Mutex(..)")
    }
}

/// Guard returned by [`Mutex::lock`]; dropping it is a schedule point.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: bool,
    acquired_at: &'static Location<'static>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not consumed")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard not consumed")
    }
}

impl<T> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("MutexGuard(..)")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_none() {
            return; // consumed by Condvar::wait
        }
        if self.model {
            if let Some((engine, me)) = current_engine() {
                let id = self.lock.id.get(&engine, ObjKind::Mutex);
                if std::thread::panicking() {
                    // A schedule point would double-panic; repair the
                    // model lock state directly so a catch-and-continue
                    // (e.g. the batch runner's per-job catch) stays
                    // consistent.
                    engine.force_release(OpKind::Unlock(id), me);
                } else {
                    engine.schedule_point(me, OpKind::Unlock(id), self.acquired_at);
                }
            }
        }
        self.inner = None;
    }
}

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

/// Checker shim of [`std::sync::Condvar`]: never wakes spuriously,
/// `notify_one` wakes the longest-waiting thread (FIFO). Wait is modeled
/// as two schedule points — an atomic release-and-enqueue, then a blocked
/// dequeue-and-reacquire enabled only once notified.
pub struct Condvar {
    id: ObjCell,
    inner: StdCondvar,
}

impl Condvar {
    /// Creates the condvar.
    pub const fn new() -> Condvar {
        Condvar {
            id: ObjCell::new(),
            inner: StdCondvar::new(),
        }
    }

    /// Releases `guard`'s mutex, waits for a notification, reacquires.
    #[track_caller]
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let loc = Location::caller();
        let lock = guard.lock;
        if guard.model {
            let (engine, me) = current_engine().expect("model guard outside a model thread");
            let cv = self.id.get(&engine, ObjKind::Condvar);
            let m = lock.id.get(&engine, ObjKind::Mutex);
            let std_guard = guard.inner.take(); // disarm the guard's Drop
            engine.schedule_point(me, OpKind::CvRelease { cv, m }, loc);
            drop(std_guard); // baton still held: nobody raced the std lock
            engine.schedule_point(me, OpKind::CvBlock { cv, m }, loc);
            let inner = lock.inner.lock().unwrap_or_else(|p| p.into_inner());
            Ok(MutexGuard {
                lock,
                inner: Some(inner),
                model: true,
                acquired_at: loc,
            })
        } else {
            let std_guard = guard.inner.take().expect("guard not consumed");
            let inner = self
                .inner
                .wait(std_guard)
                .unwrap_or_else(|p| p.into_inner());
            Ok(MutexGuard {
                lock,
                inner: Some(inner),
                model: false,
                acquired_at: loc,
            })
        }
    }

    /// Wakes one waiter (FIFO under the checker).
    #[track_caller]
    pub fn notify_one(&self) {
        if let Some((engine, me)) = current_engine() {
            let id = self.id.get(&engine, ObjKind::Condvar);
            engine.schedule_point(me, OpKind::NotifyOne(id), Location::caller());
        } else {
            self.inner.notify_one();
        }
    }

    /// Wakes every waiter.
    #[track_caller]
    pub fn notify_all(&self) {
        if let Some((engine, me)) = current_engine() {
            let id = self.id.get(&engine, ObjKind::Condvar);
            engine.schedule_point(me, OpKind::NotifyAll(id), Location::caller());
        } else {
            self.inner.notify_all();
        }
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar(..)")
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

/// Checker shim of [`std::sync::RwLock`] (readers block writers and vice
/// versa; poisoning is not modeled).
pub struct RwLock<T> {
    id: ObjCell,
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            id: ObjCell::new(),
            inner: StdRwLock::new(value),
        }
    }

    /// Acquires shared access.
    #[track_caller]
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let loc = Location::caller();
        if let Some((engine, me)) = current_engine() {
            let id = self.id.get(&engine, ObjKind::Rw);
            engine.schedule_point(me, OpKind::RwRead(id), loc);
            let inner = self.inner.read().unwrap_or_else(|p| p.into_inner());
            Ok(RwLockReadGuard {
                lock: self,
                inner: Some(inner),
                model: true,
                acquired_at: loc,
            })
        } else {
            let inner = self.inner.read().unwrap_or_else(|p| p.into_inner());
            Ok(RwLockReadGuard {
                lock: self,
                inner: Some(inner),
                model: false,
                acquired_at: loc,
            })
        }
    }

    /// Acquires exclusive access.
    #[track_caller]
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let loc = Location::caller();
        if let Some((engine, me)) = current_engine() {
            let id = self.id.get(&engine, ObjKind::Rw);
            engine.schedule_point(me, OpKind::RwWrite(id), loc);
            let inner = self.inner.write().unwrap_or_else(|p| p.into_inner());
            Ok(RwLockWriteGuard {
                lock: self,
                inner: Some(inner),
                model: true,
                acquired_at: loc,
            })
        } else {
            let inner = self.inner.write().unwrap_or_else(|p| p.into_inner());
            Ok(RwLockWriteGuard {
                lock: self,
                inner: Some(inner),
                model: false,
                acquired_at: loc,
            })
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

macro_rules! rw_guard {
    ($name:ident, $std:ident, $unlock:ident, $($mut_impl:tt)*) => {
        /// RwLock guard; dropping it is a schedule point.
        pub struct $name<'a, T> {
            lock: &'a RwLock<T>,
            inner: Option<std::sync::$std<'a, T>>,
            model: bool,
            acquired_at: &'static Location<'static>,
        }

        impl<T> Deref for $name<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                self.inner.as_ref().expect("guard not consumed")
            }
        }

        $($mut_impl)*

        impl<T> fmt::Debug for $name<'_, T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(concat!(stringify!($name), "(..)"))
            }
        }

        impl<T> Drop for $name<'_, T> {
            fn drop(&mut self) {
                if self.inner.is_none() {
                    return;
                }
                if self.model {
                    if let Some((engine, me)) = current_engine() {
                        let id = self.lock.id.get(&engine, ObjKind::Rw);
                        if std::thread::panicking() {
                            engine.force_release(OpKind::$unlock(id), me);
                        } else {
                            engine.schedule_point(me, OpKind::$unlock(id), self.acquired_at);
                        }
                    }
                }
                self.inner = None;
            }
        }
    };
}

rw_guard!(RwLockReadGuard, RwLockReadGuard, RwUnRead,);
rw_guard!(
    RwLockWriteGuard,
    RwLockWriteGuard,
    RwUnWrite,
    impl<T> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard not consumed")
        }
    }
);

// ---------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------

macro_rules! atomic_shim {
    ($name:ident, $std:ident, $ty:ty) => {
        /// Checker shim of the std atomic: every operation is a schedule
        /// point executed with SeqCst-equivalent visibility (see
        /// [`crate::sync`] for the ordering contract).
        pub struct $name {
            value: std::sync::atomic::$std,
            id: ObjCell,
        }

        impl $name {
            /// Creates the atomic.
            pub const fn new(value: $ty) -> $name {
                $name {
                    value: std::sync::atomic::$std::new(value),
                    id: ObjCell::new(),
                }
            }

            #[track_caller]
            fn point(&self, make: fn(ObjId) -> OpKind) -> bool {
                if let Some((engine, me)) = current_engine() {
                    let id = self.id.get(&engine, ObjKind::Atomic);
                    engine.schedule_point(me, make(id), Location::caller());
                    true
                } else {
                    false
                }
            }

            /// Atomic load.
            #[track_caller]
            pub fn load(&self, order: Ordering) -> $ty {
                if self.point(OpKind::ALoad) {
                    self.value.load(Ordering::SeqCst)
                } else {
                    self.value.load(order)
                }
            }

            /// Atomic store.
            #[track_caller]
            pub fn store(&self, value: $ty, order: Ordering) {
                if self.point(OpKind::AStore) {
                    self.value.store(value, Ordering::SeqCst)
                } else {
                    self.value.store(value, order)
                }
            }

            /// Atomic swap.
            #[track_caller]
            pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                if self.point(OpKind::ARmw) {
                    self.value.swap(value, Ordering::SeqCst)
                } else {
                    self.value.swap(value, order)
                }
            }

            /// Mutable access (no schedule point: `&mut self`).
            pub fn get_mut(&mut self) -> &mut $ty {
                self.value.get_mut()
            }
        }

        impl Default for $name {
            fn default() -> $name {
                $name::new(Default::default())
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                // Raw read on purpose: Debug must not create a schedule
                // point.
                write!(f, "{:?}", self.value.load(Ordering::Relaxed))
            }
        }
    };
}

macro_rules! atomic_shim_int {
    ($name:ident, $std:ident, $ty:ty) => {
        atomic_shim!($name, $std, $ty);

        impl $name {
            /// Atomic add, returning the previous value.
            #[track_caller]
            pub fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                if self.point(OpKind::ARmw) {
                    self.value.fetch_add(value, Ordering::SeqCst)
                } else {
                    self.value.fetch_add(value, order)
                }
            }

            /// Atomic subtract, returning the previous value.
            #[track_caller]
            pub fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                if self.point(OpKind::ARmw) {
                    self.value.fetch_sub(value, Ordering::SeqCst)
                } else {
                    self.value.fetch_sub(value, order)
                }
            }

            /// Atomic max, returning the previous value.
            #[track_caller]
            pub fn fetch_max(&self, value: $ty, order: Ordering) -> $ty {
                if self.point(OpKind::ARmw) {
                    self.value.fetch_max(value, Ordering::SeqCst)
                } else {
                    self.value.fetch_max(value, order)
                }
            }

            /// Atomic read-modify-write via a closure (one schedule point:
            /// the model executes it without interference, mirroring a
            /// successful compare-exchange).
            #[track_caller]
            pub fn fetch_update<F>(
                &self,
                set_order: Ordering,
                fetch_order: Ordering,
                mut f: F,
            ) -> Result<$ty, $ty>
            where
                F: FnMut($ty) -> Option<$ty>,
            {
                if self.point(OpKind::ARmw) {
                    let cur = self.value.load(Ordering::SeqCst);
                    match f(cur) {
                        Some(next) => {
                            self.value.store(next, Ordering::SeqCst);
                            Ok(cur)
                        }
                        None => Err(cur),
                    }
                } else {
                    self.value.fetch_update(set_order, fetch_order, f)
                }
            }
        }
    };
}

atomic_shim_int!(AtomicU64, AtomicU64, u64);
atomic_shim_int!(AtomicUsize, AtomicUsize, usize);
atomic_shim!(AtomicBool, AtomicBool, bool);

// ---------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------

/// Checker shims of `std::thread` spawning.
pub mod thread {
    use super::*;
    use crate::engine::{self};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Checker shim of [`std::thread::Builder`].
    #[derive(Debug, Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        /// A new builder.
        pub fn new() -> Builder {
            Builder::default()
        }

        /// Names the thread (shown in counterexample traces).
        pub fn name(mut self, name: String) -> Builder {
            self.name = Some(name);
            self
        }

        /// Spawns the thread. On a model thread the child is registered
        /// with the checker and scheduled like any other model thread;
        /// otherwise this is a plain std spawn.
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            if let Some((eng, _me)) = current_engine() {
                let tid =
                    eng.register_thread(self.name.clone().unwrap_or_else(|| "spawned".to_string()));
                let slot: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
                let slot2 = Arc::clone(&slot);
                let eng2 = Arc::clone(&eng);
                let mut builder = std::thread::Builder::new();
                if let Some(name) = self.name {
                    builder = builder.name(name);
                }
                builder.spawn(move || {
                    engine::enter_model_thread(&eng2, tid);
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        eng2.schedule_point(tid, OpKind::Start, Location::caller());
                        f()
                    }));
                    match result {
                        Ok(value) => {
                            *slot2.lock().unwrap_or_else(|p| p.into_inner()) = Some(value);
                            eng2.finish_thread(tid, None);
                        }
                        Err(payload) => eng2.finish_thread(tid, Some(payload)),
                    }
                    engine::exit_model_thread();
                })?;
                Ok(JoinHandle(Inner::Model {
                    engine: eng,
                    tid,
                    slot,
                }))
            } else {
                let mut builder = std::thread::Builder::new();
                if let Some(name) = self.name {
                    builder = builder.name(name);
                }
                builder.spawn(f).map(|h| JoinHandle(Inner::Std(h)))
            }
        }
    }

    enum Inner<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            engine: Arc<Engine>,
            tid: Tid,
            slot: Arc<StdMutex<Option<T>>>,
        },
    }

    /// Checker shim of [`std::thread::JoinHandle`]: joining a model
    /// thread is a schedule point enabled once the target finishes.
    pub struct JoinHandle<T>(Inner<T>);

    impl<T> fmt::Debug for JoinHandle<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("JoinHandle(..)")
        }
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish, returning its value.
        #[track_caller]
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Inner::Std(handle) => handle.join(),
                Inner::Model { engine, tid, slot } => {
                    let (eng, me) =
                        current_engine().expect("model JoinHandle joined outside a model thread");
                    debug_assert!(Arc::ptr_eq(&eng, &engine));
                    eng.schedule_point(me, OpKind::Join(tid), Location::caller());
                    let value = slot
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .take()
                        .expect("joined model thread finished with a value");
                    Ok(value)
                }
            }
        }
    }

    /// Spawns an unnamed thread (see [`Builder::spawn`]).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("failed to spawn thread")
    }

    /// Yields: a plain always-enabled schedule point under the checker.
    #[track_caller]
    pub fn yield_now() {
        if let Some((engine, me)) = current_engine() {
            engine.schedule_point(me, OpKind::Yield, Location::caller());
        } else {
            std::thread::yield_now();
        }
    }
}
