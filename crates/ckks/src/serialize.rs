//! Binary (de)serialization of ciphertexts and plaintexts.
//!
//! In a deployed privacy-preserving service the client encrypts inputs and
//! ships them to the evaluation server; this module provides the wire
//! format (little-endian, versioned, length-checked).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::cipher::Ciphertext;
use crate::context::CkksContext;
use crate::encoding::Plaintext;
use crate::keys::{GaloisKeys, KswKey, RelinKey, SecretKey};
use crate::poly::RnsPoly;

const MAGIC: u32 = 0x52_4E_53_43; // "RNSC"
const VERSION: u8 = 1;

/// A malformed or incompatible serialized blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn err<T>(msg: impl Into<String>) -> Result<T, DecodeError> {
    Err(DecodeError(msg.into()))
}

fn put_poly(buf: &mut BytesMut, poly: &RnsPoly, n: usize) {
    buf.put_u32_le(poly.level() as u32);
    buf.put_u8(u8::from(poly.has_special()));
    buf.put_u8(u8::from(poly.is_ntt()));
    for i in 0..poly.level() {
        for &v in poly.limb(i) {
            buf.put_u64_le(v);
        }
    }
    if poly.has_special() {
        for &v in poly.special_limb() {
            buf.put_u64_le(v);
        }
    }
    debug_assert_eq!(poly.limb(0).len(), n);
}

fn get_poly(buf: &mut Bytes, ctx: &CkksContext) -> Result<RnsPoly, DecodeError> {
    if buf.remaining() < 6 {
        return err("truncated polynomial header");
    }
    let level = buf.get_u32_le() as usize;
    let special = buf.get_u8() != 0;
    let ntt = buf.get_u8() != 0;
    if level == 0 || level > ctx.max_level() {
        return err(format!("level {level} out of range"));
    }
    let n = ctx.degree();
    let limbs = level + usize::from(special);
    if buf.remaining() < limbs * n * 8 {
        return err("truncated polynomial body");
    }
    let mut poly = RnsPoly::zero(ctx, level, special, ntt);
    for i in 0..level {
        let modulus = ctx.moduli()[i].value();
        for v in poly.limb_mut(i) {
            let raw = buf.get_u64_le();
            if raw >= modulus {
                return err(format!("residue {raw} not reduced mod {modulus}"));
            }
            *v = raw;
        }
    }
    if special {
        let modulus = ctx.special().value();
        for v in poly.special_limb_mut() {
            let raw = buf.get_u64_le();
            if raw >= modulus {
                return err(format!("special residue {raw} not reduced mod {modulus}"));
            }
            *v = raw;
        }
    }
    Ok(poly)
}

/// Serializes a ciphertext.
pub fn ciphertext_to_bytes(ctx: &CkksContext, ct: &Ciphertext) -> Bytes {
    let n = ctx.degree();
    let mut buf = BytesMut::with_capacity(16 + 2 * (ct.level + 1) * n * 8);
    buf.put_u32_le(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(0); // kind: ciphertext
    buf.put_u32_le(n as u32);
    buf.put_f64_le(ct.scale);
    put_poly(&mut buf, &ct.c0, n);
    put_poly(&mut buf, &ct.c1, n);
    buf.freeze()
}

/// Deserializes a ciphertext.
///
/// # Errors
///
/// Fails on wrong magic/version, degree mismatch, truncation, or
/// unreduced residues.
pub fn ciphertext_from_bytes(ctx: &CkksContext, data: &[u8]) -> Result<Ciphertext, DecodeError> {
    let mut buf = Bytes::copy_from_slice(data);
    if buf.remaining() < 18 {
        return err("truncated header");
    }
    if buf.get_u32_le() != MAGIC {
        return err("bad magic");
    }
    if buf.get_u8() != VERSION {
        return err("unsupported version");
    }
    if buf.get_u8() != 0 {
        return err("not a ciphertext blob");
    }
    if buf.get_u32_le() as usize != ctx.degree() {
        return err("polynomial degree mismatch");
    }
    let scale = buf.get_f64_le();
    if !(scale.is_finite() && scale > 0.0) {
        return err("invalid scale");
    }
    let c0 = get_poly(&mut buf, ctx)?;
    let c1 = get_poly(&mut buf, ctx)?;
    if c0.level() != c1.level() || c0.has_special() || c1.has_special() {
        return err("inconsistent ciphertext components");
    }
    let level = c0.level();
    Ok(Ciphertext {
        c0,
        c1,
        level,
        scale,
    })
}

/// Serializes a plaintext.
pub fn plaintext_to_bytes(ctx: &CkksContext, pt: &Plaintext) -> Bytes {
    let n = ctx.degree();
    let mut buf = BytesMut::with_capacity(16 + (pt.level + 1) * n * 8);
    buf.put_u32_le(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(1); // kind: plaintext
    buf.put_u32_le(n as u32);
    buf.put_f64_le(pt.scale);
    put_poly(&mut buf, &pt.poly, n);
    buf.freeze()
}

/// Deserializes a plaintext.
///
/// # Errors
///
/// Fails on wrong magic/version, degree mismatch, truncation, or
/// unreduced residues.
pub fn plaintext_from_bytes(ctx: &CkksContext, data: &[u8]) -> Result<Plaintext, DecodeError> {
    let mut buf = Bytes::copy_from_slice(data);
    if buf.remaining() < 18 {
        return err("truncated header");
    }
    if buf.get_u32_le() != MAGIC {
        return err("bad magic");
    }
    if buf.get_u8() != VERSION {
        return err("unsupported version");
    }
    if buf.get_u8() != 1 {
        return err("not a plaintext blob");
    }
    if buf.get_u32_le() as usize != ctx.degree() {
        return err("polynomial degree mismatch");
    }
    let scale = buf.get_f64_le();
    if !(scale.is_finite() && scale > 0.0) {
        return err("invalid scale");
    }
    let poly = get_poly(&mut buf, ctx)?;
    let level = poly.level();
    Ok(Plaintext { poly, scale, level })
}

/// Serializes a secret key. The key lives over the full `Q·P` basis in
/// NTT form; the blob is for client-side persistence — it must never
/// travel to the evaluation server.
pub fn secret_key_to_bytes(ctx: &CkksContext, sk: &SecretKey) -> Bytes {
    let n = ctx.degree();
    let mut buf = BytesMut::with_capacity(16 + (ctx.max_level() + 1) * n * 8);
    buf.put_u32_le(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(2); // kind: secret key
    buf.put_u32_le(n as u32);
    put_poly(&mut buf, &sk.s, n);
    buf.freeze()
}

/// Deserializes a secret key.
///
/// # Errors
///
/// Fails on wrong magic/version/kind, degree mismatch, truncation,
/// unreduced residues, or a polynomial not over the full `Q·P` basis in
/// NTT form (any partial-basis key would decrypt nothing).
pub fn secret_key_from_bytes(ctx: &CkksContext, data: &[u8]) -> Result<SecretKey, DecodeError> {
    let mut buf = Bytes::copy_from_slice(data);
    if buf.remaining() < 10 {
        return err("truncated header");
    }
    if buf.get_u32_le() != MAGIC {
        return err("bad magic");
    }
    if buf.get_u8() != VERSION {
        return err("unsupported version");
    }
    if buf.get_u8() != 2 {
        return err("not a secret-key blob");
    }
    if buf.get_u32_le() as usize != ctx.degree() {
        return err("polynomial degree mismatch");
    }
    let s = get_poly(&mut buf, ctx)?;
    if s.level() != ctx.max_level() || !s.has_special() || !s.is_ntt() {
        return err("secret key must cover the full Q·P basis in NTT form");
    }
    Ok(SecretKey { s })
}

fn put_ksw(buf: &mut BytesMut, key: &KswKey, n: usize) {
    buf.put_u32_le(key.k0.len() as u32);
    for p in &key.k0 {
        put_poly(buf, p, n);
    }
    for p in &key.k1 {
        put_poly(buf, p, n);
    }
}

fn get_ksw(buf: &mut Bytes, ctx: &CkksContext) -> Result<KswKey, DecodeError> {
    if buf.remaining() < 4 {
        return err("truncated key-switch key header");
    }
    let digits = buf.get_u32_le() as usize;
    if digits != ctx.max_level() {
        return err(format!(
            "key-switch key has {digits} digits, context needs {}",
            ctx.max_level()
        ));
    }
    let mut half = |name: &str| -> Result<Vec<RnsPoly>, DecodeError> {
        let mut polys = Vec::with_capacity(digits);
        for _ in 0..digits {
            let p = get_poly(buf, ctx)?;
            if p.level() != ctx.max_level() || !p.has_special() || !p.is_ntt() {
                return err(format!(
                    "{name} digit must cover the full Q·P basis in NTT form"
                ));
            }
            polys.push(p);
        }
        Ok(polys)
    };
    let k0 = half("k0")?;
    let k1 = half("k1")?;
    Ok(KswKey { k0, k1 })
}

/// Serializes a relinearization key. Evaluation keys are public material:
/// the server needs them to run cipher×cipher multiplications.
pub fn relin_key_to_bytes(ctx: &CkksContext, key: &RelinKey) -> Bytes {
    let n = ctx.degree();
    let mut buf = BytesMut::with_capacity(16 + key.byte_size());
    buf.put_u32_le(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(3); // kind: relinearization key
    buf.put_u32_le(n as u32);
    put_ksw(&mut buf, &key.0, n);
    buf.freeze()
}

/// Deserializes a relinearization key.
///
/// # Errors
///
/// Fails on wrong magic/version/kind, degree mismatch, truncation,
/// unreduced residues, or key polynomials not over the full `Q·P` basis
/// in NTT form.
pub fn relin_key_from_bytes(ctx: &CkksContext, data: &[u8]) -> Result<RelinKey, DecodeError> {
    let mut buf = Bytes::copy_from_slice(data);
    if buf.remaining() < 10 {
        return err("truncated header");
    }
    if buf.get_u32_le() != MAGIC {
        return err("bad magic");
    }
    if buf.get_u8() != VERSION {
        return err("unsupported version");
    }
    if buf.get_u8() != 3 {
        return err("not a relinearization-key blob");
    }
    if buf.get_u32_le() as usize != ctx.degree() {
        return err("polynomial degree mismatch");
    }
    Ok(RelinKey(get_ksw(&mut buf, ctx)?))
}

/// Serializes a Galois key set. Entries are written sorted by Galois
/// element so equal sets produce identical bytes.
pub fn galois_keys_to_bytes(ctx: &CkksContext, keys: &GaloisKeys) -> Bytes {
    let n = ctx.degree();
    let mut buf = BytesMut::with_capacity(16 + keys.byte_size());
    buf.put_u32_le(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(4); // kind: Galois key set
    buf.put_u32_le(n as u32);
    let mut elements: Vec<usize> = keys.keys.keys().copied().collect();
    elements.sort_unstable();
    buf.put_u32_le(elements.len() as u32);
    for g in elements {
        buf.put_u64_le(g as u64);
        put_ksw(&mut buf, &keys.keys[&g], n);
    }
    buf.freeze()
}

/// Deserializes a Galois key set.
///
/// # Errors
///
/// Fails on wrong magic/version/kind, degree mismatch, truncation,
/// unreduced residues, an invalid or duplicate Galois element, or key
/// polynomials not over the full `Q·P` basis in NTT form.
pub fn galois_keys_from_bytes(ctx: &CkksContext, data: &[u8]) -> Result<GaloisKeys, DecodeError> {
    let mut buf = Bytes::copy_from_slice(data);
    if buf.remaining() < 14 {
        return err("truncated header");
    }
    if buf.get_u32_le() != MAGIC {
        return err("bad magic");
    }
    if buf.get_u8() != VERSION {
        return err("unsupported version");
    }
    if buf.get_u8() != 4 {
        return err("not a Galois-key blob");
    }
    if buf.get_u32_le() as usize != ctx.degree() {
        return err("polynomial degree mismatch");
    }
    let count = buf.get_u32_le() as usize;
    let mut keys = std::collections::HashMap::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 8 {
            return err("truncated Galois element");
        }
        let g = buf.get_u64_le() as usize;
        // Valid automorphism exponents are odd and in (1, 2N).
        if g.is_multiple_of(2) || g <= 1 || g >= 2 * ctx.degree() {
            return err(format!("invalid Galois element {g}"));
        }
        let key = get_ksw(&mut buf, ctx)?;
        if keys.insert(g, key).is_some() {
            return err(format!("duplicate Galois element {g}"));
        }
    }
    Ok(GaloisKeys { keys })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cipher::{decrypt, encrypt_symmetric};
    use crate::context::CkksParams;
    use crate::encoding::Encoder;
    use crate::keys::KeyGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> CkksContext {
        CkksContext::new(CkksParams {
            poly_degree: 128,
            max_level: 2,
            modulus_bits: 45,
            special_bits: 46,
            error_std: 3.2,
            threads: 1,
        })
    }

    #[test]
    fn ciphertext_roundtrips_and_still_decrypts() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(1);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key();
        let enc = Encoder::new(&ctx);
        let values = vec![1.25, -0.5, 3.0];
        let pt = enc.encode(&values, 2f64.powi(30), 2);
        let ct = encrypt_symmetric(&ctx, &sk, &pt, &mut rng);
        let blob = ciphertext_to_bytes(&ctx, &ct);
        let back = ciphertext_from_bytes(&ctx, &blob).expect("roundtrip");
        assert_eq!(back.level, ct.level);
        assert_eq!(back.scale, ct.scale);
        let decoded = enc.decode(&decrypt(&ctx, &sk, &back));
        assert!((decoded[0] - 1.25).abs() < 1e-4);
        assert!((decoded[2] - 3.0).abs() < 1e-4);
    }

    #[test]
    fn plaintext_roundtrips() {
        let ctx = ctx();
        let enc = Encoder::new(&ctx);
        let pt = enc.encode(&[0.75; 10], 2f64.powi(25), 1);
        let blob = plaintext_to_bytes(&ctx, &pt);
        let back = plaintext_from_bytes(&ctx, &blob).expect("roundtrip");
        let decoded = enc.decode(&back);
        assert!((decoded[9] - 0.75).abs() < 1e-5);
        assert!(decoded[10].abs() < 1e-5);
    }

    #[test]
    fn secret_key_roundtrips_and_decrypts() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(7);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key();
        let blob = secret_key_to_bytes(&ctx, &sk);
        let back = secret_key_from_bytes(&ctx, &blob).expect("roundtrip");
        assert_eq!(back.s, sk.s);
        // The deserialized key decrypts a ciphertext made with the original.
        let enc = Encoder::new(&ctx);
        let pt = enc.encode(&[0.625, -1.5], 2f64.powi(30), 2);
        let ct = encrypt_symmetric(&ctx, &sk, &pt, &mut rng);
        let decoded = enc.decode(&decrypt(&ctx, &back, &ct));
        assert!((decoded[0] - 0.625).abs() < 1e-4);
        assert!((decoded[1] + 1.5).abs() < 1e-4);
        // Kind bytes are checked: a key blob is not a ciphertext and vice
        // versa.
        assert!(ciphertext_from_bytes(&ctx, &blob).is_err());
        let cblob = ciphertext_to_bytes(&ctx, &ct);
        assert!(secret_key_from_bytes(&ctx, &cblob).is_err());
    }

    #[test]
    fn ciphertext_roundtrips_at_rescaled_level() {
        // The wire format must carry non-fresh ciphertexts too: after a
        // multiply + rescale the level has dropped and the scale is no
        // longer a clean power of two (chain primes are only ≈ 2^45).
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(8);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key();
        let relin = kg.relin_key(&mut rng);
        let ev = crate::eval::Evaluator::new(&ctx, Some(relin), crate::keys::GaloisKeys::default());
        let values: Vec<f64> = (0..8).map(|i| (i as f64 - 4.0) * 0.2).collect();
        let pt = ev.encoder().encode(&values, 2f64.powi(40), 2);
        let ct = encrypt_symmetric(&ctx, &sk, &pt, &mut rng);
        let rescaled = ev.rescale(&ev.square(&ct));
        assert_eq!(rescaled.level, 1);
        let blob = ciphertext_to_bytes(&ctx, &rescaled);
        let back = ciphertext_from_bytes(&ctx, &blob).expect("roundtrip");
        assert_eq!(back.level, 1);
        assert_eq!(back.scale, rescaled.scale);
        assert_eq!(back.c0, rescaled.c0);
        assert_eq!(back.c1, rescaled.c1);
        let decoded = ev.encoder().decode(&decrypt(&ctx, &sk, &back));
        for (i, &v) in values.iter().enumerate() {
            assert!(
                (decoded[i] - v * v).abs() < 1e-3,
                "slot {i}: {} vs {}",
                decoded[i],
                v * v
            );
        }
    }

    #[test]
    fn relin_key_roundtrips_and_multiplies() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(21);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key();
        let relin = kg.relin_key(&mut rng);
        let blob = relin_key_to_bytes(&ctx, &relin);
        let back = relin_key_from_bytes(&ctx, &blob).expect("roundtrip");
        assert_eq!(back.0, relin.0);
        // The deserialized key relinearizes: square at the fresh level,
        // rescale, and square again at the dropped level — both products
        // must decode correctly.
        let ev = crate::eval::Evaluator::new(&ctx, Some(back), crate::keys::GaloisKeys::default());
        let values: Vec<f64> = (0..8).map(|i| (i as f64 - 3.0) * 0.2).collect();
        // Scale 2^30 leaves headroom for a second square at level 1
        // (rescaled scale ≈ 2^15, squared ≈ 2^30 < q0 ≈ 2^45).
        let pt = ev.encoder().encode(&values, 2f64.powi(30), 2);
        let ct = encrypt_symmetric(&ctx, &sk, &pt, &mut rng);
        let fresh_sq = ev.rescale(&ev.square(&ct));
        assert_eq!(fresh_sq.level, 1);
        let decoded = ev.encoder().decode(&decrypt(&ctx, &sk, &fresh_sq));
        for (i, &v) in values.iter().enumerate() {
            assert!(
                (decoded[i] - v * v).abs() < 1e-2,
                "fresh slot {i}: {} vs {}",
                decoded[i],
                v * v
            );
        }
        // At the rescaled level the key's full-basis digits are consumed
        // through the restricted inner product — exercise that path too.
        let low_sq = ev.square(&fresh_sq);
        let d = ev.encoder().decode(&decrypt(&ctx, &sk, &low_sq));
        for (i, &v) in values.iter().take(4).enumerate() {
            let expect = (v * v) * (v * v);
            assert!(
                (d[i] - expect).abs() < 1e-2,
                "rescaled slot {i}: {} vs {expect}",
                d[i]
            );
        }
        // Kind bytes cross-reject against the other key kinds.
        assert!(secret_key_from_bytes(&ctx, &blob).is_err());
        assert!(galois_keys_from_bytes(&ctx, &blob).is_err());
    }

    #[test]
    fn galois_keys_roundtrip_and_rotate() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(22);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key();
        let relin = kg.relin_key(&mut rng);
        let gk = kg.galois_keys([1i64, 5], &mut rng);
        let blob = galois_keys_to_bytes(&ctx, &gk);
        let back = galois_keys_from_bytes(&ctx, &blob).expect("roundtrip");
        let mut want: Vec<usize> = gk.elements().collect();
        let mut got: Vec<usize> = back.elements().collect();
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, want);
        for g in want {
            assert_eq!(back.get(g), gk.get(g));
        }
        // Serialization is canonical: equal sets → identical bytes.
        assert_eq!(blob, galois_keys_to_bytes(&ctx, &back));
        // The deserialized set rotates at the fresh level...
        let ev = crate::eval::Evaluator::new(&ctx, Some(relin), back);
        let values: Vec<f64> = (0..ctx.slots()).map(|i| i as f64 * 0.1).collect();
        let pt = ev.encoder().encode(&values, 2f64.powi(40), 2);
        let ct = encrypt_symmetric(&ctx, &sk, &pt, &mut rng);
        let r = ev.rotate(&ct, 1);
        let d = ev.encoder().decode(&decrypt(&ctx, &sk, &r));
        let slots = ctx.slots();
        for i in 0..8 {
            let expect = values[(i + 1) % slots];
            assert!(
                (d[i] - expect).abs() < 1e-2,
                "slot {i}: {} vs {expect}",
                d[i]
            );
        }
        // ...and at a rescaled level, where the restricted key inner
        // product runs over fewer limbs than the serialized full basis.
        let low = ev.rescale(&ev.square(&ct));
        assert_eq!(low.level, 1);
        let rl = ev.rotate(&low, 5);
        let dl = ev.encoder().decode(&decrypt(&ctx, &sk, &rl));
        for i in 0..8 {
            let v = values[(i + 5) % slots];
            let expect = v * v;
            assert!(
                (dl[i] - expect).abs() < 1e-2,
                "rescaled slot {i}: {} vs {expect}",
                dl[i]
            );
        }
        // Kind bytes cross-reject.
        assert!(relin_key_from_bytes(&ctx, &blob).is_err());
        assert!(ciphertext_from_bytes(&ctx, &blob).is_err());
    }

    #[test]
    fn key_blobs_reject_corruption() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(23);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let relin = kg.relin_key(&mut rng);
        let blob = relin_key_to_bytes(&ctx, &relin).to_vec();
        // Wrong magic.
        let mut bad = blob.clone();
        bad[0] ^= 0xFF;
        assert!(relin_key_from_bytes(&ctx, &bad).is_err());
        // Truncated mid-polynomial.
        assert!(relin_key_from_bytes(&ctx, &blob[..blob.len() / 2]).is_err());
        // Unreduced residue in the last limb word.
        let mut bad = blob.clone();
        let off = blob.len() - 8;
        bad[off..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(relin_key_from_bytes(&ctx, &bad).is_err());
        // A Galois set with a tampered (even) element is rejected.
        let gk = kg.galois_keys([2i64], &mut rng);
        let gblob = galois_keys_to_bytes(&ctx, &gk).to_vec();
        let mut bad = gblob.clone();
        // Element is the u64 right after the 14-byte header.
        bad[14] &= 0xFE;
        assert!(galois_keys_from_bytes(&ctx, &bad).is_err());
    }

    #[test]
    fn rejects_corruption() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(2);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let enc = Encoder::new(&ctx);
        let pt = enc.encode(&[1.0], 2f64.powi(30), 1);
        let ct = encrypt_symmetric(&ctx, &kg.secret_key(), &pt, &mut rng);
        let blob = ciphertext_to_bytes(&ctx, &ct).to_vec();
        // Wrong magic.
        let mut bad = blob.clone();
        bad[0] ^= 0xFF;
        assert!(ciphertext_from_bytes(&ctx, &bad).is_err());
        // Truncated.
        assert!(ciphertext_from_bytes(&ctx, &blob[..blob.len() - 9]).is_err());
        // Unreduced residue: set one limb word to u64::MAX.
        let mut bad = blob.clone();
        let off = blob.len() - 8;
        bad[off..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(ciphertext_from_bytes(&ctx, &bad).is_err());
        // Plaintext blob fed to ciphertext decoder.
        let pblob = plaintext_to_bytes(&ctx, &pt);
        assert!(ciphertext_from_bytes(&ctx, &pblob).is_err());
    }

    #[test]
    fn rejects_wrong_context() {
        let ctx_a = ctx();
        let ctx_b = CkksContext::new(CkksParams {
            poly_degree: 256,
            max_level: 2,
            modulus_bits: 45,
            special_bits: 46,
            error_std: 3.2,
            threads: 1,
        });
        let enc = Encoder::new(&ctx_a);
        let pt = enc.encode(&[1.0], 2f64.powi(30), 1);
        let blob = plaintext_to_bytes(&ctx_a, &pt);
        assert!(plaintext_from_bytes(&ctx_b, &blob).is_err());
    }
}
