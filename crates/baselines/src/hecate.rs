//! The Hecate baseline: exploration-based scale management
//! (Lee et al., CGO'22, as summarized in the paper's §3.3).
//!
//! Hecate searches the space of scale-management plans with hill climbing:
//! each candidate forces *downscales* (eager upscale+rescale rounds) at
//! chosen program points, is legalized by the proactive-rescaling forward
//! pass, and is scored with the static latency model. The search keeps the
//! best plan seen. Exploration finds the level reductions the reserve
//! analysis derives statically — at the cost of thousands of legalize+score
//! iterations, which is exactly the compile-time gap Table 4 measures.

use std::time::Instant;

use fhe_analysis::{DepGraphPass, LintPass, TranslationValidatePass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fhe_ir::pipeline::{
    finish_compiled, CleanupPass, CompileError, Compiled, Pass, PassCx, PassError, PassIr,
    PassManager, ScaleCompiler,
};
use fhe_ir::{passes, CompileParams, CostModel, Program, ScheduledProgram};

use crate::forward::{legalize, ForwardPlan};

/// Hecate's label in the paper's tables.
pub const NAME: &str = "Hecate";

/// Exploration configuration.
#[derive(Debug, Clone)]
pub struct HecateOptions {
    /// Maximum candidate plans to evaluate.
    pub max_iterations: usize,
    /// Stop after this many consecutive non-improving candidates.
    pub patience: usize,
    /// RNG seed (exploration is randomized but reproducible).
    pub seed: u64,
    /// Maximum per-edge upscale choice explored (in `W/2` quanta).
    pub max_choice: u8,
}

impl Default for HecateOptions {
    fn default() -> Self {
        HecateOptions {
            max_iterations: 20_000,
            patience: 2_000,
            seed: 0x4845_4341,
            max_choice: ForwardPlan::MAX_CHOICE,
        }
    }
}

/// The hill-climbing search over [`ForwardPlan`]s, as one pipeline pass.
#[derive(Debug, Clone)]
struct ExplorePass {
    options: HecateOptions,
}

impl Pass for ExplorePass {
    fn name(&self) -> &str {
        "explore"
    }

    fn run(&mut self, ir: PassIr, cx: &mut PassCx) -> Result<PassIr, PassError> {
        let cleaned = ir.try_source("explore")?;
        let options = &self.options;
        let params = cx.params;
        let cost_model = cx.cost_model.clone();

        // Hecate runs its optimization passes (CSE, DCE) inside every
        // explored iteration "to precisely reflect the explored performance"
        // (§8.1) — that per-iteration weight is part of the compile-time gap
        // Table 4 measures, so we reproduce it here.
        let score = |s: &ScheduledProgram| -> f64 {
            let cleaned = passes::cleanup(&s.program);
            let candidate = if cleaned.inputs().len() == s.inputs.len() {
                ScheduledProgram {
                    program: cleaned,
                    params: s.params,
                    inputs: s.inputs.clone(),
                }
            } else {
                s.clone() // cleanup dropped a dead input; score the original
            };
            match candidate.validate() {
                Ok(map) => cost_model.program_cost(&candidate.program, &map),
                Err(_) => f64::INFINITY,
            }
        };

        // Candidate points: use edges carrying live ciphertext operands.
        let live = fhe_ir::analysis::live(&cleaned);
        let mut points: Vec<usize> = Vec::new();
        for id in cleaned.ids() {
            if !live[id.index()] || cleaned.is_plain(id) {
                continue;
            }
            for (slot, operand) in cleaned.op(id).operands().enumerate() {
                if cleaned.is_cipher(operand) {
                    points.push(2 * id.index() + slot);
                }
            }
        }

        let mut best_plan = ForwardPlan::empty(cleaned.num_ops());
        let mut best = legalize(&cleaned, &params, &best_plan)
            .map_err(|e| PassError::new("explore", format!("{e:?}")))?;
        let mut best_cost = score(&best);
        let mut iterations = 1usize;
        let mut since_improvement = 0usize;
        let mut rng = StdRng::seed_from_u64(options.seed);

        while iterations < options.max_iterations && since_improvement < options.patience {
            // Mutate 1–3 random points of the incumbent plan.
            let mut candidate = best_plan.clone();
            let mutations = rng.gen_range(1..=3usize);
            for _ in 0..mutations {
                if points.is_empty() {
                    break;
                }
                let p = points[rng.gen_range(0..points.len())];
                candidate.edge[p] = rng.gen_range(0..=options.max_choice);
            }
            if candidate == best_plan {
                iterations += 1;
                since_improvement += 1;
                continue;
            }
            iterations += 1;
            match legalize(&cleaned, &params, &candidate) {
                Ok(s) => {
                    let c = score(&s);
                    if c < best_cost {
                        best_cost = c;
                        best = s;
                        best_plan = candidate;
                        since_improvement = 0;
                    } else {
                        since_improvement += 1;
                    }
                }
                Err(_) => since_improvement += 1,
            }
        }

        cx.add_iterations(iterations);
        cx.note(format!("{iterations} candidate plan(s) explored"));
        Ok(PassIr::Scheduled(best))
    }
}

/// Compiles with Hecate-style hill-climbing exploration.
///
/// # Errors
///
/// Fails (in pass `"explore"`) when even the conservative (EVA) plan
/// exceeds `params.max_level`.
pub fn compile(
    program: &Program,
    params: &CompileParams,
    options: &HecateOptions,
) -> Result<Compiled, CompileError> {
    let t_total = Instant::now();
    let mut cx = PassCx::new(*params, CostModel::paper_table3());
    let (ir, trace) = PassManager::new()
        .with(CleanupPass)
        .with(ExplorePass {
            options: options.clone(),
        })
        .with(DepGraphPass)
        .with(LintPass::default())
        .with(TranslationValidatePass::new(program.clone()))
        .run(PassIr::Source(program.clone()), &mut cx)
        .map_err(|e| CompileError::in_compiler(NAME, e))?;
    let scheduled = ir
        .try_scheduled("finish")
        .map_err(|e| CompileError::in_compiler(NAME, e))?;
    let ops_before = trace
        .pass("explore")
        .map_or(program.num_ops(), |r| r.ops_before);
    finish_compiled(NAME, scheduled, trace, &cx, t_total.elapsed(), ops_before)
}

/// Hecate behind the workspace-wide [`ScaleCompiler`] trait.
#[derive(Debug, Clone, Default)]
pub struct HecateCompiler {
    /// Exploration configuration (budget, patience, seed).
    pub options: HecateOptions,
}

impl HecateCompiler {
    /// A compiler with an explicit iteration budget, paper defaults
    /// otherwise.
    pub fn with_budget(max_iterations: usize) -> Self {
        HecateCompiler {
            options: HecateOptions {
                max_iterations,
                ..HecateOptions::default()
            },
        }
    }
}

impl ScaleCompiler for HecateCompiler {
    fn name(&self) -> &str {
        NAME
    }

    fn compile(&self, program: &Program, params: &CompileParams) -> Result<Compiled, CompileError> {
        compile(program, params, &self.options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eva;
    use fhe_ir::Builder;

    fn fig2a() -> Program {
        let b = Builder::new("fig2a", 8);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        b.finish(vec![q])
    }

    fn options(iters: usize) -> HecateOptions {
        HecateOptions {
            max_iterations: iters,
            patience: iters,
            seed: 7,
            max_choice: ForwardPlan::MAX_CHOICE,
        }
    }

    #[test]
    fn exploration_beats_eva_on_fig2a() {
        let p = fig2a();
        let params = CompileParams::new(20);
        let eva_out = eva::compile(&p, &params).unwrap();
        let hec = compile(&p, &params, &options(500)).unwrap();
        assert!(
            hec.report.estimated_latency_us < eva_out.report.estimated_latency_us,
            "hecate {} should beat EVA {}",
            hec.report.estimated_latency_us,
            eva_out.report.estimated_latency_us
        );
        assert!(hec.report.iterations > 1);
        hec.scheduled.validate().unwrap();
    }

    #[test]
    fn exploration_is_seed_deterministic() {
        let p = fig2a();
        let params = CompileParams::new(30);
        let a = compile(&p, &params, &options(200)).unwrap();
        let b = compile(&p, &params, &options(200)).unwrap();
        assert_eq!(a.report.iterations, b.report.iterations);
        assert_eq!(a.report.estimated_latency_us, b.report.estimated_latency_us);
    }

    #[test]
    fn iterations_flow_into_the_trace_note() {
        let p = fig2a();
        let out = compile(&p, &CompileParams::new(20), &options(100)).unwrap();
        let explore = out.report.trace.pass("explore").unwrap();
        assert_eq!(
            explore.notes,
            vec![format!(
                "{} candidate plan(s) explored",
                out.report.iterations
            )]
        );
    }
}
