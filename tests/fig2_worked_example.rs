//! The paper's worked example (Fig. 2): `x³ · (y² + y)` at waterline 2^20.
//!
//! Paper numbers (hundreds of µs, from Table 3): EVA's plan costs 390
//! (Fig. 2b); the reserve analysis alone reaches ≈353 (Fig. 2c); with
//! rescale hoisting ≈335 (Fig. 2d). Our cost accounting differs slightly on
//! `upscale` (we charge it as cipher×plain at the operand level), so the
//! assertions use bands around those values.

use fhe_reserve::prelude::*;
use fhe_reserve::{baselines, runtime};

fn fig2a() -> fhe_ir::Program {
    let b = Builder::new("fig2a", 8);
    let x = b.input("x");
    let y = b.input("y");
    let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
    b.finish(vec![q])
}

fn cost_hundreds(s: &ScheduledProgram) -> f64 {
    runtime::estimate(s, &CostModel::paper_table3())
        .unwrap()
        .total_us
        / 100.0
}

#[test]
fn fig2_cost_story() {
    let p = fig2a();
    let params = CompileParams::new(20);

    let eva = baselines::eva::compile(&p, &params).unwrap().scheduled;
    let eva_cost = cost_hundreds(&eva);
    assert!(
        (385.0..400.0).contains(&eva_cost),
        "EVA ≈390, got {eva_cost:.1}"
    );

    let ra = compile(&p, &Options::with_mode(20, Mode::Ra))
        .unwrap()
        .scheduled;
    let ra_cost = cost_hundreds(&ra);
    assert!(
        (345.0..375.0).contains(&ra_cost),
        "step 1 ≈353, got {ra_cost:.1}"
    );

    let full = compile(&p, &Options::new(20)).unwrap().scheduled;
    let full_cost = cost_hundreds(&full);
    assert!(
        (325.0..355.0).contains(&full_cost),
        "step 2 ≈335, got {full_cost:.1}"
    );

    assert!(full_cost < ra_cost && ra_cost < eva_cost);

    // Hecate's exploration lands near the reserve compiler's plan.
    let hec = baselines::hecate::compile(
        &p,
        &params,
        &baselines::HecateOptions {
            max_iterations: 2000,
            patience: 2000,
            seed: 5,
            max_choice: baselines::ForwardPlan::MAX_CHOICE,
        },
    )
    .unwrap();
    let hec_cost = cost_hundreds(&hec.scheduled);
    assert!(
        hec_cost < eva_cost && hec_cost < full_cost * 1.15,
        "Hecate ({hec_cost:.1}) should approach the reserve plan ({full_cost:.1})"
    );
    assert!(hec.report.iterations > 100, "exploration actually explored");
}

#[test]
fn fig2_input_levels_match_paper() {
    // Both EVA and this work encrypt Fig. 2a's inputs at level 2.
    let p = fig2a();
    let eva = baselines::eva::compile(&p, &CompileParams::new(20))
        .unwrap()
        .scheduled;
    let ours = compile(&p, &Options::new(20)).unwrap().scheduled;
    assert_eq!(eva.validate().unwrap().max_level(), 2);
    assert_eq!(ours.validate().unwrap().max_level(), 2);
    // EVA encrypts at the waterline scale; the reserve plan upscales inputs
    // to 40 bits so the output fully utilizes its modulus.
    assert_eq!(eva.inputs[0].scale_bits, Frac::from(20));
    assert_eq!(ours.inputs[0].scale_bits, Frac::from(40));
}

#[test]
fn fig2_all_plans_compute_the_same_function() {
    let p = fig2a();
    let mut inputs = std::collections::HashMap::new();
    inputs.insert(
        "x".to_string(),
        vec![1.5, -0.5, 2.0, 0.1, 0.0, 1.0, -1.0, 0.7],
    );
    inputs.insert(
        "y".to_string(),
        vec![0.5, 1.0, -2.0, 3.0, 0.2, -0.2, 1.1, 0.0],
    );
    let reference = runtime::plain::execute(&p, &inputs);
    let params = CompileParams::new(20);
    let eva = baselines::eva::compile(&p, &params).unwrap().scheduled;
    let ours = compile(&p, &Options::new(20)).unwrap().scheduled;
    for s in [&eva, &ours] {
        let got = runtime::plain::execute(&s.program, &inputs);
        assert_eq!(got, reference);
    }
}
